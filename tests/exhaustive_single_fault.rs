//! Exhaustive single-fault sweep: the paper's core claim — *any* single
//! lost message is recovered — verified literally.
//!
//! A reference run counts every message the network carries; then, for each
//! message index, the identical run is repeated with **exactly that one
//! message dropped**, and must complete coherently. (Messages are injected
//! in a deterministic order given the seed, so index `n` names the same
//! message in every repetition up to the drop point.)
//!
//! The default sweep strides through the indices to stay fast; set
//! `FTDIRCMP_STRESS=big` to try every single message, and for two-fault
//! pairs a random sample is used.

use ftdircmp::{Addr, CoreTrace, FaultConfig, System, SystemConfig, TraceOp, Workload};

/// Small but protocol-rich workload: contended RMW + read sharing +
/// capacity evictions across 4 cores.
fn workload() -> Workload {
    let mut traces = Vec::new();
    for c in 0..4u64 {
        let mut ops = vec![TraceOp::Think(c * 37)];
        for r in 0..6u64 {
            let hot = Addr(0x40 * (1 + (r + c) % 3));
            ops.push(TraceOp::Load(hot));
            ops.push(TraceOp::Store(hot));
            ops.push(TraceOp::Load(Addr(0x40 * 7)));
            ops.push(TraceOp::Store(Addr(0x8000 + c * 0x400 + r * 0x40)));
            ops.push(TraceOp::Think(50));
        }
        traces.push(CoreTrace::new(ops));
    }
    Workload::new("single-fault-sweep", traces)
}

fn config() -> SystemConfig {
    let mut cfg = SystemConfig::ftdircmp().with_seed(77);
    // Short-ish timeouts keep each faulty run quick; backoff guarantees
    // convergence regardless.
    cfg.ft.lost_request_timeout = 800;
    cfg.ft.lost_unblock_timeout = 800;
    cfg.ft.lost_ackbd_timeout = 600;
    cfg.ft.lost_data_timeout = 1600;
    cfg.watchdog_cycles = 2_000_000;
    cfg
}

fn total_messages() -> u64 {
    let r = System::run_workload(config(), &workload()).expect("fault-free run");
    assert!(r.violations.is_empty());
    // The injector examines every non-local network injection.
    r.noc.total_messages()
}

fn run_with_drops(indices: Vec<u64>) -> ftdircmp::SimReport {
    let mut cfg = config();
    cfg.mesh.faults = FaultConfig::drop_exactly(indices.clone());
    let wl = workload();
    let r = System::run_workload(cfg, &wl).unwrap_or_else(|e| panic!("drop {indices:?}: {e}"));
    assert!(
        r.violations.is_empty(),
        "drop {indices:?}: {:#?}",
        r.violations
    );
    assert_eq!(
        r.total_mem_ops as usize,
        wl.total_mem_ops(),
        "drop {indices:?}: lost operations"
    );
    r
}

#[test]
fn losing_any_single_message_is_recovered() {
    let total = total_messages();
    assert!(total > 100, "workload too small to be meaningful: {total}");
    let stride = if std::env::var("FTDIRCMP_STRESS").as_deref() == Ok("big") {
        1
    } else {
        7
    };
    let mut dropped_runs = 0;
    for n in (0..total).step_by(stride) {
        let r = run_with_drops(vec![n]);
        if r.messages_lost > 0 {
            dropped_runs += 1;
            assert!(
                r.stats.total_timeouts() > 0 || r.stats.reissues.get() > 0,
                "drop {n}: a loss must be detected by some timer"
            );
        }
    }
    assert!(dropped_runs > 0, "no run actually dropped a message");
}

#[test]
fn losing_random_message_pairs_is_recovered() {
    let total = total_messages();
    // Deterministic pseudo-random pair sample.
    let mut state = 0x5EEDu64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % total
    };
    let pairs = if std::env::var("FTDIRCMP_STRESS").as_deref() == Ok("big") {
        200
    } else {
        30
    };
    for _ in 0..pairs {
        let (a, b) = (next(), next());
        run_with_drops(vec![a, b]);
    }
}

#[test]
fn losing_a_burst_of_consecutive_messages_is_recovered() {
    let total = total_messages();
    for start in (0..total.saturating_sub(8)).step_by(31) {
        run_with_drops((start..start + 4).collect());
    }
}
