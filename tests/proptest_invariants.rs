//! Property-based tests: for *arbitrary* workload shapes, fault rates,
//! timeout settings and seeds, the system-wide invariants must hold —
//! SWMR, data-value integrity, bounded backups (all enforced by the
//! built-in checker), plus completion and drained protocol state.

use ftdircmp::{Addr, CoreTrace, System, SystemConfig, TraceOp, Workload};
use proptest::prelude::*;

/// A compact generator of per-core traces over a small hot line set (small
/// sets maximize races) plus a private stripe.
fn arb_trace(cores: u8, max_ops: usize) -> impl Strategy<Value = Workload> {
    let op = (0u8..10, 0u64..24, 1u64..40);
    proptest::collection::vec(proptest::collection::vec(op, 1..max_ops), cores as usize).prop_map(
        move |per_core| {
            let traces = per_core
                .into_iter()
                .enumerate()
                .map(|(c, ops)| {
                    let ops = ops
                        .into_iter()
                        .map(|(kind, line, think)| {
                            let shared = Addr(line * 64);
                            let private = Addr((0x9000 + c as u64 * 32 + line % 32) * 64);
                            match kind {
                                0..=2 => TraceOp::Load(shared),
                                3..=4 => TraceOp::Store(shared),
                                5..=6 => TraceOp::Load(private),
                                7 => TraceOp::Store(private),
                                _ => TraceOp::Think(think),
                            }
                        })
                        .collect();
                    CoreTrace::new(ops)
                })
                .collect();
            Workload::new("proptest", traces)
        },
    )
}

fn check_run(cfg: SystemConfig, wl: &Workload) -> Result<(), TestCaseError> {
    match System::run_workload(cfg, wl) {
        Ok(r) => {
            prop_assert!(r.violations.is_empty(), "violations: {:#?}", r.violations);
            prop_assert_eq!(r.total_mem_ops as usize, wl.total_mem_ops());
            prop_assert_eq!(r.residual_activity, 0);
            Ok(())
        }
        Err(e) => {
            prop_assert!(false, "run failed: {e}");
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn dircmp_coherent_on_reliable_network(wl in arb_trace(8, 60), seed in 0u64..1000) {
        check_run(SystemConfig::dircmp().with_seed(seed), &wl)?;
    }

    #[test]
    fn ftdircmp_coherent_without_faults(wl in arb_trace(8, 60), seed in 0u64..1000) {
        check_run(SystemConfig::ftdircmp().with_seed(seed), &wl)?;
    }

    #[test]
    fn ftdircmp_coherent_under_faults(
        wl in arb_trace(8, 50),
        seed in 0u64..1000,
        rate in 0.0f64..40_000.0,
    ) {
        let mut cfg = SystemConfig::ftdircmp().with_fault_rate(rate).with_seed(seed);
        cfg.watchdog_cycles = 3_000_000;
        check_run(cfg, &wl)?;
    }

    #[test]
    fn ftdircmp_coherent_with_arbitrary_timeouts(
        wl in arb_trace(8, 40),
        seed in 0u64..1000,
        req in 100u64..5000,
        unb in 100u64..5000,
        ackbd in 80u64..4000,
    ) {
        let mut cfg = SystemConfig::ftdircmp().with_fault_rate(2000.0).with_seed(seed);
        cfg.ft.lost_request_timeout = req;
        cfg.ft.lost_unblock_timeout = unb;
        cfg.ft.lost_ackbd_timeout = ackbd;
        cfg.ft.lost_data_timeout = req * 2;
        cfg.watchdog_cycles = 4_000_000;
        check_run(cfg, &wl)?;
    }

    #[test]
    fn ftdircmp_coherent_on_unordered_network(
        wl in arb_trace(8, 40),
        seed in 0u64..1000,
        rate in 0.0f64..5_000.0,
    ) {
        let mut cfg = SystemConfig::ftdircmp()
            .with_adaptive_routing()
            .with_fault_rate(rate)
            .with_seed(seed);
        cfg.watchdog_cycles = 3_000_000;
        check_run(cfg, &wl)?;
    }

    #[test]
    fn ftdircmp_coherent_under_perturbed_schedules(
        wl in arb_trace(8, 50),
        seed in 0u64..1000,
        schedule_seed in 0u64..u64::MAX,
    ) {
        // Schedule perturbation reorders same-cycle event delivery (like an
        // unordered network reorders messages); FtDirCMP must stay coherent
        // under any schedule seed. DirCMP is exempt: it assumes point-to-
        // point ordering, which nonzero seeds legitimately break.
        check_run(
            SystemConfig::ftdircmp()
                .with_seed(seed)
                .with_schedule_seed(schedule_seed),
            &wl,
        )?;
    }

    #[test]
    fn ftdircmp_coherent_under_faults_and_perturbed_schedules(
        wl in arb_trace(8, 40),
        seed in 0u64..1000,
        schedule_seed in 0u64..u64::MAX,
        rate in 0.0f64..20_000.0,
    ) {
        let mut cfg = SystemConfig::ftdircmp()
            .with_fault_rate(rate)
            .with_seed(seed)
            .with_schedule_seed(schedule_seed);
        cfg.watchdog_cycles = 3_000_000;
        check_run(cfg, &wl)?;
    }

    #[test]
    fn runs_are_deterministic(wl in arb_trace(4, 30), seed in 0u64..100) {
        let cfg = || {
            let mut c = SystemConfig::ftdircmp().with_fault_rate(3000.0).with_seed(seed);
            c.watchdog_cycles = 3_000_000;
            c
        };
        let a = System::run_workload(cfg(), &wl);
        let b = System::run_workload(cfg(), &wl);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.cycles, y.cycles);
                prop_assert_eq!(x.stats.total_messages(), y.stats.total_messages());
                prop_assert_eq!(x.messages_lost, y.messages_lost);
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "determinism broken: one run failed"),
        }
    }
}
