//! Exhaustive per-class fault sweep: for every virtual-channel class, drop
//! individual messages of exactly that class (located via the injection
//! log) and assert the *matching* Table 3 detection mechanism fires —
//! lost requests/forwards trip the lost-request timer, lost unblocks the
//! unblock timer, lost ownership acks the AckBD timer, and lost responses
//! are reissued. `Ping` messages only exist during recovery, so they are
//! reached with a layered two-fault schedule: drop an unblock to force
//! `UnblockPing` traffic, then drop the ping itself.

use ftdircmp::{
    Addr, CoreTrace, FaultConfig, System, SystemConfig, TimeoutKind, TraceOp, VcClass, Workload,
};

/// The protocol-rich 4-core workload of the exhaustive single-fault sweep:
/// contended RMW on hot lines, read sharing, capacity evictions.
fn workload() -> Workload {
    let mut traces = Vec::new();
    for c in 0..4u64 {
        let mut ops = vec![TraceOp::Think(c * 37)];
        for r in 0..6u64 {
            let hot = Addr(0x40 * (1 + (r + c) % 3));
            ops.push(TraceOp::Load(hot));
            ops.push(TraceOp::Store(hot));
            ops.push(TraceOp::Load(Addr(0x40 * 7)));
            ops.push(TraceOp::Store(Addr(0x8000 + c * 0x400 + r * 0x40)));
            ops.push(TraceOp::Think(50));
        }
        traces.push(CoreTrace::new(ops));
    }
    Workload::new("class-fault-sweep", traces)
}

fn config() -> SystemConfig {
    let mut cfg = SystemConfig::ftdircmp().with_seed(77);
    cfg.ft.lost_request_timeout = 800;
    cfg.ft.lost_unblock_timeout = 800;
    cfg.ft.lost_ackbd_timeout = 600;
    cfg.ft.lost_data_timeout = 1600;
    cfg.watchdog_cycles = 2_000_000;
    cfg
}

/// Reference run with the injection log on: per-index message classes.
fn injection_classes(drops: Vec<u64>) -> Vec<VcClass> {
    let mut cfg = config();
    cfg.mesh.record_injections = true;
    cfg.mesh.faults = FaultConfig::drop_exactly(drops);
    let r = System::run_workload(cfg, &workload()).expect("recording run completes");
    assert!(r.violations.is_empty());
    r.injection_classes
}

fn run_with_drops(drops: Vec<u64>) -> ftdircmp::SimReport {
    let mut cfg = config();
    cfg.mesh.faults = FaultConfig::drop_exactly(drops.clone());
    let wl = workload();
    let r = System::run_workload(cfg, &wl).unwrap_or_else(|e| panic!("drops {drops:?}: {e}"));
    assert!(
        r.violations.is_empty(),
        "drops {drops:?}: {:#?}",
        r.violations
    );
    assert_eq!(
        r.total_mem_ops as usize,
        wl.total_mem_ops(),
        "drops {drops:?}: lost operations"
    );
    r
}

/// The detection mechanism Table 3 assigns to a lost message of `class`.
/// Returns whether the observed report shows that mechanism (benign late
/// drops — nothing ever waited on the message — count zero detections and
/// are accepted separately).
fn expected_mechanism_fired(class: VcClass, r: &ftdircmp::SimReport) -> bool {
    match class {
        // A lost request (or a lost forward of it) starves the requester:
        // the lost-request timer must notice.
        VcClass::Request | VcClass::Forward => r.stats.timeouts(TimeoutKind::LostRequest) > 0,
        // Lost data/ack responses are re-driven by reissued (higher-serial)
        // requests, themselves triggered by a detection timer.
        VcClass::Response => r.stats.reissues.get() > 0 || r.stats.total_timeouts() > 0,
        // A lost unblock leaves the directory blocked: the unblock timer
        // pings the requester.
        VcClass::Unblock => r.stats.timeouts(TimeoutKind::LostUnblock) > 0,
        // A lost AckO/AckBD strands a backup: the AckBD timer re-drives
        // the ownership handshake.
        VcClass::OwnershipAck => r.stats.timeouts(TimeoutKind::LostAckBd) > 0,
        // Pings are covered by the layered test below.
        VcClass::Ping => r.stats.total_timeouts() > 0,
    }
}

#[test]
fn every_class_is_detected_by_its_own_mechanism() {
    let classes = injection_classes(Vec::new());
    assert!(classes.len() > 100, "workload too small: {}", classes.len());
    // Fault-free traffic contains no recovery pings.
    assert!(!classes.contains(&VcClass::Ping));

    for class in [
        VcClass::Request,
        VcClass::Forward,
        VcClass::Response,
        VcClass::Unblock,
        VcClass::OwnershipAck,
    ] {
        let indices: Vec<u64> = classes
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == class)
            .map(|(i, _)| i as u64)
            .collect();
        assert!(
            !indices.is_empty(),
            "{class:?}: workload exercises every class"
        );
        // Stride so each class gets at most ~12 sweep points.
        let stride = indices.len().div_ceil(12).max(1);
        let mut engaged = 0;
        for &idx in indices.iter().step_by(stride) {
            let r = run_with_drops(vec![idx]);
            assert!(r.messages_lost > 0, "{class:?} index {idx} was not dropped");
            if r.stats.total_timeouts() == 0 && r.stats.reissues.get() == 0 {
                // Benign: the drop was so late nothing ever waited on it.
                continue;
            }
            assert!(
                expected_mechanism_fired(class, &r),
                "{class:?} index {idx}: a loss was detected, but not by the \
                 expected mechanism (timeouts {:?}, reissues {})",
                TimeoutKind::ALL
                    .iter()
                    .map(|&k| (k, r.stats.timeouts(k)))
                    .collect::<Vec<_>>(),
                r.stats.reissues.get()
            );
            engaged += 1;
        }
        assert!(
            engaged > 0,
            "{class:?}: no sweep point engaged the expected mechanism"
        );
    }
}

#[test]
fn ping_losses_are_reached_by_a_layered_fault_schedule() {
    // Layer 1: find an unblock drop that forces UnblockPing recovery
    // traffic.
    let classes = injection_classes(Vec::new());
    let unblocks: Vec<u64> = classes
        .iter()
        .enumerate()
        .filter(|(_, c)| **c == VcClass::Unblock)
        .map(|(i, _)| i as u64)
        .collect();
    let mut layered = None;
    for &u in &unblocks {
        let first = run_with_drops(vec![u]);
        if first.stats.timeouts(TimeoutKind::LostUnblock) == 0 {
            continue; // Benign late drop: no recovery, no pings.
        }
        // Layer 2: record the faulty run's injection log; the recovery
        // pings appear in it at deterministic indices.
        let faulty_classes = injection_classes(vec![u]);
        if let Some(ping) = faulty_classes
            .iter()
            .enumerate()
            .find(|(_, c)| **c == VcClass::Ping)
            .map(|(i, _)| i as u64)
        {
            layered = Some((u, ping));
            break;
        }
    }
    let (unblock_idx, ping_idx) =
        layered.expect("some unblock drop must produce recovery ping traffic");

    // Drop both the unblock and the recovery ping that covers it: the
    // timer's backoff must re-ping and still converge.
    let r = run_with_drops(vec![unblock_idx, ping_idx]);
    assert_eq!(r.messages_lost, 2, "both layers must actually drop");
    assert!(
        r.stats.timeouts(TimeoutKind::LostUnblock) >= 2,
        "losing the recovery ping must re-fire the unblock timer (got {})",
        r.stats.timeouts(TimeoutKind::LostUnblock)
    );
}
