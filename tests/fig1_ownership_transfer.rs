//! Experiment E5: the paper's Figure 1 — a cache-to-cache write miss with
//! ownership transfer, compared across protocols.
//!
//! Checks the structural claims of §3.1: the critical path is unchanged
//! (same request/forward/data/unblock message counts), the `AckO`/`AckBD`
//! pair appears only under FtDirCMP, and the backup handshake leaves no
//! residue.

use ftdircmp::{Addr, CoreTrace, MsgType, System, SystemConfig, TraceOp, Workload};

/// Line 0x40 (line index 1) is homed at L2 bank 1; cores 5 and 9 are remote.
fn figure1_workload() -> Workload {
    let mut traces = vec![CoreTrace::default(); 16];
    traces[5] = CoreTrace::new(vec![TraceOp::Store(Addr(0x40))]);
    traces[9] = CoreTrace::new(vec![TraceOp::Think(3000), TraceOp::Store(Addr(0x40))]);
    Workload::new("figure-1", traces)
}

#[test]
fn critical_path_is_identical_across_protocols() {
    let wl = figure1_workload();
    let base = System::run_workload(SystemConfig::dircmp(), &wl).unwrap();
    let ft = System::run_workload(SystemConfig::ftdircmp(), &wl).unwrap();
    for r in [&base, &ft] {
        assert!(r.violations.is_empty());
        assert_eq!(r.total_mem_ops, 2);
    }
    // Same DirCMP message skeleton (Figure 1 left vs right).
    for t in [
        MsgType::GetX,
        MsgType::FwdGetX,
        MsgType::DataEx,
        MsgType::UnblockEx,
    ] {
        assert_eq!(
            base.stats.messages(t),
            ft.stats.messages(t),
            "count of {t} differs between protocols"
        );
    }
    // Execution time unaffected: the acknowledgments are off the critical
    // path of the miss (§3.1).
    assert_eq!(base.cycles, ft.cycles);
}

#[test]
fn ft_adds_exactly_the_ownership_handshake() {
    let wl = figure1_workload();
    let base = System::run_workload(SystemConfig::dircmp(), &wl).unwrap();
    let ft = System::run_workload(SystemConfig::ftdircmp(), &wl).unwrap();
    assert_eq!(base.stats.messages(MsgType::AckO), 0);
    assert_eq!(base.stats.messages(MsgType::AckBD), 0);
    // Figure 1: one standalone AckO for the L1b→L1a transfer; the L2/memory
    // fills piggyback theirs on UnblockEx messages.
    assert_eq!(ft.stats.messages(MsgType::AckO), 1);
    // One AckBD per ownership transfer: mem→L2, L2→L1a(core 5), L1b→L1a.
    assert_eq!(ft.stats.messages(MsgType::AckBD), 3);
    // No recovery traffic in a fault-free run.
    assert_eq!(ft.stats.messages(MsgType::UnblockPing), 0);
    assert_eq!(ft.stats.messages(MsgType::OwnershipPing), 0);
    assert_eq!(ft.residual_activity, 0);
}

#[test]
fn second_writer_observes_first_write() {
    // The data-version model proves the transfer carried the latest data:
    // core 9's store builds on core 5's (v1 -> v2) and the checker verifies
    // the version chain.
    let wl = figure1_workload();
    let ft = System::run_workload(SystemConfig::ftdircmp(), &wl).unwrap();
    assert!(ft.violations.is_empty(), "{:?}", ft.violations);
}
