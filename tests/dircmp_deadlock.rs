//! Experiment E12: the motivating observation of paper §3 — "Losing a
//! message in DirCMP will always lead to a deadlock situation" — and its
//! counterpart: FtDirCMP completes the identical run.

use ftdircmp::{workloads, RunError, System, SystemConfig};

#[test]
fn dircmp_deadlocks_where_ftdircmp_survives() {
    let wl = workloads::WorkloadSpec::named("barnes")
        .expect("in suite")
        .generate(16, 3);

    let mut base_cfg = SystemConfig::dircmp().with_fault_rate(5000.0).with_seed(3);
    base_cfg.watchdog_cycles = 150_000;
    let base = System::run_workload(base_cfg, &wl);
    match base {
        Err(RunError::Deadlock { blocked_cores, .. }) => {
            assert!(!blocked_cores.is_empty());
        }
        Ok(r) => panic!(
            "DirCMP survived a lossy network ({} losses) — statistically impossible here",
            r.messages_lost
        ),
        Err(e) => panic!("unexpected error: {e}"),
    }

    // Identical seed, identical network, fault-tolerant protocol.
    let mut ft_cfg = SystemConfig::ftdircmp()
        .with_fault_rate(5000.0)
        .with_seed(3);
    ft_cfg.watchdog_cycles = 2_000_000;
    let ft = System::run_workload(ft_cfg, &wl).expect("FtDirCMP must complete");
    assert!(ft.violations.is_empty(), "{:#?}", ft.violations);
    assert!(ft.messages_lost > 0, "the network really was lossy");
    assert_eq!(ft.total_mem_ops as usize, wl.total_mem_ops());
}

#[test]
fn dircmp_is_sound_on_a_reliable_network() {
    // The baseline is only unsafe *with* faults; fault-free it must pass
    // every invariant — that is the paper's starting point.
    for spec in workloads::suite() {
        let wl = spec.generate(16, 1);
        let r = System::run_workload(SystemConfig::dircmp().with_seed(1), &wl)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert!(
            r.violations.is_empty(),
            "{}: {:#?}",
            spec.name,
            r.violations
        );
        assert_eq!(
            r.total_mem_ops as usize,
            wl.total_mem_ops(),
            "{} lost operations",
            spec.name
        );
    }
}
