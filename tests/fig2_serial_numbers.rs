//! Experiment E6: the paper's Figure 2 — why request serial numbers are
//! needed.
//!
//! Figure 2 shows a false-positive lost-request timeout creating a *stale
//! invalidation acknowledgment* that, without serial numbers, would be
//! credited to a later transaction and break coherence. We reproduce the
//! precondition (aggressively short timeouts on a congested, fault-free
//! network → many reissues and in-flight duplicates) and verify that the
//! serial-number mechanism discards every stale message and preserves
//! coherence, on both ordered and unordered networks.

use ftdircmp::{Addr, CoreTrace, System, SystemConfig, TraceOp, Workload};

/// Heavy invalidation traffic: all cores read a line, then writers fight
/// over it — every GetX collects acks from many sharers, the exact shape of
/// Figure 2.
fn contended_invalidation_workload(rounds: usize) -> Workload {
    let line = Addr(0x40 * 7);
    let mut traces = Vec::new();
    for c in 0..16u8 {
        let mut ops = Vec::new();
        for r in 0..rounds {
            ops.push(TraceOp::Load(line));
            ops.push(TraceOp::Think(10 + u64::from(c) * 3));
            if (r + usize::from(c)) % 4 == 0 {
                ops.push(TraceOp::Store(line));
            }
        }
        traces.push(CoreTrace::new(ops));
    }
    Workload::new("figure-2", traces)
}

fn short_timeout_config() -> SystemConfig {
    let mut cfg = SystemConfig::ftdircmp();
    // Far below the network round-trip under contention: guarantees false
    // positives, duplicated responses, and stale acks in flight.
    cfg.ft.lost_request_timeout = 120;
    cfg.ft.lost_unblock_timeout = 120;
    cfg.ft.lost_ackbd_timeout = 100;
    cfg.watchdog_cycles = 3_000_000;
    cfg
}

#[test]
fn stale_acks_are_discarded_not_miscounted() {
    let wl = contended_invalidation_workload(24);
    let r = System::run_workload(short_timeout_config(), &wl).unwrap();
    assert!(r.violations.is_empty(), "{:#?}", r.violations);
    // The scenario actually materialized: reissues happened and stale
    // responses arrived (and were discarded by their serial numbers).
    assert!(r.stats.reissues.get() > 0, "no reissue was provoked");
    assert!(
        r.stats.stale_discards.get() > 0,
        "no stale message was ever discarded — scenario not exercised"
    );
}

#[test]
fn serials_also_protect_an_unordered_network() {
    // Paper §2: the protocol extends to unordered (adaptively routed)
    // networks; serial numbers are what keeps reordered duplicates safe.
    let wl = contended_invalidation_workload(24);
    let mut cfg = short_timeout_config().with_adaptive_routing();
    cfg.seed = 99;
    let r = System::run_workload(cfg, &wl).unwrap();
    assert!(r.violations.is_empty(), "{:#?}", r.violations);
    assert_eq!(r.total_mem_ops as usize, wl.total_mem_ops());
}

#[test]
fn every_false_positive_is_harmless() {
    // Sweep several seeds; each run must stay coherent no matter how many
    // false positives fire.
    for seed in 0..6 {
        let wl = contended_invalidation_workload(16);
        let mut cfg = short_timeout_config();
        cfg.seed = seed;
        let r = System::run_workload(cfg, &wl).unwrap();
        assert!(r.violations.is_empty(), "seed {seed}: {:#?}", r.violations);
        assert_eq!(r.total_mem_ops as usize, wl.total_mem_ops(), "seed {seed}");
    }
}
