//! Negative control for the fault-injection machinery: DirCMP (the non-FT
//! baseline) must *hang or violate* when a single message is lost — the
//! motivating observation of paper §3. If DirCMP ever sailed through the
//! same drops FtDirCMP is tested with, the injector would be suspect.
//!
//! Deadlock detection is bounded by `watchdog_cycles`, so every failing
//! run terminates promptly instead of hanging the test suite.

use ftdircmp::{
    Addr, CoreTrace, FaultConfig, RunError, System, SystemConfig, TraceOp, VcClass, Workload,
};

/// Same protocol-rich 4-core workload as the exhaustive FT sweeps, so the
/// control differs from them only in the protocol under test.
fn workload() -> Workload {
    let mut traces = Vec::new();
    for c in 0..4u64 {
        let mut ops = vec![TraceOp::Think(c * 37)];
        for r in 0..6u64 {
            let hot = Addr(0x40 * (1 + (r + c) % 3));
            ops.push(TraceOp::Load(hot));
            ops.push(TraceOp::Store(hot));
            ops.push(TraceOp::Load(Addr(0x40 * 7)));
            ops.push(TraceOp::Store(Addr(0x8000 + c * 0x400 + r * 0x40)));
            ops.push(TraceOp::Think(50));
        }
        traces.push(CoreTrace::new(ops));
    }
    Workload::new("dircmp-control", traces)
}

const WATCHDOG: u64 = 60_000;

fn config() -> SystemConfig {
    let mut cfg = SystemConfig::dircmp().with_seed(77);
    cfg.watchdog_cycles = WATCHDOG;
    cfg
}

/// Fault-free reference: completes coherently, and yields the per-index
/// message classes for targeting.
fn reference() -> (u64, Vec<VcClass>) {
    let mut cfg = config();
    cfg.mesh.record_injections = true;
    let r = System::run_workload(cfg, &workload()).expect("fault-free DirCMP completes");
    assert!(r.violations.is_empty());
    (r.cycles, r.injection_classes)
}

#[test]
fn dircmp_hangs_or_violates_on_any_early_request_loss() {
    let (fault_free_cycles, classes) = reference();
    // Every request lost in the first half of the run starves its core
    // forever: DirCMP has no timers, so only the watchdog ends the run.
    let requests: Vec<u64> = classes[..classes.len() / 2]
        .iter()
        .enumerate()
        .filter(|(_, c)| **c == VcClass::Request)
        .map(|(i, _)| i as u64)
        .collect();
    assert!(requests.len() > 10, "too few requests: {}", requests.len());

    let stride = requests.len().div_ceil(12).max(1);
    for &idx in requests.iter().step_by(stride) {
        let mut cfg = config();
        cfg.mesh.faults = FaultConfig::drop_exactly(vec![idx]);
        match System::run_workload(cfg, &workload()) {
            Err(RunError::Deadlock {
                at, blocked_cores, ..
            }) => {
                assert!(!blocked_cores.is_empty(), "drop {idx}: empty deadlock set");
                // Bounded detection: the watchdog fires within one window
                // of the last possible progress.
                assert!(
                    at <= fault_free_cycles + 2 * WATCHDOG,
                    "drop {idx}: watchdog fired unreasonably late (at {at})"
                );
            }
            Ok(r) if !r.violations.is_empty() => {} // violating is failing too
            Ok(r) => panic!(
                "drop {idx}: DirCMP survived a lost request ({} losses, {} cycles) — \
                 the negative control is broken",
                r.messages_lost, r.cycles
            ),
            Err(e) => panic!("drop {idx}: unexpected error: {e}"),
        }
    }
}

#[test]
fn dircmp_failures_dominate_a_uniform_single_drop_sweep() {
    let (_, classes) = reference();
    let total = classes.len() as u64;
    let stride = (total / 24).max(1) as usize;
    let (mut failed, mut swept) = (0u32, 0u32);
    for idx in (0..total).step_by(stride) {
        let mut cfg = config();
        cfg.mesh.faults = FaultConfig::drop_exactly(vec![idx]);
        swept += 1;
        match System::run_workload(cfg, &workload()) {
            Err(RunError::Deadlock { .. }) => failed += 1,
            Ok(r) if !r.violations.is_empty() => failed += 1,
            // A drop can be benign only when nothing ever waits on the
            // message again (very late in the run).
            Ok(r) => assert_eq!(r.messages_lost, 1, "drop {idx} never happened"),
            Err(e) => panic!("drop {idx}: unexpected error: {e}"),
        }
    }
    assert!(
        failed * 2 > swept,
        "DirCMP survived most single drops ({failed}/{swept} failed) — \
         the paper's motivating claim should dominate this sweep"
    );
}
