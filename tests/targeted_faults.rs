//! Targeted fault injection: losses aimed at a single message class must be
//! recovered by the matching Table 3 mechanism, and every class is covered.

use ftdircmp::{workloads, FaultConfig, System, SystemConfig, TimeoutKind, VcClass};

fn run_targeted(class: VcClass, rate: f64, seed: u64) -> ftdircmp::SimReport {
    let wl = workloads::WorkloadSpec::named("barnes")
        .expect("in suite")
        .generate(16, seed);
    let mut cfg = SystemConfig::ftdircmp().with_seed(seed);
    cfg.mesh.faults = FaultConfig::targeting(rate, vec![class]);
    cfg.watchdog_cycles = 4_000_000;
    let r = System::run_workload(cfg, &wl).unwrap_or_else(|e| panic!("{class}: {e}"));
    assert!(r.violations.is_empty(), "{class}: {:#?}", r.violations);
    assert_eq!(r.total_mem_ops as usize, wl.total_mem_ops(), "{class}");
    r
}

#[test]
fn every_message_class_is_recoverable_in_isolation() {
    for class in VcClass::ALL {
        let r = run_targeted(class, 8000.0, 42);
        if r.messages_lost > 0 {
            assert!(
                r.stats.total_timeouts() > 0,
                "{class}: {} losses but no detection fired",
                r.messages_lost
            );
        }
    }
}

#[test]
fn request_losses_engage_the_lost_request_timer() {
    let r = run_targeted(VcClass::Request, 20_000.0, 7);
    assert!(r.messages_lost > 0);
    assert!(r.stats.timeouts(TimeoutKind::LostRequest) > 0);
}

#[test]
fn unblock_losses_engage_the_lost_unblock_timer() {
    let r = run_targeted(VcClass::Unblock, 20_000.0, 7);
    assert!(r.messages_lost > 0);
    assert!(r.stats.timeouts(TimeoutKind::LostUnblock) > 0);
    assert!(r.stats.messages(ftdircmp::MsgType::UnblockPing) > 0);
}

#[test]
fn ownership_ack_losses_engage_the_ackbd_timer() {
    let r = run_targeted(VcClass::OwnershipAck, 20_000.0, 7);
    assert!(r.messages_lost > 0);
    assert!(
        r.stats.timeouts(TimeoutKind::LostAckBd) > 0,
        "lost AckO/AckBD must be re-driven by the lost-AckBD timer"
    );
}

#[test]
fn response_losses_are_recovered_by_reissue() {
    let r = run_targeted(VcClass::Response, 20_000.0, 7);
    assert!(r.messages_lost > 0);
    assert!(
        r.stats.reissues.get() > 0,
        "lost data responses force reissues"
    );
}

#[test]
fn even_ping_losses_are_harmless() {
    // Recovery-of-recovery: lost pings are themselves re-sent by the same
    // timers (with backoff).
    let r = run_targeted(VcClass::Ping, 50_000.0, 7);
    assert!(r.violations.is_empty());
}
