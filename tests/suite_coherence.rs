//! Full-suite integration: every named benchmark runs coherently under both
//! protocols, and under FtDirCMP across the paper's fault sweep.

use ftdircmp::{workloads, System, SystemConfig};

#[test]
fn every_benchmark_runs_coherently_under_both_protocols() {
    for spec in workloads::suite() {
        let wl = spec.generate(16, 5);
        for cfg in [SystemConfig::dircmp(), SystemConfig::ftdircmp()] {
            let protocol = cfg.protocol;
            let r = System::run_workload(cfg.with_seed(5), &wl)
                .unwrap_or_else(|e| panic!("{} under {protocol}: {e}", spec.name));
            assert!(
                r.violations.is_empty(),
                "{} under {}: {:#?}",
                spec.name,
                protocol,
                r.violations
            );
            assert_eq!(r.total_mem_ops as usize, wl.total_mem_ops());
            assert_eq!(r.residual_activity, 0, "{} left residue", spec.name);
        }
    }
}

#[test]
fn every_benchmark_survives_the_figure3_fault_sweep() {
    for spec in workloads::suite() {
        let wl = spec.generate(16, 9);
        for rate in [250.0, 2000.0] {
            let mut cfg = SystemConfig::ftdircmp().with_fault_rate(rate).with_seed(9);
            cfg.watchdog_cycles = 3_000_000;
            let r = System::run_workload(cfg, &wl)
                .unwrap_or_else(|e| panic!("{} at {rate}/M: {e}", spec.name));
            assert!(
                r.violations.is_empty(),
                "{} at {rate}/M: {:#?}",
                spec.name,
                r.violations
            );
            assert_eq!(r.total_mem_ops as usize, wl.total_mem_ops());
        }
    }
}

#[test]
fn fault_free_overhead_is_small_across_the_suite() {
    // Paper Figure 3, fault rate 0: FtDirCMP's execution time matches
    // DirCMP's within a few percent on every benchmark.
    let mut worst: f64 = 1.0;
    for spec in workloads::suite() {
        let wl = spec.generate(16, 13);
        let (base, ft) = ftdircmp::compare_protocols(&wl, 13).unwrap();
        let rel = ft.relative_execution_time(&base);
        assert!(
            (0.85..1.15).contains(&rel),
            "{}: fault-free overhead {rel}",
            spec.name
        );
        worst = worst.max(rel);
    }
    assert!(worst < 1.15, "worst fault-free overhead {worst}");
}

#[test]
fn message_overhead_comes_from_ownership_acks() {
    // Paper Figure 4: the entire overhead is the ownership-acknowledgment
    // category; other classes stay (nearly) identical.
    use ftdircmp::VcClass;
    for spec in workloads::suite().into_iter().take(4) {
        let wl = spec.generate(16, 17);
        let (base, ft) = ftdircmp::compare_protocols(&wl, 17).unwrap();
        let ownership = ft.stats.messages_by_class(VcClass::OwnershipAck);
        assert!(ownership > 0, "{}", spec.name);
        let added = ft.stats.total_messages() as i64 - base.stats.total_messages() as i64;
        // Ownership acks account for at least 80% of the added messages.
        assert!(
            ownership as i64 >= added * 8 / 10,
            "{}: {} added, {} ownership",
            spec.name,
            added,
            ownership
        );
        assert_eq!(
            ft.stats.messages_by_class(VcClass::Ping),
            0,
            "{}",
            spec.name
        );
    }
}

#[test]
fn unordered_network_extension_runs_the_suite() {
    // Experiment E11 substrate check: FtDirCMP on adaptive routing.
    for spec in workloads::suite().into_iter().take(3) {
        let wl = spec.generate(16, 23);
        let mut cfg = SystemConfig::ftdircmp()
            .with_adaptive_routing()
            .with_fault_rate(1000.0)
            .with_seed(23);
        cfg.watchdog_cycles = 3_000_000;
        let r = System::run_workload(cfg, &wl)
            .unwrap_or_else(|e| panic!("{} unordered: {e}", spec.name));
        assert!(
            r.violations.is_empty(),
            "{}: {:#?}",
            spec.name,
            r.violations
        );
    }
}
