//! # ftdircmp — a fault-tolerant directory coherence protocol for CMPs
//!
//! A complete reproduction of *"A fault-tolerant directory-based cache
//! coherence protocol for CMP architectures"* (Fernández-Pascual, García,
//! Acacio, Duato — DSN 2008): a simulated 16-tile chip multiprocessor
//! running either the baseline **DirCMP** MOESI directory protocol or the
//! paper's fault-tolerant **FtDirCMP** extension, on a 2D-mesh on-chip
//! network with transient-fault injection.
//!
//! ## What's in the box
//!
//! * [`SystemConfig`] — the paper's Table 4 architecture, fully
//!   configurable (protocol variant, cache geometry, mesh timing, fault
//!   rate, timeout values, serial-number width).
//! * [`System`] — builds and runs a workload, returning a [`SimReport`]
//!   with execution cycles, traffic by message type, timeout/reissue
//!   counters and invariant-checker results.
//! * [`workloads::suite`] — ten synthetic benchmarks reproducing the
//!   coherence event mixes of classic parallel applications.
//! * Fault injection ([`FaultConfig`]): isolated or bursty message losses
//!   at a configurable rate per million messages, as in the paper's
//!   Figure 3 sweep.
//!
//! ## Quick start
//!
//! ```
//! use ftdircmp::{System, SystemConfig, workloads};
//!
//! // Run the `fft` stand-in workload under FtDirCMP with a network that
//! // loses 250 messages per million.
//! let spec = workloads::WorkloadSpec::named("fft").expect("in suite");
//! let wl = spec.generate(16, 42);
//! let config = SystemConfig::ftdircmp().with_fault_rate(250.0);
//! let report = System::run_workload(config, &wl)?;
//!
//! assert!(report.violations.is_empty(), "coherence must hold under faults");
//! assert_eq!(report.total_mem_ops as usize, wl.total_mem_ops());
//! # Ok::<(), ftdircmp::RunError>(())
//! ```
//!
//! The same workload under the baseline [`SystemConfig::dircmp`] and a
//! faulty network deadlocks — that contrast is the paper's motivation; see
//! `examples/fault_injection.rs`.

pub use ftdircmp_core as core_protocol;

pub use ftdircmp_core::cache;
pub use ftdircmp_core::checker;
pub use ftdircmp_core::config::{FtConfig, ProtocolVariant, SystemConfig};
pub use ftdircmp_core::hardware;
pub use ftdircmp_core::ids::{Addr, LineAddr, NodeId, SharerSet};
pub use ftdircmp_core::msc;
pub use ftdircmp_core::msg::{Message, MsgType};
pub use ftdircmp_core::proto::TimeoutKind;
pub use ftdircmp_core::stats::ProtocolStats;
pub use ftdircmp_core::system::{RunError, SimReport, System};
pub use ftdircmp_core::trace::{CoreTrace, TraceOp, Workload};
pub use ftdircmp_core::trace_io;
pub use ftdircmp_core::tracelog;
pub use ftdircmp_core::{LineData, SerialNum};
pub use ftdircmp_noc::{FaultConfig, MeshConfig, NocStats, RoutingMode, VcClass};
pub use ftdircmp_sim::{Cycle, DetRng};

/// Synthetic benchmark suite (re-export of [`ftdircmp_workloads`]).
pub mod workloads {
    pub use ftdircmp_workloads::{suite, SharingPattern, WorkloadSpec};
}

/// Runs one workload under both protocols and returns
/// `(dircmp, ftdircmp)` reports — the comparison at the heart of the
/// paper's evaluation. Both runs are fault-free.
///
/// # Errors
///
/// Propagates [`RunError`] from either run (neither should fail on a
/// fault-free network).
///
/// # Example
///
/// ```
/// let wl = ftdircmp::workloads::WorkloadSpec::named("water-sp")
///     .unwrap()
///     .generate(16, 1);
/// let (base, ft) = ftdircmp::compare_protocols(&wl, 1)?;
/// // Fault-free execution-time overhead is minimal (paper Figure 3).
/// let rel = ft.relative_execution_time(&base);
/// assert!(rel < 1.2);
/// # Ok::<(), ftdircmp::RunError>(())
/// ```
pub fn compare_protocols(
    workload: &Workload,
    seed: u64,
) -> Result<(SimReport, SimReport), RunError> {
    let base = System::run_workload(SystemConfig::dircmp().with_seed(seed), workload)?;
    let ft = System::run_workload(SystemConfig::ftdircmp().with_seed(seed), workload)?;
    Ok((base, ft))
}
