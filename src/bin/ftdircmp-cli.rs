//! `ftdircmp-cli` — command-line front end to the simulator.
//!
//! ```text
//! ftdircmp-cli [OPTIONS]
//!
//! Options:
//!   --bench NAME          benchmark from the suite (default: barnes; `list` to enumerate)
//!   --protocol ft|dir     protocol variant (default: ft)
//!   --fault-rate R        lost messages per million (default: 0)
//!   --burst P             burst-continue probability for losses (default: 0 = isolated)
//!   --seed N              master seed (default: 42)
//!   --adaptive            use randomized adaptive routing (unordered network)
//!   --no-migratory        disable the migratory-sharing optimization
//!   --timeout N           base for all detection timeouts, cycles
//!   --serial-bits N       request serial number width
//!   --mesh WxH            mesh dimensions (default 4x4; tiles scale along)
//!   --mlp N               outstanding misses per core (default 1 = blocking)
//!   --ops N               operations per core (default: benchmark-specific)
//!   --trace-line HEX      print every event touching the given line(s)
//!   --dump-trace FILE     write the generated workload trace to FILE and exit
//!   --trace-file FILE     run a workload from a trace file instead of --bench
//!   --summary-only        print only the one-line result
//! ```
//!
//! Example:
//!
//! ```text
//! cargo run --release --bin ftdircmp-cli -- --bench ocean --fault-rate 2000
//! ```

use ftdircmp::{workloads, FaultConfig, System, SystemConfig};

struct Args {
    flags: Vec<String>,
}

impl Args {
    fn new() -> Self {
        Args {
            flags: std::env::args().skip(1).collect(),
        }
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.flags.get(i + 1))
            .map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for {name}")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|a| a == name)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::new();

    let bench = args.value("--bench").unwrap_or("barnes").to_string();
    if bench == "list" {
        println!("available benchmarks:");
        for s in workloads::suite() {
            println!("  {}", s.name);
        }
        return Ok(());
    }
    let seed: u64 = args.parsed("--seed", 42)?;
    let mut config = match args.value("--protocol").unwrap_or("ft") {
        "ft" | "ftdircmp" => SystemConfig::ftdircmp(),
        "dir" | "dircmp" => SystemConfig::dircmp(),
        other => return Err(format!("unknown protocol {other:?} (ft|dir)").into()),
    }
    .with_seed(seed);

    let rate: f64 = args.parsed("--fault-rate", 0.0)?;
    let burst: f64 = args.parsed("--burst", 0.0)?;
    if rate > 0.0 {
        config.mesh.faults = if burst > 0.0 {
            FaultConfig::bursts(rate, burst, 16)
        } else {
            FaultConfig::per_million(rate)
        };
        config.watchdog_cycles = 5_000_000;
    }
    if args.has("--adaptive") {
        config = config.with_adaptive_routing();
    }
    if args.has("--no-migratory") {
        config.migratory_sharing = false;
    }
    if let Some(t) = args.value("--timeout") {
        let t: u64 = t.parse()?;
        config.ft.lost_request_timeout = t;
        config.ft.lost_unblock_timeout = t;
        config.ft.lost_ackbd_timeout = t * 2 / 3;
        config.ft.lost_data_timeout = t * 2;
    }
    if let Some(b) = args.value("--serial-bits") {
        config.ft.serial_bits = b.parse()?;
    }
    if let Some(mlp) = args.value("--mlp") {
        config.max_outstanding_misses = mlp.parse()?;
    }
    if let Some(mesh) = args.value("--mesh") {
        let (w, h) = mesh
            .split_once('x')
            .ok_or("expected --mesh WxH, e.g. 4x4")?;
        config = config.with_mesh(w.parse()?, h.parse()?);
    }
    if let Some(lines) = args.value("--trace-line") {
        std::env::set_var("FTDIRCMP_TRACE_LINE", lines);
    }

    let wl = if let Some(path) = args.value("--trace-file") {
        ftdircmp::core_protocol::trace_io::read_file(path)?
    } else {
        let mut spec = workloads::WorkloadSpec::named(&bench)
            .ok_or_else(|| format!("unknown benchmark {bench:?} (try --bench list)"))?;
        if let Some(ops) = args.value("--ops") {
            spec.ops_per_core = ops.parse()?;
        }
        spec.generate(config.tiles, seed)
    };
    if let Some(path) = args.value("--dump-trace") {
        ftdircmp::core_protocol::trace_io::write_file(&wl, path)?;
        println!(
            "wrote {} ({} cores, {} memory ops)",
            path,
            wl.traces.len(),
            wl.total_mem_ops()
        );
        return Ok(());
    }
    let report = System::run_workload(config, &wl)?;

    if args.has("--summary-only") {
        println!(
            "{} {} cycles={} msgs={} bytes={} lost={} violations={}",
            report.workload,
            report.protocol,
            report.cycles,
            report.stats.total_messages(),
            report.stats.total_bytes(),
            report.messages_lost,
            report.violations.len()
        );
    } else {
        print!("{}", report.render_summary());
    }
    if !report.violations.is_empty() {
        return Err("coherence violations detected".into());
    }
    Ok(())
}
