//! Quickstart: run one benchmark under both protocols and print the
//! comparison the paper's evaluation is built on.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark] [seed]
//! ```

use ftdircmp::{compare_protocols, workloads};
use ftdircmp_stats::table::{signed_percent, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "barnes".to_string());
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(42);

    let spec = workloads::WorkloadSpec::named(&bench).ok_or_else(|| {
        let names: Vec<&str> = workloads::suite().iter().map(|s| s.name).collect();
        format!("unknown benchmark {bench:?}; try one of {names:?}")
    })?;
    let wl = spec.generate(16, seed);
    println!(
        "benchmark {} — {} memory operations across 16 cores (seed {seed})\n",
        spec.name,
        wl.total_mem_ops()
    );

    let (base, ft) = compare_protocols(&wl, seed)?;
    assert!(base.violations.is_empty() && ft.violations.is_empty());

    let mut t = Table::with_columns(&["metric", "DirCMP", "FtDirCMP", "overhead"]);
    t.row(vec![
        "execution cycles".into(),
        base.cycles.to_string(),
        ft.cycles.to_string(),
        signed_percent(ft.relative_execution_time(&base) - 1.0),
    ]);
    t.row(vec![
        "network messages".into(),
        base.stats.total_messages().to_string(),
        ft.stats.total_messages().to_string(),
        signed_percent(ft.message_overhead(&base)),
    ]);
    t.row(vec![
        "network bytes".into(),
        base.stats.total_bytes().to_string(),
        ft.stats.total_bytes().to_string(),
        signed_percent(ft.byte_overhead(&base)),
    ]);
    t.row(vec![
        "L1 miss latency (mean)".into(),
        format!("{:.0}", base.stats.miss_latency.mean()),
        format!("{:.0}", ft.stats.miss_latency.mean()),
        String::new(),
    ]);
    println!("{}", t.render());

    println!(
        "FtDirCMP fault-tolerance machinery (fault-free run): {} AckO, {} AckBD, {} timeouts fired",
        ft.stats.messages(ftdircmp::MsgType::AckO),
        ft.stats.messages(ftdircmp::MsgType::AckBD),
        ft.stats.total_timeouts(),
    );
    println!(
        "\nBoth runs completed coherently; see examples/fault_injection.rs for faulty networks."
    );
    Ok(())
}
