//! Timeout tuning: the trade-off discussed in the paper's §4.2.
//!
//! Shorter detection timeouts recover from faults sooner (less degradation
//! when faults happen) but fire spuriously under congestion (false
//! positives that cost traffic in the fault-free case). This example sweeps
//! the lost-request timeout under a fixed fault rate and prints both sides
//! of the trade-off.
//!
//! ```text
//! cargo run --release --example timeout_tuning [fault_rate_per_million]
//! ```

use ftdircmp::{workloads, System, SystemConfig};
use ftdircmp_stats::table::{times, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1000.0);
    let wl = workloads::WorkloadSpec::named("unstructured")
        .expect("in suite")
        .generate(16, 11);

    let baseline = System::run_workload(SystemConfig::ftdircmp(), &wl)?;

    let mut t = Table::with_columns(&[
        "lost-request timeout",
        "timeouts fired",
        "false positives",
        "stale discards",
        "relative exec. time",
    ]);
    for timeout in [300u64, 600, 1200, 2400, 4800, 9600] {
        let mut cfg = SystemConfig::ftdircmp().with_fault_rate(rate);
        cfg.ft.lost_request_timeout = timeout;
        cfg.ft.lost_unblock_timeout = timeout;
        cfg.ft.lost_ackbd_timeout = timeout * 2 / 3;
        cfg.watchdog_cycles = 3_000_000;
        let r = System::run_workload(cfg, &wl)?;
        assert!(r.violations.is_empty());
        t.row(vec![
            format!("{timeout} cycles"),
            r.stats.total_timeouts().to_string(),
            r.stats.false_positives.get().to_string(),
            r.stats.stale_discards.get().to_string(),
            times(r.relative_execution_time(&baseline)),
        ]);
    }
    println!(
        "benchmark unstructured at {rate:.0} lost msgs/million (vs fault-free run):\n{}",
        t.render()
    );
    println!("Shorter timeouts detect faults faster but fire spuriously (false");
    println!("positives); longer ones leave cores blocked for longer per fault.");
    Ok(())
}
