//! Traffic breakdown: where FtDirCMP's network overhead comes from.
//!
//! Reproduces the insight of the paper's Figure 4: the overhead consists
//! almost entirely of the ownership acknowledgments (`AckO`/`AckBD`), is
//! visible in message counts, and mostly vanishes when measured in bytes
//! (the acks are small control messages).
//!
//! ```text
//! cargo run --release --example traffic_categories [benchmark]
//! ```

use ftdircmp::{compare_protocols, workloads, MsgType, VcClass};
use ftdircmp_stats::table::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "fft".to_string());
    let spec = workloads::WorkloadSpec::named(&bench)
        .ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
    let wl = spec.generate(16, 21);
    let (base, ft) = compare_protocols(&wl, 21)?;

    println!(
        "benchmark {}: traffic by message class (fault-free)\n",
        spec.name
    );
    let mut t = Table::with_columns(&[
        "class",
        "DirCMP msgs",
        "FtDirCMP msgs",
        "DirCMP bytes",
        "FtDirCMP bytes",
    ]);
    for class in VcClass::ALL {
        t.row(vec![
            class.label().into(),
            base.stats.messages_by_class(class).to_string(),
            ft.stats.messages_by_class(class).to_string(),
            base.stats.bytes_by_class(class).to_string(),
            ft.stats.bytes_by_class(class).to_string(),
        ]);
    }
    t.row(vec![
        "TOTAL".into(),
        base.stats.total_messages().to_string(),
        ft.stats.total_messages().to_string(),
        base.stats.total_bytes().to_string(),
        ft.stats.total_bytes().to_string(),
    ]);
    println!("{}", t.render());

    println!("per-type detail of the FtDirCMP-only traffic:");
    for mtype in MsgType::ALL.iter().filter(|m| m.is_ft_only()) {
        let n = ft.stats.messages(*mtype);
        if n > 0 {
            println!(
                "  {:<14} {:>8} messages — {}",
                mtype.name(),
                n,
                mtype.description()
            );
        }
    }
    println!(
        "\nmessage overhead: {:+.1}%   byte overhead: {:+.1}%   (paper: ≈ +30% / ≈ +10%)",
        100.0 * ft.message_overhead(&base),
        100.0 * ft.byte_overhead(&base)
    );
    Ok(())
}
