//! Fault injection: the paper's headline demonstration.
//!
//! DirCMP deadlocks when the network loses even a handful of messages;
//! FtDirCMP finishes the same workload coherently across the whole fault
//! sweep of the paper's Figure 3, and far beyond it.
//!
//! ```text
//! cargo run --release --example fault_injection [benchmark]
//! ```

use ftdircmp::{workloads, RunError, System, SystemConfig};
use ftdircmp_stats::table::{times, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ocean".to_string());
    let spec = workloads::WorkloadSpec::named(&bench)
        .ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
    let wl = spec.generate(16, 7);

    // 1. The motivation (paper §3): DirCMP + lossy network = deadlock.
    let mut doomed = SystemConfig::dircmp().with_fault_rate(2000.0);
    doomed.watchdog_cycles = 150_000;
    match System::run_workload(doomed, &wl) {
        Err(RunError::Deadlock {
            at, blocked_cores, ..
        }) => println!(
            "DirCMP at 2000 lost msgs/million: DEADLOCK at cycle {at} with {} cores blocked\n",
            blocked_cores.len()
        ),
        Ok(r) => println!(
            "DirCMP survived only because no message happened to be lost ({} losses)\n",
            r.messages_lost
        ),
        Err(e) => return Err(e.into()),
    }

    // 2. FtDirCMP across the fault sweep (Figure 3 x-axis).
    let baseline = System::run_workload(SystemConfig::ftdircmp(), &wl)?;
    let mut t = Table::with_columns(&[
        "lost msgs / million",
        "messages lost",
        "timeouts fired",
        "reissues",
        "relative exec. time",
    ]);
    for rate in [0.0, 125.0, 250.0, 500.0, 1000.0, 2000.0, 10_000.0] {
        let mut cfg = SystemConfig::ftdircmp().with_fault_rate(rate);
        cfg.watchdog_cycles = 2_000_000;
        let r = System::run_workload(cfg, &wl)?;
        assert!(r.violations.is_empty(), "coherence violated at rate {rate}");
        t.row(vec![
            format!("{rate:.0}"),
            r.messages_lost.to_string(),
            r.stats.total_timeouts().to_string(),
            r.stats.reissues.get().to_string(),
            times(r.relative_execution_time(&baseline)),
        ]);
    }
    println!("FtDirCMP on benchmark {}:\n{}", spec.name, t.render());
    println!("Every faulty run completed with zero coherence/data-integrity violations.");
    Ok(())
}
