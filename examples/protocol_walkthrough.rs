//! Protocol walkthrough: the paper's Figure 1 transaction, rendered as a
//! message-sequence chart.
//!
//! Reproduces the cache-to-cache ownership transfer of Figure 1 — L1b holds
//! a modified line, L1a requests write access — under both protocols, and
//! renders every message as a sequence diagram, showing the FtDirCMP
//! additions (backup state, `AckO`/`AckBD` handshake) and that they stay
//! off the critical path of the miss.
//!
//! ```text
//! cargo run --release --example protocol_walkthrough
//! ```

use ftdircmp::core_protocol::msc;
use ftdircmp::core_protocol::tracelog::CollectSink;
use ftdircmp::{
    Addr, CoreTrace, LineAddr, ProtocolVariant, System, SystemConfig, TraceOp, Workload,
};

fn run(variant: ProtocolVariant) -> Result<(), Box<dyn std::error::Error>> {
    println!("==== {variant} ====\n");
    // Line 0x40 (line index 1) is homed at L2 bank 1.
    // Core 5 plays L1b: makes the line Modified, then sits idle.
    // Core 9 plays L1a: requests write access afterwards.
    let l1b = CoreTrace::new(vec![TraceOp::Store(Addr(0x40))]);
    let l1a = CoreTrace::new(vec![TraceOp::Think(3000), TraceOp::Store(Addr(0x40))]);
    let mut traces = vec![CoreTrace::default(); 16];
    traces[5] = l1b;
    traces[9] = l1a;
    let wl = Workload::new("figure-1", traces);

    let config = match variant {
        ProtocolVariant::DirCmp => SystemConfig::dircmp(),
        ProtocolVariant::FtDirCmp => SystemConfig::ftdircmp(),
    };
    let (sink, handle) = CollectSink::new(100_000);
    let mut sys = System::new(config, &wl)?;
    sys.set_trace_sink(Box::new(sink));
    let report = sys.run()?;
    assert!(report.violations.is_empty());

    println!("{}", msc::render(&handle.take(), LineAddr(1)));
    use ftdircmp::MsgType;
    println!(
        "messages: GetX={} FwdGetX={} DataEx={} UnblockEx={} AckO={} AckBD={}",
        report.stats.messages(MsgType::GetX),
        report.stats.messages(MsgType::FwdGetX),
        report.stats.messages(MsgType::DataEx),
        report.stats.messages(MsgType::UnblockEx),
        report.stats.messages(MsgType::AckO),
        report.stats.messages(MsgType::AckBD),
    );
    println!("execution time: {} cycles\n", report.cycles);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 1: cache-to-cache write miss with ownership transfer.\n");
    println!("Under DirCMP the owner invalidates itself when it sends the data.");
    println!("Under FtDirCMP it keeps a backup until the AckO arrives, and the");
    println!("new owner stays in a blocked state (Mb) until the AckBD — note the");
    println!("identical GetX→FwdGetX→DataEx→UnblockEx critical path, with the");
    println!("AckO/AckBD pair added off to the side. Rows marked !<timer> are");
    println!("scheduled timer checks firing after the transaction completed —");
    println!("stale generations, no action taken.\n");
    run(ProtocolVariant::DirCmp)?;
    run(ProtocolVariant::FtDirCmp)?;
    Ok(())
}
