//! Library tour: build a custom workload, archive it as a trace file, run
//! it with structured tracing attached, and render the message flow for the
//! hottest line as a sequence chart.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use std::collections::HashMap;

use ftdircmp::core_protocol::tracelog::{CollectSink, TraceEventKind};
use ftdircmp::core_protocol::{msc, trace_io};
use ftdircmp::{Addr, CoreTrace, LineAddr, System, SystemConfig, TraceOp, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Hand-build a workload: four cores circulate a token line (true
    //    migratory sharing) while each also streams through private data.
    let token = Addr(0x1000);
    let mut traces = Vec::new();
    for core in 0..4u64 {
        let mut ops = vec![TraceOp::Think(core * 120)];
        for round in 0..6 {
            // Grab the token, update it, release.
            ops.push(TraceOp::Load(token));
            ops.push(TraceOp::Store(token));
            // Work on private data in between.
            for i in 0..4 {
                ops.push(TraceOp::Load(Addr(
                    0x100_000 + core * 0x1000 + (round * 4 + i) * 64,
                )));
            }
            ops.push(TraceOp::Think(300));
        }
        traces.push(CoreTrace::new(ops));
    }
    let wl = Workload::new("token-ring", traces);

    // 2. Archive it: the text format is stable and human-editable.
    let path = std::env::temp_dir().join("token-ring.trace");
    trace_io::write_file(&wl, &path)?;
    let reloaded = trace_io::read_file(&path)?;
    assert_eq!(reloaded, wl);
    println!(
        "trace archived to {} and reloaded identically\n",
        path.display()
    );

    // 3. Run it under FtDirCMP with a collector attached.
    let (sink, handle) = CollectSink::new(1_000_000);
    let mut sys = System::new(SystemConfig::ftdircmp(), &reloaded)?;
    sys.set_trace_sink(Box::new(sink));
    let report = sys.run()?;
    assert!(report.violations.is_empty());

    // 4. Find the hottest line from the event stream and chart it.
    let events = handle.take();
    let mut per_line: HashMap<LineAddr, usize> = HashMap::new();
    for e in &events {
        if let (Some(line), TraceEventKind::Delivered(_)) = (e.line(), &e.kind) {
            *per_line.entry(line).or_default() += 1;
        }
    }
    let (hottest, n) = per_line
        .iter()
        .max_by_key(|(_, n)| **n)
        .map(|(l, n)| (*l, *n))
        .expect("traffic exists");
    println!(
        "hottest line: {hottest} with {n} messages (the token, line {:#x})\n",
        token.0 / 64
    );
    let chart = msc::render(&events, hottest);
    // The full chart is long; show the opening exchanges.
    for line in chart.lines().take(24) {
        println!("{line}");
    }
    println!("...\n");

    // 5. The migratory optimization converted reads of the token into
    //    exclusive grants, so each load+store pair costs one transaction.
    println!(
        "migratory grants: {} (token handoffs accelerated)\n{}",
        report.stats.migratory_grants.get(),
        report
            .render_summary()
            .lines()
            .take(5)
            .collect::<Vec<_>>()
            .join("\n")
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
