#!/usr/bin/env bash
# Regenerates every table, figure, ablation and extension of the paper's
# evaluation into results/ (see EXPERIMENTS.md for the expected shapes).
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-3}"
mkdir -p results

run() {
    local bin="$1"
    echo "== $bin (seeds=$SEEDS) =="
    cargo run --release -q -p ftdircmp-bench --bin "$bin" -- --seeds "$SEEDS" \
        | tee "results/$bin.txt"
    echo
}

echo "== tables (paper Tables 1-4) =="
cargo run --release -q -p ftdircmp-bench --bin tables | tee results/tables.txt
echo

run fig3_execution_time
run fig4_network_overhead
run ablation_timeouts
run ablation_serial_bits
run ablation_mesh_scaling
run ablation_fault_targets
run ablation_migratory
run ablation_mlp
run ext_unordered_network
run ext_checkpoint_comparison

echo "== hw_overhead (paper §3.6) =="
cargo run --release -q -p ftdircmp-bench --bin hw_overhead | tee results/hw_overhead.txt

echo
echo "All results written to results/."
