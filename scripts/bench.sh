#!/usr/bin/env bash
# Simulator performance benchmarks:
#   1. criterion microbenches (events/sec of the engine itself);
#   2. a fixed fig3 campaign: classic sequential reference (--jobs 1),
#      checkpoint-fork sequential, and checkpoint-fork parallel, emitting
#      results/BENCH_campaign.json with wall time and throughput;
#   3. a correlated-fault campaign (link flaps + region bursts, the
#      fault_domains bin) emitting results/BENCH_faults.json;
#   4. trajectory datapoints (fig3 + fault-domain cells) appended to
#      results/BENCH_trajectory.jsonl.
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-3}"
# Default to all CPUs, but at least 2 so the threaded path is exercised
# even on a single-core host (expect the >=2x speedup on >=4 cores).
cpus=$(nproc 2>/dev/null || echo 4)
JOBS="${JOBS:-$(( cpus > 2 ? cpus : 2 ))}"
mkdir -p results

# Seconds since the epoch, sub-second where the shell provides it.
# `date +%s.%N` is GNU-only (BSD date prints a literal "N"); bash 5's
# $EPOCHREALTIME is portable across platforms, with whole seconds as the
# fallback. Some locales render EPOCHREALTIME with a decimal comma.
now_s() {
    if [ -n "${EPOCHREALTIME:-}" ]; then
        echo "${EPOCHREALTIME/,/.}"
    else
        date +%s
    fi
}

echo "== criterion: simulator microbenches =="
cargo bench -q -p ftdircmp-bench --bench simulator

echo
echo "== fig3 campaign, classic sequential reference (--jobs 1, seeds=$SEEDS) =="
cargo build --release -q -p ftdircmp-bench --bin fig3_execution_time
cargo build --release -q -p ftdircmp-serve --bin ftdircmp-serve
t0=$(now_s)
./target/release/fig3_execution_time --seeds "$SEEDS" --jobs 1 \
    --bench-json results/BENCH_campaign_seq.json > results/fig3_seq.txt
t1=$(now_s)
seq_wall=$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b - a}')
echo "classic sequential wall: ${seq_wall}s"

echo
echo "== fig3 campaign, checkpoint-fork sequential (--jobs 1) =="
./target/release/fig3_execution_time --seeds "$SEEDS" --jobs 1 --warmup-checkpoint \
    --bench-json results/BENCH_campaign_ckpt_seq.json > results/fig3_ckpt_seq.txt
echo
echo "== fig3 campaign, checkpoint-fork parallel (--jobs $JOBS) =="
t0=$(now_s)
./target/release/fig3_execution_time --seeds "$SEEDS" --jobs "$JOBS" --warmup-checkpoint \
    --bench-json results/BENCH_campaign.json > results/fig3_par.txt
t1=$(now_s)
par_wall=$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b - a}')
echo "checkpoint-fork parallel wall: ${par_wall}s"

# Byte-compare checkpoint-fork output across --jobs, ignoring only the line
# that names the (deliberately different) json destination. Checkpoint mode
# gates faults behind the shared warmup, so it is compared against its own
# sequential reference, not the classic run (DESIGN.md §8).
if ! cmp -s <(grep -v '^(wrote ' results/fig3_ckpt_seq.txt) \
            <(grep -v '^(wrote ' results/fig3_par.txt); then
    echo "ERROR: checkpoint-fork parallel output differs from its sequential reference" >&2
    diff results/fig3_ckpt_seq.txt results/fig3_par.txt >&2 || true
    exit 1
fi
echo "checkpoint-fork parallel output is byte-identical to sequential."

speedup=$(awk -v s="$seq_wall" -v p="$par_wall" 'BEGIN{printf "%.2f", s / p}')
echo
echo "campaign speedup over classic sequential at $JOBS jobs: ${speedup}x"
echo "throughput summary (checkpoint-fork parallel run):"
cat results/BENCH_campaign.json

echo
echo "== correlated-fault campaign (flap durations x burst radii, --jobs $JOBS) =="
cargo build --release -q -p ftdircmp-bench --bin fault_domains
./target/release/fault_domains --seeds "$SEEDS" --jobs "$JOBS" \
    --bench-json results/BENCH_faults.json > results/fault_domains.txt
echo "throughput summary (correlated-fault run):"
cat results/BENCH_faults.json

# Append trajectory datapoints (one per campaign cell) so perf over time is
# greppable from the repo. Each line is validated as JSON first (an empty
# sed extraction would otherwise poison the file), and the append goes
# through a tmp file + mv so a crash mid-write can never leave a torn
# trailing line.
git_sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
date_iso=$(date -u +%Y-%m-%dT%H:%M:%SZ)
traj_line() { # $1 = campaign label, $2 = bench json file
    local eps cps
    eps=$(sed -n 's/.*"events_per_second": \([0-9]*\).*/\1/p' "$2")
    cps=$(sed -n 's/.*"simulated_cycles_per_second": \([0-9]*\).*/\1/p' "$2")
    printf '{"git_sha": "%s", "date": "%s", "campaign": "%s", "jobs": %s, "events_per_second": %s, "cycles_per_second": %s}' \
        "$git_sha" "$date_iso" "$1" "$JOBS" "$eps" "$cps"
}
traj=results/BENCH_trajectory.jsonl
tmp=$(mktemp results/.BENCH_trajectory.XXXXXX)
if [ -f "$traj" ]; then cat "$traj" > "$tmp"; fi
for cell in "fig3:results/BENCH_campaign.json" "fault_domains:results/BENCH_faults.json"; do
    line=$(traj_line "${cell%%:*}" "${cell#*:}")
    if ! printf '%s\n' "$line" | ./target/release/ftdircmp-serve json-check; then
        echo "ERROR: refusing to append malformed trajectory line: $line" >&2
        rm -f "$tmp"
        exit 1
    fi
    printf '%s\n' "$line" >> "$tmp"
done
mv "$tmp" "$traj"
echo "appended fig3 + fault_domains datapoints to results/BENCH_trajectory.jsonl"
