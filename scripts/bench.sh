#!/usr/bin/env bash
# Simulator performance benchmarks:
#   1. criterion microbenches (events/sec of the engine itself);
#   2. a fixed fig3 campaign: classic sequential reference (--jobs 1),
#      checkpoint-fork sequential, and checkpoint-fork parallel, emitting
#      results/BENCH_campaign.json with wall time and throughput;
#   3. a trajectory datapoint appended to results/BENCH_trajectory.jsonl.
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-3}"
# Default to all CPUs, but at least 2 so the threaded path is exercised
# even on a single-core host (expect the >=2x speedup on >=4 cores).
cpus=$(nproc 2>/dev/null || echo 4)
JOBS="${JOBS:-$(( cpus > 2 ? cpus : 2 ))}"
mkdir -p results

echo "== criterion: simulator microbenches =="
cargo bench -q -p ftdircmp-bench --bench simulator

echo
echo "== fig3 campaign, classic sequential reference (--jobs 1, seeds=$SEEDS) =="
cargo build --release -q -p ftdircmp-bench --bin fig3_execution_time
t0=$(date +%s.%N)
./target/release/fig3_execution_time --seeds "$SEEDS" --jobs 1 \
    --bench-json results/BENCH_campaign_seq.json > results/fig3_seq.txt
t1=$(date +%s.%N)
seq_wall=$(awk "BEGIN{printf \"%.3f\", $t1 - $t0}")
echo "classic sequential wall: ${seq_wall}s"

echo
echo "== fig3 campaign, checkpoint-fork sequential (--jobs 1) =="
./target/release/fig3_execution_time --seeds "$SEEDS" --jobs 1 --warmup-checkpoint \
    --bench-json results/BENCH_campaign_ckpt_seq.json > results/fig3_ckpt_seq.txt
echo
echo "== fig3 campaign, checkpoint-fork parallel (--jobs $JOBS) =="
t0=$(date +%s.%N)
./target/release/fig3_execution_time --seeds "$SEEDS" --jobs "$JOBS" --warmup-checkpoint \
    --bench-json results/BENCH_campaign.json > results/fig3_par.txt
t1=$(date +%s.%N)
par_wall=$(awk "BEGIN{printf \"%.3f\", $t1 - $t0}")
echo "checkpoint-fork parallel wall: ${par_wall}s"

# Byte-compare checkpoint-fork output across --jobs, ignoring only the line
# that names the (deliberately different) json destination. Checkpoint mode
# gates faults behind the shared warmup, so it is compared against its own
# sequential reference, not the classic run (DESIGN.md §8).
if ! cmp -s <(grep -v '^(wrote ' results/fig3_ckpt_seq.txt) \
            <(grep -v '^(wrote ' results/fig3_par.txt); then
    echo "ERROR: checkpoint-fork parallel output differs from its sequential reference" >&2
    diff results/fig3_ckpt_seq.txt results/fig3_par.txt >&2 || true
    exit 1
fi
echo "checkpoint-fork parallel output is byte-identical to sequential."

speedup=$(awk "BEGIN{printf \"%.2f\", $seq_wall / $par_wall}")
echo
echo "campaign speedup over classic sequential at $JOBS jobs: ${speedup}x"
echo "throughput summary (checkpoint-fork parallel run):"
cat results/BENCH_campaign.json

# Append a trajectory datapoint so perf over time is greppable from the repo.
git_sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
date_iso=$(date -u +%Y-%m-%dT%H:%M:%SZ)
eps=$(sed -n 's/.*"events_per_second": \([0-9]*\).*/\1/p' results/BENCH_campaign.json)
cps=$(sed -n 's/.*"simulated_cycles_per_second": \([0-9]*\).*/\1/p' results/BENCH_campaign.json)
printf '{"git_sha": "%s", "date": "%s", "jobs": %s, "events_per_second": %s, "cycles_per_second": %s}\n' \
    "$git_sha" "$date_iso" "$JOBS" "$eps" "$cps" >> results/BENCH_trajectory.jsonl
echo "appended datapoint to results/BENCH_trajectory.jsonl"
