#!/usr/bin/env bash
# Simulator performance benchmarks:
#   1. criterion microbenches (events/sec of the engine itself);
#   2. a fixed fig3 campaign, run sequentially (--jobs 1) and in parallel,
#      emitting results/BENCH_campaign.json with wall time and throughput.
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-3}"
# Default to all CPUs, but at least 2 so the threaded path is exercised
# even on a single-core host (expect the >=2x speedup on >=4 cores).
cpus=$(nproc 2>/dev/null || echo 4)
JOBS="${JOBS:-$(( cpus > 2 ? cpus : 2 ))}"
mkdir -p results

echo "== criterion: simulator microbenches =="
cargo bench -q -p ftdircmp-bench --bench simulator

echo
echo "== fig3 campaign, sequential reference (--jobs 1, seeds=$SEEDS) =="
cargo build --release -q -p ftdircmp-bench --bin fig3_execution_time
t0=$(date +%s.%N)
./target/release/fig3_execution_time --seeds "$SEEDS" --jobs 1 \
    --bench-json results/BENCH_campaign_seq.json > results/fig3_seq.txt
t1=$(date +%s.%N)
seq_wall=$(awk "BEGIN{printf \"%.3f\", $t1 - $t0}")
echo "sequential wall: ${seq_wall}s"

echo
echo "== fig3 campaign, parallel (--jobs $JOBS, seeds=$SEEDS) =="
t0=$(date +%s.%N)
./target/release/fig3_execution_time --seeds "$SEEDS" --jobs "$JOBS" \
    --bench-json results/BENCH_campaign.json > results/fig3_par.txt
t1=$(date +%s.%N)
par_wall=$(awk "BEGIN{printf \"%.3f\", $t1 - $t0}")
echo "parallel wall:   ${par_wall}s"

# Byte-compare the table output, ignoring only the line that names the
# (deliberately different) json destination.
if ! cmp -s <(grep -v '^(wrote ' results/fig3_seq.txt) \
            <(grep -v '^(wrote ' results/fig3_par.txt); then
    echo "ERROR: parallel output differs from sequential output" >&2
    diff results/fig3_seq.txt results/fig3_par.txt >&2 || true
    exit 1
fi
echo "parallel output is byte-identical to sequential."

speedup=$(awk "BEGIN{printf \"%.2f\", $seq_wall / $par_wall}")
echo
echo "campaign speedup at $JOBS jobs: ${speedup}x"
echo "throughput summary (parallel run):"
cat results/BENCH_campaign.json
