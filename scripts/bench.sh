#!/usr/bin/env bash
# Simulator performance benchmarks:
#   1. criterion microbenches (events/sec of the engine itself);
#   2. a fixed fig3 campaign: classic sequential reference (--jobs 1),
#      checkpoint-fork sequential, and checkpoint-fork parallel, emitting
#      results/BENCH_campaign.json with wall time and throughput;
#   3. a trajectory datapoint appended to results/BENCH_trajectory.jsonl.
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-3}"
# Default to all CPUs, but at least 2 so the threaded path is exercised
# even on a single-core host (expect the >=2x speedup on >=4 cores).
cpus=$(nproc 2>/dev/null || echo 4)
JOBS="${JOBS:-$(( cpus > 2 ? cpus : 2 ))}"
mkdir -p results

# Seconds since the epoch, sub-second where the shell provides it.
# `date +%s.%N` is GNU-only (BSD date prints a literal "N"); bash 5's
# $EPOCHREALTIME is portable across platforms, with whole seconds as the
# fallback. Some locales render EPOCHREALTIME with a decimal comma.
now_s() {
    if [ -n "${EPOCHREALTIME:-}" ]; then
        echo "${EPOCHREALTIME/,/.}"
    else
        date +%s
    fi
}

echo "== criterion: simulator microbenches =="
cargo bench -q -p ftdircmp-bench --bench simulator

echo
echo "== fig3 campaign, classic sequential reference (--jobs 1, seeds=$SEEDS) =="
cargo build --release -q -p ftdircmp-bench --bin fig3_execution_time
cargo build --release -q -p ftdircmp-serve --bin ftdircmp-serve
t0=$(now_s)
./target/release/fig3_execution_time --seeds "$SEEDS" --jobs 1 \
    --bench-json results/BENCH_campaign_seq.json > results/fig3_seq.txt
t1=$(now_s)
seq_wall=$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b - a}')
echo "classic sequential wall: ${seq_wall}s"

echo
echo "== fig3 campaign, checkpoint-fork sequential (--jobs 1) =="
./target/release/fig3_execution_time --seeds "$SEEDS" --jobs 1 --warmup-checkpoint \
    --bench-json results/BENCH_campaign_ckpt_seq.json > results/fig3_ckpt_seq.txt
echo
echo "== fig3 campaign, checkpoint-fork parallel (--jobs $JOBS) =="
t0=$(now_s)
./target/release/fig3_execution_time --seeds "$SEEDS" --jobs "$JOBS" --warmup-checkpoint \
    --bench-json results/BENCH_campaign.json > results/fig3_par.txt
t1=$(now_s)
par_wall=$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b - a}')
echo "checkpoint-fork parallel wall: ${par_wall}s"

# Byte-compare checkpoint-fork output across --jobs, ignoring only the line
# that names the (deliberately different) json destination. Checkpoint mode
# gates faults behind the shared warmup, so it is compared against its own
# sequential reference, not the classic run (DESIGN.md §8).
if ! cmp -s <(grep -v '^(wrote ' results/fig3_ckpt_seq.txt) \
            <(grep -v '^(wrote ' results/fig3_par.txt); then
    echo "ERROR: checkpoint-fork parallel output differs from its sequential reference" >&2
    diff results/fig3_ckpt_seq.txt results/fig3_par.txt >&2 || true
    exit 1
fi
echo "checkpoint-fork parallel output is byte-identical to sequential."

speedup=$(awk -v s="$seq_wall" -v p="$par_wall" 'BEGIN{printf "%.2f", s / p}')
echo
echo "campaign speedup over classic sequential at $JOBS jobs: ${speedup}x"
echo "throughput summary (checkpoint-fork parallel run):"
cat results/BENCH_campaign.json

# Append a trajectory datapoint so perf over time is greppable from the repo.
# The line is validated as JSON first (an empty sed extraction would
# otherwise poison the file), and the append goes through a tmp file + mv
# so a crash mid-write can never leave a torn trailing line.
git_sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
date_iso=$(date -u +%Y-%m-%dT%H:%M:%SZ)
eps=$(sed -n 's/.*"events_per_second": \([0-9]*\).*/\1/p' results/BENCH_campaign.json)
cps=$(sed -n 's/.*"simulated_cycles_per_second": \([0-9]*\).*/\1/p' results/BENCH_campaign.json)
line=$(printf '{"git_sha": "%s", "date": "%s", "jobs": %s, "events_per_second": %s, "cycles_per_second": %s}' \
    "$git_sha" "$date_iso" "$JOBS" "$eps" "$cps")
if ! printf '%s\n' "$line" | ./target/release/ftdircmp-serve json-check; then
    echo "ERROR: refusing to append malformed trajectory line: $line" >&2
    exit 1
fi
traj=results/BENCH_trajectory.jsonl
tmp=$(mktemp results/.BENCH_trajectory.XXXXXX)
if [ -f "$traj" ]; then cat "$traj" > "$tmp"; fi
printf '%s\n' "$line" >> "$tmp"
mv "$tmp" "$traj"
echo "appended datapoint to results/BENCH_trajectory.jsonl"
