//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the slice of the `proptest` 1.x API that the repository's property tests
//! use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`, integer/float range strategies,
//! tuple strategies, [`collection::vec`]/[`collection::hash_set`],
//! [`sample::select`], [`any`], a tiny character-class regex string
//! strategy, and [`test_runner::Config`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs verbatim
//!   (`max_shrink_iters` is parsed and ignored).
//! * **Deterministic exploration.** Cases are generated from a fixed seed
//!   derived from the test's module path and name, so CI failures are
//!   reproducible; set `PROPTEST_RNG_SEED` to explore a different stream.
//! * **Regex strategies** support only character classes, escaped
//!   single-char atoms and `{m,n}` repetition — enough for the patterns in
//!   this repository; anything else panics loudly.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Error raised by `prop_assert!` and friends inside a test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
        /// The input was rejected (unused by the stub, kept for API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed-property error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected-input error.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Shorthand for a test-case body result.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (the two knobs this repository sets).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Parsed for API parity; the stub never shrinks.
        pub max_shrink_iters: u32,
        /// API parity with real proptest (which has many more fields, so
        /// callers always write `..Config::default()`); the stub never forks.
        pub fork: bool,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 1024,
                fork: false,
            }
        }
    }

    /// Deterministic test-case RNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test identifier (plus `PROPTEST_RNG_SEED` if set).
        pub fn for_test(ident: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in ident.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            if let Some(extra) = std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
            {
                h ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of random values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree: strategies sample
    /// directly and nothing shrinks.
    pub trait Strategy {
        /// The type of values produced.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy (API parity helper).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn DynStrategy<T>>,
    }

    trait DynStrategy<T> {
        fn dyn_sample(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty as $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8 as u8, i16 as u16, i32 as u32, i64 as u64);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }

    /// Strategy for types with a canonical "any value" distribution.
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// Types usable with [`crate::any`].
    pub trait ArbitraryStub: Sized + Debug {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryStub for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryStub for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl<T: ArbitraryStub> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Creates the canonical strategy for `T` (`any::<bool>()` etc.).
    pub fn any<T: ArbitraryStub>() -> Any<T> {
        Any(PhantomData)
    }

    // ---- tiny regex-subset string strategy ------------------------------

    /// One repeatable unit of the pattern.
    #[derive(Debug, Clone)]
    struct Atom {
        /// Inclusive character ranges to choose from.
        pool: Vec<(char, char)>,
        min: u32,
        max: u32,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
        let mut pool = Vec::new();
        loop {
            let c = chars.next().expect("unterminated character class");
            if c == ']' {
                break;
            }
            if chars.peek() == Some(&'-') {
                let mut ahead = chars.clone();
                ahead.next(); // the '-'
                match ahead.peek() {
                    Some(&hi) if hi != ']' => {
                        chars.next();
                        chars.next();
                        pool.push((c, hi));
                        continue;
                    }
                    _ => {}
                }
            }
            pool.push((c, c));
        }
        assert!(!pool.is_empty(), "empty character class");
        pool
    }

    /// Pool for `\PC` (any char outside Unicode category C): printable
    /// ASCII plus a handful of multi-byte characters to exercise UTF-8
    /// handling. A sampled approximation, not the full category.
    fn not_control_pool() -> Vec<(char, char)> {
        vec![
            (' ', '~'),
            (' ', '~'), // weight ASCII double
            ('\u{a1}', '\u{ff}'),
            ('α', 'ω'),
            ('一', '十'),
        ]
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut digits = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            digits.push(c);
        }
        let (lo, hi) = match digits.split_once(',') {
            Some((a, b)) => (a, b),
            None => (digits.as_str(), digits.as_str()),
        };
        let lo: u32 = lo.trim().parse().expect("bad quantifier");
        let hi: u32 = hi.trim().parse().expect("bad quantifier");
        assert!(lo <= hi, "bad quantifier {{{lo},{hi}}}");
        (lo, hi)
    }

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let pool = match c {
                '[' => parse_class(&mut chars),
                '\\' => match chars.next() {
                    Some('P') => {
                        let cat = chars.next().expect("category after \\P");
                        assert!(cat == 'C', "regex stub only supports \\PC, got \\P{cat}");
                        not_control_pool()
                    }
                    Some(esc @ ('\\' | '.' | '-' | '[' | ']' | '{' | '}')) => vec![(esc, esc)],
                    other => panic!("unsupported escape \\{other:?} in regex stub"),
                },
                '.' => not_control_pool(),
                '(' | ')' | '|' | '*' | '+' | '?' => {
                    panic!("unsupported regex syntax {c:?} in regex stub (pattern {pattern:?})")
                }
                lit => vec![(lit, lit)],
            };
            let (min, max) = parse_quantifier(&mut chars);
            atoms.push(Atom { pool, min, max });
        }
        atoms
    }

    /// String strategy from a (subset) regex pattern.
    #[derive(Debug, Clone)]
    pub struct RegexStrategy {
        atoms: Vec<Atom>,
    }

    impl RegexStrategy {
        /// Parses `pattern`; panics on syntax outside the supported subset.
        pub fn new(pattern: &str) -> Self {
            RegexStrategy {
                atoms: parse_pattern(pattern),
            }
        }
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let reps = atom.min + rng.below(u64::from(atom.max - atom.min) + 1) as u32;
                for _ in 0..reps {
                    let (lo, hi) = atom.pool[rng.below(atom.pool.len() as u64) as usize];
                    let span = hi as u32 - lo as u32 + 1;
                    // Skip the surrogate gap if a range were to cross it.
                    let c =
                        char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32).unwrap_or(lo);
                    out.push(c);
                }
            }
            out
        }
    }

    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            RegexStrategy::new(self).sample(rng)
        }
    }

    impl Strategy for String {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            RegexStrategy::new(self).sample(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::fmt::Debug;
    use std::hash::Hash;
    use std::ops::Range;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive, matching `Range<usize>` semantics.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: vectors with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::hash_set`: sets with sizes drawn from `size`.
    ///
    /// If the element domain is too small to reach the drawn size, the set
    /// is returned at its achievable size (real proptest rejects instead).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq + Debug,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 20 + 100 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Strategy choosing uniformly among fixed options.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `proptest::sample::select`: picks one of `options` per case.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// The glob-import surface user code expects.
pub mod prelude {
    pub use crate::proptest;
    pub use crate::strategy::{any, ArbitraryStub, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
}

/// Asserts a condition inside a proptest body, failing the case (not the
/// whole process) so the runner can report the generating inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Rejects the current case when the assumption fails (the stub simply
/// skips to the next case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests. Supports the subset of real proptest's grammar
/// used in this repository: an optional `#![proptest_config(..)]` header and
/// `#[test] fn name(binding in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases * 4 + 64,
                            "too many rejected cases in {}",
                            stringify!($name)
                        );
                    }
                    Err(e) => panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    ),
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}
