//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *small slice* of the `rand` 0.8 API that `ftdircmp-sim`
//! actually uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`] and the
//! [`Rng`] convenience methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ (the same family the real `SmallRng` uses
//! on 64-bit targets) seeded through SplitMix64, so streams are high quality
//! and fully deterministic — which is all the simulator requires. Bit-exact
//! compatibility with upstream `rand` streams is *not* promised; nothing in
//! the repository depends on specific stream values, only on reproducibility
//! for a given seed.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw output.
pub trait UniformPrimitive: Sized {
    /// Draws one value covering the full domain of the type.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformPrimitive for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformPrimitive for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformPrimitive for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (the subset of `SampleRange` we need).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Widening-multiply range reduction (Lemire); the residual
                // bias of ~2^-64 is irrelevant for simulation purposes.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing convenience trait (blanket-implemented for all cores).
pub trait Rng: RngCore {
    /// Uniform value over the whole domain of `T`.
    fn gen<T: UniformPrimitive>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut st);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(5u64..17);
            assert!((5..17).contains(&v));
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn full_range_u64_varies() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(r.gen::<u64>());
        }
        assert!(seen.len() > 60);
    }
}
