//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the slice of the `criterion` 0.5 API the repository's benches use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's full statistical machinery, each benchmark is
//! warmed up briefly, then timed over enough iterations to fill a fixed
//! measurement window; the mean, min and max per-iteration times are
//! printed in a `name ... mean 12.34 µs (min 11.98, max 13.02, N iters)`
//! line. This keeps `cargo bench` working (and machine-greppable for
//! `scripts/bench.sh`) without any external dependencies.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration (filled by [`Bencher::iter`]).
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
    measurement: Duration,
}

impl Bencher {
    /// Times `f`, storing per-iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: how long does one iteration take?
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let target = self.measurement;
        let batches: u64 = 10;
        let per_batch = (target.as_nanos() / (u128::from(batches) * once.as_nanos()))
            .clamp(1, 1_000_000) as u64;

        let (mut total, mut min, mut max) = (Duration::ZERO, Duration::MAX, Duration::ZERO);
        let mut iters = 0u64;
        for _ in 0..batches {
            let t = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            let d = t.elapsed();
            total += d;
            min = min.min(d / per_batch as u32);
            max = max.max(d / per_batch as u32);
            iters += per_batch;
            if total > target * 2 {
                break;
            }
        }
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.min_ns = min.as_nanos() as f64;
        self.max_ns = max.as_nanos() as f64;
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, measurement: Duration, mut f: F) {
    let mut b = Bencher {
        mean_ns: 0.0,
        min_ns: 0.0,
        max_ns: 0.0,
        iters: 0,
        measurement,
    };
    f(&mut b);
    println!(
        "bench: {:<44} mean {:>12} (min {}, max {}, {} iters)",
        name,
        human(b.mean_ns),
        human(b.min_ns),
        human(b.max_ns),
        b.iters
    );
}

/// The benchmark manager (stub: a name filter plus a measurement window).
pub struct Criterion {
    filter: Option<String>,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.ends_with(env!("CARGO_PKG_NAME")));
        Criterion {
            filter,
            measurement: Duration::from_millis(
                std::env::var("CRITERION_MEASUREMENT_MS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(300),
            ),
        }
    }
}

impl Criterion {
    /// API-parity hook; the stub reads argv in [`Criterion::default`].
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the measurement window (API parity with criterion).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        if self.enabled(name) {
            run_one(name, self.measurement, f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// API-parity knob; the stub sizes its loop from wall time instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window for the group's benches.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.parent.measurement = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.parent.enabled(&full) {
            run_one(&full, self.parent.measurement, f);
        }
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.parent.enabled(&full) {
            run_one(&full, self.parent.measurement, |b| f(b, input));
        }
        self
    }

    /// Closes the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
