//! Transient-fault injection.
//!
//! Implements the paper's fault model (§3): the network either delivers a
//! message correctly or not at all. Corrupted messages are assumed to be
//! detected by a per-message CRC and discarded at the receiver, which is
//! equivalent to a loss, so the injector only ever *drops* messages.
//!
//! Fault rates follow the paper's evaluation, expressed as **messages lost
//! per million messages** traversing the network. Faults may be isolated or
//! arrive in bursts (§3: "either an isolated one or a burst of them").

use ftdircmp_sim::DetRng;

use crate::domain::{FaultConfigError, FaultDomainConfig};
use crate::VcClass;

/// Fault-injection configuration.
///
/// # Example
///
/// ```
/// use ftdircmp_noc::FaultConfig;
///
/// let none = FaultConfig::none();
/// assert_eq!(none.loss_per_million, 0.0);
/// let heavy = FaultConfig::per_million(2000.0);
/// assert!(heavy.loss_per_million > none.loss_per_million);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Expected number of lost messages per million network messages.
    pub loss_per_million: f64,
    /// Probability that a loss extends to the next message as well
    /// (geometric burst length). `0.0` means isolated single-message losses.
    pub burst_continue: f64,
    /// Hard cap on burst length.
    pub burst_cap: u64,
    /// Restrict losses to these virtual-channel classes (`None` = any).
    /// Targeted injection isolates which message kinds each recovery
    /// mechanism covers (the per-class vulnerability study).
    pub only_classes: Option<Vec<VcClass>>,
    /// Deterministic schedule: drop exactly the messages with these 0-based
    /// injection indices (message order is deterministic given the seed).
    /// Mutually exclusive with a probabilistic rate
    /// ([`FaultConfig::validate`] rejects the combination). Enables
    /// exhaustive single-fault sweeps: "for every message in this run,
    /// losing exactly that message is recovered".
    pub drop_indices: Option<Vec<u64>>,
    /// Correlated fault domains: per-link Gilbert–Elliott channels and a
    /// deterministic timeline of link flaps / brown-outs / region bursts
    /// (see [`FaultDomainConfig`], DESIGN.md §12). `None` (the value every
    /// constructor sets) keeps the historical single-global-coin model
    /// byte-identical.
    pub domains: Option<FaultDomainConfig>,
}

impl FaultConfig {
    /// No faults: the network is reliable (DirCMP's required environment).
    pub fn none() -> Self {
        FaultConfig {
            loss_per_million: 0.0,
            burst_continue: 0.0,
            burst_cap: 0,
            only_classes: None,
            drop_indices: None,
            domains: None,
        }
    }

    /// Isolated losses at `rate` messages per million.
    pub fn per_million(rate: f64) -> Self {
        FaultConfig {
            loss_per_million: rate,
            burst_continue: 0.0,
            burst_cap: 0,
            only_classes: None,
            drop_indices: None,
            domains: None,
        }
    }

    /// Bursty losses: `rate` burst *starts* per million messages, each burst
    /// continuing with probability `burst_continue` up to `burst_cap` extra
    /// messages.
    pub fn bursts(rate: f64, burst_continue: f64, burst_cap: u64) -> Self {
        FaultConfig {
            loss_per_million: rate,
            burst_continue,
            burst_cap,
            only_classes: None,
            drop_indices: None,
            domains: None,
        }
    }

    /// Targets losses at specific message classes only.
    pub fn targeting(rate: f64, classes: Vec<VcClass>) -> Self {
        FaultConfig {
            loss_per_million: rate,
            burst_continue: 0.0,
            burst_cap: 0,
            only_classes: Some(classes),
            drop_indices: None,
            domains: None,
        }
    }

    /// Drops exactly the messages at the given 0-based injection indices.
    pub fn drop_exactly(indices: Vec<u64>) -> Self {
        FaultConfig {
            loss_per_million: 0.0,
            burst_continue: 0.0,
            burst_cap: 0,
            only_classes: None,
            drop_indices: Some(indices),
            domains: None,
        }
    }

    /// Attaches a correlated fault-domain configuration (builder form).
    pub fn with_domains(mut self, domains: FaultDomainConfig) -> Self {
        self.domains = Some(domains);
        self
    }

    /// Whether this configuration can ever drop a message.
    pub fn is_faulty(&self) -> bool {
        self.loss_per_million > 0.0
            || self.drop_indices.as_ref().is_some_and(|v| !v.is_empty())
            || self
                .domains
                .as_ref()
                .is_some_and(FaultDomainConfig::is_active)
    }

    /// Whether messages of `class` are eligible for injection.
    pub fn targets(&self, class: VcClass) -> bool {
        self.only_classes
            .as_ref()
            .is_none_or(|cs| cs.contains(&class))
    }

    /// Validates the configuration, rejecting the silent-precedence trap
    /// (`drop_indices` together with a probabilistic rate — the schedule
    /// used to shadow the rate without warning) and any malformed fault
    /// domain. Called from `SystemConfig::validate` at construction.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultConfigError`] found.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if self.loss_per_million > 0.0 {
            if let Some(indices) = self.drop_indices.as_ref().filter(|v| !v.is_empty()) {
                return Err(FaultConfigError::ConflictingDropModes {
                    loss_per_million: self.loss_per_million,
                    indices: indices.len(),
                });
            }
        }
        if let Some(domains) = &self.domains {
            domains.validate()?;
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Stateful fault injector: decides, per message, whether the network loses
/// it.
///
/// # Example
///
/// ```
/// use ftdircmp_noc::{FaultConfig, FaultInjector};
/// use ftdircmp_sim::DetRng;
///
/// let mut inj = FaultInjector::new(FaultConfig::per_million(500_000.0), DetRng::from_seed(9));
/// let drops = (0..1000).filter(|_| inj.should_drop()).count();
/// assert!(drops > 300 && drops < 700, "≈50% loss expected, got {drops}");
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    /// `config.drop_indices` sorted and deduplicated, consumed via
    /// `drop_cursor`: `should_drop` is O(1) amortized instead of a
    /// `Vec::contains` scan per message.
    sorted_drops: Vec<u64>,
    drop_cursor: usize,
    rng: DetRng,
    burst_remaining: u64,
    messages_seen: u64,
    messages_dropped: u64,
    injection_log: Option<Vec<VcClass>>,
}

impl FaultInjector {
    /// Creates an injector with its own random stream.
    ///
    /// A deterministic drop schedule may be given unsorted and with
    /// duplicates; it is normalized here.
    pub fn new(config: FaultConfig, rng: DetRng) -> Self {
        let mut sorted_drops = config.drop_indices.clone().unwrap_or_default();
        sorted_drops.sort_unstable();
        sorted_drops.dedup();
        FaultInjector {
            config,
            sorted_drops,
            drop_cursor: 0,
            rng,
            burst_remaining: 0,
            messages_seen: 0,
            messages_dropped: 0,
            injection_log: None,
        }
    }

    /// Starts recording the virtual-channel class of every message examined
    /// (index-aligned with the deterministic drop schedule). Used by the
    /// exploration harness to aim drops at protocol-dense message classes.
    pub fn enable_injection_log(&mut self) {
        self.injection_log = Some(Vec::new());
    }

    /// Per-index class log (empty unless enabled).
    pub fn injection_log(&self) -> &[VcClass] {
        self.injection_log.as_deref().unwrap_or(&[])
    }

    /// Decides whether the next message (of `class`) is lost.
    pub fn should_drop_class(&mut self, class: VcClass) -> bool {
        if let Some(log) = &mut self.injection_log {
            log.push(class);
        }
        if !self.config.targets(class) {
            self.messages_seen += 1;
            return false;
        }
        self.should_drop()
    }

    /// Decides whether the next message is lost.
    pub fn should_drop(&mut self) -> bool {
        // Deterministic schedule takes precedence.
        if self.config.drop_indices.is_some() {
            let index = self.messages_seen;
            self.messages_seen += 1;
            // Indices are sorted and message indices arrive ascending, so a
            // cursor replaces the former O(n) `contains` per message.
            while self
                .sorted_drops
                .get(self.drop_cursor)
                .is_some_and(|&i| i < index)
            {
                self.drop_cursor += 1;
            }
            if self.sorted_drops.get(self.drop_cursor) == Some(&index) {
                self.drop_cursor += 1;
                self.messages_dropped += 1;
                return true;
            }
            return false;
        }
        self.messages_seen += 1;
        if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            self.messages_dropped += 1;
            return true;
        }
        if !self.config.is_faulty() {
            return false;
        }
        let p = (self.config.loss_per_million / 1_000_000.0).clamp(0.0, 1.0);
        if self.rng.chance(p) {
            if self.config.burst_continue > 0.0 {
                self.burst_remaining = self
                    .rng
                    .geometric(self.config.burst_continue, self.config.burst_cap);
            }
            self.messages_dropped += 1;
            true
        } else {
            false
        }
    }

    /// Replaces the fault configuration mid-run, preserving the injector's
    /// random stream and message counters.
    ///
    /// This is the fork point of checkpoint-fork campaigns: the shared
    /// warmup runs with [`FaultConfig::none`] (which makes **no** RNG
    /// draws — both the fault-free path and the deterministic-schedule
    /// path leave the stream untouched), so after the swap the injector is
    /// in exactly the state a from-scratch run with `config` would reach
    /// at the same point, had its faults been gated during warmup.
    /// Deterministic drop indices keep counting from the run's first
    /// message: indices below [`FaultInjector::messages_seen`] can no
    /// longer fire.
    pub fn set_config(&mut self, config: FaultConfig) {
        let mut sorted_drops = config.drop_indices.clone().unwrap_or_default();
        sorted_drops.sort_unstable();
        sorted_drops.dedup();
        self.config = config;
        self.sorted_drops = sorted_drops;
        self.drop_cursor = 0;
        self.burst_remaining = 0;
    }

    /// Messages examined so far.
    pub fn messages_seen(&self) -> u64 {
        self.messages_seen
    }

    /// Messages dropped so far.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_never_drops() {
        let mut inj = FaultInjector::new(FaultConfig::none(), DetRng::from_seed(1));
        for _ in 0..10_000 {
            assert!(!inj.should_drop());
        }
        assert_eq!(inj.messages_dropped(), 0);
        assert_eq!(inj.messages_seen(), 10_000);
    }

    #[test]
    fn rate_is_roughly_respected() {
        // 100_000 per million = 10% loss.
        let mut inj = FaultInjector::new(FaultConfig::per_million(100_000.0), DetRng::from_seed(2));
        let drops = (0..50_000).filter(|_| inj.should_drop()).count();
        let rate = drops as f64 / 50_000.0;
        assert!((0.08..0.12).contains(&rate), "rate={rate}");
    }

    #[test]
    fn bursts_drop_consecutive_messages() {
        // Burst starts almost never except when they do; force with high rate.
        let cfg = FaultConfig::bursts(1_000_000.0, 1.0, 3);
        let mut inj = FaultInjector::new(cfg, DetRng::from_seed(3));
        // First message starts a burst (p=1), next 3 are dropped by the burst.
        assert!(inj.should_drop());
        assert!(inj.should_drop());
        assert!(inj.should_drop());
        assert!(inj.should_drop());
        assert_eq!(inj.messages_dropped(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = FaultConfig::per_million(50_000.0);
        let mut a = FaultInjector::new(cfg.clone(), DetRng::from_seed(7));
        let mut b = FaultInjector::new(cfg, DetRng::from_seed(7));
        for _ in 0..1000 {
            assert_eq!(a.should_drop(), b.should_drop());
        }
    }

    #[test]
    fn targeted_injection_spares_other_classes() {
        let cfg = FaultConfig::targeting(1_000_000.0, vec![VcClass::Response]);
        let mut inj = FaultInjector::new(cfg, DetRng::from_seed(4));
        assert!(!inj.should_drop_class(VcClass::Request));
        assert!(!inj.should_drop_class(VcClass::Unblock));
        assert!(inj.should_drop_class(VcClass::Response));
        assert_eq!(inj.messages_seen(), 3);
        assert_eq!(inj.messages_dropped(), 1);
    }

    #[test]
    fn untargeted_config_targets_everything() {
        let cfg = FaultConfig::per_million(10.0);
        for c in VcClass::ALL {
            assert!(cfg.targets(c));
        }
        let t = FaultConfig::targeting(10.0, vec![VcClass::Ping]);
        assert!(t.targets(VcClass::Ping));
        assert!(!t.targets(VcClass::Forward));
    }

    #[test]
    fn deterministic_schedule_drops_exactly_the_named_messages() {
        let cfg = FaultConfig::drop_exactly(vec![0, 3]);
        assert!(cfg.is_faulty());
        let mut inj = FaultInjector::new(cfg, DetRng::from_seed(1));
        let pattern: Vec<bool> = (0..6).map(|_| inj.should_drop()).collect();
        assert_eq!(pattern, vec![true, false, false, true, false, false]);
        assert_eq!(inj.messages_dropped(), 2);
    }

    #[test]
    fn unsorted_and_duplicate_drop_indices_are_normalized() {
        // The cursor-based schedule must behave as a set: order and
        // duplicates in the input are irrelevant.
        let cfg = FaultConfig::drop_exactly(vec![5, 1, 5, 3, 1]);
        let mut inj = FaultInjector::new(cfg, DetRng::from_seed(1));
        let pattern: Vec<bool> = (0..8).map(|_| inj.should_drop()).collect();
        assert_eq!(
            pattern,
            vec![false, true, false, true, false, true, false, false]
        );
        assert_eq!(inj.messages_dropped(), 3);
    }

    #[test]
    fn drop_schedule_mixed_with_untargeted_classes_keeps_global_indices() {
        // Indices count every message examined, including ones whose class
        // is exempt from injection.
        let cfg = FaultConfig {
            drop_indices: Some(vec![2, 0]),
            only_classes: Some(vec![VcClass::Request]),
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg, DetRng::from_seed(1));
        // Index 0 is an exempt class: not dropped despite being scheduled.
        assert!(!inj.should_drop_class(VcClass::Response));
        assert!(!inj.should_drop_class(VcClass::Request)); // index 1
        assert!(inj.should_drop_class(VcClass::Request)); // index 2: dropped
        assert!(!inj.should_drop_class(VcClass::Request)); // index 3
        assert_eq!(inj.messages_dropped(), 1);
    }

    #[test]
    fn injection_log_records_classes_in_index_order() {
        let mut inj = FaultInjector::new(FaultConfig::none(), DetRng::from_seed(2));
        assert!(inj.injection_log().is_empty());
        inj.enable_injection_log();
        inj.should_drop_class(VcClass::Request);
        inj.should_drop_class(VcClass::Unblock);
        inj.should_drop_class(VcClass::Request);
        assert_eq!(
            inj.injection_log(),
            &[VcClass::Request, VcClass::Unblock, VcClass::Request]
        );
    }

    #[test]
    fn set_config_preserves_stream_and_counters() {
        // A gated run (none until the swap) must match a reference whose
        // injector was built with the target config but never consulted
        // before the swap point.
        let target = FaultConfig::per_million(250_000.0);
        let mut gated = FaultInjector::new(FaultConfig::none(), DetRng::from_seed(21));
        for _ in 0..50 {
            assert!(!gated.should_drop());
        }
        gated.set_config(target.clone());
        let mut reference = FaultInjector::new(target, DetRng::from_seed(21));
        assert_eq!(gated.messages_seen(), 50);
        for _ in 0..1000 {
            assert_eq!(gated.should_drop(), reference.should_drop());
        }
    }

    #[test]
    fn set_config_drop_indices_count_from_run_start() {
        let mut inj = FaultInjector::new(FaultConfig::none(), DetRng::from_seed(1));
        for _ in 0..4 {
            assert!(!inj.should_drop());
        }
        // Index 2 is already past; only index 6 can still fire.
        inj.set_config(FaultConfig::drop_exactly(vec![2, 6]));
        let pattern: Vec<bool> = (4..8).map(|_| inj.should_drop()).collect();
        assert_eq!(pattern, vec![false, false, true, false]);
        assert_eq!(inj.messages_dropped(), 1);
    }

    #[test]
    fn is_faulty_flags() {
        assert!(!FaultConfig::none().is_faulty());
        assert!(FaultConfig::per_million(1.0).is_faulty());
        assert!(!FaultConfig::default().is_faulty());
        let domains = FaultConfig::none().with_domains(FaultDomainConfig::events(vec![
            crate::FaultEvent::LinkFlap {
                from: crate::RouterId::new(0),
                dir: crate::Direction::East,
                start: 0,
                end: 100,
            },
        ]));
        assert!(domains.is_faulty());
        let idle = FaultConfig::none().with_domains(FaultDomainConfig::events(Vec::new()));
        assert!(!idle.is_faulty());
    }

    #[test]
    fn validate_rejects_conflicting_drop_modes() {
        // The silent precedence trap: drop_indices used to shadow the
        // probabilistic rate without warning. Now it is a typed error.
        let cfg = FaultConfig {
            loss_per_million: 250.0,
            drop_indices: Some(vec![3, 7]),
            ..FaultConfig::none()
        };
        match cfg.validate() {
            Err(crate::FaultConfigError::ConflictingDropModes {
                loss_per_million,
                indices,
            }) => {
                assert_eq!(loss_per_million, 250.0);
                assert_eq!(indices, 2);
            }
            other => panic!("expected ConflictingDropModes, got {other:?}"),
        }
        // An empty schedule does not conflict (nothing to shadow with).
        let empty = FaultConfig {
            loss_per_million: 250.0,
            drop_indices: Some(Vec::new()),
            ..FaultConfig::none()
        };
        assert!(empty.validate().is_ok());
        // drop_indices + only_classes stays legal (pinned above by
        // drop_schedule_mixed_with_untargeted_classes_keeps_global_indices).
        let targeted = FaultConfig {
            drop_indices: Some(vec![2, 0]),
            only_classes: Some(vec![VcClass::Request]),
            ..FaultConfig::none()
        };
        assert!(targeted.validate().is_ok());
    }

    #[test]
    fn validate_surfaces_domain_errors() {
        let cfg = FaultConfig::none().with_domains(FaultDomainConfig::events(vec![
            crate::FaultEvent::RouterBrownout {
                router: crate::RouterId::new(5),
                start: 9,
                end: 9,
            },
        ]));
        assert!(matches!(
            cfg.validate(),
            Err(crate::FaultConfigError::EmptyEventWindow { index: 0, .. })
        ));
    }
}
