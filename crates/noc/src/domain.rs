//! Correlated fault domains: per-link channels and scheduled fault events.
//!
//! The paper's fault model (§3, [`crate::FaultConfig`]) is a single global
//! drop lottery: every message in the mesh faces the same Bernoulli/burst
//! coin regardless of which link it traverses. Real transient faults are
//! spatially and temporally correlated — a marginal link flaps, a router
//! neighborhood browns out, a burst hits one region. This module adds that
//! structure *under* the existing injector (DESIGN.md §12):
//!
//! * **Per-link channels** — every [`crate::LinkId`] gets its own
//!   Gilbert–Elliott good/bad two-state channel. Channel decisions are pure
//!   hash functions of `(domain seed, link index, per-link message count)`,
//!   not draws from a shared RNG stream, so the decision *stream* of each
//!   link is invariant to the schedule seed, `--jobs`, and whatever traffic
//!   the other links carry.
//! * **Scheduled fault events** — a deterministic timeline of link flaps
//!   (hard-down over `[start, end)`), router brown-outs (all adjacent links
//!   degraded), and region bursts (all links within a Manhattan radius of an
//!   epicenter forced into the bad state together).
//!
//! None of this is consulted unless [`crate::FaultConfig::domains`] is set,
//! so every existing configuration keeps its byte-identical behaviour.

use ftdircmp_sim::splitmix64;

use crate::{Direction, RouterId};

/// Gilbert–Elliott two-state (good/bad) channel parameters, applied to
/// every link of the mesh.
///
/// Each message traversing a link first steps the link's state machine
/// (good→bad with `p_enter_bad`, bad→good with `p_exit_bad`), then is
/// dropped with the state's loss probability. Scheduled events
/// ([`FaultEvent::RouterBrownout`], [`FaultEvent::RegionBurst`]) force
/// affected links to behave as bad for the event window regardless of their
/// channel state.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkChannelConfig {
    /// Per-message probability that a good link turns bad.
    pub p_enter_bad: f64,
    /// Per-message probability that a bad link recovers.
    pub p_exit_bad: f64,
    /// Per-message loss probability while the link is good.
    pub drop_good: f64,
    /// Per-message loss probability while the link is bad (or forced bad by
    /// an active event).
    pub drop_bad: f64,
}

impl LinkChannelConfig {
    /// A channel that never transitions and never drops on its own: only
    /// event-forced bad states lose messages (at `drop_bad`). This is the
    /// effective channel when a domain config schedules events without
    /// configuring per-link channels.
    pub fn passthrough(drop_bad: f64) -> Self {
        LinkChannelConfig {
            p_enter_bad: 0.0,
            p_exit_bad: 1.0,
            drop_good: 0.0,
            drop_bad,
        }
    }
}

/// Loss probability applied inside degraded windows when no explicit
/// channel is configured (see [`FaultDomainConfig::effective_channel`]).
pub const DEFAULT_DEGRADED_DROP: f64 = 0.25;

/// One scheduled correlated-fault event. All windows are half-open cycle
/// intervals `[start, end)` in absolute simulated time.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// One directional link is hard-down for the window: nothing traverses
    /// it. Under XY routing, messages routed over it are lost; adaptive
    /// routing steers around it where a minimal alternative survives.
    LinkFlap {
        /// Source router of the flapping link.
        from: RouterId,
        /// Direction the flapping link points.
        dir: Direction,
        /// First cycle of the outage.
        start: u64,
        /// First cycle after the outage.
        end: u64,
    },
    /// Every link adjacent to the router (outgoing and incoming) is
    /// degraded — forced into the bad channel state — for the window.
    RouterBrownout {
        /// The browned-out router.
        router: RouterId,
        /// First cycle of the brown-out.
        start: u64,
        /// First cycle after the brown-out.
        end: u64,
    },
    /// Every link whose source router lies within `radius` Manhattan hops
    /// of the epicenter is degraded for the window.
    RegionBurst {
        /// Center of the burst region.
        epicenter: RouterId,
        /// Manhattan radius in hops (0 = the epicenter's own links).
        radius: u32,
        /// First cycle of the burst.
        start: u64,
        /// First cycle after the burst.
        end: u64,
    },
}

impl FaultEvent {
    /// The event's `[start, end)` window.
    pub fn window(&self) -> (u64, u64) {
        match *self {
            FaultEvent::LinkFlap { start, end, .. }
            | FaultEvent::RouterBrownout { start, end, .. }
            | FaultEvent::RegionBurst { start, end, .. } => (start, end),
        }
    }

    /// Whether the event is active at `now`.
    pub fn active_at(&self, now: u64) -> bool {
        let (start, end) = self.window();
        start <= now && now < end
    }

    /// Whether this event takes links hard-down (affects routing), as
    /// opposed to merely degrading them (affects loss probability only).
    pub fn is_hard_down(&self) -> bool {
        matches!(self, FaultEvent::LinkFlap { .. })
    }

    /// Short label used in recovery telemetry
    /// (e.g. `"flap r5-east@[100,200)"`).
    pub fn label(&self) -> String {
        match *self {
            FaultEvent::LinkFlap {
                from,
                dir,
                start,
                end,
            } => format!("flap {from}-{}@[{start},{end})", dir.label()),
            FaultEvent::RouterBrownout { router, start, end } => {
                format!("brownout {router}@[{start},{end})")
            }
            FaultEvent::RegionBurst {
                epicenter,
                radius,
                start,
                end,
            } => format!("burst {epicenter}+r{radius}@[{start},{end})"),
        }
    }
}

/// Correlated fault-domain configuration: an optional per-link channel
/// model plus a deterministic event timeline.
///
/// # Example
///
/// ```
/// use ftdircmp_noc::{Direction, FaultDomainConfig, FaultEvent, RouterId};
///
/// let domains = FaultDomainConfig::events(vec![FaultEvent::LinkFlap {
///     from: RouterId::new(5),
///     dir: Direction::East,
///     start: 1_000,
///     end: 2_000,
/// }]);
/// assert!(domains.validate().is_ok());
/// assert!(domains.is_active());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultDomainConfig {
    /// Seed for the per-link decision hash. Deliberately separate from the
    /// run's master seed: the same domain behaves identically across
    /// schedule seeds and worker counts.
    pub domain_seed: u64,
    /// Per-link Gilbert–Elliott channel, applied to every link. `None`
    /// means links only drop inside event-degraded windows.
    pub channel: Option<LinkChannelConfig>,
    /// Scheduled correlated-fault events.
    pub events: Vec<FaultEvent>,
}

impl FaultDomainConfig {
    /// A domain with only scheduled events (no ambient channel noise).
    pub fn events(events: Vec<FaultEvent>) -> Self {
        FaultDomainConfig {
            domain_seed: 0xD0_7A1F,
            channel: None,
            events,
        }
    }

    /// A domain with only an ambient per-link channel (no events).
    pub fn channel(channel: LinkChannelConfig) -> Self {
        FaultDomainConfig {
            domain_seed: 0xD0_7A1F,
            channel: Some(channel),
            events: Vec::new(),
        }
    }

    /// Sets the domain seed.
    pub fn with_seed(mut self, domain_seed: u64) -> Self {
        self.domain_seed = domain_seed;
        self
    }

    /// Sets the per-link channel model.
    pub fn with_channel(mut self, channel: LinkChannelConfig) -> Self {
        self.channel = Some(channel);
        self
    }

    /// Whether the domain can affect any message.
    pub fn is_active(&self) -> bool {
        self.channel.is_some() || !self.events.is_empty()
    }

    /// The channel parameters actually applied per link: the configured
    /// channel, or a passthrough that only loses messages inside
    /// event-degraded windows (at [`DEFAULT_DEGRADED_DROP`]).
    pub fn effective_channel(&self) -> LinkChannelConfig {
        self.channel
            .clone()
            .unwrap_or_else(|| LinkChannelConfig::passthrough(DEFAULT_DEGRADED_DROP))
    }

    /// Validates channel probabilities and event windows.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultConfigError`] found: a probability outside
    /// `[0, 1]` or an empty/inverted event window.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if let Some(ch) = &self.channel {
            for (field, value) in [
                ("p_enter_bad", ch.p_enter_bad),
                ("p_exit_bad", ch.p_exit_bad),
                ("drop_good", ch.drop_good),
                ("drop_bad", ch.drop_bad),
            ] {
                if !(0.0..=1.0).contains(&value) || value.is_nan() {
                    return Err(FaultConfigError::InvalidProbability { field, value });
                }
            }
        }
        for (index, ev) in self.events.iter().enumerate() {
            let (start, end) = ev.window();
            if start >= end {
                return Err(FaultConfigError::EmptyEventWindow { index, start, end });
            }
        }
        Ok(())
    }
}

/// Typed fault-configuration error, surfaced through
/// [`crate::FaultConfig::validate`] at system construction.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultConfigError {
    /// Both `drop_indices` and a probabilistic `loss_per_million` were set.
    /// The deterministic schedule silently shadowed the rate before this
    /// error existed; now the conflict is rejected up front.
    ConflictingDropModes {
        /// The shadowed probabilistic rate.
        loss_per_million: f64,
        /// Number of scheduled drop indices.
        indices: usize,
    },
    /// A channel probability is outside `[0, 1]`.
    InvalidProbability {
        /// Which [`LinkChannelConfig`] field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fault event's `[start, end)` window is empty or inverted.
    EmptyEventWindow {
        /// Index into [`FaultDomainConfig::events`].
        index: usize,
        /// Window start.
        start: u64,
        /// Window end.
        end: u64,
    },
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultConfigError::ConflictingDropModes {
                loss_per_million,
                indices,
            } => write!(
                f,
                "drop_indices ({indices} scheduled) and loss_per_million ({loss_per_million}) \
                 are mutually exclusive: the deterministic schedule would silently shadow the rate"
            ),
            FaultConfigError::InvalidProbability { field, value } => {
                write!(f, "link channel {field} = {value} is not a probability")
            }
            FaultConfigError::EmptyEventWindow { index, start, end } => {
                write!(f, "fault event {index} has empty window [{start},{end})")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// Converts a hash to a unit float in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The two unit draws for decision `count` on link `link`: the state-
/// transition draw and the drop draw. A pure function — no shared stream —
/// so per-link decisions are independent of scheduling and of each other.
pub fn link_decision(domain_seed: u64, link: usize, count: u64) -> (f64, f64) {
    let per_link =
        splitmix64(domain_seed).wrapping_add((link as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let h1 = splitmix64(per_link ^ splitmix64(count));
    let h2 = splitmix64(h1 ^ 0xA5A5_A5A5_A5A5_A5A5);
    (unit(h1), unit(h2))
}

/// Per-link Gilbert–Elliott channel state: the current good/bad flag and
/// the number of messages this link has carried (the decision counter).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkChannel {
    bad: bool,
    count: u64,
}

impl LinkChannel {
    /// Whether the channel is currently in the bad state.
    pub fn is_bad(self) -> bool {
        self.bad
    }

    /// Messages this link has carried (decisions consumed).
    pub fn count(self) -> u64 {
        self.count
    }

    /// Steps the channel for one message on link `link` and decides whether
    /// the message is lost. `forced_bad` applies an event-degraded window:
    /// the drop draw uses `drop_bad` regardless of channel state.
    pub fn step(
        &mut self,
        cfg: &LinkChannelConfig,
        domain_seed: u64,
        link: usize,
        forced_bad: bool,
    ) -> bool {
        let (transition, drop) = link_decision(domain_seed, link, self.count);
        self.count += 1;
        if self.bad {
            if transition < cfg.p_exit_bad {
                self.bad = false;
            }
        } else if transition < cfg.p_enter_bad {
            self.bad = true;
        }
        let p = if self.bad || forced_bad {
            cfg.drop_bad
        } else {
            cfg.drop_good
        };
        drop < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flap(start: u64, end: u64) -> FaultEvent {
        FaultEvent::LinkFlap {
            from: RouterId::new(1),
            dir: Direction::East,
            start,
            end,
        }
    }

    #[test]
    fn event_windows_are_half_open() {
        let ev = flap(100, 200);
        assert!(!ev.active_at(99));
        assert!(ev.active_at(100));
        assert!(ev.active_at(199));
        assert!(!ev.active_at(200));
        assert_eq!(ev.window(), (100, 200));
        assert!(ev.is_hard_down());
        assert!(!FaultEvent::RouterBrownout {
            router: RouterId::new(0),
            start: 0,
            end: 1,
        }
        .is_hard_down());
    }

    #[test]
    fn labels_identify_events() {
        assert_eq!(flap(100, 200).label(), "flap r1-east@[100,200)");
        let b = FaultEvent::RegionBurst {
            epicenter: RouterId::new(5),
            radius: 2,
            start: 10,
            end: 20,
        };
        assert_eq!(b.label(), "burst r5+r2@[10,20)");
    }

    #[test]
    fn validate_rejects_bad_probabilities_and_windows() {
        let mut d = FaultDomainConfig::channel(LinkChannelConfig {
            p_enter_bad: 1.5,
            p_exit_bad: 0.5,
            drop_good: 0.0,
            drop_bad: 0.5,
        });
        assert!(matches!(
            d.validate(),
            Err(FaultConfigError::InvalidProbability {
                field: "p_enter_bad",
                ..
            })
        ));
        d.channel = None;
        d.events = vec![flap(200, 200)];
        assert!(matches!(
            d.validate(),
            Err(FaultConfigError::EmptyEventWindow { index: 0, .. })
        ));
        d.events = vec![flap(100, 200)];
        assert!(d.validate().is_ok());
    }

    #[test]
    fn effective_channel_defaults_to_passthrough() {
        let d = FaultDomainConfig::events(vec![flap(0, 10)]);
        let ch = d.effective_channel();
        assert_eq!(ch.p_enter_bad, 0.0);
        assert_eq!(ch.drop_good, 0.0);
        assert_eq!(ch.drop_bad, DEFAULT_DEGRADED_DROP);
    }

    #[test]
    fn link_decisions_are_pure_functions() {
        for link in [0usize, 7, 63] {
            for count in [0u64, 1, 1000] {
                assert_eq!(
                    link_decision(42, link, count),
                    link_decision(42, link, count)
                );
            }
        }
        // Distinct links and counts decorrelate.
        assert_ne!(link_decision(42, 0, 0), link_decision(42, 1, 0));
        assert_ne!(link_decision(42, 0, 0), link_decision(42, 0, 1));
        assert_ne!(link_decision(42, 0, 0), link_decision(43, 0, 0));
    }

    #[test]
    fn channel_respects_drop_probabilities() {
        let cfg = LinkChannelConfig::passthrough(1.0);
        let mut ch = LinkChannel::default();
        // Good state with drop_good = 0: never drops.
        for _ in 0..100 {
            assert!(!ch.step(&cfg, 1, 0, false));
        }
        // Forced bad with drop_bad = 1: always drops.
        for _ in 0..100 {
            assert!(ch.step(&cfg, 1, 0, true));
        }
        assert_eq!(ch.count(), 200);
        assert!(!ch.is_bad(), "passthrough channel never transitions");
    }

    #[test]
    fn channel_transitions_are_sticky() {
        // Enter bad almost surely, never leave: after a while the channel
        // drops at the bad rate.
        let cfg = LinkChannelConfig {
            p_enter_bad: 1.0,
            p_exit_bad: 0.0,
            drop_good: 0.0,
            drop_bad: 1.0,
        };
        let mut ch = LinkChannel::default();
        // First step transitions good->bad and then drops at drop_bad.
        assert!(ch.step(&cfg, 9, 3, false));
        assert!(ch.is_bad());
        for _ in 0..50 {
            assert!(ch.step(&cfg, 9, 3, false));
        }
    }

    #[test]
    fn channel_loss_rate_roughly_matches_stationary_mix() {
        // p_enter = p_exit = 0.5 → half the time bad; drop_bad = 0.6,
        // drop_good = 0.0 → ~30% loss.
        let cfg = LinkChannelConfig {
            p_enter_bad: 0.5,
            p_exit_bad: 0.5,
            drop_good: 0.0,
            drop_bad: 0.6,
        };
        let mut ch = LinkChannel::default();
        let drops = (0..20_000).filter(|_| ch.step(&cfg, 77, 5, false)).count();
        let rate = drops as f64 / 20_000.0;
        assert!((0.25..0.35).contains(&rate), "rate={rate}");
    }

    #[test]
    fn decision_stream_is_invariant_to_interleaving() {
        // The same link consuming the same counts produces the same
        // decisions no matter what other links do in between — the property
        // that makes domain drops schedule- and jobs-invariant.
        let cfg = LinkChannelConfig {
            p_enter_bad: 0.2,
            p_exit_bad: 0.3,
            drop_good: 0.05,
            drop_bad: 0.8,
        };
        let mut alone = LinkChannel::default();
        let solo: Vec<bool> = (0..500).map(|_| alone.step(&cfg, 11, 4, false)).collect();

        let mut interleaved = LinkChannel::default();
        let mut other = LinkChannel::default();
        let mixed: Vec<bool> = (0..500)
            .map(|i| {
                // Other links consume their own decisions in between.
                if i % 3 == 0 {
                    other.step(&cfg, 11, 9, false);
                }
                interleaved.step(&cfg, 11, 4, false)
            })
            .collect();
        assert_eq!(solo, mixed);
    }
}
