//! The mesh network model.

use ftdircmp_sim::{Cycle, DetRng};

use crate::{FaultConfig, FaultInjector, NocStats, RouterId, Topology, VcClass};

/// How messages are routed through the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Dimension-ordered (XY) routing. Deterministic paths give the
    /// point-to-point **ordered** network DirCMP assumes (paper §2).
    #[default]
    DimensionOrdered,
    /// Randomized minimal adaptive routing: an **unordered** network, the
    /// extension of paper §2 / its reference 6. Only FtDirCMP (with serial numbers)
    /// tolerates this mode.
    Adaptive,
}

/// Mesh timing parameters.
///
/// Defaults model the paper's Table 4 network: 4×4 mesh, 8-byte control
/// messages / 72-byte data messages (sizes live in the protocol crate),
/// multi-gigabyte link bandwidth expressed as bytes per cycle, and a few
/// cycles of router pipeline per hop.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshConfig {
    /// Mesh columns.
    pub width: u16,
    /// Mesh rows.
    pub height: u16,
    /// Link bandwidth in bytes per cycle (serialization: `ceil(size/bw)`).
    pub link_bytes_per_cycle: u32,
    /// Router pipeline latency per hop, in cycles.
    pub router_latency: u64,
    /// Latency of a same-router (loopback) delivery, in cycles.
    pub local_latency: u64,
    /// Routing mode.
    pub routing: RoutingMode,
    /// Fault injection configuration.
    pub faults: FaultConfig,
    /// Chaos testing: add a uniformly random extra delay of up to this many
    /// cycles to every delivery. Nonzero jitter breaks point-to-point
    /// ordering (like adaptive routing), so only FtDirCMP tolerates it; the
    /// stress suite uses it to explore message reorderings.
    pub jitter_cycles: u64,
    /// Exploration knob: add a uniformly random extra delay of up to this
    /// many cycles at **every hop** of the route (contention-like noise).
    /// Like `jitter_cycles` it breaks point-to-point ordering, but it skews
    /// with distance, reaching interleavings end-to-end jitter cannot.
    pub hop_jitter_cycles: u64,
    /// Record the virtual-channel class of every message the fault injector
    /// examines (see [`FaultInjector::injection_log`]). The exploration
    /// harness uses the log to aim deterministic drops at protocol-dense
    /// message classes.
    pub record_injections: bool,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            width: 4,
            height: 4,
            link_bytes_per_cycle: 16,
            router_latency: 4,
            local_latency: 1,
            routing: RoutingMode::DimensionOrdered,
            faults: FaultConfig::none(),
            jitter_cycles: 0,
            hop_jitter_cycles: 0,
            record_injections: false,
        }
    }
}

/// Result of injecting a message into the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message will arrive at the destination at the given cycle.
    Delivered {
        /// Arrival time at the destination's network interface.
        at: Cycle,
    },
    /// A transient fault lost the message; it will never arrive.
    Dropped,
}

impl SendOutcome {
    /// Arrival time if delivered.
    pub fn delivered_at(self) -> Option<Cycle> {
        match self {
            SendOutcome::Delivered { at } => Some(at),
            SendOutcome::Dropped => None,
        }
    }

    /// Whether the message was lost.
    pub fn is_dropped(self) -> bool {
        matches!(self, SendOutcome::Dropped)
    }
}

/// The on-chip network: a timing-and-fault oracle for message delivery.
///
/// [`Mesh::send`] walks the message's route, reserving bandwidth on each
/// link (per-link FIFO reservation), and returns the arrival cycle. Because
/// XY routes are deterministic and link reservations are made in send order,
/// delivery between any `(source, destination)` pair is FIFO — the ordered
/// network of the paper's base architecture. Adaptive mode deliberately
/// breaks this property.
///
/// Messages between co-located nodes (same router) use a fixed local latency
/// and are exempt from fault injection: they never traverse a mesh link, and
/// the paper's fault model concerns the interconnection network only.
#[derive(Debug, Clone)]
pub struct Mesh {
    topology: Topology,
    config: MeshConfig,
    link_free: Vec<Cycle>,
    link_busy: Vec<u64>,
    fault: FaultInjector,
    route_rng: DetRng,
    jitter_rng: DetRng,
    stats: NocStats,
}

impl Mesh {
    /// Creates a mesh from a configuration and a deterministic random stream
    /// (used for fault injection and adaptive route selection).
    pub fn new(config: MeshConfig, rng: DetRng) -> Self {
        let topology = Topology::new(config.width, config.height);
        let link_free = vec![Cycle::ZERO; topology.link_slots()];
        let link_busy = vec![0u64; topology.link_slots()];
        let mut fault = FaultInjector::new(config.faults.clone(), rng.fork("fault-injector"));
        if config.record_injections {
            fault.enable_injection_log();
        }
        let route_rng = rng.fork("adaptive-routes");
        let jitter_rng = rng.fork("jitter");
        Mesh {
            topology,
            config,
            link_free,
            link_busy,
            fault,
            route_rng,
            jitter_rng,
            stats: NocStats::new(),
        }
    }

    /// The mesh topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The active configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Traffic statistics collected so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Fault-injection counters.
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault
    }

    /// Replaces the fault configuration mid-run (the fork point of
    /// checkpoint-fork campaigns; see [`FaultInjector::set_config`]).
    pub fn set_fault_config(&mut self, faults: FaultConfig) {
        self.config.faults = faults.clone();
        self.fault.set_config(faults);
    }

    /// Injects a message of `size_bytes` at `now` from `src` to `dst` on
    /// virtual-channel class `class`.
    ///
    /// Returns the arrival cycle, or [`SendOutcome::Dropped`] if a transient
    /// fault lost the message. Dropped messages still consume the bandwidth
    /// they used before being lost (the reservation is made either way).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is outside the mesh.
    pub fn send(
        &mut self,
        now: Cycle,
        src: RouterId,
        dst: RouterId,
        size_bytes: u32,
        class: VcClass,
    ) -> SendOutcome {
        assert!(
            src.index() < self.topology.router_count(),
            "src {src} out of range"
        );
        assert!(
            dst.index() < self.topology.router_count(),
            "dst {dst} out of range"
        );

        if src == dst {
            self.stats.record_local();
            return SendOutcome::Delivered {
                at: now + self.config.local_latency,
            };
        }

        let ser = serialization_cycles(size_bytes, self.config.link_bytes_per_cycle);

        // Walk the route without materializing it: reserve bandwidth on each
        // link as the walker yields it. Split borrows so the route walker
        // (topology + route RNG) and the reservation state stay disjoint.
        let Mesh {
            topology,
            config,
            link_free,
            link_busy,
            route_rng,
            jitter_rng,
            ..
        } = self;
        let mut arrive = now;
        let mut hops = 0u32;
        let mut reserve = |link: crate::LinkId| {
            let idx = link.dense_index();
            let depart = arrive.max(link_free[idx]);
            link_free[idx] = depart + ser;
            link_busy[idx] += ser;
            arrive = depart + ser + config.router_latency;
            if config.hop_jitter_cycles > 0 {
                arrive += jitter_rng.below(config.hop_jitter_cycles + 1);
            }
            hops += 1;
        };
        match config.routing {
            RoutingMode::DimensionOrdered => {
                topology.route_xy_iter(src, dst).for_each(&mut reserve);
            }
            RoutingMode::Adaptive => {
                topology
                    .route_adaptive_iter(src, dst, route_rng)
                    .for_each(&mut reserve);
            }
        }

        if self.fault.should_drop_class(class) {
            self.stats.record_dropped(class, size_bytes);
            return SendOutcome::Dropped;
        }

        if self.config.jitter_cycles > 0 {
            arrive += self.jitter_rng.below(self.config.jitter_cycles + 1);
        }

        let latency = arrive - now;
        self.stats.record_sent(class, size_bytes, hops, latency);
        SendOutcome::Delivered { at: arrive }
    }

    /// Busy cycles accumulated per link (dense index order).
    pub fn link_busy_cycles(&self) -> &[u64] {
        &self.link_busy
    }

    /// Utilization of the busiest link over `elapsed` cycles (0.0..=1.0).
    pub fn max_link_utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let max = self.link_busy.iter().copied().max().unwrap_or(0);
        (max as f64 / elapsed as f64).min(1.0)
    }

    /// Mean utilization across links that exist and carried traffic.
    pub fn mean_link_utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let used: Vec<u64> = self.link_busy.iter().copied().filter(|b| *b > 0).collect();
        if used.is_empty() {
            return 0.0;
        }
        let sum: u64 = used.iter().sum();
        (sum as f64 / used.len() as f64 / elapsed as f64).min(1.0)
    }

    /// Zero-load latency for a message of `size_bytes` over `hops` hops
    /// (useful for calibrating protocol timeouts against the network).
    pub fn zero_load_latency(&self, hops: u32, size_bytes: u32) -> u64 {
        let ser = serialization_cycles(size_bytes, self.config.link_bytes_per_cycle);
        u64::from(hops) * (ser + self.config.router_latency)
    }

    /// Worst-case zero-load latency across the mesh for a message of
    /// `size_bytes` (corner to corner).
    pub fn max_zero_load_latency(&self, size_bytes: u32) -> u64 {
        let hops = u32::from(self.config.width - 1) + u32::from(self.config.height - 1);
        self.zero_load_latency(hops, size_bytes)
    }
}

fn serialization_cycles(size_bytes: u32, bytes_per_cycle: u32) -> u64 {
    u64::from(size_bytes.div_ceil(bytes_per_cycle.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(MeshConfig::default(), DetRng::from_seed(42))
    }

    fn faulty_mesh(rate: f64) -> Mesh {
        let config = MeshConfig {
            faults: FaultConfig::per_million(rate),
            ..MeshConfig::default()
        };
        Mesh::new(config, DetRng::from_seed(42))
    }

    #[test]
    fn zero_load_latency_matches_formula() {
        let m = mesh();
        // 8 bytes over 16 B/cycle = 1 cycle serialization + 4 router cycles per hop.
        assert_eq!(m.zero_load_latency(3, 8), 3 * (1 + 4));
        // 72 bytes = 5 cycles serialization.
        assert_eq!(m.zero_load_latency(1, 72), 5 + 4);
    }

    #[test]
    fn delivery_time_is_zero_load_when_uncontended() {
        let mut m = mesh();
        let out = m.send(
            Cycle::ZERO,
            RouterId::new(0),
            RouterId::new(3),
            8,
            VcClass::Request,
        );
        assert_eq!(out.delivered_at(), Some(Cycle::new(3 * 5)));
    }

    #[test]
    fn local_delivery_uses_local_latency_and_skips_faults() {
        // 100% loss rate, but local messages never traverse the network.
        let mut m = faulty_mesh(1_000_000.0);
        let out = m.send(
            Cycle::new(5),
            RouterId::new(2),
            RouterId::new(2),
            72,
            VcClass::Response,
        );
        assert_eq!(out.delivered_at(), Some(Cycle::new(6)));
        assert_eq!(m.stats().local_deliveries(), 1);
    }

    #[test]
    fn contention_delays_later_messages() {
        let mut m = mesh();
        let first = m
            .send(
                Cycle::ZERO,
                RouterId::new(0),
                RouterId::new(1),
                72,
                VcClass::Response,
            )
            .delivered_at()
            .unwrap();
        let second = m
            .send(
                Cycle::ZERO,
                RouterId::new(0),
                RouterId::new(1),
                72,
                VcClass::Response,
            )
            .delivered_at()
            .unwrap();
        assert!(second > first, "second message must queue behind the first");
        // Second waits 5 cycles of serialization before starting.
        assert_eq!(second - first, 5);
    }

    #[test]
    fn same_pair_delivery_is_fifo_under_xy_routing() {
        let mut m = mesh();
        let mut last = Cycle::ZERO;
        for i in 0..50u64 {
            let at = m
                .send(
                    Cycle::new(i), // strictly increasing send times
                    RouterId::new(0),
                    RouterId::new(15),
                    if i % 2 == 0 { 8 } else { 72 },
                    VcClass::Request,
                )
                .delivered_at()
                .unwrap();
            assert!(at >= last, "FIFO violated: {at} < {last}");
            last = at;
        }
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut m = faulty_mesh(1_000_000.0);
        let out = m.send(
            Cycle::ZERO,
            RouterId::new(0),
            RouterId::new(5),
            8,
            VcClass::Request,
        );
        assert!(out.is_dropped());
        assert_eq!(m.stats().total_dropped(), 1);
        assert_eq!(m.stats().messages(VcClass::Request), 0);
    }

    #[test]
    fn moderate_loss_rate_is_respected() {
        let mut m = faulty_mesh(100_000.0); // 10%
        let mut dropped = 0;
        for i in 0..20_000u64 {
            let out = m.send(
                Cycle::new(i * 100),
                RouterId::new(0),
                RouterId::new(15),
                8,
                VcClass::Request,
            );
            if out.is_dropped() {
                dropped += 1;
            }
        }
        let rate = f64::from(dropped) / 20_000.0;
        assert!((0.08..0.12).contains(&rate), "rate={rate}");
    }

    #[test]
    fn stats_track_messages_and_bytes() {
        let mut m = mesh();
        m.send(
            Cycle::ZERO,
            RouterId::new(0),
            RouterId::new(1),
            8,
            VcClass::Request,
        );
        m.send(
            Cycle::ZERO,
            RouterId::new(1),
            RouterId::new(2),
            72,
            VcClass::Response,
        );
        assert_eq!(m.stats().total_messages(), 2);
        assert_eq!(m.stats().total_bytes(), 80);
        assert_eq!(m.stats().messages(VcClass::Request), 1);
        assert_eq!(m.stats().bytes(VcClass::Response), 72);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = faulty_mesh(5000.0);
        let mut b = faulty_mesh(5000.0);
        for i in 0..2000u64 {
            let src = RouterId::new((i % 16) as u16);
            let dst = RouterId::new(((i * 7 + 3) % 16) as u16);
            assert_eq!(
                a.send(Cycle::new(i * 3), src, dst, 8, VcClass::Request),
                b.send(Cycle::new(i * 3), src, dst, 8, VcClass::Request)
            );
        }
    }

    #[test]
    fn adaptive_mode_still_delivers() {
        let config = MeshConfig {
            routing: RoutingMode::Adaptive,
            ..MeshConfig::default()
        };
        let mut m = Mesh::new(config, DetRng::from_seed(1));
        for i in 0..100u64 {
            let out = m.send(
                Cycle::new(i * 10),
                RouterId::new(0),
                RouterId::new(15),
                8,
                VcClass::Request,
            );
            assert!(out.delivered_at().is_some());
        }
    }

    #[test]
    fn link_utilization_tracks_traffic() {
        let mut m = mesh();
        assert_eq!(m.max_link_utilization(100), 0.0);
        for i in 0..10u64 {
            m.send(
                Cycle::new(i * 10),
                RouterId::new(0),
                RouterId::new(1),
                72,
                VcClass::Response,
            );
        }
        // 10 messages x 5 serialization cycles on the single 0->1 link.
        assert_eq!(m.link_busy_cycles().iter().copied().max(), Some(50));
        assert!((m.max_link_utilization(100) - 0.5).abs() < 1e-9);
        assert!(m.mean_link_utilization(100) > 0.0);
        assert_eq!(m.max_link_utilization(0), 0.0);
    }

    #[test]
    fn jitter_perturbs_delivery_times() {
        let config = MeshConfig {
            jitter_cycles: 500,
            ..MeshConfig::default()
        };
        let mut m = Mesh::new(config, DetRng::from_seed(5));
        let mut distinct = std::collections::HashSet::new();
        for i in 0..32u64 {
            let at = m
                .send(
                    Cycle::new(i * 1000),
                    RouterId::new(0),
                    RouterId::new(15),
                    8,
                    VcClass::Request,
                )
                .delivered_at()
                .unwrap();
            distinct.insert(at - Cycle::new(i * 1000));
        }
        assert!(distinct.len() > 5, "jitter should spread latencies");
    }

    #[test]
    fn hop_jitter_perturbs_and_skews_with_distance() {
        let config = MeshConfig {
            hop_jitter_cycles: 40,
            ..MeshConfig::default()
        };
        let mut m = Mesh::new(config, DetRng::from_seed(6));
        let mut distinct = std::collections::HashSet::new();
        let mut max_latency = 0;
        for i in 0..32u64 {
            let sent = Cycle::new(i * 1000);
            let at = m
                .send(
                    sent,
                    RouterId::new(0),
                    RouterId::new(15),
                    8,
                    VcClass::Request,
                )
                .delivered_at()
                .unwrap();
            distinct.insert(at - sent);
            max_latency = max_latency.max(at - sent);
        }
        assert!(distinct.len() > 5, "hop jitter should spread latencies");
        // 6 hops of up to 40 extra cycles each can exceed one delivery's
        // worth of end-to-end jitter.
        assert!(max_latency > m.zero_load_latency(6, 8));
    }

    #[test]
    fn injection_log_matches_drop_indices() {
        let config = MeshConfig {
            record_injections: true,
            ..MeshConfig::default()
        };
        let mut m = Mesh::new(config, DetRng::from_seed(7));
        m.send(
            Cycle::ZERO,
            RouterId::new(0),
            RouterId::new(1),
            8,
            VcClass::Request,
        );
        // Local delivery: never examined by the injector, absent from the log.
        m.send(
            Cycle::ZERO,
            RouterId::new(2),
            RouterId::new(2),
            72,
            VcClass::Response,
        );
        m.send(
            Cycle::ZERO,
            RouterId::new(0),
            RouterId::new(4),
            8,
            VcClass::Unblock,
        );
        assert_eq!(
            m.fault_injector().injection_log(),
            &[VcClass::Request, VcClass::Unblock]
        );
    }

    #[test]
    fn zero_jitter_is_deterministic_zero_load() {
        let mut m = mesh();
        let a = m.send(
            Cycle::new(0),
            RouterId::new(0),
            RouterId::new(3),
            8,
            VcClass::Request,
        );
        let mut m2 = mesh();
        let b = m2.send(
            Cycle::new(0),
            RouterId::new(0),
            RouterId::new(3),
            8,
            VcClass::Request,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn max_zero_load_latency_covers_corner_to_corner() {
        let m = mesh();
        assert_eq!(m.max_zero_load_latency(8), m.zero_load_latency(6, 8));
    }
}
