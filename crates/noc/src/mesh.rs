//! The mesh network model.

use ftdircmp_sim::{Cycle, DetRng};

use crate::domain::{FaultDomainConfig, FaultEvent, LinkChannel, LinkChannelConfig};
use crate::stats::DomainDropCause;
use crate::{Direction, FaultConfig, FaultInjector, LinkId, NocStats, RouterId, Topology, VcClass};

/// How messages are routed through the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Dimension-ordered (XY) routing. Deterministic paths give the
    /// point-to-point **ordered** network DirCMP assumes (paper §2).
    #[default]
    DimensionOrdered,
    /// Randomized minimal adaptive routing: an **unordered** network, the
    /// extension of paper §2 / its reference 6. Only FtDirCMP (with serial numbers)
    /// tolerates this mode.
    Adaptive,
}

/// Mesh timing parameters.
///
/// Defaults model the paper's Table 4 network: 4×4 mesh, 8-byte control
/// messages / 72-byte data messages (sizes live in the protocol crate),
/// multi-gigabyte link bandwidth expressed as bytes per cycle, and a few
/// cycles of router pipeline per hop.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshConfig {
    /// Mesh columns.
    pub width: u16,
    /// Mesh rows.
    pub height: u16,
    /// Link bandwidth in bytes per cycle (serialization: `ceil(size/bw)`).
    pub link_bytes_per_cycle: u32,
    /// Router pipeline latency per hop, in cycles.
    pub router_latency: u64,
    /// Latency of a same-router (loopback) delivery, in cycles.
    pub local_latency: u64,
    /// Routing mode.
    pub routing: RoutingMode,
    /// Fault injection configuration.
    pub faults: FaultConfig,
    /// Chaos testing: add a uniformly random extra delay of up to this many
    /// cycles to every delivery. Nonzero jitter breaks point-to-point
    /// ordering (like adaptive routing), so only FtDirCMP tolerates it; the
    /// stress suite uses it to explore message reorderings.
    pub jitter_cycles: u64,
    /// Exploration knob: add a uniformly random extra delay of up to this
    /// many cycles at **every hop** of the route (contention-like noise).
    /// Like `jitter_cycles` it breaks point-to-point ordering, but it skews
    /// with distance, reaching interleavings end-to-end jitter cannot.
    pub hop_jitter_cycles: u64,
    /// Record the virtual-channel class of every message the fault injector
    /// examines (see [`FaultInjector::injection_log`]). The exploration
    /// harness uses the log to aim deterministic drops at protocol-dense
    /// message classes.
    pub record_injections: bool,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            width: 4,
            height: 4,
            link_bytes_per_cycle: 16,
            router_latency: 4,
            local_latency: 1,
            routing: RoutingMode::DimensionOrdered,
            faults: FaultConfig::none(),
            jitter_cycles: 0,
            hop_jitter_cycles: 0,
            record_injections: false,
        }
    }
}

/// Result of injecting a message into the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message will arrive at the destination at the given cycle.
    Delivered {
        /// Arrival time at the destination's network interface.
        at: Cycle,
    },
    /// A transient fault lost the message; it will never arrive.
    Dropped,
}

impl SendOutcome {
    /// Arrival time if delivered.
    pub fn delivered_at(self) -> Option<Cycle> {
        match self {
            SendOutcome::Delivered { at } => Some(at),
            SendOutcome::Dropped => None,
        }
    }

    /// Whether the message was lost.
    pub fn is_dropped(self) -> bool {
        matches!(self, SendOutcome::Dropped)
    }
}

/// The on-chip network: a timing-and-fault oracle for message delivery.
///
/// [`Mesh::send`] walks the message's route, reserving bandwidth on each
/// link (per-link FIFO reservation), and returns the arrival cycle. Because
/// XY routes are deterministic and link reservations are made in send order,
/// delivery between any `(source, destination)` pair is FIFO — the ordered
/// network of the paper's base architecture. Adaptive mode deliberately
/// breaks this property.
///
/// Messages between co-located nodes (same router) use a fixed local latency
/// and are exempt from fault injection: they never traverse a mesh link, and
/// the paper's fault model concerns the interconnection network only.
#[derive(Debug, Clone)]
pub struct Mesh {
    topology: Topology,
    config: MeshConfig,
    link_free: Vec<Cycle>,
    link_busy: Vec<u64>,
    fault: FaultInjector,
    /// Correlated fault-domain state (per-link channels + event masks);
    /// `None` unless `config.faults.domains` is set, keeping the legacy
    /// send path byte-identical.
    domain: Option<DomainState>,
    route_rng: DetRng,
    jitter_rng: DetRng,
    stats: NocStats,
}

/// Live fault-domain state: per-link Gilbert–Elliott channels plus the
/// hard-down / degraded link masks derived from the event timeline.
///
/// Masks are recomputed lazily: they stay valid for the window
/// `[valid_from, valid_until)` between event boundaries, so the per-message
/// cost is one range check.
#[derive(Debug, Clone)]
struct DomainState {
    cfg: FaultDomainConfig,
    channel_cfg: LinkChannelConfig,
    channels: Vec<LinkChannel>,
    /// Hard-down links (active flaps): nothing traverses them.
    down: Vec<bool>,
    /// Event-degraded links (brown-outs, region bursts): forced into the
    /// bad channel state.
    degraded: Vec<bool>,
    valid_from: u64,
    valid_until: u64,
    any_down: bool,
}

impl DomainState {
    fn new(cfg: FaultDomainConfig, slots: usize) -> Self {
        let channel_cfg = cfg.effective_channel();
        DomainState {
            cfg,
            channel_cfg,
            channels: vec![LinkChannel::default(); slots],
            down: vec![false; slots],
            degraded: vec![false; slots],
            // Empty validity window: the first send recomputes the masks.
            valid_from: 0,
            valid_until: 0,
            any_down: false,
        }
    }

    /// Brings the masks up to date for `now`. Pure function of the event
    /// timeline and `now` (never of call order), so non-monotonic send
    /// times recompute correctly.
    fn refresh(&mut self, now: u64, topo: &Topology) {
        if self.valid_from <= now && now < self.valid_until {
            return;
        }
        self.down.iter_mut().for_each(|d| *d = false);
        self.degraded.iter_mut().for_each(|d| *d = false);
        self.any_down = false;
        let (mut from, mut until) = (0u64, u64::MAX);
        for i in 0..self.cfg.events.len() {
            let (start, end) = self.cfg.events[i].window();
            if self.cfg.events[i].active_at(now) {
                from = from.max(start);
                until = until.min(end);
                let ev = self.cfg.events[i].clone();
                self.apply(&ev, topo);
            } else if now < start {
                until = until.min(start);
            } else {
                from = from.max(end);
            }
        }
        self.valid_from = from;
        self.valid_until = until;
    }

    /// Marks the links an active event takes down or degrades. Routers
    /// outside the mesh (possible when a domain config is reused across
    /// mesh sizes) are ignored.
    fn apply(&mut self, ev: &FaultEvent, topo: &Topology) {
        match *ev {
            FaultEvent::LinkFlap { from, dir, .. } => {
                if from.index() < topo.router_count() && topo.neighbor(from, dir).is_some() {
                    self.down[LinkId::new(from, dir).dense_index()] = true;
                    self.any_down = true;
                }
            }
            FaultEvent::RouterBrownout { router, .. } => {
                if router.index() >= topo.router_count() {
                    return;
                }
                for d in Direction::ALL {
                    if let Some(nb) = topo.neighbor(router, d) {
                        self.degraded[LinkId::new(router, d).dense_index()] = true;
                        self.degraded[LinkId::new(nb, d.opposite()).dense_index()] = true;
                    }
                }
            }
            FaultEvent::RegionBurst {
                epicenter, radius, ..
            } => {
                if epicenter.index() >= topo.router_count() {
                    return;
                }
                for r in 0..topo.router_count() {
                    let rid = RouterId::new(r as u16);
                    if topo.hops(rid, epicenter) > radius {
                        continue;
                    }
                    for d in Direction::ALL {
                        if topo.neighbor(rid, d).is_some() {
                            self.degraded[LinkId::new(rid, d).dense_index()] = true;
                        }
                    }
                }
            }
        }
    }

    /// Steps link `idx`'s channel for one message; returns whether the
    /// channel lost it.
    fn step_link(&mut self, idx: usize) -> bool {
        let forced = self.degraded[idx];
        self.channels[idx].step(&self.channel_cfg, self.cfg.domain_seed, idx, forced)
    }
}

impl Mesh {
    /// Creates a mesh from a configuration and a deterministic random stream
    /// (used for fault injection and adaptive route selection).
    pub fn new(config: MeshConfig, rng: DetRng) -> Self {
        let topology = Topology::new(config.width, config.height);
        let link_free = vec![Cycle::ZERO; topology.link_slots()];
        let link_busy = vec![0u64; topology.link_slots()];
        let mut fault = FaultInjector::new(config.faults.clone(), rng.fork("fault-injector"));
        if config.record_injections {
            fault.enable_injection_log();
        }
        let route_rng = rng.fork("adaptive-routes");
        let jitter_rng = rng.fork("jitter");
        let domain = config
            .faults
            .domains
            .clone()
            .map(|d| DomainState::new(d, topology.link_slots()));
        Mesh {
            topology,
            config,
            link_free,
            link_busy,
            fault,
            domain,
            route_rng,
            jitter_rng,
            stats: NocStats::new(),
        }
    }

    /// The mesh topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The active configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Traffic statistics collected so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Fault-injection counters.
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault
    }

    /// Replaces the fault configuration mid-run (the fork point of
    /// checkpoint-fork campaigns; see [`FaultInjector::set_config`]).
    pub fn set_fault_config(&mut self, faults: FaultConfig) {
        self.config.faults = faults.clone();
        let domains = faults.domains.clone();
        self.fault.set_config(faults);
        // Fresh channels (count 0): per-link decision streams start at the
        // fork point, so a forked run matches a from-scratch run whose
        // warmup made no domain decisions (channels are gated during
        // warmup, which runs fault-free).
        self.domain = domains.map(|d| DomainState::new(d, self.topology.link_slots()));
    }

    /// Injects a message of `size_bytes` at `now` from `src` to `dst` on
    /// virtual-channel class `class`.
    ///
    /// Returns the arrival cycle, or [`SendOutcome::Dropped`] if a transient
    /// fault lost the message. Dropped messages still consume the bandwidth
    /// they used before being lost (the reservation is made either way).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is outside the mesh.
    pub fn send(
        &mut self,
        now: Cycle,
        src: RouterId,
        dst: RouterId,
        size_bytes: u32,
        class: VcClass,
    ) -> SendOutcome {
        assert!(
            src.index() < self.topology.router_count(),
            "src {src} out of range"
        );
        assert!(
            dst.index() < self.topology.router_count(),
            "dst {dst} out of range"
        );

        if src == dst {
            self.stats.record_local();
            return SendOutcome::Delivered {
                at: now + self.config.local_latency,
            };
        }

        if self.domain.is_some() {
            return self.send_through_domains(now, src, dst, size_bytes, class);
        }

        let ser = serialization_cycles(size_bytes, self.config.link_bytes_per_cycle);

        // Walk the route without materializing it: reserve bandwidth on each
        // link as the walker yields it. Split borrows so the route walker
        // (topology + route RNG) and the reservation state stay disjoint.
        let Mesh {
            topology,
            config,
            link_free,
            link_busy,
            route_rng,
            jitter_rng,
            ..
        } = self;
        let mut arrive = now;
        let mut hops = 0u32;
        let mut reserve = |link: crate::LinkId| {
            let idx = link.dense_index();
            let depart = arrive.max(link_free[idx]);
            link_free[idx] = depart + ser;
            link_busy[idx] += ser;
            arrive = depart + ser + config.router_latency;
            if config.hop_jitter_cycles > 0 {
                arrive += jitter_rng.below(config.hop_jitter_cycles + 1);
            }
            hops += 1;
        };
        match config.routing {
            RoutingMode::DimensionOrdered => {
                topology.route_xy_iter(src, dst).for_each(&mut reserve);
            }
            RoutingMode::Adaptive => {
                topology
                    .route_adaptive_iter(src, dst, route_rng)
                    .for_each(&mut reserve);
            }
        }

        if self.fault.should_drop_class(class) {
            self.stats.record_dropped(class, size_bytes);
            return SendOutcome::Dropped;
        }

        if self.config.jitter_cycles > 0 {
            arrive += self.jitter_rng.below(self.config.jitter_cycles + 1);
        }

        let latency = arrive - now;
        self.stats.record_sent(class, size_bytes, hops, latency);
        SendOutcome::Delivered { at: arrive }
    }

    /// Fault-domain send path: like [`Mesh::send`], but every traversed link
    /// steps its Gilbert–Elliott channel, hard-down links stop the walk, and
    /// (in adaptive mode) routing steers around down links via the live
    /// mask. The classic injector still examines every message afterwards so
    /// `drop_indices` schedules and the injection log keep their global
    /// numbering.
    fn send_through_domains(
        &mut self,
        now: Cycle,
        src: RouterId,
        dst: RouterId,
        size_bytes: u32,
        class: VcClass,
    ) -> SendOutcome {
        let ser = serialization_cycles(size_bytes, self.config.link_bytes_per_cycle);
        let Mesh {
            topology,
            config,
            link_free,
            link_busy,
            domain,
            route_rng,
            jitter_rng,
            ..
        } = self;
        let domain = domain.as_mut().expect("domains configured");
        domain.refresh(now.as_u64(), topology);

        let mut arrive = now;
        let mut hops = 0u32;
        let mut cause: Option<DomainDropCause> = None;
        // Reserves bandwidth on `idx` and steps its channel; returns whether
        // the channel lost the message on that link.
        let mut traverse = |idx: usize, domain: &mut DomainState| {
            let depart = arrive.max(link_free[idx]);
            link_free[idx] = depart + ser;
            link_busy[idx] += ser;
            arrive = depart + ser + config.router_latency;
            if config.hop_jitter_cycles > 0 {
                arrive += jitter_rng.below(config.hop_jitter_cycles + 1);
            }
            hops += 1;
            domain.step_link(idx)
        };
        match config.routing {
            RoutingMode::DimensionOrdered => {
                // XY routes are fixed: a down link on the path kills the
                // message (no detour exists in dimension order).
                for link in topology.route_xy_iter(src, dst) {
                    let idx = link.dense_index();
                    if domain.down[idx] {
                        cause = Some(DomainDropCause::LinkDown);
                        break;
                    }
                    if traverse(idx, domain) {
                        cause = Some(DomainDropCause::Channel);
                        break;
                    }
                }
            }
            RoutingMode::Adaptive => {
                // Masked minimal-adaptive walk: identical to
                // `route_adaptive_iter` when nothing is down (same productive
                // set, one RNG draw per two-way hop), but filters hard-down
                // links out of the productive set first.
                let dstc = topology.coord(dst);
                let mut cur = src;
                loop {
                    let c = topology.coord(cur);
                    let mut productive = [Direction::East; 2];
                    let mut n = 0;
                    if c.x() < dstc.x() {
                        productive[n] = Direction::East;
                        n += 1;
                    } else if c.x() > dstc.x() {
                        productive[n] = Direction::West;
                        n += 1;
                    }
                    if c.y() < dstc.y() {
                        productive[n] = Direction::South;
                        n += 1;
                    } else if c.y() > dstc.y() {
                        productive[n] = Direction::North;
                        n += 1;
                    }
                    if n == 0 {
                        break;
                    }
                    let mut alive = [Direction::East; 2];
                    let mut m = 0;
                    for d in &productive[..n] {
                        if !domain.down[LinkId::new(cur, *d).dense_index()] {
                            alive[m] = *d;
                            m += 1;
                        }
                    }
                    let dir = match m {
                        0 => {
                            // Minimal routing only: every productive link is
                            // down, so the message has no surviving route.
                            cause = Some(DomainDropCause::Unroutable);
                            break;
                        }
                        1 => alive[0],
                        _ => *route_rng.pick(&alive[..m]),
                    };
                    let idx = LinkId::new(cur, dir).dense_index();
                    if traverse(idx, domain) {
                        cause = Some(DomainDropCause::Channel);
                        break;
                    }
                    cur = topology
                        .neighbor(cur, dir)
                        .expect("route stepped off the mesh");
                }
            }
        }

        // The injector must see every non-local message even when the domain
        // layer already lost it: drop-schedule indices and the injection log
        // count examined messages, not surviving ones.
        let injector_drop = self.fault.should_drop_class(class);
        if let Some(c) = cause {
            self.stats.record_domain_drop(c);
        }
        if cause.is_some() || injector_drop {
            self.stats.record_dropped(class, size_bytes);
            return SendOutcome::Dropped;
        }

        if self.config.jitter_cycles > 0 {
            arrive += self.jitter_rng.below(self.config.jitter_cycles + 1);
        }

        let latency = arrive - now;
        self.stats.record_sent(class, size_bytes, hops, latency);
        SendOutcome::Delivered { at: arrive }
    }

    /// Busy cycles accumulated per link (dense index order).
    pub fn link_busy_cycles(&self) -> &[u64] {
        &self.link_busy
    }

    /// Utilization of the busiest link over `elapsed` cycles (0.0..=1.0).
    pub fn max_link_utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let max = self.link_busy.iter().copied().max().unwrap_or(0);
        (max as f64 / elapsed as f64).min(1.0)
    }

    /// Mean utilization across links that exist and carried traffic.
    pub fn mean_link_utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let used: Vec<u64> = self.link_busy.iter().copied().filter(|b| *b > 0).collect();
        if used.is_empty() {
            return 0.0;
        }
        let sum: u64 = used.iter().sum();
        (sum as f64 / used.len() as f64 / elapsed as f64).min(1.0)
    }

    /// Zero-load latency for a message of `size_bytes` over `hops` hops
    /// (useful for calibrating protocol timeouts against the network).
    pub fn zero_load_latency(&self, hops: u32, size_bytes: u32) -> u64 {
        let ser = serialization_cycles(size_bytes, self.config.link_bytes_per_cycle);
        u64::from(hops) * (ser + self.config.router_latency)
    }

    /// Worst-case zero-load latency across the mesh for a message of
    /// `size_bytes` (corner to corner).
    pub fn max_zero_load_latency(&self, size_bytes: u32) -> u64 {
        let hops = u32::from(self.config.width - 1) + u32::from(self.config.height - 1);
        self.zero_load_latency(hops, size_bytes)
    }
}

fn serialization_cycles(size_bytes: u32, bytes_per_cycle: u32) -> u64 {
    u64::from(size_bytes.div_ceil(bytes_per_cycle.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(MeshConfig::default(), DetRng::from_seed(42))
    }

    fn faulty_mesh(rate: f64) -> Mesh {
        let config = MeshConfig {
            faults: FaultConfig::per_million(rate),
            ..MeshConfig::default()
        };
        Mesh::new(config, DetRng::from_seed(42))
    }

    #[test]
    fn zero_load_latency_matches_formula() {
        let m = mesh();
        // 8 bytes over 16 B/cycle = 1 cycle serialization + 4 router cycles per hop.
        assert_eq!(m.zero_load_latency(3, 8), 3 * (1 + 4));
        // 72 bytes = 5 cycles serialization.
        assert_eq!(m.zero_load_latency(1, 72), 5 + 4);
    }

    #[test]
    fn delivery_time_is_zero_load_when_uncontended() {
        let mut m = mesh();
        let out = m.send(
            Cycle::ZERO,
            RouterId::new(0),
            RouterId::new(3),
            8,
            VcClass::Request,
        );
        assert_eq!(out.delivered_at(), Some(Cycle::new(3 * 5)));
    }

    #[test]
    fn local_delivery_uses_local_latency_and_skips_faults() {
        // 100% loss rate, but local messages never traverse the network.
        let mut m = faulty_mesh(1_000_000.0);
        let out = m.send(
            Cycle::new(5),
            RouterId::new(2),
            RouterId::new(2),
            72,
            VcClass::Response,
        );
        assert_eq!(out.delivered_at(), Some(Cycle::new(6)));
        assert_eq!(m.stats().local_deliveries(), 1);
    }

    #[test]
    fn contention_delays_later_messages() {
        let mut m = mesh();
        let first = m
            .send(
                Cycle::ZERO,
                RouterId::new(0),
                RouterId::new(1),
                72,
                VcClass::Response,
            )
            .delivered_at()
            .unwrap();
        let second = m
            .send(
                Cycle::ZERO,
                RouterId::new(0),
                RouterId::new(1),
                72,
                VcClass::Response,
            )
            .delivered_at()
            .unwrap();
        assert!(second > first, "second message must queue behind the first");
        // Second waits 5 cycles of serialization before starting.
        assert_eq!(second - first, 5);
    }

    #[test]
    fn same_pair_delivery_is_fifo_under_xy_routing() {
        let mut m = mesh();
        let mut last = Cycle::ZERO;
        for i in 0..50u64 {
            let at = m
                .send(
                    Cycle::new(i), // strictly increasing send times
                    RouterId::new(0),
                    RouterId::new(15),
                    if i % 2 == 0 { 8 } else { 72 },
                    VcClass::Request,
                )
                .delivered_at()
                .unwrap();
            assert!(at >= last, "FIFO violated: {at} < {last}");
            last = at;
        }
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut m = faulty_mesh(1_000_000.0);
        let out = m.send(
            Cycle::ZERO,
            RouterId::new(0),
            RouterId::new(5),
            8,
            VcClass::Request,
        );
        assert!(out.is_dropped());
        assert_eq!(m.stats().total_dropped(), 1);
        assert_eq!(m.stats().messages(VcClass::Request), 0);
    }

    #[test]
    fn moderate_loss_rate_is_respected() {
        let mut m = faulty_mesh(100_000.0); // 10%
        let mut dropped = 0;
        for i in 0..20_000u64 {
            let out = m.send(
                Cycle::new(i * 100),
                RouterId::new(0),
                RouterId::new(15),
                8,
                VcClass::Request,
            );
            if out.is_dropped() {
                dropped += 1;
            }
        }
        let rate = f64::from(dropped) / 20_000.0;
        assert!((0.08..0.12).contains(&rate), "rate={rate}");
    }

    #[test]
    fn stats_track_messages_and_bytes() {
        let mut m = mesh();
        m.send(
            Cycle::ZERO,
            RouterId::new(0),
            RouterId::new(1),
            8,
            VcClass::Request,
        );
        m.send(
            Cycle::ZERO,
            RouterId::new(1),
            RouterId::new(2),
            72,
            VcClass::Response,
        );
        assert_eq!(m.stats().total_messages(), 2);
        assert_eq!(m.stats().total_bytes(), 80);
        assert_eq!(m.stats().messages(VcClass::Request), 1);
        assert_eq!(m.stats().bytes(VcClass::Response), 72);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = faulty_mesh(5000.0);
        let mut b = faulty_mesh(5000.0);
        for i in 0..2000u64 {
            let src = RouterId::new((i % 16) as u16);
            let dst = RouterId::new(((i * 7 + 3) % 16) as u16);
            assert_eq!(
                a.send(Cycle::new(i * 3), src, dst, 8, VcClass::Request),
                b.send(Cycle::new(i * 3), src, dst, 8, VcClass::Request)
            );
        }
    }

    #[test]
    fn adaptive_mode_still_delivers() {
        let config = MeshConfig {
            routing: RoutingMode::Adaptive,
            ..MeshConfig::default()
        };
        let mut m = Mesh::new(config, DetRng::from_seed(1));
        for i in 0..100u64 {
            let out = m.send(
                Cycle::new(i * 10),
                RouterId::new(0),
                RouterId::new(15),
                8,
                VcClass::Request,
            );
            assert!(out.delivered_at().is_some());
        }
    }

    #[test]
    fn link_utilization_tracks_traffic() {
        let mut m = mesh();
        assert_eq!(m.max_link_utilization(100), 0.0);
        for i in 0..10u64 {
            m.send(
                Cycle::new(i * 10),
                RouterId::new(0),
                RouterId::new(1),
                72,
                VcClass::Response,
            );
        }
        // 10 messages x 5 serialization cycles on the single 0->1 link.
        assert_eq!(m.link_busy_cycles().iter().copied().max(), Some(50));
        assert!((m.max_link_utilization(100) - 0.5).abs() < 1e-9);
        assert!(m.mean_link_utilization(100) > 0.0);
        assert_eq!(m.max_link_utilization(0), 0.0);
    }

    #[test]
    fn jitter_perturbs_delivery_times() {
        let config = MeshConfig {
            jitter_cycles: 500,
            ..MeshConfig::default()
        };
        let mut m = Mesh::new(config, DetRng::from_seed(5));
        let mut distinct = std::collections::HashSet::new();
        for i in 0..32u64 {
            let at = m
                .send(
                    Cycle::new(i * 1000),
                    RouterId::new(0),
                    RouterId::new(15),
                    8,
                    VcClass::Request,
                )
                .delivered_at()
                .unwrap();
            distinct.insert(at - Cycle::new(i * 1000));
        }
        assert!(distinct.len() > 5, "jitter should spread latencies");
    }

    #[test]
    fn hop_jitter_perturbs_and_skews_with_distance() {
        let config = MeshConfig {
            hop_jitter_cycles: 40,
            ..MeshConfig::default()
        };
        let mut m = Mesh::new(config, DetRng::from_seed(6));
        let mut distinct = std::collections::HashSet::new();
        let mut max_latency = 0;
        for i in 0..32u64 {
            let sent = Cycle::new(i * 1000);
            let at = m
                .send(
                    sent,
                    RouterId::new(0),
                    RouterId::new(15),
                    8,
                    VcClass::Request,
                )
                .delivered_at()
                .unwrap();
            distinct.insert(at - sent);
            max_latency = max_latency.max(at - sent);
        }
        assert!(distinct.len() > 5, "hop jitter should spread latencies");
        // 6 hops of up to 40 extra cycles each can exceed one delivery's
        // worth of end-to-end jitter.
        assert!(max_latency > m.zero_load_latency(6, 8));
    }

    #[test]
    fn injection_log_matches_drop_indices() {
        let config = MeshConfig {
            record_injections: true,
            ..MeshConfig::default()
        };
        let mut m = Mesh::new(config, DetRng::from_seed(7));
        m.send(
            Cycle::ZERO,
            RouterId::new(0),
            RouterId::new(1),
            8,
            VcClass::Request,
        );
        // Local delivery: never examined by the injector, absent from the log.
        m.send(
            Cycle::ZERO,
            RouterId::new(2),
            RouterId::new(2),
            72,
            VcClass::Response,
        );
        m.send(
            Cycle::ZERO,
            RouterId::new(0),
            RouterId::new(4),
            8,
            VcClass::Unblock,
        );
        assert_eq!(
            m.fault_injector().injection_log(),
            &[VcClass::Request, VcClass::Unblock]
        );
    }

    #[test]
    fn zero_jitter_is_deterministic_zero_load() {
        let mut m = mesh();
        let a = m.send(
            Cycle::new(0),
            RouterId::new(0),
            RouterId::new(3),
            8,
            VcClass::Request,
        );
        let mut m2 = mesh();
        let b = m2.send(
            Cycle::new(0),
            RouterId::new(0),
            RouterId::new(3),
            8,
            VcClass::Request,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn max_zero_load_latency_covers_corner_to_corner() {
        let m = mesh();
        assert_eq!(m.max_zero_load_latency(8), m.zero_load_latency(6, 8));
    }

    mod domains {
        use super::*;
        use crate::domain::{FaultDomainConfig, FaultEvent, LinkChannelConfig};

        fn flap(start: u64, end: u64) -> FaultEvent {
            // Takes down the eastward link out of r0: the first hop of every
            // XY route from r0 to any router in a higher column.
            FaultEvent::LinkFlap {
                from: RouterId::new(0),
                dir: Direction::East,
                start,
                end,
            }
        }

        fn domain_mesh(cfg: FaultDomainConfig, routing: RoutingMode) -> Mesh {
            let config = MeshConfig {
                routing,
                faults: FaultConfig::none().with_domains(cfg),
                ..MeshConfig::default()
            };
            Mesh::new(config, DetRng::from_seed(42))
        }

        fn probe(m: &mut Mesh, at: u64) -> SendOutcome {
            m.send(
                Cycle::new(at),
                RouterId::new(0),
                RouterId::new(3),
                8,
                VcClass::Request,
            )
        }

        #[test]
        fn xy_messages_drop_only_inside_flap_window() {
            let cfg = FaultDomainConfig::events(vec![flap(100, 200)]);
            let mut m = domain_mesh(cfg, RoutingMode::DimensionOrdered);
            assert!(probe(&mut m, 50).delivered_at().is_some());
            assert!(probe(&mut m, 100).is_dropped());
            assert!(probe(&mut m, 199).is_dropped());
            assert!(probe(&mut m, 200).delivered_at().is_some());
            assert_eq!(m.stats().link_down_drops(), 2);
            assert_eq!(m.stats().total_dropped(), 2);
        }

        #[test]
        fn adaptive_routes_around_a_down_link() {
            let cfg = FaultDomainConfig::events(vec![flap(0, 1000)]);
            let mut m = domain_mesh(cfg, RoutingMode::Adaptive);
            // r0 -> r5 has a productive south alternative at r0, so every
            // message survives the downed east link.
            for i in 0..50u64 {
                let out = m.send(
                    Cycle::new(i * 10),
                    RouterId::new(0),
                    RouterId::new(5),
                    8,
                    VcClass::Request,
                );
                assert!(out.delivered_at().is_some(), "message {i} dropped");
            }
            assert_eq!(m.stats().link_down_drops(), 0);
            assert_eq!(m.stats().unroutable_drops(), 0);
        }

        #[test]
        fn adaptive_counts_unroutable_when_no_minimal_route_survives() {
            // r0 -> r3 is a straight east run: the only productive direction
            // at r0 is east, so a down east link strands the message.
            let cfg = FaultDomainConfig::events(vec![flap(0, 1000)]);
            let mut m = domain_mesh(cfg, RoutingMode::Adaptive);
            assert!(probe(&mut m, 10).is_dropped());
            assert_eq!(m.stats().unroutable_drops(), 1);
            assert_eq!(m.stats().link_down_drops(), 0);
        }

        #[test]
        fn degraded_region_loses_messages_at_the_bad_rate() {
            // Region burst covering the whole mesh with a lossy degraded
            // state and a lossless good state: roughly drop_bad of messages
            // inside the window are lost, none outside it.
            let cfg = FaultDomainConfig::events(vec![FaultEvent::RegionBurst {
                epicenter: RouterId::new(5),
                radius: 6,
                start: 0,
                end: 1_000_000,
            }])
            .with_channel(LinkChannelConfig::passthrough(0.2));
            let mut m = domain_mesh(cfg, RoutingMode::DimensionOrdered);
            let mut dropped = 0u32;
            for i in 0..4000u64 {
                if probe(&mut m, i * 100).is_dropped() {
                    dropped += 1;
                }
            }
            // 3 links per route, each with p=0.2: P(loss) = 1 - 0.8^3 ~ 0.49.
            let rate = f64::from(dropped) / 4000.0;
            assert!((0.4..0.6).contains(&rate), "rate={rate}");
            assert_eq!(m.stats().channel_drops(), u64::from(dropped));
            // Outside the window nothing is degraded and the good state is
            // lossless.
            assert!(probe(&mut m, 2_000_000).delivered_at().is_some());
        }

        #[test]
        fn brownout_degrades_links_adjacent_to_the_router() {
            let cfg = FaultDomainConfig::events(vec![FaultEvent::RouterBrownout {
                router: RouterId::new(1),
                start: 0,
                end: u64::MAX,
            }])
            .with_channel(LinkChannelConfig::passthrough(1.0));
            let mut m = domain_mesh(cfg, RoutingMode::DimensionOrdered);
            // Route 0->3 crosses r1: its first hop (r0 east, an inbound link
            // of r1) is degraded with certain loss.
            assert!(probe(&mut m, 0).is_dropped());
            // Route 8->11 stays two rows away from r1 and survives.
            let far = m.send(
                Cycle::ZERO,
                RouterId::new(8),
                RouterId::new(11),
                8,
                VcClass::Request,
            );
            assert!(far.delivered_at().is_some());
        }

        #[test]
        fn domain_decisions_are_deterministic() {
            let cfg = FaultDomainConfig::events(vec![flap(100, 200)])
                .with_channel(LinkChannelConfig::passthrough(0.3));
            let mut a = domain_mesh(cfg.clone(), RoutingMode::DimensionOrdered);
            let mut b = domain_mesh(cfg, RoutingMode::DimensionOrdered);
            for i in 0..2000u64 {
                let src = RouterId::new((i % 16) as u16);
                let dst = RouterId::new(((i * 7 + 3) % 16) as u16);
                assert_eq!(
                    a.send(Cycle::new(i * 3), src, dst, 8, VcClass::Request),
                    b.send(Cycle::new(i * 3), src, dst, 8, VcClass::Request)
                );
            }
        }

        #[test]
        fn injector_examines_messages_the_domain_already_dropped() {
            // A drop schedule indexed from run start must keep firing at the
            // same global indices even when the domain layer loses earlier
            // messages: both layers examine every non-local message.
            let cfg = FaultDomainConfig::events(vec![flap(0, 1000)]);
            let config = MeshConfig {
                faults: FaultConfig::drop_exactly(vec![2]).with_domains(cfg),
                record_injections: true,
                ..MeshConfig::default()
            };
            let mut m = Mesh::new(config, DetRng::from_seed(7));
            // Messages 0/1 cross the down link (domain drops), message 2 is
            // unaffected by the flap but hits the schedule.
            assert!(probe(&mut m, 0).is_dropped());
            assert!(probe(&mut m, 1).is_dropped());
            let south = m.send(
                Cycle::new(2),
                RouterId::new(0),
                RouterId::new(4),
                8,
                VcClass::Request,
            );
            assert!(south.is_dropped(), "schedule index 2 must still fire");
            assert_eq!(m.stats().link_down_drops(), 2);
            assert_eq!(m.fault_injector().messages_dropped(), 1);
            assert_eq!(m.fault_injector().injection_log().len(), 3);
        }

        #[test]
        fn set_fault_config_installs_and_clears_domains() {
            let mut m = mesh();
            assert!(probe(&mut m, 0).delivered_at().is_some());
            m.set_fault_config(
                FaultConfig::none().with_domains(FaultDomainConfig::events(vec![flap(0, 1000)])),
            );
            assert!(probe(&mut m, 10).is_dropped());
            m.set_fault_config(FaultConfig::none());
            assert!(probe(&mut m, 20).delivered_at().is_some());
        }

        #[test]
        fn inactive_domains_leave_fault_free_timing_identical() {
            // An installed but event-free, channel-free domain config must
            // not perturb delivery times relative to the legacy path.
            let cfg = FaultDomainConfig::events(vec![]);
            let mut with = domain_mesh(cfg, RoutingMode::DimensionOrdered);
            let mut without = mesh();
            for i in 0..500u64 {
                let src = RouterId::new((i % 16) as u16);
                let dst = RouterId::new(((i * 11 + 5) % 16) as u16);
                assert_eq!(
                    with.send(Cycle::new(i * 7), src, dst, 72, VcClass::Response),
                    without.send(Cycle::new(i * 7), src, dst, 72, VcClass::Response)
                );
            }
            assert_eq!(with.stats().total_dropped(), 0);
        }
    }
}
