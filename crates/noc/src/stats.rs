//! Network traffic statistics.

use ftdircmp_stats::{Counter, Histogram};

use crate::VcClass;

/// Traffic counters collected by the mesh, broken down by virtual-channel
/// class — the raw material for the paper's Figure 4 (network overhead in
/// messages and bytes by message category).
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    messages_sent: [Counter; 6],
    bytes_sent: [Counter; 6],
    messages_dropped: [Counter; 6],
    bytes_dropped: [Counter; 6],
    hop_histogram: Histogram,
    latency_histogram: Histogram,
    local_deliveries: Counter,
    /// Fault-domain drop causes (all zero without domains configured).
    dropped_link_down: Counter,
    dropped_channel: Counter,
    dropped_unroutable: Counter,
}

/// Why the fault-domain layer lost a message (see DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainDropCause {
    /// The route crossed a hard-down (flapping) link.
    LinkDown,
    /// A per-link Gilbert–Elliott channel (possibly event-degraded) lost it.
    Channel,
    /// Adaptive routing found no surviving minimal route.
    Unroutable,
}

impl NocStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        NocStats::default()
    }

    pub(crate) fn record_sent(&mut self, class: VcClass, bytes: u32, hops: u32, latency: u64) {
        self.messages_sent[class.index()].incr();
        self.bytes_sent[class.index()].add(u64::from(bytes));
        self.hop_histogram.record(u64::from(hops));
        self.latency_histogram.record(latency);
    }

    pub(crate) fn record_dropped(&mut self, class: VcClass, bytes: u32) {
        self.messages_dropped[class.index()].incr();
        self.bytes_dropped[class.index()].add(u64::from(bytes));
    }

    pub(crate) fn record_local(&mut self) {
        self.local_deliveries.incr();
    }

    pub(crate) fn record_domain_drop(&mut self, cause: DomainDropCause) {
        match cause {
            DomainDropCause::LinkDown => self.dropped_link_down.incr(),
            DomainDropCause::Channel => self.dropped_channel.incr(),
            DomainDropCause::Unroutable => self.dropped_unroutable.incr(),
        }
    }

    /// Messages successfully injected for `class` (delivered or in flight).
    pub fn messages(&self, class: VcClass) -> u64 {
        self.messages_sent[class.index()].get()
    }

    /// Bytes successfully injected for `class`.
    pub fn bytes(&self, class: VcClass) -> u64 {
        self.bytes_sent[class.index()].get()
    }

    /// Messages lost to transient faults for `class`.
    pub fn dropped(&self, class: VcClass) -> u64 {
        self.messages_dropped[class.index()].get()
    }

    /// Total messages across all classes (including dropped ones, which did
    /// consume network resources before being lost).
    pub fn total_messages(&self) -> u64 {
        VcClass::ALL
            .iter()
            .map(|c| self.messages(*c) + self.dropped(*c))
            .sum()
    }

    /// Total bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        VcClass::ALL
            .iter()
            .map(|c| self.bytes(*c) + self.bytes_dropped[c.index()].get())
            .sum()
    }

    /// Total messages lost to faults.
    pub fn total_dropped(&self) -> u64 {
        VcClass::ALL.iter().map(|c| self.dropped(*c)).sum()
    }

    /// Same-router deliveries that bypassed the mesh.
    pub fn local_deliveries(&self) -> u64 {
        self.local_deliveries.get()
    }

    /// Messages lost crossing a hard-down (flapping) link.
    pub fn link_down_drops(&self) -> u64 {
        self.dropped_link_down.get()
    }

    /// Messages lost to per-link channel state (ambient or event-degraded).
    pub fn channel_drops(&self) -> u64 {
        self.dropped_channel.get()
    }

    /// Messages dropped because adaptive routing found no surviving route.
    pub fn unroutable_drops(&self) -> u64 {
        self.dropped_unroutable.get()
    }

    /// Distribution of hop counts.
    pub fn hops(&self) -> &Histogram {
        &self.hop_histogram
    }

    /// Distribution of end-to-end network latencies (cycles).
    pub fn latency(&self) -> &Histogram {
        &self.latency_histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_class() {
        let mut s = NocStats::new();
        s.record_sent(VcClass::Request, 8, 3, 12);
        s.record_sent(VcClass::Request, 8, 1, 4);
        s.record_sent(VcClass::Response, 72, 2, 20);
        assert_eq!(s.messages(VcClass::Request), 2);
        assert_eq!(s.bytes(VcClass::Request), 16);
        assert_eq!(s.messages(VcClass::Response), 1);
        assert_eq!(s.bytes(VcClass::Response), 72);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 88);
    }

    #[test]
    fn drops_are_counted_separately_but_in_totals() {
        let mut s = NocStats::new();
        s.record_sent(VcClass::Unblock, 8, 2, 10);
        s.record_dropped(VcClass::Unblock, 8);
        assert_eq!(s.messages(VcClass::Unblock), 1);
        assert_eq!(s.dropped(VcClass::Unblock), 1);
        assert_eq!(s.total_dropped(), 1);
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_bytes(), 16);
    }

    #[test]
    fn histograms_track_hops_and_latency() {
        let mut s = NocStats::new();
        s.record_sent(VcClass::Forward, 8, 5, 33);
        assert_eq!(s.hops().max(), Some(5));
        assert_eq!(s.latency().max(), Some(33));
    }

    #[test]
    fn local_deliveries_tracked() {
        let mut s = NocStats::new();
        s.record_local();
        s.record_local();
        assert_eq!(s.local_deliveries(), 2);
    }

    #[test]
    fn domain_drop_causes_tracked_separately() {
        let mut s = NocStats::new();
        s.record_domain_drop(DomainDropCause::LinkDown);
        s.record_domain_drop(DomainDropCause::LinkDown);
        s.record_domain_drop(DomainDropCause::Channel);
        s.record_domain_drop(DomainDropCause::Unroutable);
        assert_eq!(s.link_down_drops(), 2);
        assert_eq!(s.channel_drops(), 1);
        assert_eq!(s.unroutable_drops(), 1);
    }
}
