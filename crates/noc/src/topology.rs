//! Mesh geometry: routers, coordinates, links and routes.

use ftdircmp_sim::DetRng;

/// Identifier of a router (one per tile) in row-major order.
///
/// # Example
///
/// ```
/// use ftdircmp_noc::{RouterId, Topology};
///
/// let topo = Topology::new(4, 4);
/// let r = RouterId::new(5);
/// assert_eq!(topo.coord(r).x(), 1);
/// assert_eq!(topo.coord(r).y(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouterId(u16);

impl RouterId {
    /// Creates a router id from a raw index.
    pub const fn new(index: u16) -> Self {
        RouterId(index)
    }

    /// Raw index (row-major).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RouterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Grid coordinate of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    x: u16,
    y: u16,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Column (0 = west).
    pub const fn x(self) -> u16 {
        self.x
    }

    /// Row (0 = north).
    pub const fn y(self) -> u16 {
        self.y
    }
}

/// One of the four mesh directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Towards larger x.
    East,
    /// Towards smaller x.
    West,
    /// Towards larger y.
    South,
    /// Towards smaller y.
    North,
}

impl Direction {
    /// All directions, in index order.
    pub const ALL: [Direction; 4] = [
        Direction::East,
        Direction::West,
        Direction::South,
        Direction::North,
    ];

    /// Dense index for array-backed per-direction state.
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::South => 2,
            Direction::North => 3,
        }
    }

    /// The opposite direction (the one a neighbor uses to point back).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::South => Direction::North,
            Direction::North => Direction::South,
        }
    }

    /// Lowercase label used in job specs and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            Direction::East => "east",
            Direction::West => "west",
            Direction::South => "south",
            Direction::North => "north",
        }
    }

    /// Parses a [`Direction::label`] string.
    pub fn from_label(s: &str) -> Option<Direction> {
        Direction::ALL.into_iter().find(|d| d.label() == s)
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A directional physical link, identified by its source router and
/// direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId {
    from: RouterId,
    dir: Direction,
}

impl LinkId {
    /// Creates a link id from its source router and direction. Used by the
    /// fault-domain layer to map scheduled events onto link mask slots; the
    /// route walkers build their own links internally.
    pub const fn new(from: RouterId, dir: Direction) -> Self {
        LinkId { from, dir }
    }

    /// Source router of the link.
    pub fn from(self) -> RouterId {
        self.from
    }

    /// Direction the link points.
    pub fn dir(self) -> Direction {
        self.dir
    }

    /// Dense index into a per-link array of `4 * router_count` slots.
    pub fn dense_index(self) -> usize {
        self.from.index() * 4 + self.dir.index()
    }
}

/// Rectangular 2D mesh topology.
#[derive(Debug, Clone)]
pub struct Topology {
    width: u16,
    height: u16,
}

impl Topology {
    /// Creates a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Topology { width, height }
    }

    /// Mesh width (columns).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Number of dense link slots (including nonexistent edge links).
    pub fn link_slots(&self) -> usize {
        self.router_count() * 4
    }

    /// Coordinate of a router.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn coord(&self, r: RouterId) -> Coord {
        assert!(r.index() < self.router_count(), "router {r} out of range");
        Coord::new(r.index() as u16 % self.width, r.index() as u16 / self.width)
    }

    /// Router at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    pub fn router_at(&self, c: Coord) -> RouterId {
        assert!(
            c.x() < self.width && c.y() < self.height,
            "coord outside mesh"
        );
        RouterId::new(c.y() * self.width + c.x())
    }

    /// Neighbor of `r` in direction `d`, if it exists.
    #[allow(clippy::many_single_char_names)] // x/y grid arithmetic
    pub fn neighbor(&self, r: RouterId, d: Direction) -> Option<RouterId> {
        let c = self.coord(r);
        let (x, y) = (i32::from(c.x()), i32::from(c.y()));
        let (nx, ny) = match d {
            Direction::East => (x + 1, y),
            Direction::West => (x - 1, y),
            Direction::South => (x, y + 1),
            Direction::North => (x, y - 1),
        };
        if nx < 0 || ny < 0 || nx >= i32::from(self.width) || ny >= i32::from(self.height) {
            None
        } else {
            Some(self.router_at(Coord::new(nx as u16, ny as u16)))
        }
    }

    /// Manhattan distance in hops between two routers.
    pub fn hops(&self, a: RouterId, b: RouterId) -> u32 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        u32::from(ca.x().abs_diff(cb.x()) + ca.y().abs_diff(cb.y()))
    }

    /// Dimension-ordered (XY) route as an allocation-free walker: the
    /// deterministic path used by DirCMP's ordered-network assumption.
    /// Yields the sequence of links traversed (nothing when `src == dst`).
    pub fn route_xy_iter(&self, src: RouterId, dst: RouterId) -> XyRoute<'_> {
        XyRoute {
            topo: self,
            cur: src,
            dstc: self.coord(dst),
        }
    }

    /// Dimension-ordered (XY) route, collected into a `Vec`. Hot paths walk
    /// [`Topology::route_xy_iter`] instead to avoid the allocation.
    pub fn route_xy(&self, src: RouterId, dst: RouterId) -> Vec<LinkId> {
        self.route_xy_iter(src, dst).collect()
    }

    /// Randomized minimal adaptive route as an allocation-free walker: at
    /// each hop, picks uniformly among the productive directions. Models an
    /// *unordered* network (adaptive routing), the extension discussed in
    /// paper §2 / its reference 6.
    pub fn route_adaptive_iter<'t, 'r>(
        &'t self,
        src: RouterId,
        dst: RouterId,
        rng: &'r mut DetRng,
    ) -> AdaptiveRoute<'t, 'r> {
        AdaptiveRoute {
            topo: self,
            rng,
            cur: src,
            dstc: self.coord(dst),
        }
    }

    /// Randomized minimal adaptive route, collected into a `Vec`. Hot paths
    /// walk [`Topology::route_adaptive_iter`] instead.
    pub fn route_adaptive(&self, src: RouterId, dst: RouterId, rng: &mut DetRng) -> Vec<LinkId> {
        self.route_adaptive_iter(src, dst, rng).collect()
    }
}

/// Allocation-free dimension-ordered route walker.
///
/// Created by [`Topology::route_xy_iter`]; yields exactly
/// `Topology::hops(src, dst)` links.
#[derive(Debug, Clone)]
pub struct XyRoute<'t> {
    topo: &'t Topology,
    cur: RouterId,
    dstc: Coord,
}

impl XyRoute<'_> {
    fn remaining(&self) -> usize {
        let c = self.topo.coord(self.cur);
        usize::from(c.x().abs_diff(self.dstc.x())) + usize::from(c.y().abs_diff(self.dstc.y()))
    }
}

impl Iterator for XyRoute<'_> {
    type Item = LinkId;

    fn next(&mut self) -> Option<LinkId> {
        let c = self.topo.coord(self.cur);
        let dir = if c.x() < self.dstc.x() {
            Direction::East
        } else if c.x() > self.dstc.x() {
            Direction::West
        } else if c.y() < self.dstc.y() {
            Direction::South
        } else if c.y() > self.dstc.y() {
            Direction::North
        } else {
            return None;
        };
        let link = LinkId {
            from: self.cur,
            dir,
        };
        self.cur = self
            .topo
            .neighbor(self.cur, dir)
            .expect("route stepped off the mesh");
        Some(link)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for XyRoute<'_> {}

/// Allocation-free randomized minimal adaptive route walker.
///
/// Created by [`Topology::route_adaptive_iter`]; yields exactly
/// `Topology::hops(src, dst)` links, consuming one RNG draw per hop where
/// both dimensions are productive (identical to the historical `Vec`-based
/// routing, so seeded runs reproduce the same paths).
#[derive(Debug)]
pub struct AdaptiveRoute<'t, 'r> {
    topo: &'t Topology,
    rng: &'r mut DetRng,
    cur: RouterId,
    dstc: Coord,
}

impl AdaptiveRoute<'_, '_> {
    fn remaining(&self) -> usize {
        let c = self.topo.coord(self.cur);
        usize::from(c.x().abs_diff(self.dstc.x())) + usize::from(c.y().abs_diff(self.dstc.y()))
    }
}

impl Iterator for AdaptiveRoute<'_, '_> {
    type Item = LinkId;

    fn next(&mut self) -> Option<LinkId> {
        let c = self.topo.coord(self.cur);
        let mut productive = [Direction::East; 2];
        let mut n = 0;
        if c.x() < self.dstc.x() {
            productive[n] = Direction::East;
            n += 1;
        } else if c.x() > self.dstc.x() {
            productive[n] = Direction::West;
            n += 1;
        }
        if c.y() < self.dstc.y() {
            productive[n] = Direction::South;
            n += 1;
        } else if c.y() > self.dstc.y() {
            productive[n] = Direction::North;
            n += 1;
        }
        let dir = match n {
            0 => return None,
            1 => productive[0],
            _ => *self.rng.pick(&productive[..n]),
        };
        let link = LinkId {
            from: self.cur,
            dir,
        };
        self.cur = self
            .topo
            .neighbor(self.cur, dir)
            .expect("route stepped off the mesh");
        Some(link)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for AdaptiveRoute<'_, '_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(4, 4)
    }

    #[test]
    fn coords_roundtrip() {
        let t = topo();
        for i in 0..16 {
            let r = RouterId::new(i);
            assert_eq!(t.router_at(t.coord(r)), r);
        }
    }

    #[test]
    fn neighbors_respect_mesh_edges() {
        let t = topo();
        // Corner 0 has only east and south neighbors.
        assert_eq!(t.neighbor(RouterId::new(0), Direction::West), None);
        assert_eq!(t.neighbor(RouterId::new(0), Direction::North), None);
        assert_eq!(
            t.neighbor(RouterId::new(0), Direction::East),
            Some(RouterId::new(1))
        );
        assert_eq!(
            t.neighbor(RouterId::new(0), Direction::South),
            Some(RouterId::new(4))
        );
        // Center router has all four.
        for d in [
            Direction::East,
            Direction::West,
            Direction::South,
            Direction::North,
        ] {
            assert!(t.neighbor(RouterId::new(5), d).is_some());
        }
    }

    #[test]
    fn xy_route_length_equals_manhattan_distance() {
        let t = topo();
        for a in 0..16 {
            for b in 0..16 {
                let (ra, rb) = (RouterId::new(a), RouterId::new(b));
                assert_eq!(t.route_xy(ra, rb).len() as u32, t.hops(ra, rb));
            }
        }
    }

    #[test]
    fn xy_route_goes_x_first() {
        let t = topo();
        // 0 (0,0) -> 15 (3,3): 3 easts then 3 souths.
        let path = t.route_xy(RouterId::new(0), RouterId::new(15));
        let dirs: Vec<Direction> = path.iter().map(|l| l.dir()).collect();
        assert_eq!(
            dirs,
            vec![
                Direction::East,
                Direction::East,
                Direction::East,
                Direction::South,
                Direction::South,
                Direction::South
            ]
        );
    }

    #[test]
    fn self_route_is_empty() {
        let t = topo();
        assert!(t.route_xy(RouterId::new(7), RouterId::new(7)).is_empty());
    }

    #[test]
    fn xy_route_is_deterministic() {
        let t = topo();
        let a = t.route_xy(RouterId::new(2), RouterId::new(13));
        let b = t.route_xy(RouterId::new(2), RouterId::new(13));
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_route_is_minimal() {
        let t = topo();
        let mut rng = DetRng::from_seed(3);
        for a in 0..16 {
            for b in 0..16 {
                let (ra, rb) = (RouterId::new(a), RouterId::new(b));
                let path = t.route_adaptive(ra, rb, &mut rng);
                assert_eq!(path.len() as u32, t.hops(ra, rb));
            }
        }
    }

    #[test]
    fn adaptive_route_varies() {
        let t = topo();
        let mut rng = DetRng::from_seed(3);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..32 {
            let path: Vec<usize> = t
                .route_adaptive(RouterId::new(0), RouterId::new(15), &mut rng)
                .iter()
                .map(|l| l.dense_index())
                .collect();
            distinct.insert(path);
        }
        assert!(
            distinct.len() > 1,
            "adaptive routing should explore multiple paths"
        );
    }

    #[test]
    fn dense_link_indices_fit() {
        let t = topo();
        for a in 0..16 {
            for b in 0..16 {
                for l in t.route_xy(RouterId::new(a), RouterId::new(b)) {
                    assert!(l.dense_index() < t.link_slots());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "mesh dimensions must be positive")]
    fn zero_dimension_panics() {
        Topology::new(0, 4);
    }

    #[test]
    fn direction_labels_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_label(d.label()), Some(d));
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
        assert_eq!(Direction::from_label("up"), None);
        assert_eq!(Direction::East.to_string(), "east");
    }

    #[test]
    fn link_constructor_matches_walker_links() {
        let t = topo();
        let walked = t.route_xy(RouterId::new(0), RouterId::new(1))[0];
        let built = LinkId::new(RouterId::new(0), Direction::East);
        assert_eq!(walked, built);
        assert_eq!(built.dense_index(), walked.dense_index());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// XY routes are valid paths on arbitrary mesh shapes: each link
        /// starts where the previous one ended and the walk lands on the
        /// destination in exactly the Manhattan distance.
        #[test]
        fn xy_routes_are_valid_walks(
            w in 1u16..9,
            h in 1u16..9,
            a in 0u16..64,
            b in 0u16..64,
        ) {
            let t = Topology::new(w, h);
            let n = t.router_count() as u16;
            let (src, dst) = (RouterId::new(a % n), RouterId::new(b % n));
            let path = t.route_xy(src, dst);
            prop_assert_eq!(path.len() as u32, t.hops(src, dst));
            let mut cur = src;
            for link in &path {
                prop_assert_eq!(link.from(), cur);
                cur = t.neighbor(cur, link.dir()).expect("link exists");
            }
            prop_assert_eq!(cur, dst);
        }

        /// Adaptive routes are also valid minimal walks.
        #[test]
        fn adaptive_routes_are_valid_walks(
            w in 1u16..9,
            h in 1u16..9,
            a in 0u16..64,
            b in 0u16..64,
            seed in 0u64..1000,
        ) {
            let t = Topology::new(w, h);
            let n = t.router_count() as u16;
            let (src, dst) = (RouterId::new(a % n), RouterId::new(b % n));
            let mut rng = DetRng::from_seed(seed);
            let path = t.route_adaptive(src, dst, &mut rng);
            prop_assert_eq!(path.len() as u32, t.hops(src, dst));
            let mut cur = src;
            for link in &path {
                prop_assert_eq!(link.from(), cur);
                cur = t.neighbor(cur, link.dir()).expect("link exists");
            }
            prop_assert_eq!(cur, dst);
        }
    }
}
