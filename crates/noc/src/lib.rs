//! On-chip interconnection network model for the FtDirCMP simulator.
//!
//! Models the network assumed by the paper's base architecture (§2): a 2D
//! mesh with dimension-ordered (XY) routing, point-to-point **ordered**
//! delivery, virtual-channel classes, finite link bandwidth with contention,
//! and per-hop router latency. An optional adaptive-routing mode provides the
//! *unordered* network of the paper's extension (§2, its reference 6).
//!
//! The network is also where transient faults live (§3 fault model): a
//! message is either delivered intact or dropped — corruption is detected by
//! a per-message CRC at the receiver and the message is discarded, which is
//! indistinguishable from a loss. [`FaultInjector`] implements isolated and
//! bursty losses at a configurable rate per million messages. The
//! [`FaultDomainConfig`] layer extends this with **correlated** faults:
//! per-link Gilbert–Elliott channels, scheduled link flaps, router
//! brown-outs and region bursts, with fault-aware adaptive routing around
//! hard-down links (DESIGN.md §12).
//!
//! The mesh is a *timing and fault oracle*, not an active component: the
//! protocol simulator calls [`Mesh::send`] and receives either the delivery
//! cycle (to schedule the arrival event) or a drop notice.
//!
//! # Example
//!
//! ```
//! use ftdircmp_noc::{Mesh, MeshConfig, RouterId, VcClass};
//! use ftdircmp_sim::{Cycle, DetRng};
//!
//! let mut mesh = Mesh::new(MeshConfig::default(), DetRng::from_seed(1));
//! let out = mesh.send(Cycle::ZERO, RouterId::new(0), RouterId::new(15), 8, VcClass::Request);
//! let at = out.delivered_at().expect("no faults configured");
//! assert!(at > Cycle::ZERO);
//! ```

mod domain;
mod fault;
mod mesh;
mod stats;
mod topology;

pub use domain::{
    link_decision, FaultConfigError, FaultDomainConfig, FaultEvent, LinkChannel, LinkChannelConfig,
    DEFAULT_DEGRADED_DROP,
};
pub use fault::{FaultConfig, FaultInjector};
pub use mesh::{Mesh, MeshConfig, RoutingMode, SendOutcome};
pub use stats::{DomainDropCause, NocStats};
pub use topology::{AdaptiveRoute, Coord, Direction, LinkId, RouterId, Topology, XyRoute};

/// Virtual-channel classes used by the coherence protocols.
///
/// DirCMP uses the first four; FtDirCMP requires **two additional virtual
/// channels** (paper §3.6) for the ownership acknowledgments and the
/// fault-recovery ping traffic, so that recovery messages can never be
/// blocked by the very traffic they are recovering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VcClass {
    /// L1→L2 / L2→memory requests (`GetS`, `GetX`, `Put`).
    Request,
    /// Directory-to-owner forwards and invalidations (`Inv`, forwarded gets).
    Forward,
    /// Data and control responses (`Data`, `DataEx`, `Ack`, `WbAck`).
    Response,
    /// Completion notifications (`Unblock`, `UnblockEx`, `WbData`, `WbNoData`).
    Unblock,
    /// FtDirCMP only: ownership acknowledgments (`AckO`, `AckBD`).
    OwnershipAck,
    /// FtDirCMP only: fault-recovery pings (`UnblockPing`, `WbPing`,
    /// `WbCancel`, `OwnershipPing`, `NackO`).
    Ping,
}

impl VcClass {
    /// All classes, in index order.
    pub const ALL: [VcClass; 6] = [
        VcClass::Request,
        VcClass::Forward,
        VcClass::Response,
        VcClass::Unblock,
        VcClass::OwnershipAck,
        VcClass::Ping,
    ];

    /// Dense index for array-backed per-class state.
    pub fn index(self) -> usize {
        match self {
            VcClass::Request => 0,
            VcClass::Forward => 1,
            VcClass::Response => 2,
            VcClass::Unblock => 3,
            VcClass::OwnershipAck => 4,
            VcClass::Ping => 5,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            VcClass::Request => "request",
            VcClass::Forward => "forward",
            VcClass::Response => "response",
            VcClass::Unblock => "unblock",
            VcClass::OwnershipAck => "ownership",
            VcClass::Ping => "ping",
        }
    }
}

impl std::fmt::Display for VcClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_indices_are_dense_and_unique() {
        let mut seen = [false; 6];
        for c in VcClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {c}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn labels_are_nonempty_and_distinct() {
        let labels: Vec<&str> = VcClass::ALL.iter().map(|c| c.label()).collect();
        for (i, a) in labels.iter().enumerate() {
            assert!(!a.is_empty());
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
