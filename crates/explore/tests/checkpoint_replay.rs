//! Checkpoint-fork replay of exploration repros (DESIGN.md §8).
//!
//! A [`Repro`] records a *deterministic* drop schedule (`drop_exactly`
//! injection indices), and neither the fault-free warmup path nor that
//! schedule consumes random numbers. So a repro whose drops all lie past a
//! campaign fork point replays byte-identically whether it is run from
//! scratch (as `ftdircmp-explore replay` does) or resumed from a shared
//! warmup snapshot with the schedule swapped in at the fork.

use ftdircmp_core::{SimReport, System, SystemConfig};
use ftdircmp_explore::repro::Repro;
use ftdircmp_explore::FailureKind;
use ftdircmp_noc::FaultConfig;
use ftdircmp_workloads::WorkloadSpec;

fn fingerprint(r: &SimReport) -> String {
    format!(
        "cycles={} ops={} mem_ops={} lost={} residual={} events={} \
         max_util={:.12} mean_util={:.12}\nstats={:?}\nnoc={:?}\nviolations={:?}",
        r.cycles,
        r.total_ops,
        r.total_mem_ops,
        r.messages_lost,
        r.residual_activity,
        r.events,
        r.max_link_utilization,
        r.mean_link_utilization,
        r.stats,
        r.noc,
        r.violations,
    )
}

#[test]
fn repro_drop_schedule_replays_identically_from_checkpoint() {
    let spec = WorkloadSpec::named("water-sp").unwrap();
    let base = SystemConfig::ftdircmp().with_seed(1007);
    let wl = spec.generate(base.tiles, 1007);

    // Warm up fault-free to the campaign fork point and note how many
    // messages the injector has examined so far.
    let mut warm_cfg = base.clone();
    warm_cfg.mesh.faults = FaultConfig::none();
    let mut sys = System::new(warm_cfg, &wl).unwrap();
    sys.run_until_retired((wl.total_mem_ops() / 2) as u64)
        .unwrap();
    let seen = sys.messages_examined();

    // A repro whose drop schedule lies strictly past the fork point.
    let mut faulty = base.clone();
    faulty.mesh.faults = FaultConfig::drop_exactly(vec![seen + 50, seen + 1000, seen + 5000]);
    let repro = Repro::capture(
        &faulty,
        &wl,
        vec![seen + 50, seen + 1000, seen + 5000],
        FailureKind::Deadlock,
    );

    // Direct replay: the full from-scratch run `Repro::replay` performs.
    let direct = System::run_workload(repro.config(), &wl).unwrap();

    // Forked replay: resume the warmup snapshot with the schedule active.
    let mut forked = System::restore(&sys.snapshot());
    forked.set_fault_config(FaultConfig::drop_exactly(repro.drops.clone()));
    let forked = forked.run().unwrap();

    assert_eq!(
        forked.messages_lost,
        repro.drops.len() as u64,
        "drop schedule must fire in full after the fork"
    );
    assert_eq!(
        fingerprint(&forked),
        fingerprint(&direct),
        "forked repro replay != direct replay"
    );
}
