//! Integration tests for the exploration harness: schedule-seed
//! determinism, the FtDirCMP robustness claim under perturbed schedules,
//! and the shrinker against the DirCMP negative control.

use ftdircmp_core::{System, SystemConfig};
use ftdircmp_explore::repro::{read_repro, write_repro, Repro};
use ftdircmp_explore::shrink::{shrink_failure, ShrinkOptions};
use ftdircmp_explore::{explore, probe, ExploreOptions, FailureKind};
use ftdircmp_noc::FaultConfig;
use ftdircmp_workloads::WorkloadSpec;

fn small_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::named("water-nsq").expect("in suite");
    spec.ops_per_core = 150;
    spec
}

fn ft_config() -> SystemConfig {
    let mut cfg = SystemConfig::ftdircmp().with_seed(1000);
    cfg.ft.lost_request_timeout = 800;
    cfg.ft.lost_unblock_timeout = 800;
    cfg.ft.lost_ackbd_timeout = 600;
    cfg.ft.lost_data_timeout = 1600;
    cfg.watchdog_cycles = 100_000;
    cfg
}

/// Acceptance criterion: same (workload, config, fault schedule, schedule
/// seed) must produce a byte-identical `SimReport`; different schedule
/// seeds must actually change the execution.
#[test]
fn schedule_seed_runs_are_byte_identical() {
    let wl = small_spec().generate(16, 1000);
    let run = |ss: u64, drop: Option<u64>| {
        let mut cfg = ft_config().with_schedule_seed(ss);
        if let Some(d) = drop {
            cfg.mesh.faults = FaultConfig::drop_exactly(vec![d]);
        }
        format!("{:?}", System::run_workload(cfg, &wl).expect("completes"))
    };
    // Identical inputs, identical bytes — fault-free and faulty.
    assert_eq!(run(5, None), run(5, None));
    assert_eq!(run(5, Some(50)), run(5, Some(50)));
    // The seed is not a no-op: perturbed schedules diverge from FIFO and
    // from each other.
    assert_ne!(run(0, None), run(5, None));
    assert_ne!(run(5, None), run(6, None));
}

/// Acceptance criterion: the default schedule seed reproduces the
/// historical FIFO order, so existing outputs are unchanged.
#[test]
fn schedule_seed_zero_is_the_default_fifo_order() {
    assert_eq!(SystemConfig::default().schedule_seed, 0);
    let wl = small_spec().generate(16, 1000);
    let explicit = System::run_workload(ft_config().with_schedule_seed(0), &wl).unwrap();
    let default = System::run_workload(ft_config(), &wl).unwrap();
    assert_eq!(format!("{explicit:?}"), format!("{default:?}"));
}

/// The paper's FtDirCMP tolerates unordered networks (§2: serial numbers);
/// schedule perturbation only reorders same-cycle deliveries, so FtDirCMP
/// must stay correct under any schedule seed, with and without faults.
#[test]
fn ftdircmp_survives_perturbed_schedules_with_single_faults() {
    let wl = small_spec().generate(16, 1000);
    for ss in [1u64, 2, 3] {
        let cfg = ft_config().with_schedule_seed(ss);
        assert_eq!(
            probe(&cfg, &wl, &[]),
            None,
            "FtDirCMP failed fault-free under schedule seed {ss}"
        );
        for drop in [5u64, 200] {
            assert_eq!(
                probe(&cfg, &wl, &[drop]),
                None,
                "FtDirCMP failed under schedule seed {ss} with drop {drop}"
            );
        }
    }
}

/// Acceptance criterion: the shrinker demonstrably works. DirCMP deadlocks
/// under any lost message (the negative control); plant a padded drop set
/// and assert it shrinks to a single-drop repro that replays to the same
/// failure kind.
#[test]
fn shrinker_reduces_dircmp_drop_set_to_a_minimal_repro() {
    let wl = small_spec().generate(16, 1000);
    let mut cfg = SystemConfig::dircmp().with_seed(1000);
    cfg.watchdog_cycles = 100_000;

    // Padded drop set: index 40 alone already deadlocks DirCMP; the rest
    // is noise the shrinker must discard.
    let planted = vec![40u64, 7, 120, 333, 512];
    let failure = probe(&cfg, &wl, &planted).expect("DirCMP must fail under drops");
    assert_eq!(failure.kind, FailureKind::Deadlock);

    let (min_drops, min_wl, stats) = shrink_failure(
        &cfg,
        &wl,
        &planted,
        failure.kind,
        &ShrinkOptions { max_runs: 250 },
    );
    assert_eq!(
        min_drops.len(),
        1,
        "every single drop deadlocks DirCMP, so the 1-minimal set has one: {min_drops:?}"
    );
    assert!(
        stats.ops_after < stats.ops_before,
        "trace minimization removed nothing ({} ops)",
        stats.ops_before
    );
    assert!(stats.probe_runs <= 250);

    // The minimized pair still fails the same way...
    let replayed = probe(&cfg, &min_wl, &min_drops).expect("minimized repro must still fail");
    assert_eq!(replayed.kind, FailureKind::Deadlock);

    // ...and is 1-minimal: removing the last drop makes the run pass.
    assert_eq!(probe(&cfg, &min_wl, &[]), None);
}

/// End-to-end: a guided exploration campaign against DirCMP finds the
/// planted vulnerability, minimizes it, writes a repro file, and the file
/// replays to the recorded failure kind.
#[test]
fn guided_exploration_finds_minimizes_and_replays_dircmp_failures() {
    let mut opts = ExploreOptions::new(ftdircmp_core::ProtocolVariant::DirCmp);
    opts.specs = vec![small_spec()];
    opts.schedule_seeds = vec![0];
    opts.drop_budget = 6;
    opts.jobs = 2;
    opts.shrink_runs = 150;
    let out = std::env::temp_dir().join("ftdircmp-explore-test-repros");
    std::fs::remove_dir_all(&out).ok();
    opts.out_dir = Some(out.clone());

    let report = explore(&opts);
    assert_eq!(report.reference_runs, 1);
    assert!(report.fault_runs > 0);
    assert!(
        report.failing_cells > 0,
        "DirCMP under guided drops must fail"
    );
    assert_eq!(report.failures.len(), 1, "capped at one repro per cell");

    let found = &report.failures[0];
    assert_eq!(found.failure.kind, FailureKind::Deadlock);
    assert_eq!(found.repro.drops.len(), 1, "minimized to a single drop");
    assert!(found.shrink.ops_after < found.shrink.ops_before);

    // The written file round-trips and replays.
    assert_eq!(report.repro_paths.len(), 1);
    let loaded = read_repro(&report.repro_paths[0]).expect("repro file parses");
    assert_eq!(loaded, found.repro);
    let replayed = loaded.replay().expect("repro must reproduce");
    assert_eq!(replayed.kind, FailureKind::Deadlock);

    std::fs::remove_dir_all(&out).ok();
}

/// The CI smoke contract: FtDirCMP under a small guided exploration sweep
/// produces zero failures and writes zero repro files.
#[test]
fn ftdircmp_smoke_exploration_is_clean() {
    let mut opts = ExploreOptions::new(ftdircmp_core::ProtocolVariant::FtDirCmp);
    opts.specs = vec![small_spec()];
    opts.schedule_seeds = vec![0, 1];
    opts.drop_budget = 8;
    opts.jobs = 2;
    let out = std::env::temp_dir().join("ftdircmp-explore-smoke-repros");
    std::fs::remove_dir_all(&out).ok();
    opts.out_dir = Some(out.clone());

    let report = explore(&opts);
    assert_eq!(report.reference_runs, 2);
    assert_eq!(report.fault_runs, 16);
    assert_eq!(
        report.failing_cells, 0,
        "FtDirCMP failed under exploration: {:#?}",
        report.failures
    );
    assert!(report.repro_paths.is_empty());
    // Nothing written at all.
    let entries = std::fs::read_dir(&out)
        .map(|d| d.count())
        .unwrap_or_default();
    assert_eq!(entries, 0);
    std::fs::remove_dir_all(&out).ok();
}

/// Repros survive a disk round-trip through the exploration output
/// directory layout with a realistic (multi-core, think-time) workload.
#[test]
fn repro_files_round_trip_real_workloads() {
    let wl = small_spec().generate(16, 1000);
    let mut cfg = SystemConfig::dircmp().with_seed(1000).with_schedule_seed(9);
    cfg.watchdog_cycles = 100_000;
    cfg.mesh.faults = FaultConfig::drop_exactly(vec![40]);
    let repro = Repro::capture(&cfg, &wl, vec![40], FailureKind::Deadlock);

    let dir = std::env::temp_dir().join("ftdircmp-explore-roundtrip");
    let path = write_repro(&dir, &repro).expect("write");
    let loaded = read_repro(&path).expect("read");
    assert_eq!(loaded, repro);
    assert_eq!(loaded.config().schedule_seed, 9);
    assert_eq!(loaded.workload.traces.len(), 16);
    std::fs::remove_dir_all(&dir).ok();
}
