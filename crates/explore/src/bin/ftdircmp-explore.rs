//! Protocol exploration CLI: guided fault-schedule search with schedule
//! perturbation and a minimizing shrinker (DESIGN.md §9).
//!
//! ```text
//! ftdircmp-explore explore [--smoke] [--protocol ft|dircmp]
//!                          [--workloads a,b,c] [--schedule-seeds N]
//!                          [--budget N] [--shrink-runs N] [--jobs N]
//!                          [--out DIR]
//! ftdircmp-explore replay FILE.ron
//! ```
//!
//! `explore` exits nonzero if any failure was found (CI runs `--smoke`
//! against FtDirCMP and asserts a clean sweep); `replay` exits zero only
//! if the repro file still reproduces its recorded failure kind.

use std::path::PathBuf;
use std::process::ExitCode;

use ftdircmp_bench::BenchArgs;
use ftdircmp_core::ProtocolVariant;
use ftdircmp_explore::repro::read_repro;
use ftdircmp_explore::{explore, ExploreOptions};
use ftdircmp_workloads::{suite, WorkloadSpec};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    match argv.get(1).map(String::as_str) {
        Some("explore") => cmd_explore(&argv[2..]),
        Some("replay") => cmd_replay(&argv[2..]),
        _ => {
            eprintln!("usage: ftdircmp-explore explore [flags] | replay FILE.ron");
            eprintln!("flags: --smoke --protocol ft|dircmp --workloads a,b,c");
            eprintln!("       --schedule-seeds N --budget N --shrink-runs N");
            eprintln!("       --jobs N --out DIR");
            ExitCode::from(2)
        }
    }
}

fn cmd_explore(argv: &[String]) -> ExitCode {
    let args = BenchArgs::from_vec(argv.to_vec());
    let smoke = argv.iter().any(|a| a == "--smoke");
    let protocol = match args.value_of("--protocol") {
        Some("dircmp") => ProtocolVariant::DirCmp,
        Some("ft") | None => ProtocolVariant::FtDirCmp,
        Some(other) => {
            eprintln!("unknown --protocol {other:?} (expected ft or dircmp)");
            return ExitCode::from(2);
        }
    };

    let mut opts = ExploreOptions::new(protocol);
    opts.jobs = args.jobs();
    opts.progress = true;
    if let Some(names) = args.value_of("--workloads") {
        let mut specs = Vec::new();
        for name in names.split(',').filter(|n| !n.is_empty()) {
            if let Some(s) = WorkloadSpec::named(name) {
                specs.push(s);
            } else {
                eprintln!(
                    "unknown workload {name:?}; available: {}",
                    suite()
                        .iter()
                        .map(|s| s.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::from(2);
            }
        }
        opts.specs = specs;
    }
    let seeds = args.u64_flag("--schedule-seeds", opts.schedule_seeds.len() as u64);
    opts.schedule_seeds = (0..seeds.max(1)).collect();
    opts.drop_budget = args.u64_flag("--budget", opts.drop_budget as u64) as usize;
    opts.shrink_runs = args.u64_flag("--shrink-runs", opts.shrink_runs as u64) as usize;
    opts.out_dir = Some(
        args.value_of("--out")
            .map_or_else(|| PathBuf::from("results/repros"), PathBuf::from),
    );
    if smoke {
        // Fixed small campaign for CI: 2 workloads at reduced size, seeds
        // {0, 1}, modest budget. FtDirCMP must survive every cell.
        for spec in &mut opts.specs {
            spec.ops_per_core = spec.ops_per_core.min(150);
        }
        opts.drop_budget = opts.drop_budget.min(12);
        opts.schedule_seeds = vec![0, 1];
    }

    eprintln!(
        "[explore] {} | {} workload(s) x {} schedule seed(s), budget {} drops/cell, {} job(s)",
        opts.config.protocol,
        opts.specs.len(),
        opts.schedule_seeds.len(),
        opts.drop_budget,
        opts.jobs
    );
    let report = explore(&opts);
    println!(
        "explored {} reference + {} faulty runs: {} failing cell(s), {} minimized repro(s)",
        report.reference_runs,
        report.fault_runs,
        report.failing_cells,
        report.failures.len()
    );
    for f in &report.failures {
        println!(
            "  {} ss={} drops {:?} -> {:?} ({} probe runs, {} -> {} ops): {}",
            f.workload,
            f.schedule_seed,
            f.original_drops,
            f.repro.drops,
            f.shrink.probe_runs,
            f.shrink.ops_before,
            f.shrink.ops_after,
            f.failure.detail
        );
    }
    for p in &report.repro_paths {
        println!("  repro: {}", p.display());
    }
    if report.failing_cells > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_replay(argv: &[String]) -> ExitCode {
    let Some(path) = argv.first() else {
        eprintln!("usage: ftdircmp-explore replay FILE.ron");
        return ExitCode::from(2);
    };
    let repro = match read_repro(std::path::Path::new(path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {path}: {} workload {:?}, schedule seed {}, drops {:?}, expecting {}",
        repro.protocol.name(),
        repro.workload.name,
        repro.schedule_seed,
        repro.drops,
        repro.failure
    );
    match repro.replay() {
        Some(f) if f.kind == repro.failure => {
            println!("reproduced: {}", f.detail);
            ExitCode::SUCCESS
        }
        Some(f) => {
            println!(
                "failure kind changed: recorded {}, observed {} ({})",
                repro.failure, f.kind, f.detail
            );
            ExitCode::FAILURE
        }
        None => {
            println!("did not reproduce: run completed cleanly");
            ExitCode::FAILURE
        }
    }
}
