//! Minimizing counterexample shrinker.
//!
//! Given a failing (configuration, workload, drop set) triple, reduce it
//! to a locally-minimal reproduction that still fails with the **same
//! failure kind** — a deadlock must stay a deadlock, a checker violation a
//! violation. Two passes, both driven by re-running the deterministic
//! simulator as an oracle:
//!
//! 1. **Drop-set minimization** — classic delta debugging (`ddmin`,
//!    Zeller & Hildebrandt) over the injection indices. Runs to a
//!    1-minimal set when the probe budget allows: removing any single
//!    remaining drop makes the failure disappear.
//! 2. **Trace minimization** — whole cores are emptied, then contiguous
//!    chunks of each surviving core's operations are removed at halving
//!    granularity. Trace edits shift the global message-injection indices,
//!    which is safe precisely because every candidate is re-validated by
//!    an actual run.
//!
//! The shrinker is budget-bounded: it performs at most
//! [`ShrinkOptions::max_runs`] probe simulations and returns the best
//! reproduction found so far when the budget runs out. All decisions are
//! deterministic, so shrinking the same failure twice yields the same
//! minimal repro.

use ftdircmp_core::{CoreTrace, SystemConfig, Workload};

use crate::FailureKind;

/// Shrinker budget.
#[derive(Debug, Clone)]
pub struct ShrinkOptions {
    /// Maximum probe simulations across both passes.
    pub max_runs: usize,
}

impl Default for ShrinkOptions {
    fn default() -> Self {
        ShrinkOptions { max_runs: 300 }
    }
}

/// Work performed and reduction achieved by one shrink.
#[derive(Debug, Clone, Default)]
pub struct ShrinkStats {
    /// Probe simulations executed.
    pub probe_runs: usize,
    /// Drop-set size before / after.
    pub drops_before: usize,
    /// Drop-set size after minimization.
    pub drops_after: usize,
    /// Total trace operations before / after.
    pub ops_before: usize,
    /// Total trace operations after minimization.
    pub ops_after: usize,
}

/// Budget-tracking probe wrapper.
struct Oracle<'a> {
    config: &'a SystemConfig,
    kind: FailureKind,
    runs: usize,
    max_runs: usize,
}

impl Oracle<'_> {
    /// Whether (workload, drops) still fails with the original kind.
    /// Returns `false` without running once the budget is exhausted, so
    /// every caller conservatively keeps its current reproduction.
    fn fails(&mut self, workload: &Workload, drops: &[u64]) -> bool {
        if self.runs >= self.max_runs {
            return false;
        }
        self.runs += 1;
        crate::probe(self.config, workload, drops).is_some_and(|f| f.kind == self.kind)
    }

    fn exhausted(&self) -> bool {
        self.runs >= self.max_runs
    }
}

/// Minimizes a failing reproduction.
///
/// `config` carries everything but the fault schedule (protocol, seeds,
/// timeouts); `drops` is the failing drop set (may be empty for
/// schedule-seed-only failures). The input must actually fail with `kind`
/// under `config` — the caller observed it — so the input itself is never
/// re-validated and the worst case returns it unchanged.
///
/// Returns the minimized `(drops, workload)` pair and the work done.
pub fn shrink_failure(
    config: &SystemConfig,
    workload: &Workload,
    drops: &[u64],
    kind: FailureKind,
    opts: &ShrinkOptions,
) -> (Vec<u64>, Workload, ShrinkStats) {
    let mut oracle = Oracle {
        config,
        kind,
        runs: 0,
        max_runs: opts.max_runs,
    };
    let mut stats = ShrinkStats {
        drops_before: drops.len(),
        ops_before: workload.traces.iter().map(CoreTrace::len).sum(),
        ..ShrinkStats::default()
    };

    // Pass 1: minimize the drop set against the full workload.
    let mut min_drops = ddmin(drops.to_vec(), &mut |cand| oracle.fails(workload, cand));

    // Pass 2: minimize the trace against the minimized drop set.
    let min_workload = shrink_trace(workload, &min_drops, &mut oracle);

    // Trace edits may have made some drops redundant (their message no
    // longer exists or no longer matters): one more cheap ddmin pass.
    if min_workload != *workload && min_drops.len() > 1 {
        min_drops = ddmin(min_drops, &mut |cand| oracle.fails(&min_workload, cand));
    }

    stats.probe_runs = oracle.runs;
    stats.drops_after = min_drops.len();
    stats.ops_after = min_workload.traces.iter().map(CoreTrace::len).sum();
    (min_drops, min_workload, stats)
}

/// Delta debugging over a set of drop indices: returns a subset that still
/// satisfies `test`, 1-minimal when `test` never lies (budget exhaustion
/// makes `test` report `false`, which only stops further reduction).
///
/// The input is assumed to satisfy `test`; singletons and empty sets are
/// returned unchanged (an empty failing drop set has nothing to remove).
fn ddmin(mut items: Vec<u64>, test: &mut impl FnMut(&[u64]) -> bool) -> Vec<u64> {
    let mut granularity = 2usize;
    while items.len() >= 2 {
        let chunk = items.len().div_ceil(granularity);
        let mut reduced = false;
        // Try each chunk alone, then each complement.
        for start in (0..items.len()).step_by(chunk) {
            let subset: Vec<u64> = items[start..(start + chunk).min(items.len())].to_vec();
            if subset.len() < items.len() && test(&subset) {
                items = subset;
                granularity = 2;
                reduced = true;
                break;
            }
            let complement: Vec<u64> = items[..start]
                .iter()
                .chain(&items[(start + chunk).min(items.len())..])
                .copied()
                .collect();
            if !complement.is_empty() && complement.len() < items.len() && test(&complement) {
                items = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
        }
        if !reduced {
            if granularity >= items.len() {
                break; // 1-minimal.
            }
            granularity = (granularity * 2).min(items.len());
        }
    }
    items
}

/// Minimizes the workload traces while `(workload, drops)` keeps failing.
fn shrink_trace(workload: &Workload, drops: &[u64], oracle: &mut Oracle<'_>) -> Workload {
    let mut best = workload.clone();

    // Pass A: empty whole cores (cores must stay in place — core index is
    // part of the system topology — so an removed core keeps an empty
    // trace).
    for core in (0..best.traces.len()).rev() {
        if best.traces[core].is_empty() || oracle.exhausted() {
            continue;
        }
        let mut candidate = best.clone();
        candidate.traces[core] = CoreTrace::new(Vec::new());
        if oracle.fails(&candidate, drops) {
            best = candidate;
        }
    }

    // Pass B: remove contiguous op chunks per core at halving granularity.
    for core in 0..best.traces.len() {
        let mut ops = best.traces[core].ops().to_vec();
        let mut chunk = ops.len() / 2;
        while chunk >= 1 && !oracle.exhausted() {
            let mut start = 0;
            while start < ops.len() && !oracle.exhausted() {
                let end = (start + chunk).min(ops.len());
                let mut shorter = ops.clone();
                shorter.drain(start..end);
                let mut candidate = best.clone();
                candidate.traces[core] = CoreTrace::new(shorter.clone());
                if oracle.fails(&candidate, drops) {
                    ops = shorter;
                    best = candidate;
                    // Same start: the next chunk slid into this position.
                } else {
                    start = end;
                }
            }
            chunk /= 2;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ddmin against a pure predicate (no simulator): the failing property
    /// is "contains both 13 and 27".
    #[test]
    fn ddmin_finds_the_two_culprits() {
        let items: Vec<u64> = (0..40).collect();
        let mut probes = 0;
        let result = ddmin(items, &mut |cand| {
            probes += 1;
            cand.contains(&13) && cand.contains(&27)
        });
        let mut sorted = result.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![13, 27]);
        assert!(probes < 200, "ddmin took {probes} probes");
    }

    #[test]
    fn ddmin_single_culprit_and_degenerate_inputs() {
        let result = ddmin((0..17).collect(), &mut |cand| cand.contains(&5));
        assert_eq!(result, vec![5]);
        assert_eq!(ddmin(vec![9], &mut |_| true), vec![9]);
        assert_eq!(ddmin(Vec::new(), &mut |_| true), Vec::<u64>::new());
    }

    #[test]
    fn ddmin_keeps_input_when_nothing_smaller_fails() {
        // Failure needs the whole set: no subset may be returned.
        let input: Vec<u64> = (0..8).collect();
        let result = ddmin(input.clone(), &mut |cand| cand.len() == input.len());
        assert_eq!(result, input);
    }
}
