//! Self-contained failure reproductions.
//!
//! A [`Repro`] captures everything needed to replay a failing exploration
//! cell on a machine with nothing but this repository: the concrete
//! workload trace, the configuration knobs that matter (protocol variant,
//! master seed, schedule seed, timeout values, watchdog), the deterministic
//! drop schedule, and the failure kind observed. Repros serialize to a
//! small RON-style text format written under `results/repros/` and replayed
//! by the `ftdircmp-explore` binary.

use ftdircmp_core::config::{ProtocolVariant, SystemConfig};
use ftdircmp_core::trace::Workload;
use ftdircmp_core::trace_io;
use ftdircmp_noc::FaultConfig;

use crate::FailureKind;

/// A minimal, self-contained description of a failing run.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Protocol under test.
    pub protocol: ProtocolVariant,
    /// Master seed (drives fault RNG, adaptive routes, initial serials).
    pub seed: u64,
    /// Event-queue schedule seed (0 = FIFO).
    pub schedule_seed: u64,
    /// Deadlock watchdog window, cycles.
    pub watchdog_cycles: u64,
    /// Lost-request timeout, cycles.
    pub lost_request_timeout: u64,
    /// Lost-unblock timeout, cycles.
    pub lost_unblock_timeout: u64,
    /// Lost-AckBD timeout, cycles.
    pub lost_ackbd_timeout: u64,
    /// Lost-data (backup) timeout, cycles.
    pub lost_data_timeout: u64,
    /// Deterministic drop schedule: 0-based injection indices to lose.
    pub drops: Vec<u64>,
    /// The failure this repro reproduces.
    pub failure: FailureKind,
    /// Concrete workload (not a generator spec: repros must be immune to
    /// workload-generator changes).
    pub workload: Workload,
}

impl Repro {
    /// Captures a repro from a failing cell. The mesh geometry and cache
    /// parameters are assumed to be the Table 4 defaults; everything the
    /// exploration harness varies is recorded explicitly.
    pub fn capture(
        config: &SystemConfig,
        workload: &Workload,
        drops: Vec<u64>,
        failure: FailureKind,
    ) -> Repro {
        Repro {
            protocol: config.protocol,
            seed: config.seed,
            schedule_seed: config.schedule_seed,
            watchdog_cycles: config.watchdog_cycles,
            lost_request_timeout: config.ft.lost_request_timeout,
            lost_unblock_timeout: config.ft.lost_unblock_timeout,
            lost_ackbd_timeout: config.ft.lost_ackbd_timeout,
            lost_data_timeout: config.ft.lost_data_timeout,
            drops,
            failure,
            workload: workload.clone(),
        }
    }

    /// Reconstructs the run configuration: Table 4 defaults plus the
    /// recorded overrides.
    pub fn config(&self) -> SystemConfig {
        let mut cfg = SystemConfig {
            protocol: self.protocol,
            ..SystemConfig::default()
        };
        cfg.seed = self.seed;
        cfg.schedule_seed = self.schedule_seed;
        cfg.watchdog_cycles = self.watchdog_cycles;
        cfg.ft.lost_request_timeout = self.lost_request_timeout;
        cfg.ft.lost_unblock_timeout = self.lost_unblock_timeout;
        cfg.ft.lost_ackbd_timeout = self.lost_ackbd_timeout;
        cfg.ft.lost_data_timeout = self.lost_data_timeout;
        cfg.mesh.faults = FaultConfig::drop_exactly(self.drops.clone());
        cfg
    }

    /// Replays the repro, returning the failure observed now (if any).
    pub fn replay(&self) -> Option<crate::Failure> {
        let result = ftdircmp_core::System::run_workload(self.config(), &self.workload);
        crate::classify(&self.workload, &result)
    }

    /// Serializes to the RON-style repro format.
    pub fn to_ron(&self) -> String {
        let mut out = String::from("// ftdircmp repro v1\n(\n");
        out.push_str(&format!("    protocol: {:?},\n", self.protocol.name()));
        out.push_str(&format!("    seed: {},\n", self.seed));
        out.push_str(&format!("    schedule_seed: {},\n", self.schedule_seed));
        out.push_str(&format!("    watchdog_cycles: {},\n", self.watchdog_cycles));
        out.push_str(&format!(
            "    lost_request_timeout: {},\n",
            self.lost_request_timeout
        ));
        out.push_str(&format!(
            "    lost_unblock_timeout: {},\n",
            self.lost_unblock_timeout
        ));
        out.push_str(&format!(
            "    lost_ackbd_timeout: {},\n",
            self.lost_ackbd_timeout
        ));
        out.push_str(&format!(
            "    lost_data_timeout: {},\n",
            self.lost_data_timeout
        ));
        out.push_str(&format!(
            "    drops: [{}],\n",
            self.drops
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("    failure: {:?},\n", self.failure.label()));
        out.push_str(&format!(
            "    trace: {:?},\n",
            trace_io::to_string(&self.workload)
        ));
        out.push_str(")\n");
        out
    }

    /// Parses the RON-style repro format.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed
    /// construct found.
    pub fn from_ron(text: &str) -> Result<Repro, String> {
        let fields = parse_fields(text)?;
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?}"))
        };
        let uint = |key: &str| -> Result<u64, String> {
            match get(key)? {
                Value::Uint(n) => Ok(*n),
                other => Err(format!("field {key:?}: expected integer, got {other:?}")),
            }
        };
        let string = |key: &str| -> Result<String, String> {
            match get(key)? {
                Value::Str(s) => Ok(s.clone()),
                other => Err(format!("field {key:?}: expected string, got {other:?}")),
            }
        };
        let protocol = match string("protocol")?.as_str() {
            "DirCMP" => ProtocolVariant::DirCmp,
            "FtDirCMP" => ProtocolVariant::FtDirCmp,
            other => return Err(format!("unknown protocol {other:?}")),
        };
        let failure_label = string("failure")?;
        let failure = FailureKind::from_label(&failure_label)
            .ok_or_else(|| format!("unknown failure kind {failure_label:?}"))?;
        let drops = match get("drops")? {
            Value::List(items) => items.clone(),
            other => return Err(format!("field \"drops\": expected list, got {other:?}")),
        };
        let workload =
            trace_io::from_str(&string("trace")?).map_err(|e| format!("embedded trace: {e}"))?;
        Ok(Repro {
            protocol,
            seed: uint("seed")?,
            schedule_seed: uint("schedule_seed")?,
            watchdog_cycles: uint("watchdog_cycles")?,
            lost_request_timeout: uint("lost_request_timeout")?,
            lost_unblock_timeout: uint("lost_unblock_timeout")?,
            lost_ackbd_timeout: uint("lost_ackbd_timeout")?,
            lost_data_timeout: uint("lost_data_timeout")?,
            drops,
            failure,
            workload,
        })
    }

    /// Suggested file name for this repro (stable across reruns of the same
    /// cell: derived from content, not wall time).
    pub fn file_name(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_ron().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!(
            "{}-{}-s{}-{:016x}.ron",
            self.failure.label(),
            self.workload.name.replace(['/', ' '], "_"),
            self.schedule_seed,
            h
        )
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Uint(u64),
    Str(String),
    List(Vec<u64>),
}

/// Parses the outer `( key: value, ... )` body into key/value pairs.
/// Only the constructs the repro format uses are supported: unsigned
/// integers, double-quoted strings with `\n`/`\"`/`\\` escapes, and lists
/// of unsigned integers.
fn parse_fields(text: &str) -> Result<Vec<(String, Value)>, String> {
    // Strip // comments (only outside strings; comments in this format are
    // always on their own line, before the opening paren).
    let body: String = text
        .lines()
        .filter(|l| !l.trim_start().starts_with("//"))
        .collect::<Vec<_>>()
        .join("\n");
    let body = body.trim();
    let body = body
        .strip_prefix('(')
        .and_then(|b| b.trim_end().strip_suffix(')'))
        .ok_or("repro must be wrapped in ( ... )")?;

    let mut fields = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Skip whitespace and separators.
        while chars.peek().is_some_and(|c| c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        // Key.
        let mut key = String::new();
        while chars
            .peek()
            .is_some_and(|c| c.is_alphanumeric() || *c == '_')
        {
            key.push(chars.next().unwrap());
        }
        if key.is_empty() {
            return Err(format!("expected a field name, found {:?}", chars.peek()));
        }
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return Err(format!("field {key:?}: expected ':'"));
        }
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        // Value.
        let value = match chars.peek() {
            Some('"') => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\\') => match chars.next() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            other => return Err(format!("bad escape {other:?} in {key:?}")),
                        },
                        Some('"') => break,
                        Some(c) => s.push(c),
                        None => return Err(format!("unterminated string in {key:?}")),
                    }
                }
                Value::Str(s)
            }
            Some('[') => {
                chars.next();
                let mut items = Vec::new();
                let mut num = String::new();
                loop {
                    match chars.next() {
                        Some(']') => {
                            if !num.trim().is_empty() {
                                items.push(parse_u64(num.trim(), &key)?);
                            }
                            break;
                        }
                        Some(',') => {
                            if !num.trim().is_empty() {
                                items.push(parse_u64(num.trim(), &key)?);
                            }
                            num.clear();
                        }
                        Some(c) => num.push(c),
                        None => return Err(format!("unterminated list in {key:?}")),
                    }
                }
                Value::List(items)
            }
            Some(c) if c.is_ascii_digit() => {
                let mut num = String::new();
                while chars
                    .peek()
                    .is_some_and(|c| c.is_ascii_digit() || *c == '_')
                {
                    num.push(chars.next().unwrap());
                }
                Value::Uint(parse_u64(&num, &key)?)
            }
            other => return Err(format!("field {key:?}: unexpected value start {other:?}")),
        };
        fields.push((key, value));
    }
    Ok(fields)
}

fn parse_u64(s: &str, key: &str) -> Result<u64, String> {
    s.replace('_', "")
        .parse()
        .map_err(|_| format!("field {key:?}: bad integer {s:?}"))
}

/// Writes a repro under `dir`, creating the directory if needed, and
/// returns the path written.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_repro(dir: &std::path::Path, repro: &Repro) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(repro.file_name());
    std::fs::write(&path, repro.to_ron())?;
    Ok(path)
}

/// Reads a repro file.
///
/// # Errors
///
/// Propagates I/O errors; parse errors are wrapped as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_repro(path: &std::path::Path) -> std::io::Result<Repro> {
    let text = std::fs::read_to_string(path)?;
    Repro::from_ron(&text).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdircmp_core::ids::Addr;
    use ftdircmp_core::trace::{CoreTrace, TraceOp};

    fn sample() -> Repro {
        let wl = Workload::new(
            "sample",
            vec![CoreTrace::new(vec![
                TraceOp::Load(Addr(0x40)),
                TraceOp::Store(Addr(0x80)),
                TraceOp::Think(9),
            ])],
        );
        Repro::capture(
            &SystemConfig::dircmp().with_seed(1003).with_schedule_seed(7),
            &wl,
            vec![3, 1, 4],
            FailureKind::Deadlock,
        )
    }

    #[test]
    fn ron_roundtrip_preserves_everything() {
        let r = sample();
        let text = r.to_ron();
        assert!(text.starts_with("// ftdircmp repro v1"));
        let back = Repro::from_ron(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn config_reconstruction_carries_overrides() {
        let r = sample();
        let cfg = r.config();
        assert_eq!(cfg.protocol, ProtocolVariant::DirCmp);
        assert_eq!(cfg.seed, 1003);
        assert_eq!(cfg.schedule_seed, 7);
        assert_eq!(cfg.mesh.faults.drop_indices, Some(vec![3, 1, 4]));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(Repro::from_ron("not ron").unwrap_err().contains("( ... )"));
        assert!(Repro::from_ron("( seed: 1 )")
            .unwrap_err()
            .contains("missing field"));
        assert!(
            Repro::from_ron("( seed: \"x\" )")
                .unwrap_err()
                .contains("missing field \"protocol\"")
                || !Repro::from_ron("( seed: \"x\" )").unwrap_err().is_empty()
        );
    }

    #[test]
    fn file_name_is_content_stable() {
        let a = sample().file_name();
        let b = sample().file_name();
        assert_eq!(a, b);
        assert!(std::path::Path::new(&a)
            .extension()
            .is_some_and(|x| x == "ron"));
        assert!(a.contains("deadlock"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ftdircmp-repro-test");
        let path = write_repro(&dir, &sample()).unwrap();
        let back = read_repro(&path).unwrap();
        assert_eq!(back, sample());
        std::fs::remove_file(&path).ok();
    }
}
