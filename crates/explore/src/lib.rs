//! # Protocol exploration harness
//!
//! Turns the deterministic simulator into a search engine for protocol
//! bugs (DESIGN.md §9). Three layers:
//!
//! 1. **Schedule perturbation** — every cell runs under a
//!    [`SystemConfig::schedule_seed`], which permutes the delivery order of
//!    same-cycle events reproducibly (seed `0` is the historical FIFO
//!    order). This reaches races that one fixed tie-break order never
//!    exhibits.
//! 2. **Guided fault-schedule search** — a fault-free reference run records
//!    the virtual-channel class of every message the injector examines
//!    ([`SimReport::injection_classes`]); [`guided_drop_candidates`] then
//!    spends the drop budget on the protocol-dense classes first
//!    (`OwnershipAck`, `Ping`, `Unblock`, `Forward`) and strides through
//!    the bulk `Request`/`Response` traffic, instead of sampling the
//!    message stream blindly.
//! 3. **Minimizing shrinker** — every failure (checker violation, deadlock
//!    / watchdog, lost operations) is reduced by [`shrink`] to a
//!    locally-minimal (drop set, trace) pair and written as a
//!    self-contained [`repro::Repro`] file that
//!    `ftdircmp-explore replay` re-executes.
//!
//! Campaign cells are fanned out with the deterministic parallel runner
//! from `ftdircmp-bench` ([`run_campaign_fallible`]), so exploration
//! results are byte-identical at any `--jobs` count.

pub mod repro;
pub mod shrink;

use std::path::PathBuf;

use ftdircmp_bench::campaign::{run_campaign_fallible, Campaign, Cell};
use ftdircmp_core::{ProtocolVariant, RunError, SimReport, System, SystemConfig, Workload};
use ftdircmp_noc::{FaultConfig, VcClass};
use ftdircmp_workloads::WorkloadSpec;

use repro::Repro;
use shrink::{ShrinkOptions, ShrinkStats};

/// How a run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The watchdog fired: no core made progress for the watchdog window
    /// (DirCMP's expected fate under message loss, paper §3).
    Deadlock,
    /// The runtime checker reported a coherence/safety violation (SWMR,
    /// data-value integrity, bounded backups), or the configuration was
    /// rejected.
    Violation,
    /// The run completed but retired fewer memory operations than the
    /// workload contains.
    LostOps,
}

impl FailureKind {
    /// Stable label used in repro files and file names.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Deadlock => "deadlock",
            FailureKind::Violation => "violation",
            FailureKind::LostOps => "lost-ops",
        }
    }

    /// Inverse of [`FailureKind::label`].
    pub fn from_label(label: &str) -> Option<FailureKind> {
        match label {
            "deadlock" => Some(FailureKind::Deadlock),
            "violation" => Some(FailureKind::Violation),
            "lost-ops" => Some(FailureKind::LostOps),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A classified failure: the kind plus a human-readable detail line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Failure class (what the shrinker must preserve).
    pub kind: FailureKind,
    /// One-line description for reports.
    pub detail: String,
}

/// Classifies a run result against the workload it executed.
///
/// Returns `None` for a clean run: completed, zero checker violations, and
/// every memory operation of `workload` retired.
pub fn classify(workload: &Workload, result: &Result<SimReport, RunError>) -> Option<Failure> {
    match result {
        Err(RunError::Deadlock {
            at,
            blocked_cores,
            stalled,
            ..
        }) => {
            // Name the stuck line so quarantine records say *what* hung,
            // not just that something did.
            let stuck = stalled
                .iter()
                .find_map(|s| s.pending_lines.first().map(|l| (s.core, *l)));
            let detail = match stuck {
                Some((core, line)) => format!(
                    "deadlock at cycle {at}: {} core(s) blocked, core {core} stuck on {line}",
                    blocked_cores.len()
                ),
                None => format!(
                    "deadlock at cycle {at}: {} core(s) blocked",
                    blocked_cores.len()
                ),
            };
            Some(Failure {
                kind: FailureKind::Deadlock,
                detail,
            })
        }
        Err(RunError::InvalidConfig(e)) => Some(Failure {
            kind: FailureKind::Violation,
            detail: format!("invalid configuration: {e}"),
        }),
        Ok(r) if !r.violations.is_empty() => Some(Failure {
            kind: FailureKind::Violation,
            detail: format!(
                "{} checker violation(s): {}",
                r.violations.len(),
                r.violations.first().map_or("", String::as_str)
            ),
        }),
        Ok(r) if (r.total_mem_ops as usize) < workload.total_mem_ops() => Some(Failure {
            kind: FailureKind::LostOps,
            detail: format!(
                "completed with {} of {} memory ops retired",
                r.total_mem_ops,
                workload.total_mem_ops()
            ),
        }),
        Ok(_) => None,
    }
}

/// Picks up to `budget` drop indices from an injection-class log, spending
/// the budget on protocol-dense message classes first.
///
/// The rare fault-tolerance control messages (`OwnershipAck`, `Ping`,
/// `Unblock`) and directory forwards exercise the protocol's hardest
/// recovery paths (paper §3.2–§3.4), so every such index is a candidate up
/// to its class quota; the bulk `Response`/`Request` traffic is sampled at
/// an even stride so coverage still spans the whole run. The result is
/// sorted and deduplicated, and deterministic in the input.
pub fn guided_drop_candidates(classes: &[VcClass], budget: usize) -> Vec<u64> {
    const PRIORITY: [VcClass; 6] = [
        VcClass::OwnershipAck,
        VcClass::Ping,
        VcClass::Unblock,
        VcClass::Forward,
        VcClass::Response,
        VcClass::Request,
    ];
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); PRIORITY.len()];
    for (index, class) in classes.iter().enumerate() {
        let slot = PRIORITY.iter().position(|p| p == class).expect("VcClass");
        buckets[slot].push(index as u64);
    }
    // The first four classes are the rare fault-tolerance control traffic:
    // each takes everything it has (strided only when over budget). The
    // bulk Response/Request tail splits what is left evenly.
    const RARE: usize = 4;
    let mut picked = Vec::with_capacity(budget);
    let mut remaining = budget;
    for (rank, bucket) in buckets.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if bucket.is_empty() {
            continue;
        }
        let quota = if rank < RARE {
            remaining
        } else {
            let bulk_left = buckets[rank..].iter().filter(|b| !b.is_empty()).count();
            remaining.div_ceil(bulk_left)
        };
        let stride = bucket.len().div_ceil(quota).max(1);
        let take = bucket.iter().step_by(stride).take(quota).copied();
        let before = picked.len();
        picked.extend(take);
        remaining -= picked.len() - before;
    }
    picked.sort_unstable();
    picked.dedup();
    picked
}

/// Exploration campaign options.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Base configuration every cell derives from (protocol, timeouts,
    /// watchdog). Fault and schedule-seed fields are overwritten per cell.
    pub config: SystemConfig,
    /// Workload specs to explore.
    pub specs: Vec<WorkloadSpec>,
    /// Schedule seeds to sweep (include `0` for the FIFO baseline).
    pub schedule_seeds: Vec<u64>,
    /// Drop candidates per (workload, schedule seed) cell.
    pub drop_budget: usize,
    /// Campaign worker threads.
    pub jobs: usize,
    /// Print per-unit progress to stderr.
    pub progress: bool,
    /// Probe-run budget for the shrinker, per failure.
    pub shrink_runs: usize,
    /// Shrink + write a repro for at most this many failures per
    /// (workload, schedule seed) cell; the rest are counted only. DirCMP
    /// under faults fails on *every* drop — minimizing each would repeat
    /// the same repro.
    pub max_repros_per_cell: usize,
    /// Where to write repro files (`None`: keep them in memory only).
    pub out_dir: Option<PathBuf>,
}

impl ExploreOptions {
    /// Defaults for a given protocol: the Table 4 configuration with the
    /// short detection timeouts of the exhaustive fault tests (faulty runs
    /// spend most of their cycles waiting for timers).
    pub fn new(protocol: ProtocolVariant) -> ExploreOptions {
        let mut config = match protocol {
            ProtocolVariant::DirCmp => SystemConfig::dircmp(),
            ProtocolVariant::FtDirCmp => SystemConfig::ftdircmp(),
        };
        config.ft.lost_request_timeout = 800;
        config.ft.lost_unblock_timeout = 800;
        config.ft.lost_ackbd_timeout = 600;
        config.ft.lost_data_timeout = 1600;
        config.watchdog_cycles = 100_000;
        ExploreOptions {
            config,
            specs: vec![
                WorkloadSpec::named("water-nsq").expect("suite"),
                WorkloadSpec::named("ocean").expect("suite"),
            ],
            schedule_seeds: vec![0, 1],
            drop_budget: 24,
            jobs: 1,
            progress: false,
            shrink_runs: 300,
            max_repros_per_cell: 1,
            out_dir: None,
        }
    }
}

/// One minimized failure found by [`explore`].
#[derive(Debug, Clone)]
pub struct FoundFailure {
    /// Workload spec name.
    pub workload: String,
    /// Schedule seed of the failing cell.
    pub schedule_seed: u64,
    /// Drop set that first exposed the failure.
    pub original_drops: Vec<u64>,
    /// The classified failure.
    pub failure: Failure,
    /// Minimized self-contained reproduction.
    pub repro: Repro,
    /// Shrinker work and reduction achieved.
    pub shrink: ShrinkStats,
}

/// Outcome of an exploration campaign.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Fault-free reference runs executed.
    pub reference_runs: usize,
    /// Faulty cells executed.
    pub fault_runs: usize,
    /// Failing cells observed (before the per-cell repro cap).
    pub failing_cells: usize,
    /// Minimized failures (at most `max_repros_per_cell` per cell).
    pub failures: Vec<FoundFailure>,
    /// Repro files written (empty when `out_dir` is `None`).
    pub repro_paths: Vec<PathBuf>,
}

/// The effective per-run configuration for campaign seed 0: campaign units
/// run `spec.generate(tiles, 1000 + seed)` under `config.with_seed(1000 +
/// seed)` (see `ftdircmp_bench::run_seed_fallible`). Exploration always
/// uses one seed per cell, so the offset is fixed.
const CAMPAIGN_SEED: u64 = 1000;

/// Runs a guided exploration campaign: reference phase, guided fault
/// phase, then shrinking and repro emission for every failure found.
///
/// # Panics
///
/// Panics if `opts.specs` or `opts.schedule_seeds` is empty, or if writing
/// a repro file fails.
pub fn explore(opts: &ExploreOptions) -> ExploreReport {
    assert!(!opts.specs.is_empty(), "explore: no workloads");
    assert!(
        !opts.schedule_seeds.is_empty(),
        "explore: no schedule seeds"
    );
    let campaign = Campaign {
        jobs: opts.jobs,
        progress: opts.progress,
        // Exploration measures fault timing from cycle zero; never gate
        // faults behind a shared warmup here.
        warmup_checkpoint: None,
    };
    let mut report = ExploreReport::default();

    // Phase 1: fault-free reference runs, recording injection classes.
    let mut ref_cells = Vec::new();
    for spec in &opts.specs {
        for &ss in &opts.schedule_seeds {
            let mut cfg = opts.config.clone().with_schedule_seed(ss);
            cfg.mesh.faults = FaultConfig::default();
            cfg.mesh.record_injections = true;
            ref_cells.push(Cell::new(
                format!("ref/{}-ss{}", spec.name, ss),
                spec.clone(),
                cfg,
                1,
            ));
        }
    }
    let ref_results = run_campaign_fallible(&ref_cells, &campaign);
    report.reference_runs = ref_cells.len();

    // Phase 2: guided fault cells for every clean reference; reference
    // failures (a schedule seed alone broke the protocol) go straight to
    // the shrinker with an empty drop set.
    let mut fault_cells: Vec<Cell> = Vec::new();
    // (spec index, schedule seed, drop index) per fault cell.
    let mut fault_meta: Vec<(usize, u64, u64)> = Vec::new();
    for (cell_i, results) in ref_results.iter().enumerate() {
        let spec_i = cell_i / opts.schedule_seeds.len();
        let ss = opts.schedule_seeds[cell_i % opts.schedule_seeds.len()];
        let spec = &opts.specs[spec_i];
        let result = &results[0];
        let workload = spec.generate(opts.config.tiles, CAMPAIGN_SEED);
        if let Some(failure) = classify(&workload, result) {
            report.failing_cells += 1;
            minimize_and_record(opts, &mut report, spec, ss, &workload, Vec::new(), failure);
            continue;
        }
        let classes = &result.as_ref().expect("classified Ok").injection_classes;
        for drop in guided_drop_candidates(classes, opts.drop_budget) {
            let mut cfg = opts.config.clone().with_schedule_seed(ss);
            cfg.mesh.faults = FaultConfig::drop_exactly(vec![drop]);
            cfg.mesh.record_injections = false;
            fault_cells.push(Cell::new(
                format!("drop/{}-ss{}-i{}", spec.name, ss, drop),
                spec.clone(),
                cfg,
                1,
            ));
            fault_meta.push((spec_i, ss, drop));
        }
    }
    let fault_results = run_campaign_fallible(&fault_cells, &campaign);
    report.fault_runs = fault_cells.len();

    // Phase 3: classify, cap per cell, shrink, emit repros.
    let mut repros_in_cell: std::collections::HashMap<(usize, u64), usize> =
        std::collections::HashMap::new();
    for (results, &(spec_i, ss, drop)) in fault_results.iter().zip(&fault_meta) {
        let spec = &opts.specs[spec_i];
        let workload = spec.generate(opts.config.tiles, CAMPAIGN_SEED);
        let Some(failure) = classify(&workload, &results[0]) else {
            continue;
        };
        report.failing_cells += 1;
        let taken = repros_in_cell.entry((spec_i, ss)).or_insert(0);
        if *taken >= opts.max_repros_per_cell {
            continue;
        }
        *taken += 1;
        minimize_and_record(opts, &mut report, spec, ss, &workload, vec![drop], failure);
    }
    report
}

/// Shrinks one failure and appends it (plus its repro file, if `out_dir`
/// is set) to the report.
fn minimize_and_record(
    opts: &ExploreOptions,
    report: &mut ExploreReport,
    spec: &WorkloadSpec,
    schedule_seed: u64,
    workload: &Workload,
    drops: Vec<u64>,
    failure: Failure,
) {
    // The effective cell configuration, minus the fault schedule (the
    // shrinker owns that field).
    let mut cfg = opts
        .config
        .clone()
        .with_seed(CAMPAIGN_SEED)
        .with_schedule_seed(schedule_seed);
    cfg.mesh.faults = FaultConfig::default();
    cfg.mesh.record_injections = false;
    let (min_drops, min_workload, stats) = shrink::shrink_failure(
        &cfg,
        workload,
        &drops,
        failure.kind,
        &ShrinkOptions {
            max_runs: opts.shrink_runs,
        },
    );
    let mut repro_cfg = cfg.clone();
    repro_cfg.mesh.faults = FaultConfig::drop_exactly(min_drops.clone());
    let repro = Repro::capture(&repro_cfg, &min_workload, min_drops, failure.kind);
    if let Some(dir) = &opts.out_dir {
        let path = repro::write_repro(dir, &repro).expect("write repro");
        if opts.progress {
            eprintln!("[explore] wrote {}", path.display());
        }
        report.repro_paths.push(path);
    }
    report.failures.push(FoundFailure {
        workload: spec.name.to_string(),
        schedule_seed,
        original_drops: drops,
        failure,
        repro,
        shrink: stats,
    });
}

/// Runs `workload` under `config` with `drops` injected and classifies the
/// outcome — the probe primitive shared by the shrinker, [`explore`] and
/// repro replay.
pub fn probe(config: &SystemConfig, workload: &Workload, drops: &[u64]) -> Option<Failure> {
    let mut cfg = config.clone();
    cfg.mesh.faults = FaultConfig::drop_exactly(drops.to_vec());
    classify(workload, &System::run_workload(cfg, workload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_kind_labels_roundtrip() {
        for kind in [
            FailureKind::Deadlock,
            FailureKind::Violation,
            FailureKind::LostOps,
        ] {
            assert_eq!(FailureKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FailureKind::from_label("nonsense"), None);
    }

    #[test]
    fn guided_candidates_prefer_rare_classes() {
        // 90 requests, 6 unblocks, 2 ownership acks, 2 pings.
        let mut classes = vec![VcClass::Request; 90];
        classes.extend([VcClass::Unblock; 6]);
        classes.extend([VcClass::OwnershipAck; 2]);
        classes.extend([VcClass::Ping; 2]);
        let picked = guided_drop_candidates(&classes, 12);
        assert!(picked.len() <= 12);
        // Every rare-class index made the cut.
        for idx in 90..100u64 {
            assert!(picked.contains(&idx), "rare index {idx} not picked");
        }
        // Requests are sampled, not front-loaded: the picked request
        // indices span the stream.
        let req: Vec<u64> = picked.iter().copied().filter(|&i| i < 90).collect();
        assert!(!req.is_empty());
        assert!(req.last().unwrap() - req.first().unwrap() > 40);
    }

    #[test]
    fn guided_candidates_respect_budget_and_are_sorted() {
        let classes = vec![VcClass::Response; 1000];
        let picked = guided_drop_candidates(&classes, 7);
        assert_eq!(picked.len(), 7);
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
        // Deterministic.
        assert_eq!(picked, guided_drop_candidates(&classes, 7));
    }

    #[test]
    fn guided_candidates_empty_log() {
        assert!(guided_drop_candidates(&[], 10).is_empty());
        assert!(guided_drop_candidates(&[VcClass::Request], 0).is_empty());
    }

    #[test]
    fn classify_distinguishes_the_three_kinds() {
        let wl = Workload::new(
            "t",
            vec![ftdircmp_core::CoreTrace::new(vec![
                ftdircmp_core::TraceOp::Load(ftdircmp_core::Addr(0x40)),
                ftdircmp_core::TraceOp::Store(ftdircmp_core::Addr(0x40)),
            ])],
        );
        let deadlock: Result<SimReport, RunError> = Err(RunError::Deadlock {
            at: 5,
            blocked_cores: vec![0],
            last_progress: 2,
            stalled: vec![ftdircmp_core::StalledCore {
                core: 0,
                pending_lines: vec![ftdircmp_core::LineAddr(0x40)],
                mem_ops_done: 1,
            }],
            diagnostics: String::new(),
        });
        let failure = classify(&wl, &deadlock).unwrap();
        assert_eq!(failure.kind, FailureKind::Deadlock);
        assert!(
            failure.detail.contains("core 0 stuck on line:0x40"),
            "detail must name the stuck line: {}",
            failure.detail
        );

        let mut clean = System::run_workload(SystemConfig::ftdircmp(), &wl).unwrap();
        assert!(classify(&wl, &Ok(clean.clone())).is_none());

        clean.violations.push("SWMR broken".into());
        assert_eq!(
            classify(&wl, &Ok(clean.clone())).unwrap().kind,
            FailureKind::Violation
        );

        clean.violations.clear();
        clean.total_mem_ops = 1;
        assert_eq!(
            classify(&wl, &Ok(clean)).unwrap().kind,
            FailureKind::LostOps
        );
    }
}
