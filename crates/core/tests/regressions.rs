//! Regression corpus: every protocol bug found while developing this
//! reproduction, pinned with the exact workload/configuration that exposed
//! it. Each test names the bug, the faulty behaviour, and the fix.
//!
//! These overlap with the stress sweeps by construction — the point is that
//! *these exact* scenarios stay green even if the sweeps' seeds drift.

use ftdircmp_core::ids::Addr;
use ftdircmp_core::trace::{CoreTrace, TraceOp, Workload};
use ftdircmp_core::{System, SystemConfig};
use ftdircmp_noc::FaultConfig;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// The contended workload generator used by the stress suite at the time
/// the bugs were found (kept verbatim so the seeds reproduce).
fn contended_workload(seed: u64, cores: u8, ops: usize, hot_lines: u64) -> Workload {
    let mut traces = Vec::new();
    for c in 0..cores {
        let mut st = seed ^ (u64::from(c) + 1).wrapping_mul(0x2545F4914F6CDD1D);
        let mut v = Vec::with_capacity(ops);
        for _ in 0..ops {
            let r = xorshift(&mut st);
            let line = if r.is_multiple_of(4) {
                1000 + u64::from(c) * 64 + (r >> 8) % 16
            } else {
                (r >> 8) % hot_lines
            };
            let a = Addr(line * 64);
            if r.is_multiple_of(3) {
                v.push(TraceOp::Store(a));
            } else {
                v.push(TraceOp::Load(a));
            }
            if r.is_multiple_of(11) {
                v.push(TraceOp::Think(r % 30));
            }
        }
        traces.push(CoreTrace::new(v));
    }
    Workload::new("regression", traces)
}

fn assert_clean(cfg: SystemConfig, wl: &Workload, bug: &str) {
    match System::run_workload(cfg, wl) {
        Ok(r) => {
            assert!(
                r.violations.is_empty(),
                "[{bug}] violations: {:#?}",
                r.violations
            );
            assert_eq!(r.total_mem_ops as usize, wl.total_mem_ops(), "[{bug}]");
        }
        Err(e) => panic!("[{bug}] {e}"),
    }
}

/// BUG 1 — reissue detection ignored the request kind: a GetX arriving
/// while the same node's completed GetS still awaited its (lost) unblock
/// was treated as a reissue of the GetS, and the directory resent the old
/// shared grant; the L1 then installed Modified without invalidations
/// (SWMR violation, lost update). Fix: a reissue must match the open
/// transaction's kind (l2.rs/mem.rs `same_kind`).
#[test]
fn reissue_must_match_transaction_kind() {
    let wl = contended_workload(17 * 8 + 3, 8, 120, 12); // bursty seed=8 workload
    let mut cfg = SystemConfig::ftdircmp().with_seed(8 + 5000);
    cfg.mesh.faults = FaultConfig::bursts(5000.0, 0.6, 6);
    cfg.watchdog_cycles = 3_000_000;
    assert_clean(cfg, &wl, "reissue-kind");
}

/// BUG 2 — UnblockPing matching by pending-MSHR only: a ping for an *old*
/// completed transaction was ignored forever because a *new* miss on the
/// same line was pending, deadlocking the directory. Fix: the L1 records
/// the last unblock it sent per line and answers pings for completed
/// transactions; pings are matched by transaction *kind*, which per-line
/// serialization makes unique (l1.rs `on_unblock_ping`).
#[test]
fn unblock_ping_for_old_transaction_with_new_miss_pending() {
    let wl = contended_workload(0u64.wrapping_mul(17) + 3, 8, 120, 12);
    let mut cfg = SystemConfig::ftdircmp().with_seed(5000);
    cfg.mesh.faults = FaultConfig::bursts(5000.0, 0.6, 6);
    cfg.watchdog_cycles = 3_000_000;
    assert_clean(cfg, &wl, "ping-old-tx");
}

/// BUG 3 — timeout livelock: a lost-request timeout shorter than the
/// instantaneous service latency (150 < 160-cycle memory) made every
/// response arrive after the next reissue bumped the serial — discarded as
/// stale, forever. Fix: exponential backoff on every recovery retry
/// (proto.rs `backoff_delay`).
#[test]
fn sub_latency_timeouts_converge_via_backoff() {
    let wl = contended_workload(0u64.wrapping_mul(13) + 1, 8, 120, 10); // seed 0
    let mut cfg = SystemConfig::ftdircmp().with_seed(900);
    cfg.ft.lost_request_timeout = 150; // below the 160-cycle memory latency
    cfg.ft.lost_unblock_timeout = 150;
    cfg.ft.lost_ackbd_timeout = 120;
    cfg.ft.lost_data_timeout = 300;
    cfg.watchdog_cycles = 3_000_000;
    assert_clean(cfg, &wl, "timeout-livelock");

    // The seed that originally wedged (stress short-timeouts seed=18).
    let wl = contended_workload(18 * 13 + 1, 8, 120, 10);
    let mut cfg = SystemConfig::ftdircmp().with_seed(18 + 900);
    cfg.ft.lost_request_timeout = 150;
    cfg.ft.lost_unblock_timeout = 150;
    cfg.ft.lost_ackbd_timeout = 120;
    cfg.ft.lost_data_timeout = 300;
    cfg.watchdog_cycles = 3_000_000;
    assert_clean(cfg, &wl, "timeout-livelock-seed18");
}

/// BUG 4 — serial collision across transactions: reissues advanced a
/// request's serial with `+1` while fresh requests drew from the same
/// counter's older position, so an old transaction's serial could equal a
/// new transaction's — and a crossing stale ping-reply completed a GetX
/// with a plain Unblock, leaving the directory pointing at a node that had
/// surrendered its data (two writers). Fix: reissue serials come from the
/// same per-node sequential allocator as fresh requests, plus a plain
/// Unblock can never complete a GetX transaction.
#[test]
fn cross_transaction_serial_collision() {
    // Originally failed with serial_bits = 4 AND 2 at seed 3 (identical
    // timestamps proved it was not wraparound).
    for bits in [2u8, 4, 8] {
        let wl = contended_workload(3 * 23 + 9, 8, 100, 10);
        let mut cfg = SystemConfig::ftdircmp()
            .with_fault_rate(5_000.0)
            .with_seed(3 + 77);
        cfg.ft.serial_bits = bits;
        cfg.watchdog_cycles = 3_000_000;
        assert_clean(cfg, &wl, &format!("serial-collision bits={bits}"));
    }
}

/// BUG 5 — recall invalidations were never re-sent: a lost recall `Inv`
/// (or its ack) left the bank's eviction waiting forever on a counter that
/// could also be corrupted by duplicate acks. Fix: set-based tracking of
/// outstanding recall acks, with re-invalidation of exactly the missing
/// members on the lost-unblock timer (l2.rs `recall_acks`).
#[test]
fn lost_recall_invalidations_are_resent() {
    // Originally wedged at stress tiny-caches seed=17.
    let wl = contended_workload(17u64.wrapping_mul(37) + 13, 8, 120, 40);
    let mut cfg = SystemConfig::ftdircmp()
        .with_fault_rate(2_000.0)
        .with_seed(17 + 404);
    cfg.l1_bytes = 2 * 1024;
    cfg.l2_bank_bytes = 4 * 1024;
    cfg.watchdog_cycles = 3_000_000;
    assert_clean(cfg, &wl, "recall-inv-resend");
}

/// BUG 6 — DirCMP deadlocks silently drained the event queue and the run
/// reported success with zero cycles. Fix: an empty queue with blocked
/// cores is reported as a deadlock (system.rs).
#[test]
fn drained_queue_with_blocked_cores_is_a_deadlock() {
    let wl = contended_workload(99, 16, 200, 24);
    let mut cfg = SystemConfig::dircmp()
        .with_fault_rate(20_000.0)
        .with_seed(99);
    cfg.watchdog_cycles = 150_000;
    match System::run_workload(cfg, &wl) {
        Err(ftdircmp_core::RunError::Deadlock { .. }) => {}
        Ok(r) => assert_eq!(r.messages_lost, 0, "losses must imply deadlock"),
        Err(e) => panic!("unexpected: {e}"),
    }
}
