//! Randomized stress sweep: many seeds × fault rates × burstiness, checking
//! completion and every invariant on each run.
//!
//! The default sweep is sized to stay fast in CI; set `FTDIRCMP_STRESS=big`
//! for a deeper hunt.

use ftdircmp_core::ids::Addr;
use ftdircmp_core::trace::{CoreTrace, TraceOp, Workload};
use ftdircmp_core::{System, SystemConfig};
use ftdircmp_noc::FaultConfig;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Workload with deliberately nasty sharing: a hot set of contended lines
/// plus a private region, mixing loads, stores and short thinks.
fn contended_workload(seed: u64, cores: u8, ops: usize, hot_lines: u64) -> Workload {
    let mut traces = Vec::new();
    for c in 0..cores {
        let mut st = seed ^ (u64::from(c) + 1).wrapping_mul(0x2545F4914F6CDD1D);
        let mut v = Vec::with_capacity(ops);
        for _ in 0..ops {
            let r = xorshift(&mut st);
            let line = if r.is_multiple_of(4) {
                // Private region per core.
                1000 + u64::from(c) * 64 + (r >> 8) % 16
            } else {
                // Hot contended region.
                (r >> 8) % hot_lines
            };
            let a = Addr(line * 64);
            if r.is_multiple_of(3) {
                v.push(TraceOp::Store(a));
            } else {
                v.push(TraceOp::Load(a));
            }
            if r.is_multiple_of(11) {
                v.push(TraceOp::Think(r % 30));
            }
        }
        traces.push(CoreTrace::new(v));
    }
    Workload::new("stress", traces)
}

fn check(cfg: SystemConfig, wl: &Workload, label: &str) {
    match System::run_workload(cfg, wl) {
        Ok(r) => {
            assert!(
                r.violations.is_empty(),
                "[{label}] violations: {:#?}",
                r.violations
            );
            assert_eq!(
                r.total_mem_ops as usize,
                wl.total_mem_ops(),
                "[{label}] lost operations"
            );
        }
        Err(e) => panic!("[{label}] {e}"),
    }
}

fn sweep_size() -> u64 {
    if std::env::var("FTDIRCMP_STRESS").as_deref() == Ok("big") {
        40
    } else {
        8
    }
}

#[test]
fn ftdircmp_stress_isolated_faults() {
    for seed in 0..sweep_size() {
        for rate in [0.0, 1000.0, 10_000.0, 50_000.0] {
            let wl = contended_workload(seed.wrapping_mul(31) + 7, 8, 120, 12);
            let mut cfg = SystemConfig::ftdircmp()
                .with_fault_rate(rate)
                .with_seed(seed * 1000 + rate as u64);
            cfg.watchdog_cycles = 3_000_000;
            check(cfg, &wl, &format!("seed={seed} rate={rate}"));
        }
    }
}

#[test]
fn ftdircmp_stress_bursty_faults() {
    for seed in 0..sweep_size() {
        let wl = contended_workload(seed.wrapping_mul(17) + 3, 8, 120, 12);
        let mut cfg = SystemConfig::ftdircmp().with_seed(seed + 5000);
        cfg.mesh.faults = FaultConfig::bursts(5000.0, 0.6, 6);
        cfg.watchdog_cycles = 3_000_000;
        check(cfg, &wl, &format!("bursty seed={seed}"));
    }
}

#[test]
fn ftdircmp_stress_short_timeouts_many_false_positives() {
    // Aggressively short timeouts cause reissues even without faults; serial
    // numbers must keep every run coherent (paper §3.5, Figure 2).
    for seed in 0..sweep_size() {
        let wl = contended_workload(seed.wrapping_mul(13) + 1, 8, 120, 10);
        let mut cfg = SystemConfig::ftdircmp().with_seed(seed + 900);
        cfg.ft.lost_request_timeout = 150;
        cfg.ft.lost_unblock_timeout = 150;
        cfg.ft.lost_ackbd_timeout = 120;
        cfg.ft.lost_data_timeout = 300;
        cfg.watchdog_cycles = 3_000_000;
        check(cfg, &wl, &format!("short-timeouts seed={seed}"));
    }
}

#[test]
fn ftdircmp_stress_short_timeouts_plus_faults() {
    for seed in 0..sweep_size() {
        let wl = contended_workload(seed.wrapping_mul(41) + 11, 8, 100, 10);
        let mut cfg = SystemConfig::ftdircmp()
            .with_fault_rate(20_000.0)
            .with_seed(seed + 31);
        cfg.ft.lost_request_timeout = 400;
        cfg.ft.lost_unblock_timeout = 400;
        cfg.ft.lost_ackbd_timeout = 300;
        cfg.ft.lost_data_timeout = 800;
        cfg.watchdog_cycles = 3_000_000;
        check(cfg, &wl, &format!("short+faults seed={seed}"));
    }
}

#[test]
fn ftdircmp_stress_narrow_serials() {
    // Paper §3.5: with n-bit serials, a request must be reissued 2^n times
    // before a stale response can possibly be accepted. The protocol is
    // therefore only *probabilistically* safe for small n; these parameter
    // ranges keep reissue chains well below 2^n (exponential backoff makes
    // long chains vanishingly rare), where safety is guaranteed.
    for seed in 0..sweep_size() {
        // 4-bit serials under real losses: chains of 16 reissues are
        // unreachable with backoff.
        let wl = contended_workload(seed.wrapping_mul(23) + 9, 8, 100, 10);
        let mut cfg = SystemConfig::ftdircmp()
            .with_fault_rate(5_000.0)
            .with_seed(seed + 77);
        cfg.ft.serial_bits = 4;
        cfg.watchdog_cycles = 3_000_000;
        check(cfg, &wl, &format!("serial4 seed={seed}"));

        // 2-bit serials at a low fault rate: 4-long reissue chains require
        // several consecutive losses of the same transaction (~1e-12).
        let wl = contended_workload(seed.wrapping_mul(19) + 3, 8, 100, 10);
        let mut cfg = SystemConfig::ftdircmp()
            .with_fault_rate(500.0)
            .with_seed(seed + 177);
        cfg.ft.serial_bits = 2;
        cfg.watchdog_cycles = 3_000_000;
        check(cfg, &wl, &format!("serial2 seed={seed}"));
    }
}

#[test]
fn ftdircmp_stress_chaos_jitter_reorders_messages() {
    // Random per-message delays break every ordering assumption; only the
    // serial-number machinery keeps this coherent (like adaptive routing,
    // but more aggressive).
    for seed in 0..sweep_size() {
        let wl = contended_workload(seed.wrapping_mul(53) + 17, 8, 100, 10);
        let mut cfg = SystemConfig::ftdircmp()
            .with_fault_rate(2000.0)
            .with_seed(seed + 7070);
        cfg.mesh.jitter_cycles = 400;
        cfg.watchdog_cycles = 4_000_000;
        check(cfg, &wl, &format!("jitter seed={seed}"));
    }
}

#[test]
fn dircmp_stress_fault_free() {
    for seed in 0..sweep_size() {
        let wl = contended_workload(seed.wrapping_mul(29) + 5, 8, 120, 12);
        let cfg = SystemConfig::dircmp().with_seed(seed);
        check(cfg, &wl, &format!("dircmp seed={seed}"));
    }
}

#[test]
fn small_caches_force_constant_evictions() {
    // Tiny L1 and L2 push the eviction, recall and L2-writeback paths hard.
    for seed in 0..sweep_size() {
        let wl = contended_workload(seed.wrapping_mul(37) + 13, 8, 120, 40);
        let mut cfg = SystemConfig::ftdircmp()
            .with_fault_rate(2_000.0)
            .with_seed(seed + 404);
        cfg.l1_bytes = 2 * 1024; // 8 sets x 4 ways
        cfg.l2_bank_bytes = 4 * 1024; // 8 sets x 8 ways
        cfg.watchdog_cycles = 3_000_000;
        check(cfg, &wl, &format!("tiny-caches seed={seed}"));
    }
}

#[test]
fn nonblocking_cores_stress() {
    // Several outstanding misses per core multiply the concurrent
    // transactions per L1; all invariants must hold, with and without
    // faults.
    for seed in 0..sweep_size() {
        for window in [2u8, 4, 8] {
            let wl = contended_workload(seed.wrapping_mul(61) + 19, 8, 100, 12);
            let mut cfg = SystemConfig::ftdircmp()
                .with_fault_rate(3000.0)
                .with_seed(seed + 9000 + u64::from(window));
            cfg.max_outstanding_misses = window;
            cfg.watchdog_cycles = 3_000_000;
            check(cfg, &wl, &format!("mlp w={window} seed={seed}"));

            let mut dir_cfg = SystemConfig::dircmp().with_seed(seed + 9100);
            dir_cfg.max_outstanding_misses = window;
            check(dir_cfg, &wl, &format!("mlp-dir w={window} seed={seed}"));
        }
    }
}
