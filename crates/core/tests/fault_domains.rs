//! Correlated fault-domain scenarios (DESIGN.md §12): link flaps, region
//! bursts and brown-outs end-to-end through the protocols, with the
//! recovery telemetry the campaigns plot.

use ftdircmp_core::ids::Addr;
use ftdircmp_core::trace::{CoreTrace, TraceOp, Workload};
use ftdircmp_core::{RunError, SimReport, System, SystemConfig};
use ftdircmp_noc::{Direction, FaultDomainConfig, FaultEvent, LinkChannelConfig, RouterId};

/// Deterministic pseudo-random trace generator (no external deps).
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn random_workload(name: &str, cores: u8, ops_per_core: usize, lines: u64, seed: u64) -> Workload {
    let mut traces = Vec::new();
    for c in 0..cores {
        let mut state = seed ^ (u64::from(c) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut ops = Vec::with_capacity(ops_per_core);
        for _ in 0..ops_per_core {
            let r = xorshift(&mut state);
            let a = Addr((r % lines) * 64);
            if r % 100 < 30 {
                ops.push(TraceOp::Store(a));
            } else {
                ops.push(TraceOp::Load(a));
            }
        }
        traces.push(CoreTrace::new(ops));
    }
    Workload::new(name, traces)
}

/// A flap on a central link, short relative to the FT timeouts' reach but
/// long enough to swallow traffic.
fn central_flap(start: u64, end: u64) -> FaultDomainConfig {
    FaultDomainConfig::events(vec![FaultEvent::LinkFlap {
        from: RouterId::new(5),
        dir: Direction::East,
        start,
        end,
    }])
}

fn run_clean(config: SystemConfig, wl: &Workload) -> SimReport {
    let report = System::run_workload(config, wl).expect("run must complete");
    assert!(
        report.violations.is_empty(),
        "invariant violations: {:#?}",
        report.violations
    );
    report
}

#[test]
fn ftdircmp_rides_through_a_link_flap_and_reports_the_epoch() {
    let wl = random_workload("flapped", 16, 300, 64, 11);
    let cfg = SystemConfig::ftdircmp()
        .with_fault_domains(central_flap(2_000, 12_000))
        .with_seed(11);
    let r = run_clean(cfg, &wl);
    assert_eq!(r.total_mem_ops as usize, wl.total_mem_ops());

    assert!(
        r.noc.link_down_drops() > 0,
        "the flap window must swallow some traffic"
    );
    assert_eq!(r.fault_epochs.len(), 1, "one event, one epoch");
    let epoch = &r.fault_epochs[0];
    assert!(epoch.label.starts_with("flap r5-east"));
    assert_eq!((epoch.start, epoch.end), (2_000, 12_000));
    assert_eq!(epoch.messages_lost, r.noc.link_down_drops());
    assert!(
        epoch.timeouts_fired > 0,
        "recovery must go through the FT timeouts"
    );
    let ttr = epoch.time_to_recover().expect("workload outlives the flap");
    assert!(
        ttr < cfg_watchdog(),
        "recovery ({ttr} cycles) must beat the watchdog"
    );
}

fn cfg_watchdog() -> u64 {
    SystemConfig::default().watchdog_cycles
}

#[test]
fn dircmp_deadlocks_under_the_same_flap() {
    // Negative control for the scenario above: any message the flap
    // swallows is unrecoverable under DirCMP (§3), and the enriched
    // watchdog report names the stuck lines.
    let wl = random_workload("flapped", 16, 300, 64, 11);
    let mut cfg = SystemConfig::dircmp().with_fault_domains(central_flap(2_000, 12_000));
    cfg.seed = 11;
    cfg.watchdog_cycles = 100_000;
    match System::run_workload(cfg, &wl) {
        Err(RunError::Deadlock {
            at,
            blocked_cores,
            last_progress,
            stalled,
            ..
        }) => {
            assert!(!blocked_cores.is_empty());
            assert!(at > last_progress);
            assert_eq!(stalled.len(), blocked_cores.len());
            assert!(
                stalled.iter().any(|s| !s.pending_lines.is_empty()),
                "diagnostics must name at least one stuck line"
            );
            let shown = stalled[0].to_string();
            assert!(shown.contains("blocked on"), "unexpected: {shown}");
        }
        Ok(r) => {
            assert_eq!(r.messages_lost, 0, "lost messages but no deadlock");
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn ftdircmp_survives_a_region_burst() {
    let wl = random_workload("burst", 16, 250, 64, 3);
    let burst = FaultDomainConfig::events(vec![FaultEvent::RegionBurst {
        epicenter: RouterId::new(5),
        radius: 1,
        start: 3_000,
        end: 9_000,
    }])
    .with_channel(LinkChannelConfig::passthrough(0.3));
    let cfg = SystemConfig::ftdircmp()
        .with_fault_domains(burst)
        .with_seed(3);
    let r = run_clean(cfg, &wl);
    assert_eq!(r.total_mem_ops as usize, wl.total_mem_ops());
    assert!(r.noc.channel_drops() > 0, "burst must degrade the region");
    assert_eq!(r.fault_epochs.len(), 1);
    assert!(r.fault_epochs[0].label.starts_with("burst r5+r1"));
}

#[test]
fn domain_runs_are_deterministic() {
    let wl = random_workload("det", 16, 150, 32, 7);
    let cfg = SystemConfig::ftdircmp()
        .with_fault_domains(central_flap(1_000, 6_000))
        .with_seed(7);
    let a = run_clean(cfg.clone(), &wl);
    let b = run_clean(cfg, &wl);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.noc.link_down_drops(), b.noc.link_down_drops());
    assert_eq!(a.fault_epochs, b.fault_epochs);
}

#[test]
fn fault_free_reports_have_no_epochs() {
    let wl = random_workload("quiet", 4, 50, 16, 1);
    let mut cfg = SystemConfig::ftdircmp();
    cfg = cfg.with_mesh(2, 2);
    let r = run_clean(cfg, &wl);
    assert!(r.fault_epochs.is_empty());
    assert_eq!(r.noc.link_down_drops(), 0);
    assert_eq!(r.noc.channel_drops(), 0);
    assert_eq!(r.noc.unroutable_drops(), 0);
}

#[test]
fn epoch_telemetry_renders_in_the_summary() {
    let wl = random_workload("render", 16, 200, 64, 11);
    let cfg = SystemConfig::ftdircmp()
        .with_fault_domains(central_flap(2_000, 12_000))
        .with_seed(11);
    let text = run_clean(cfg, &wl).render_summary();
    assert!(
        text.contains("fault domains:"),
        "missing drops line:\n{text}"
    );
    assert!(text.contains("fault epoch"), "missing epoch table:\n{text}");
    assert!(
        text.contains("flap r5-east"),
        "missing epoch label:\n{text}"
    );
}
