//! Protocol-level scenario tests: both protocols on crafted and randomized
//! workloads, with and without fault injection.

use ftdircmp_core::ids::Addr;
use ftdircmp_core::trace::{CoreTrace, TraceOp, Workload};
use ftdircmp_core::{RunError, SimReport, System, SystemConfig};

fn run(config: SystemConfig, wl: &Workload) -> SimReport {
    let report = System::run_workload(config, wl).expect("run must complete");
    assert!(
        report.violations.is_empty(),
        "invariant violations: {:#?}",
        report.violations
    );
    report
}

fn addr(line: u64) -> Addr {
    Addr(line * 64)
}

/// Deterministic pseudo-random trace generator (no external deps).
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn random_workload(
    name: &str,
    cores: u8,
    ops_per_core: usize,
    lines: u64,
    store_pct: u64,
    seed: u64,
) -> Workload {
    let mut traces = Vec::new();
    for c in 0..cores {
        let mut state = seed ^ (u64::from(c) + 1).wrapping_mul(0x9E3779B97F4A7C15);
        let mut ops = Vec::with_capacity(ops_per_core);
        for _ in 0..ops_per_core {
            let r = xorshift(&mut state);
            let line = r % lines;
            let a = addr(line);
            if r % 100 < store_pct {
                ops.push(TraceOp::Store(a));
            } else {
                ops.push(TraceOp::Load(a));
            }
            if r.is_multiple_of(7) {
                ops.push(TraceOp::Think(r % 20));
            }
        }
        traces.push(CoreTrace::new(ops));
    }
    Workload::new(name, traces)
}

// ---------------------------------------------------------------------
// Basic scenarios, both protocols
// ---------------------------------------------------------------------

fn both_protocols(test: impl Fn(SystemConfig)) {
    test(SystemConfig::dircmp());
    test(SystemConfig::ftdircmp());
}

#[test]
fn store_then_remote_load_sees_value() {
    both_protocols(|cfg| {
        let writer = CoreTrace::new(vec![TraceOp::Store(addr(5)), TraceOp::Store(addr(5))]);
        let reader = CoreTrace::new(vec![TraceOp::Think(2000), TraceOp::Load(addr(5))]);
        let wl = Workload::new("w", vec![writer, reader]);
        let r = run(cfg, &wl);
        assert_eq!(r.total_mem_ops, 3);
        assert!(r.cycles >= 2000);
    });
}

#[test]
fn widely_shared_line_readable_by_all_cores() {
    both_protocols(|cfg| {
        let mut traces = vec![CoreTrace::new(vec![TraceOp::Store(addr(1))])];
        for _ in 1..16 {
            traces.push(CoreTrace::new(vec![
                TraceOp::Think(3000),
                TraceOp::Load(addr(1)),
                TraceOp::Load(addr(1)),
            ]));
        }
        let wl = Workload::new("shared", traces);
        let r = run(cfg, &wl);
        assert_eq!(r.total_mem_ops, 31);
    });
}

#[test]
fn write_ping_pong_between_two_cores() {
    both_protocols(|cfg| {
        let mk = |skew: u64| {
            let mut ops = vec![TraceOp::Think(skew)];
            for _ in 0..50 {
                ops.push(TraceOp::Store(addr(9)));
                ops.push(TraceOp::Think(200));
            }
            CoreTrace::new(ops)
        };
        let wl = Workload::new("pingpong", vec![mk(0), mk(100)]);
        let r = run(cfg, &wl);
        assert_eq!(r.total_mem_ops, 100);
    });
}

#[test]
fn upgrade_from_shared_to_modified() {
    both_protocols(|cfg| {
        // All cores read the line, then core 0 writes it (invalidations +
        // ack collection path).
        let mut traces = vec![CoreTrace::new(vec![
            TraceOp::Load(addr(3)),
            TraceOp::Think(5000),
            TraceOp::Store(addr(3)),
        ])];
        for _ in 1..8 {
            traces.push(CoreTrace::new(vec![
                TraceOp::Think(1000),
                TraceOp::Load(addr(3)),
            ]));
        }
        let wl = Workload::new("upgrade", traces);
        let r = run(cfg, &wl);
        assert_eq!(r.total_mem_ops, 9);
    });
}

#[test]
fn capacity_evictions_and_writebacks() {
    both_protocols(|cfg| {
        // Working set of 2048 lines >> 512-line L1: forces evictions and
        // three-phase writebacks of dirty lines.
        let mut ops = Vec::new();
        for i in 0..2048u64 {
            ops.push(TraceOp::Store(addr(i)));
        }
        for i in 0..2048u64 {
            ops.push(TraceOp::Load(addr(i)));
        }
        let wl = Workload::new("capacity", vec![CoreTrace::new(ops)]);
        let r = run(cfg, &wl);
        assert_eq!(r.total_mem_ops, 4096);
        assert!(r.stats.l1_writebacks.get() > 0, "expected L1 writebacks");
    });
}

#[test]
fn migratory_sharing_grants_exclusive_on_reads() {
    // Read-modify-write migrating between cores: the migratory optimization
    // should convert some GetS into exclusive grants.
    let mk = |skew: u64| {
        let mut ops = vec![TraceOp::Think(skew)];
        for _ in 0..40 {
            ops.push(TraceOp::Load(addr(77)));
            ops.push(TraceOp::Store(addr(77)));
            ops.push(TraceOp::Think(400));
        }
        CoreTrace::new(ops)
    };
    let wl = Workload::new("migratory", vec![mk(0), mk(200)]);
    let r = run(SystemConfig::ftdircmp(), &wl);
    assert!(
        r.stats.migratory_grants.get() > 0,
        "migratory optimization never engaged"
    );
}

#[test]
fn random_mix_is_coherent_both_protocols() {
    both_protocols(|cfg| {
        let wl = random_workload("random", 16, 300, 64, 30, 42);
        let r = run(cfg, &wl);
        assert_eq!(r.total_mem_ops as usize, wl.total_mem_ops());
        assert_eq!(r.residual_activity, 0, "protocol activity never drained");
    });
}

#[test]
fn deterministic_given_seed() {
    let wl = random_workload("det", 16, 200, 48, 25, 7);
    let a = run(SystemConfig::ftdircmp().with_seed(123), &wl);
    let b = run(SystemConfig::ftdircmp().with_seed(123), &wl);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats.total_messages(), b.stats.total_messages());
    assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
}

#[test]
fn ft_without_faults_sends_no_recovery_pings() {
    let wl = random_workload("quiet", 16, 200, 48, 25, 7);
    let r = run(SystemConfig::ftdircmp(), &wl);
    use ftdircmp_core::MsgType;
    assert_eq!(r.stats.messages(MsgType::UnblockPing), 0);
    assert_eq!(r.stats.messages(MsgType::WbPing), 0);
    assert_eq!(r.stats.messages(MsgType::OwnershipPing), 0);
    assert_eq!(r.stats.reissues.get(), 0);
    // But the ownership handshake is always active.
    assert!(r.stats.messages(MsgType::AckBD) > 0);
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

#[test]
fn dircmp_deadlocks_on_any_loss() {
    // Paper §3: "Losing a message in DirCMP will always lead to a deadlock".
    let wl = random_workload("doomed", 16, 400, 64, 30, 99);
    let mut cfg = SystemConfig::dircmp().with_fault_rate(20_000.0); // 2%
    cfg.watchdog_cycles = 100_000;
    match System::run_workload(cfg, &wl) {
        Err(RunError::Deadlock { blocked_cores, .. }) => {
            assert!(!blocked_cores.is_empty());
        }
        Ok(r) => {
            // Statistically possible only if no message was actually lost.
            assert_eq!(r.messages_lost, 0, "lost messages but no deadlock");
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn ftdircmp_survives_moderate_fault_rate() {
    let wl = random_workload("survivor", 16, 250, 64, 30, 5);
    let cfg = SystemConfig::ftdircmp()
        .with_fault_rate(2000.0)
        .with_seed(5);
    let r = run(cfg, &wl);
    assert_eq!(r.total_mem_ops as usize, wl.total_mem_ops());
}

#[test]
fn ftdircmp_survives_heavy_fault_rate() {
    // 1% of messages lost — far beyond the paper's highest rate.
    let wl = random_workload("heavy", 8, 150, 32, 40, 11);
    let mut cfg = SystemConfig::ftdircmp()
        .with_fault_rate(10_000.0)
        .with_seed(11);
    cfg.watchdog_cycles = 2_000_000;
    let r = run(cfg, &wl);
    assert!(r.messages_lost > 0, "fault injector never fired");
    assert!(r.stats.reissues.get() > 0 || r.stats.total_timeouts() > 0);
}

#[test]
fn ftdircmp_survives_bursty_losses() {
    let wl = random_workload("bursty", 8, 150, 32, 40, 13);
    let mut cfg = SystemConfig::ftdircmp().with_seed(13);
    cfg.mesh.faults = ftdircmp_noc::FaultConfig::bursts(2000.0, 0.5, 8);
    cfg.watchdog_cycles = 2_000_000;
    let r = run(cfg, &wl);
    assert_eq!(r.total_mem_ops as usize, wl.total_mem_ops());
}

#[test]
fn faulty_runs_detect_losses_via_timeouts() {
    let wl = random_workload("detect", 16, 300, 64, 30, 21);
    let cfg = SystemConfig::ftdircmp()
        .with_fault_rate(5000.0)
        .with_seed(21);
    let r = run(cfg, &wl);
    if r.messages_lost > 0 {
        assert!(
            r.stats.total_timeouts() > 0,
            "{} messages lost but no timeout fired",
            r.messages_lost
        );
    }
}

#[test]
fn fault_free_ft_matches_dircmp_execution_time_closely() {
    // Paper Figure 3, fault rate 0: FtDirCMP's execution time is within a
    // few percent of DirCMP.
    let wl = random_workload("overhead", 16, 300, 96, 30, 33);
    let base = run(SystemConfig::dircmp(), &wl);
    let ft = run(SystemConfig::ftdircmp(), &wl);
    let rel = ft.relative_execution_time(&base);
    assert!(
        (0.9..1.15).contains(&rel),
        "fault-free overhead should be small, got {rel}"
    );
}

#[test]
fn ft_message_overhead_is_positive_but_bounded() {
    // Paper Figure 4: ≈ +30% messages, ≈ +10% bytes, from ownership acks.
    let wl = random_workload("traffic", 16, 300, 96, 30, 44);
    let base = run(SystemConfig::dircmp(), &wl);
    let ft = run(SystemConfig::ftdircmp(), &wl);
    let msg_ov = ft.message_overhead(&base);
    let byte_ov = ft.byte_overhead(&base);
    assert!(msg_ov > 0.0, "FT must add messages, got {msg_ov}");
    assert!(msg_ov < 0.8, "message overhead too large: {msg_ov}");
    assert!(
        byte_ov < msg_ov,
        "byte overhead should be smaller: {byte_ov} vs {msg_ov}"
    );
}
