//! Model-based property tests for the core data structures.

use std::collections::HashMap;

use ftdircmp_core::cache::SetAssocCache;
use ftdircmp_core::ids::Addr;
use ftdircmp_core::trace::{CoreTrace, TraceOp, Workload};
use ftdircmp_core::trace_io;
use ftdircmp_core::LineAddr;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum CacheOp {
    Insert(u64, u32),
    Remove(u64),
    Get(u64),
    Touch(u64),
}

fn arb_cache_op() -> impl Strategy<Value = CacheOp> {
    (0u8..4, 0u64..48, 0u32..1000).prop_map(|(k, addr, val)| match k {
        0 => CacheOp::Insert(addr, val),
        1 => CacheOp::Remove(addr),
        2 => CacheOp::Get(addr),
        _ => CacheOp::Touch(addr),
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The cache behaves like a map: every key it claims to hold returns
    /// the last value written for it, and (with an always-evictable policy)
    /// nothing is ever silently lost without an eviction notice.
    #[test]
    fn cache_is_a_faithful_lossy_map(
        ops in proptest::collection::vec(arb_cache_op(), 1..200),
        sets in 1u64..8,
        assoc in 1u32..5,
    ) {
        let mut cache: SetAssocCache<u32> = SetAssocCache::new(sets, assoc);
        let mut model: HashMap<u64, u32> = HashMap::new();
        for op in ops {
            match op {
                CacheOp::Insert(a, v) => {
                    if model.contains_key(&a) {
                        continue; // double insert panics by design
                    }
                    let out = cache.insert(LineAddr(a), v, |_, _| true);
                    model.insert(a, v);
                    if let Some((victim, _)) = out.evicted {
                        model.remove(&victim.0);
                    }
                    prop_assert!(!out.overflowed, "always-evictable never overflows");
                }
                CacheOp::Remove(a) => {
                    let got = cache.remove(LineAddr(a));
                    let expect = model.remove(&a);
                    prop_assert_eq!(got, expect);
                }
                CacheOp::Get(a) => {
                    prop_assert_eq!(cache.get(LineAddr(a)), model.get(&a));
                }
                CacheOp::Touch(a) => {
                    let got = cache.get_mut(LineAddr(a)).map(|v| *v);
                    prop_assert_eq!(got, model.get(&a).copied());
                }
            }
            prop_assert_eq!(cache.len(), model.len());
        }
    }

    /// With a never-evict policy, nothing is ever lost: the overflow buffer
    /// absorbs the surplus and every line stays retrievable.
    #[test]
    fn pinned_cache_never_loses_lines(
        addrs in proptest::collection::hash_set(0u64..64, 1..40),
        sets in 1u64..4,
        assoc in 1u32..3,
    ) {
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(sets, assoc);
        for &a in &addrs {
            let out = cache.insert(LineAddr(a), a * 10, |_, _| false);
            prop_assert!(out.evicted.is_none());
        }
        for &a in &addrs {
            prop_assert_eq!(cache.get(LineAddr(a)), Some(&(a * 10)));
        }
        prop_assert_eq!(cache.len(), addrs.len());
        prop_assert!(cache.overflow_peak() <= addrs.len());
    }

    /// Any workload survives a serialization roundtrip bit-for-bit.
    #[test]
    fn trace_io_roundtrips_arbitrary_workloads(
        per_core in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 0u64..1_000_000), 0..50),
            0..6,
        ),
        name in "[a-zA-Z][a-zA-Z0-9_-]{0,20}",
    ) {
        let traces: Vec<CoreTrace> = per_core
            .into_iter()
            .map(|ops| {
                CoreTrace::new(
                    ops.into_iter()
                        .map(|(k, v)| match k {
                            0 => TraceOp::Load(Addr(v)),
                            1 => TraceOp::Store(Addr(v)),
                            _ => TraceOp::Think(v),
                        })
                        .collect(),
                )
            })
            .collect();
        let wl = Workload::new(name, traces);
        let back = trace_io::from_str(&trace_io::to_string(&wl)).unwrap();
        prop_assert_eq!(back, wl);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The trace parser never panics, whatever bytes it is fed.
    #[test]
    fn trace_parser_never_panics(input in "\\PC{0,400}") {
        let _ = trace_io::from_str(&input);
    }

    /// Structured garbage (valid-looking directives with junk operands)
    /// yields errors with line numbers, never panics.
    #[test]
    fn trace_parser_rejects_gracefully(
        lines in proptest::collection::vec(
            proptest::sample::select(vec![
                "L xyz", "S", "T -4", "core banana", "workload", "flush 3", "L 40 extra",
            ]),
            1..10,
        ),
    ) {
        let text = lines.join("\n");
        if let Err(e) = trace_io::from_str(&text) {
            prop_assert!(e.line() >= 1);
            prop_assert!(!e.to_string().is_empty());
        }
    }
}
