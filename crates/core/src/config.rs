//! System configuration (paper Table 4).

use ftdircmp_noc::{FaultConfig, FaultDomainConfig, FaultEvent, MeshConfig, RoutingMode};

/// Which coherence protocol the system runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolVariant {
    /// The baseline MOESI directory protocol (paper §2). Requires a
    /// fault-free network: any lost message deadlocks it (paper §3).
    DirCmp,
    /// The fault-tolerant extension (paper §3): backup/blocked-ownership
    /// states, ownership acknowledgments, detection timeouts and request
    /// serial numbers.
    #[default]
    FtDirCmp,
}

impl ProtocolVariant {
    /// Whether the fault-tolerance machinery is active.
    pub fn is_fault_tolerant(self) -> bool {
        matches!(self, ProtocolVariant::FtDirCmp)
    }

    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolVariant::DirCmp => "DirCMP",
            ProtocolVariant::FtDirCmp => "FtDirCMP",
        }
    }
}

impl std::fmt::Display for ProtocolVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fault-tolerance parameters (Table 4, bottom block).
///
/// The paper chose the timeout values experimentally; these defaults are
/// calibrated the same way for our network model (several round trips plus
/// memory latency of headroom — see the `ablation_timeouts` bench).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FtConfig {
    /// Lost-request timeout, cycles (Table 3 row 1).
    pub lost_request_timeout: u64,
    /// Lost-unblock timeout, cycles (Table 3 row 2).
    pub lost_unblock_timeout: u64,
    /// Lost backup-deletion-acknowledgment timeout, cycles (Table 3 row 3).
    pub lost_ackbd_timeout: u64,
    /// Backup-side lost-data timeout, cycles: how long a node waits in
    /// backup state before sending `OwnershipPing` (our completion of the
    /// Table 2 `OwnershipPing`/`NackO` pair; see DESIGN.md §4).
    pub lost_data_timeout: u64,
    /// Request serial number width in bits (Table 4: 8).
    pub serial_bits: u8,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            lost_request_timeout: 3000,
            lost_unblock_timeout: 3000,
            lost_ackbd_timeout: 2000,
            lost_data_timeout: 8000,
            serial_bits: 8,
        }
    }
}

/// Full system configuration, defaulting to the paper's Table 4 16-way
/// tiled CMP.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Protocol to run.
    pub protocol: ProtocolVariant,
    /// Number of tiles (cores, L1s, and L2 banks). Must equal
    /// `mesh.width * mesh.height`.
    pub tiles: u8,
    /// Number of memory controllers (Table 4: 4-way interleaved memory).
    pub mem_controllers: u8,
    /// Mesh routers the memory controllers attach to.
    pub mem_routers: Vec<u16>,
    /// Cache line size in bytes (Table 4: 64).
    pub line_bytes: u64,
    /// L1 cache size in bytes (Table 4: 32 KB).
    pub l1_bytes: u64,
    /// L1 associativity (Table 4: 4-way).
    pub l1_assoc: u32,
    /// L1 hit time in cycles (Table 4: 3).
    pub l1_hit_cycles: u64,
    /// L2 bank size in bytes (256 KB per bank, 4 MB total).
    pub l2_bank_bytes: u64,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// L2 hit (bank access) time in cycles (Table 4: 15).
    pub l2_hit_cycles: u64,
    /// Latency of a directory-only L2 operation (no data array access).
    pub l2_tag_cycles: u64,
    /// Memory access time in cycles (Table 4: 160).
    pub mem_cycles: u64,
    /// Control message size in bytes (Table 4: 8).
    pub control_msg_bytes: u32,
    /// Data message size in bytes (Table 4: 72 = 64 data + 8 header).
    pub data_msg_bytes: u32,
    /// Network configuration (Table 4: 4×4 mesh).
    pub mesh: MeshConfig,
    /// Fault-tolerance parameters.
    pub ft: FtConfig,
    /// Enable the migratory-sharing optimization (paper §2).
    pub migratory_sharing: bool,
    /// Maximum outstanding L1 misses per core. 1 models the paper's
    /// blocking in-order cores (Table 4); larger values model non-blocking
    /// caches / memory-level parallelism, which the paper notes does not
    /// affect protocol correctness (§2).
    pub max_outstanding_misses: u8,
    /// Cycles without any completed memory operation after which the
    /// deadlock watchdog aborts the run.
    pub watchdog_cycles: u64,
    /// Master random seed (workloads fork their own streams from it).
    pub seed: u64,
    /// Event-queue schedule seed: `0` keeps FIFO tie-breaking for
    /// same-cycle events (the historical order); any other value applies a
    /// reproducible pseudo-random permutation, used by the exploration
    /// harness to reach races FIFO never exhibits. Only FtDirCMP is
    /// expected to tolerate nonzero seeds (they break same-cycle
    /// point-to-point ordering, like adaptive routing).
    pub schedule_seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            protocol: ProtocolVariant::FtDirCmp,
            tiles: 16,
            mem_controllers: 4,
            mem_routers: vec![0, 3, 12, 15],
            line_bytes: 64,
            l1_bytes: 32 * 1024,
            l1_assoc: 4,
            l1_hit_cycles: 3,
            l2_bank_bytes: 256 * 1024,
            l2_assoc: 8,
            l2_hit_cycles: 15,
            l2_tag_cycles: 4,
            mem_cycles: 160,
            control_msg_bytes: 8,
            data_msg_bytes: 72,
            mesh: MeshConfig::default(),
            ft: FtConfig::default(),
            migratory_sharing: true,
            max_outstanding_misses: 1,
            watchdog_cycles: 400_000,
            seed: 0xF7D1_2C3B,
            schedule_seed: 0,
        }
    }
}

impl SystemConfig {
    /// Table 4 configuration running the baseline DirCMP protocol.
    pub fn dircmp() -> Self {
        SystemConfig {
            protocol: ProtocolVariant::DirCmp,
            ..SystemConfig::default()
        }
    }

    /// Table 4 configuration running FtDirCMP.
    pub fn ftdircmp() -> Self {
        SystemConfig::default()
    }

    /// Sets the network fault rate in messages lost per million (the unit
    /// of the paper's Figure 3 sweep).
    pub fn with_fault_rate(mut self, per_million: f64) -> Self {
        self.mesh.faults = FaultConfig::per_million(per_million);
        self
    }

    /// Switches the network to randomized adaptive routing (unordered
    /// delivery — the extension of paper §2 / ref \[6\]).
    pub fn with_adaptive_routing(mut self) -> Self {
        self.mesh.routing = RoutingMode::Adaptive;
        self
    }

    /// Installs a correlated fault-domain configuration (per-link channels
    /// and scheduled flaps/brown-outs/bursts; see DESIGN.md §12). Composes
    /// with the classic injector knobs, which stay untouched.
    pub fn with_fault_domains(mut self, domains: FaultDomainConfig) -> Self {
        self.mesh.faults.domains = Some(domains);
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the event-queue schedule seed (`0` = FIFO tie-breaking; see
    /// [`SystemConfig::schedule_seed`]).
    pub fn with_schedule_seed(mut self, schedule_seed: u64) -> Self {
        self.schedule_seed = schedule_seed;
        self
    }

    /// Reshapes the system to a `width x height` mesh (tiles, memory
    /// controllers at the corners, and the network change together). Used
    /// by the scalability ablation.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the mesh exceeds 64 tiles
    /// (the sharer-vector width).
    pub fn with_mesh(mut self, width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        let tiles = u32::from(width) * u32::from(height);
        assert!(tiles <= 64, "at most 64 tiles (sharer vector width)");
        self.mesh.width = width;
        self.mesh.height = height;
        self.tiles = tiles as u8;
        // Memory controllers at the distinct mesh corners.
        let mut corners: Vec<u16> = vec![0, width - 1, (height - 1) * width, height * width - 1];
        corners.sort_unstable();
        corners.dedup();
        self.mem_controllers = corners.len() as u8;
        self.mem_routers = corners;
        self
    }

    /// Number of L1 sets.
    pub fn l1_sets(&self) -> u64 {
        self.l1_bytes / (self.line_bytes * u64::from(self.l1_assoc))
    }

    /// Number of L2-bank sets.
    pub fn l2_sets(&self) -> u64 {
        self.l2_bank_bytes / (self.line_bytes * u64::from(self.l2_assoc))
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency
    /// found (tile/mesh mismatch, non-power-of-two sizes, missing memory
    /// routers, zero timeouts under FtDirCMP).
    pub fn validate(&self) -> Result<(), String> {
        let mesh_nodes = u32::from(self.mesh.width) * u32::from(self.mesh.height);
        if u32::from(self.tiles) != mesh_nodes {
            return Err(format!(
                "tiles ({}) must equal mesh size ({}x{})",
                self.tiles, self.mesh.width, self.mesh.height
            ));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line size {} is not a power of two",
                self.line_bytes
            ));
        }
        if self.mem_routers.len() != usize::from(self.mem_controllers) {
            return Err(format!(
                "{} memory controllers but {} attachment routers",
                self.mem_controllers,
                self.mem_routers.len()
            ));
        }
        if self.mem_routers.iter().any(|r| u32::from(*r) >= mesh_nodes) {
            return Err("memory router outside the mesh".to_string());
        }
        if self.l1_sets() == 0 || self.l2_sets() == 0 {
            return Err("cache has zero sets".to_string());
        }
        if self.max_outstanding_misses == 0 {
            return Err("max_outstanding_misses must be at least 1".to_string());
        }
        if self.protocol.is_fault_tolerant()
            && (self.ft.lost_request_timeout == 0
                || self.ft.lost_unblock_timeout == 0
                || self.ft.lost_ackbd_timeout == 0)
        {
            return Err("FtDirCMP timeouts must be positive".to_string());
        }
        if !self.protocol.is_fault_tolerant() && self.mesh.faults.is_faulty() {
            // Legal (it is exactly experiment E12) but worth noting: DirCMP
            // will deadlock. Validation passes.
        }
        self.mesh.faults.validate().map_err(|e| e.to_string())?;
        if let Some(domains) = &self.mesh.faults.domains {
            for (i, ev) in domains.events.iter().enumerate() {
                let router = match *ev {
                    FaultEvent::LinkFlap { from, .. } => from,
                    FaultEvent::RouterBrownout { router, .. } => router,
                    FaultEvent::RegionBurst { epicenter, .. } => epicenter,
                };
                if router.index() as u32 >= mesh_nodes {
                    return Err(format!(
                        "fault event {i} ({}) references router {router} outside the \
                         {}x{} mesh",
                        ev.label(),
                        self.mesh.width,
                        self.mesh.height
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table4() {
        let c = SystemConfig::default();
        assert_eq!(c.tiles, 16);
        assert_eq!(c.mem_controllers, 4);
        assert_eq!(c.line_bytes, 64);
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l1_assoc, 4);
        assert_eq!(c.l1_hit_cycles, 3);
        assert_eq!(c.mem_cycles, 160);
        assert_eq!(c.control_msg_bytes, 8);
        assert_eq!(c.data_msg_bytes, 72);
        assert_eq!(c.ft.serial_bits, 8);
        assert_eq!((c.mesh.width, c.mesh.height), (4, 4));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn derived_set_counts() {
        let c = SystemConfig::default();
        // 32 KB / (64 B * 4 ways) = 128 sets.
        assert_eq!(c.l1_sets(), 128);
        // 256 KB / (64 B * 8 ways) = 512 sets.
        assert_eq!(c.l2_sets(), 512);
    }

    #[test]
    fn variant_constructors() {
        assert_eq!(SystemConfig::dircmp().protocol, ProtocolVariant::DirCmp);
        assert_eq!(SystemConfig::ftdircmp().protocol, ProtocolVariant::FtDirCmp);
        assert!(!ProtocolVariant::DirCmp.is_fault_tolerant());
        assert!(ProtocolVariant::FtDirCmp.is_fault_tolerant());
        assert_eq!(ProtocolVariant::DirCmp.to_string(), "DirCMP");
    }

    #[test]
    fn builders_adjust_config() {
        let c = SystemConfig::default().with_fault_rate(250.0).with_seed(7);
        assert!(c.mesh.faults.is_faulty());
        assert_eq!(c.seed, 7);
        let a = SystemConfig::default().with_adaptive_routing();
        assert_eq!(a.mesh.routing, RoutingMode::Adaptive);
        assert_eq!(SystemConfig::default().schedule_seed, 0);
        let s = SystemConfig::default().with_schedule_seed(42);
        assert_eq!(s.schedule_seed, 42);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validate_rejects_mismatched_mesh() {
        let c = SystemConfig {
            tiles: 8,
            ..SystemConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("mesh size"));
    }

    #[test]
    fn validate_rejects_bad_line_size() {
        let c = SystemConfig {
            line_bytes: 48,
            ..SystemConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("power of two"));
    }

    #[test]
    fn validate_rejects_bad_mem_routers() {
        let c = SystemConfig {
            mem_routers: vec![0, 3, 12],
            ..SystemConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SystemConfig {
            mem_routers: vec![0, 3, 12, 99],
            ..SystemConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("outside"));
    }

    #[test]
    fn with_mesh_reshapes_consistently() {
        let c = SystemConfig::default().with_mesh(2, 2);
        assert_eq!(c.tiles, 4);
        assert_eq!(c.mem_controllers, 4);
        assert_eq!(c.mem_routers, vec![0, 1, 2, 3]);
        assert!(c.validate().is_ok());

        let c = SystemConfig::default().with_mesh(8, 4);
        assert_eq!(c.tiles, 32);
        assert!(c.validate().is_ok());

        let c = SystemConfig::default().with_mesh(1, 1);
        assert_eq!(c.tiles, 1);
        assert_eq!(c.mem_controllers, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "at most 64 tiles")]
    fn with_mesh_rejects_oversized_meshes() {
        let _ = SystemConfig::default().with_mesh(9, 8);
    }

    #[test]
    fn validate_rejects_zero_ft_timeouts() {
        let mut c = SystemConfig::ftdircmp();
        c.ft.lost_request_timeout = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_surfaces_fault_config_errors() {
        // Satellite of DESIGN.md §12: the conflicting-drop-modes trap is
        // caught at system construction, not silently resolved.
        let mut c = SystemConfig::ftdircmp().with_fault_rate(250.0);
        c.mesh.faults.drop_indices = Some(vec![3]);
        assert!(c.validate().unwrap_err().contains("mutually exclusive"));
    }

    #[test]
    fn validate_checks_domain_events_against_the_mesh() {
        use ftdircmp_noc::{Direction, RouterId};

        let flap = |r: u16| FaultEvent::LinkFlap {
            from: RouterId::new(r),
            dir: Direction::East,
            start: 100,
            end: 200,
        };
        let ok =
            SystemConfig::ftdircmp().with_fault_domains(FaultDomainConfig::events(vec![flap(5)]));
        assert!(ok.validate().is_ok());
        assert!(ok.mesh.faults.is_faulty());

        let bad =
            SystemConfig::ftdircmp().with_fault_domains(FaultDomainConfig::events(vec![flap(16)]));
        assert!(bad.validate().unwrap_err().contains("outside"));

        let mut empty = FaultDomainConfig::events(vec![flap(5)]);
        empty.events = vec![FaultEvent::RouterBrownout {
            router: RouterId::new(2),
            start: 9,
            end: 9,
        }];
        let c = SystemConfig::ftdircmp().with_fault_domains(empty);
        assert!(c.validate().unwrap_err().contains("empty window"));
    }
}
