//! Shared harness for controller unit tests: a [`Ctx`] backed by plain
//! vectors so a single controller can be driven in isolation and its
//! emitted effects inspected.

use ftdircmp_sim::{Cycle, DetRng};

use crate::checker::Checker;
use crate::config::SystemConfig;
use crate::ids::NodeId;
use crate::msg::{Message, MsgType};
use crate::proto::{CoreCompletion, Ctx, Outgoing, TimeoutReq};
use crate::stats::ProtocolStats;

pub(crate) struct Harness {
    pub out: Vec<Outgoing>,
    pub timeouts: Vec<TimeoutReq>,
    pub completions: Vec<CoreCompletion>,
    pub stats: ProtocolStats,
    pub checker: Checker,
    pub config: SystemConfig,
    pub now: Cycle,
}

impl Harness {
    pub fn new(config: SystemConfig) -> Self {
        Harness {
            out: Vec::new(),
            timeouts: Vec::new(),
            completions: Vec::new(),
            stats: ProtocolStats::new(),
            checker: Checker::new(true),
            config,
            now: Cycle::ZERO,
        }
    }

    pub fn ft() -> Self {
        Harness::new(SystemConfig::ftdircmp())
    }

    pub fn dircmp() -> Self {
        Harness::new(SystemConfig::dircmp())
    }

    pub fn rng(&self) -> DetRng {
        DetRng::from_seed(self.config.seed)
    }

    pub fn ctx(&mut self) -> Ctx<'_> {
        Ctx {
            now: self.now,
            out: &mut self.out,
            timeouts: &mut self.timeouts,
            completions: &mut self.completions,
            stats: &mut self.stats,
            checker: &mut self.checker,
            config: &self.config,
        }
    }

    /// All messages of `mtype` emitted so far (without draining).
    pub fn sent(&self, mtype: MsgType) -> Vec<&Message> {
        self.out
            .iter()
            .filter(|o| o.msg.mtype == mtype)
            .map(|o| &o.msg)
            .collect()
    }

    /// The single message of `mtype` emitted so far.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one exists.
    pub fn sent_one(&self, mtype: MsgType) -> Message {
        let v = self.sent(mtype);
        assert_eq!(v.len(), 1, "expected exactly one {mtype}, got {}", v.len());
        v[0].clone()
    }

    /// Asserts nothing of `mtype` was sent.
    pub fn sent_none(&self, mtype: MsgType) {
        assert!(
            self.sent(mtype).is_empty(),
            "unexpected {mtype}: {:?}",
            self.sent(mtype)
        );
    }

    /// Clears emitted messages and timeouts (keeps stats/checker).
    pub fn clear(&mut self) {
        self.out.clear();
        self.timeouts.clear();
        self.completions.clear();
    }

    /// Most recently armed timeout of the given kind for `addr`, if any.
    pub fn armed(&self, node: NodeId, kind: crate::proto::TimeoutKind) -> Option<TimeoutReq> {
        self.timeouts
            .iter()
            .rev()
            .find(|t| t.node == node && t.kind == kind)
            .copied()
    }
}
