//! Plain-text serialization of workload traces.
//!
//! Trace-driven simulators live and die by their trace files; this module
//! defines a minimal line-based format so workloads can be generated once,
//! archived, and replayed (or written by external tools):
//!
//! ```text
//! # ftdircmp trace v1
//! workload <name>
//! core <index>
//! L <hex byte address>      # load
//! S <hex byte address>      # store
//! T <cycles>                # think
//! ```
//!
//! # Example
//!
//! ```
//! use ftdircmp_core::trace::{CoreTrace, TraceOp, Workload};
//! use ftdircmp_core::trace_io;
//! use ftdircmp_core::ids::Addr;
//!
//! let wl = Workload::new("demo", vec![CoreTrace::new(vec![
//!     TraceOp::Load(Addr(0x40)),
//!     TraceOp::Think(10),
//! ])]);
//! let text = trace_io::to_string(&wl);
//! let back = trace_io::from_str(&text)?;
//! assert_eq!(back, wl);
//! # Ok::<(), ftdircmp_core::trace_io::ParseTraceError>(())
//! ```

use std::fmt;

use crate::ids::Addr;
use crate::trace::{CoreTrace, TraceOp, Workload};

/// Error parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    reason: String,
}

impl ParseTraceError {
    fn new(line: usize, reason: impl Into<String>) -> Self {
        ParseTraceError {
            line,
            reason: reason.into(),
        }
    }

    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes a workload to the text format.
pub fn to_string(workload: &Workload) -> String {
    let mut out = String::from("# ftdircmp trace v1\n");
    out.push_str(&format!("workload {}\n", workload.name));
    for (i, trace) in workload.traces.iter().enumerate() {
        out.push_str(&format!("core {i}\n"));
        for op in trace.ops() {
            match op {
                TraceOp::Load(a) => out.push_str(&format!("L {:x}\n", a.0)),
                TraceOp::Store(a) => out.push_str(&format!("S {:x}\n", a.0)),
                TraceOp::Think(n) => out.push_str(&format!("T {n}\n")),
            }
        }
    }
    out
}

/// Parses a workload from the text format.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed lines, unknown directives,
/// out-of-order core indices, or operations before the first `core` line.
pub fn from_str(text: &str) -> Result<Workload, ParseTraceError> {
    let mut name = String::from("unnamed");
    let mut traces: Vec<CoreTrace> = Vec::new();
    let mut current: Option<Vec<TraceOp>> = None;

    let flush = |traces: &mut Vec<CoreTrace>, current: &mut Option<Vec<TraceOp>>| {
        if let Some(ops) = current.take() {
            traces.push(CoreTrace::new(ops));
        }
    };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (word, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match word {
            "workload" => {
                if rest.is_empty() {
                    return Err(ParseTraceError::new(lineno, "workload needs a name"));
                }
                name = rest.to_string();
            }
            "core" => {
                let idx: usize = rest
                    .parse()
                    .map_err(|_| ParseTraceError::new(lineno, "core needs an index"))?;
                flush(&mut traces, &mut current);
                if idx != traces.len() {
                    return Err(ParseTraceError::new(
                        lineno,
                        format!("expected core {} next, got {idx}", traces.len()),
                    ));
                }
                current = Some(Vec::new());
            }
            "L" | "S" => {
                let addr = u64::from_str_radix(rest, 16)
                    .map_err(|_| ParseTraceError::new(lineno, "bad hex address"))?;
                let op = if word == "L" {
                    TraceOp::Load(Addr(addr))
                } else {
                    TraceOp::Store(Addr(addr))
                };
                current
                    .as_mut()
                    .ok_or_else(|| ParseTraceError::new(lineno, "op before any `core` line"))?
                    .push(op);
            }
            "T" => {
                let n: u64 = rest
                    .parse()
                    .map_err(|_| ParseTraceError::new(lineno, "bad think duration"))?;
                current
                    .as_mut()
                    .ok_or_else(|| ParseTraceError::new(lineno, "op before any `core` line"))?
                    .push(TraceOp::Think(n));
            }
            other => {
                return Err(ParseTraceError::new(
                    lineno,
                    format!("unknown directive {other:?}"),
                ));
            }
        }
    }
    flush(&mut traces, &mut current);
    Ok(Workload::new(name, traces))
}

/// Writes a workload to a file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_file(workload: &Workload, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, to_string(workload))
}

/// Reads a workload from a file.
///
/// # Errors
///
/// Propagates I/O errors; parse errors are wrapped as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Workload> {
    let text = std::fs::read_to_string(path)?;
    from_str(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workload {
        Workload::new(
            "sample",
            vec![
                CoreTrace::new(vec![
                    TraceOp::Load(Addr(0x40)),
                    TraceOp::Store(Addr(0x1f80)),
                    TraceOp::Think(25),
                ]),
                CoreTrace::new(vec![TraceOp::Store(Addr(0))]),
                CoreTrace::default(),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let wl = sample();
        let text = to_string(&wl);
        let back = from_str(&text).unwrap();
        assert_eq!(back, wl);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\nworkload x\n\ncore 0\nL 40 # trailing comment\n\nT 3\n";
        let wl = from_str(text).unwrap();
        assert_eq!(wl.name, "x");
        assert_eq!(
            wl.traces[0].ops(),
            &[TraceOp::Load(Addr(0x40)), TraceOp::Think(3)]
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_str("workload x\ncore 0\nL zzz\n").unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("bad hex address"));
    }

    #[test]
    fn ops_before_core_are_rejected() {
        let err = from_str("workload x\nL 40\n").unwrap_err();
        assert!(err.to_string().contains("before any"));
    }

    #[test]
    fn cores_must_be_sequential() {
        let err = from_str("core 0\ncore 2\n").unwrap_err();
        assert!(err.to_string().contains("expected core 1"));
    }

    #[test]
    fn unknown_directives_are_rejected() {
        assert!(from_str("bogus 1\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let wl = sample();
        let dir = std::env::temp_dir().join("ftdircmp-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        write_file(&wl, &path).unwrap();
        assert_eq!(read_file(&path).unwrap(), wl);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generated_suite_roundtrips() {
        // Make sure real generator output survives the format.
        let text = to_string(&sample());
        assert!(text.starts_with("# ftdircmp trace v1"));
        let back = from_str(&text).unwrap();
        assert_eq!(back.total_mem_ops(), sample().total_mem_ops());
    }
}
