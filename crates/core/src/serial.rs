//! Request serial numbers (paper §3.5).
//!
//! Every request and response in FtDirCMP carries a small serial number.
//! Reissued requests get a *sequentially incremented* serial, so a stale
//! response to an earlier attempt can be told apart from the response to the
//! current attempt and discarded — preventing the incoherence of the paper's
//! Figure 2. The *initial* serial of a fresh request does not matter and is
//! drawn from a per-node wrapping counter.

use ftdircmp_sim::DetRng;

/// An `n`-bit request serial number.
///
/// Serial numbers wrap modulo `2^bits`; the paper notes a request would have
/// to be reissued `2^n` times before a stale response could be confused with
/// a current one. [`crate::config::FtConfig::serial_bits`] controls `n`
/// (8 in the paper's Table 4); the ablation bench sweeps it.
///
/// # Example
///
/// ```
/// use ftdircmp_core::SerialNum;
///
/// let s = SerialNum::new(255, 8);
/// assert_eq!(s.next(8), SerialNum::new(0, 8)); // wraps at 2^8
/// assert_ne!(s, s.next(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SerialNum(u16);

impl SerialNum {
    /// Creates a serial number, truncated to `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn new(value: u16, bits: u8) -> Self {
        SerialNum(value & Self::mask(bits))
    }

    /// The serial used by the non-fault-tolerant DirCMP protocol, which
    /// ignores serials entirely.
    pub const ZERO: SerialNum = SerialNum(0);

    /// Raw value.
    pub fn value(self) -> u16 {
        self.0
    }

    /// The sequentially next serial (used when reissuing a request),
    /// wrapping modulo `2^bits` (paper §3.5).
    pub fn next(self, bits: u8) -> SerialNum {
        SerialNum(self.0.wrapping_add(1) & Self::mask(bits))
    }

    fn mask(bits: u8) -> u16 {
        assert!((1..=16).contains(&bits), "serial bits must be in 1..=16");
        if bits == 16 {
            u16::MAX
        } else {
            (1u16 << bits) - 1
        }
    }
}

impl std::fmt::Display for SerialNum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Per-node allocator for *initial* serial numbers: a wrapping counter
/// seeded randomly, exactly as the paper describes ("each node has a
/// wrapping counter which is used to choose serial numbers for new
/// requests").
#[derive(Debug, Clone)]
pub struct SerialAllocator {
    counter: u16,
    bits: u8,
}

impl SerialAllocator {
    /// Creates an allocator with a random starting point.
    pub fn new(bits: u8, rng: &mut DetRng) -> Self {
        let start = (rng.next_u64() & 0xFFFF) as u16;
        SerialAllocator {
            counter: start,
            bits,
        }
    }

    /// Serial number for a brand-new request.
    pub fn fresh(&mut self) -> SerialNum {
        let s = SerialNum::new(self.counter, self.bits);
        self.counter = self.counter.wrapping_add(1);
        s
    }

    /// Width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncates_to_width() {
        assert_eq!(SerialNum::new(0x1FF, 8).value(), 0xFF);
        assert_eq!(SerialNum::new(0x1FF, 4).value(), 0xF);
        assert_eq!(SerialNum::new(7, 3).value(), 7);
    }

    #[test]
    fn next_wraps_at_width() {
        assert_eq!(SerialNum::new(3, 2).next(2).value(), 0);
        assert_eq!(SerialNum::new(254, 8).next(8).value(), 255);
        assert_eq!(SerialNum::new(255, 8).next(8).value(), 0);
    }

    #[test]
    fn reissue_chain_revisits_after_2n() {
        let bits = 3;
        let start = SerialNum::new(5, bits);
        let mut s = start;
        for _ in 0..(1 << bits) {
            s = s.next(bits);
        }
        assert_eq!(s, start, "serials must wrap after 2^n reissues");
        // And never collide before that.
        let mut s = start;
        for i in 1..(1 << bits) {
            s = s.next(bits);
            assert_ne!(s, start, "collision after only {i} reissues");
        }
    }

    #[test]
    fn allocator_is_sequential_and_seeded() {
        let mut rng = DetRng::from_seed(1);
        let mut a = SerialAllocator::new(8, &mut rng);
        let s1 = a.fresh();
        let s2 = a.fresh();
        assert_eq!(s1.next(8), s2);
        assert_eq!(a.bits(), 8);

        let mut rng2 = DetRng::from_seed(1);
        let mut b = SerialAllocator::new(8, &mut rng2);
        assert_eq!(b.fresh(), s1, "same seed gives same initial serial");
    }

    #[test]
    #[should_panic(expected = "serial bits must be in 1..=16")]
    fn zero_width_panics() {
        SerialNum::new(0, 0);
    }

    #[test]
    fn display_is_hashlike() {
        assert_eq!(SerialNum::new(12, 8).to_string(), "#12");
    }
}
