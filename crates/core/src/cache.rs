//! Generic set-associative cache array with LRU replacement.
//!
//! Used for both the L1 arrays and the L2 bank arrays. Entries that cannot
//! be evicted (mid-transaction lines) are pinned by the caller's victim
//! filter; when a fill finds every way pinned, the new line is parked in a
//! small *overflow buffer* (a victim-buffer analogue) so the protocol never
//! stalls on replacement. Overflow occupancy is reported in the statistics.

use ftdircmp_sim::FxHashMap;

use crate::ids::LineAddr;

/// Result of inserting a line into the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome<V> {
    /// A victim evicted to make room, if any.
    pub evicted: Option<(LineAddr, V)>,
    /// The line landed in the overflow buffer because every way was pinned.
    pub overflowed: bool,
}

#[derive(Debug, Clone)]
struct Way<V> {
    addr: LineAddr,
    value: V,
    stamp: u64,
}

/// A set-associative cache keyed by [`LineAddr`] with LRU replacement and an
/// overflow buffer.
///
/// # Example
///
/// ```
/// use ftdircmp_core::cache::SetAssocCache;
/// use ftdircmp_core::LineAddr;
///
/// let mut c: SetAssocCache<&str> = SetAssocCache::new(2, 2);
/// c.insert(LineAddr(0), "a", |_, _| true);
/// assert_eq!(c.get(LineAddr(0)), Some(&"a"));
/// assert_eq!(c.get(LineAddr(2)), None);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<V> {
    sets: Vec<Vec<Way<V>>>,
    assoc: usize,
    clock: u64,
    overflow: FxHashMap<LineAddr, V>,
    overflow_peak: usize,
    evictions: u64,
}

impl<V> SetAssocCache<V> {
    /// Creates a cache with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `assoc` is zero.
    pub fn new(sets: u64, assoc: u32) -> Self {
        assert!(sets > 0 && assoc > 0, "cache dimensions must be positive");
        SetAssocCache {
            sets: (0..sets)
                .map(|_| Vec::with_capacity(assoc as usize))
                .collect(),
            assoc: assoc as usize,
            clock: 0,
            overflow: FxHashMap::default(),
            overflow_peak: 0,
            evictions: 0,
        }
    }

    fn set_index(&self, addr: LineAddr) -> usize {
        (addr.0 % self.sets.len() as u64) as usize
    }

    /// Looks up a line without touching LRU state.
    pub fn get(&self, addr: LineAddr) -> Option<&V> {
        let set = &self.sets[self.set_index(addr)];
        set.iter()
            .find(|w| w.addr == addr)
            .map(|w| &w.value)
            .or_else(|| self.overflow.get(&addr))
    }

    /// Looks up a line mutably and refreshes its LRU position.
    pub fn get_mut(&mut self, addr: LineAddr) -> Option<&mut V> {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        if let Some(w) = set.iter_mut().find(|w| w.addr == addr) {
            w.stamp = clock;
            return Some(&mut w.value);
        }
        self.overflow.get_mut(&addr)
    }

    /// Whether the line is present (in the array or overflow buffer).
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.get(addr).is_some()
    }

    /// Inserts a line, evicting the LRU way for which `evictable` returns
    /// true if the set is full. If every way is pinned the line goes to the
    /// overflow buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if the line is already present (protocol bugs should be loud).
    pub fn insert(
        &mut self,
        addr: LineAddr,
        value: V,
        evictable: impl Fn(LineAddr, &V) -> bool,
    ) -> InsertOutcome<V> {
        assert!(!self.contains(addr), "line {addr} inserted twice");
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        if set.len() < self.assoc {
            set.push(Way {
                addr,
                value,
                stamp: clock,
            });
            return InsertOutcome {
                evicted: None,
                overflowed: false,
            };
        }
        // Evict the least-recently-used evictable way.
        let victim = set
            .iter()
            .enumerate()
            .filter(|(_, w)| evictable(w.addr, &w.value))
            .min_by_key(|(_, w)| w.stamp)
            .map(|(i, _)| i);
        if let Some(i) = victim {
            let old = std::mem::replace(
                &mut set[i],
                Way {
                    addr,
                    value,
                    stamp: clock,
                },
            );
            self.evictions += 1;
            InsertOutcome {
                evicted: Some((old.addr, old.value)),
                overflowed: false,
            }
        } else {
            self.overflow.insert(addr, value);
            self.overflow_peak = self.overflow_peak.max(self.overflow.len());
            InsertOutcome {
                evicted: None,
                overflowed: true,
            }
        }
    }

    /// Removes a line, returning its value. Overflowed lines mapping to the
    /// freed set are promoted back into the array opportunistically.
    pub fn remove(&mut self, addr: LineAddr) -> Option<V> {
        if let Some(v) = self.overflow.remove(&addr) {
            return Some(v);
        }
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|w| w.addr == addr)?;
        let way = set.remove(pos);
        self.promote_overflow(idx);
        Some(way.value)
    }

    fn promote_overflow(&mut self, set_idx: usize) {
        if self.overflow.is_empty() {
            return;
        }
        let sets_len = self.sets.len() as u64;
        let candidate = self
            .overflow
            .keys()
            .find(|a| (a.0 % sets_len) as usize == set_idx)
            .copied();
        if let Some(addr) = candidate {
            if self.sets[set_idx].len() < self.assoc {
                let value = self.overflow.remove(&addr).expect("candidate present");
                self.clock += 1;
                let clock = self.clock;
                self.sets[set_idx].push(Way {
                    addr,
                    value,
                    stamp: clock,
                });
            }
        }
    }

    /// Iterates over all resident lines (array + overflow).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &V)> {
        self.sets
            .iter()
            .flatten()
            .map(|w| (w.addr, &w.value))
            .chain(self.overflow.iter().map(|(a, v)| (*a, v)))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum::<usize>() + self.overflow.len()
    }

    /// Whether the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lines currently parked in the overflow buffer.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// High-water mark of the overflow buffer.
    pub fn overflow_peak(&self) -> usize {
        self.overflow_peak
    }

    /// Total LRU evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(4, 2);
        c.insert(LineAddr(5), 55, |_, _| true);
        assert_eq!(c.get(LineAddr(5)), Some(&55));
        assert!(c.contains(LineAddr(5)));
        assert_eq!(c.remove(LineAddr(5)), Some(55));
        assert!(!c.contains(LineAddr(5)));
        assert_eq!(c.remove(LineAddr(5)), None);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 2);
        c.insert(LineAddr(0), 0, |_, _| true);
        c.insert(LineAddr(1), 1, |_, _| true);
        // Touch 0 so that 1 becomes LRU.
        c.get_mut(LineAddr(0));
        let out = c.insert(LineAddr(2), 2, |_, _| true);
        assert_eq!(out.evicted, Some((LineAddr(1), 1)));
        assert!(c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(2)));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn pinned_ways_are_not_victims() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 2);
        c.insert(LineAddr(0), 0, |_, _| true);
        c.insert(LineAddr(1), 1, |_, _| true);
        // Only value 1 is evictable.
        let out = c.insert(LineAddr(2), 2, |_, v| *v == 1);
        assert_eq!(out.evicted, Some((LineAddr(1), 1)));
    }

    #[test]
    fn all_pinned_goes_to_overflow() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 2);
        c.insert(LineAddr(0), 0, |_, _| true);
        c.insert(LineAddr(1), 1, |_, _| true);
        let out = c.insert(LineAddr(2), 2, |_, _| false);
        assert!(out.overflowed);
        assert_eq!(out.evicted, None);
        assert_eq!(c.get(LineAddr(2)), Some(&2));
        assert_eq!(c.overflow_len(), 1);
        assert_eq!(c.overflow_peak(), 1);
    }

    #[test]
    fn overflow_promotes_when_way_frees() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 1);
        c.insert(LineAddr(0), 0, |_, _| true);
        c.insert(LineAddr(1), 1, |_, _| false);
        assert_eq!(c.overflow_len(), 1);
        c.remove(LineAddr(0));
        assert_eq!(c.overflow_len(), 0, "overflowed line should be promoted");
        assert_eq!(c.get(LineAddr(1)), Some(&1));
    }

    #[test]
    fn get_mut_updates_value() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(2, 1);
        c.insert(LineAddr(0), 10, |_, _| true);
        *c.get_mut(LineAddr(0)).unwrap() = 20;
        assert_eq!(c.get(LineAddr(0)), Some(&20));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(2, 1);
        c.insert(LineAddr(0), 0, |_, _| true);
        let out = c.insert(LineAddr(1), 1, |_, _| true);
        assert_eq!(out.evicted, None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn iter_covers_array_and_overflow() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 1);
        c.insert(LineAddr(0), 0, |_, _| true);
        c.insert(LineAddr(1), 1, |_, _| false);
        let mut addrs: Vec<u64> = c.iter().map(|(a, _)| a.0).collect();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_insert_panics() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 2);
        c.insert(LineAddr(0), 0, |_, _| true);
        c.insert(LineAddr(0), 0, |_, _| true);
    }
}
