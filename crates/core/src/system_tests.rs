//! Unit tests for the system driver.

use crate::config::SystemConfig;
use crate::ids::Addr;
use crate::system::{RunError, System};
use crate::trace::{CoreTrace, TraceOp, Workload};
use crate::tracelog::{CollectSink, TraceEventKind};

fn store(line: u64) -> TraceOp {
    TraceOp::Store(Addr(line * 64))
}

fn load(line: u64) -> TraceOp {
    TraceOp::Load(Addr(line * 64))
}

#[test]
fn empty_workload_finishes_instantly() {
    let wl = Workload::new("empty", vec![]);
    let r = System::run_workload(SystemConfig::ftdircmp(), &wl).unwrap();
    assert_eq!(r.cycles, 0);
    assert_eq!(r.total_ops, 0);
    assert_eq!(r.stats.total_messages(), 0);
}

#[test]
fn think_only_workload_touches_no_memory() {
    let wl = Workload::new(
        "think",
        vec![CoreTrace::new(vec![
            TraceOp::Think(100),
            TraceOp::Think(50),
        ])],
    );
    let r = System::run_workload(SystemConfig::ftdircmp(), &wl).unwrap();
    assert_eq!(r.total_ops, 2);
    assert_eq!(r.total_mem_ops, 0);
    assert_eq!(r.stats.total_messages(), 0);
    // Retire-then-wait semantics: the final Think's delay is not part of
    // the measured execution time.
    assert!(r.cycles >= 100);
}

#[test]
fn too_many_traces_is_a_config_error() {
    let wl = Workload::new("big", vec![CoreTrace::default(); 17]);
    match System::new(SystemConfig::ftdircmp(), &wl) {
        Err(RunError::InvalidConfig(e)) => assert!(e.contains("17 traces")),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn invalid_config_is_rejected() {
    let mut cfg = SystemConfig::ftdircmp();
    cfg.tiles = 9;
    let wl = Workload::new("x", vec![]);
    assert!(matches!(
        System::new(cfg, &wl),
        Err(RunError::InvalidConfig(_))
    ));
}

#[test]
fn trace_sink_observes_messages_and_retirements() {
    let (sink, handle) = CollectSink::new(100_000);
    let wl = Workload::new(
        "traced",
        vec![CoreTrace::new(vec![store(3), load(3), TraceOp::Think(5)])],
    );
    let mut sys = System::new(SystemConfig::ftdircmp(), &wl).unwrap();
    sys.set_trace_sink(Box::new(sink));
    let r = sys.run().unwrap();
    assert!(r.violations.is_empty());
    let events = handle.take();
    let delivered = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::Delivered(_)))
        .count();
    let retired = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::OpRetired { .. }))
        .count();
    assert!(delivered >= 4, "full miss needs several messages");
    assert_eq!(retired as u64, r.total_ops);
    // Events are time-ordered.
    for w in events.windows(2) {
        assert!(w[0].at <= w[1].at);
    }
}

#[test]
fn report_totals_match_workload() {
    let traces = vec![
        CoreTrace::new(vec![store(1), store(2), load(1)]),
        CoreTrace::new(vec![load(1), load(2), TraceOp::Think(9)]),
    ];
    let wl = Workload::new("totals", traces);
    let r = System::run_workload(SystemConfig::ftdircmp(), &wl).unwrap();
    assert_eq!(r.total_ops, 6);
    assert_eq!(r.total_mem_ops, 5);
    assert_eq!(r.workload, "totals");
    assert_eq!(r.protocol, crate::config::ProtocolVariant::FtDirCmp);
    assert_eq!(r.messages_lost, 0);
}

#[test]
fn diagnostics_lists_inflight_state() {
    let wl = Workload::new("d", vec![CoreTrace::new(vec![store(3)])]);
    let sys = System::new(SystemConfig::ftdircmp(), &wl).unwrap();
    // Nothing in flight before the run starts.
    assert!(sys.diagnostics().is_empty());
}

#[test]
fn relative_metrics_against_self_are_unity() {
    let wl = Workload::new("rel", vec![CoreTrace::new(vec![store(1), load(2)])]);
    let r = System::run_workload(SystemConfig::ftdircmp(), &wl).unwrap();
    assert!((r.relative_execution_time(&r) - 1.0).abs() < 1e-12);
    assert!(r.message_overhead(&r).abs() < 1e-12);
    assert!(r.byte_overhead(&r).abs() < 1e-12);
}

#[test]
fn same_tile_access_stays_local() {
    // Core 3 accessing a line homed at bank 3: request/response never cross
    // the mesh (loopback), but memory traffic does.
    let mut traces = vec![CoreTrace::default(); 16];
    traces[3] = CoreTrace::new(vec![load(3)]);
    let wl = Workload::new("local", traces);
    let r = System::run_workload(SystemConfig::ftdircmp(), &wl).unwrap();
    assert!(r.noc.local_deliveries() >= 2, "GetS and grant are local");
}
