//! System assembly and the simulation driver.
//!
//! A [`System`] wires 16 tiles (core + L1 + L2 bank), the memory
//! controllers, and the mesh network together, then runs a [`Workload`] to
//! completion, producing a [`SimReport`] with the quantities the paper's
//! evaluation reports.

use ftdircmp_noc::{FaultConfig, Mesh, NocStats, RouterId};
use ftdircmp_sim::{Cycle, DetRng, EventQueue};

use crate::checker::Checker;
use crate::config::{ProtocolVariant, SystemConfig};
use crate::cpu::{Cpu, IssueBlock};
use crate::ids::{LineAddr, NodeId};
use crate::l1::{CpuOp, CpuOutcome, L1Controller};
use crate::l2::L2Controller;
use crate::mem::MemController;
use crate::msg::Message;
use crate::proto::{CoreCompletion, Ctx, Outgoing, TimeoutKind, TimeoutReq};
use crate::stats::ProtocolStats;
use crate::trace::{TraceOp, Workload};
use crate::tracelog::{StderrSink, TraceEvent, TraceEventKind, TraceSink};

#[derive(Debug, Clone)]
enum Event {
    CpuStep(u8),
    Deliver(Message),
    Timeout {
        node: NodeId,
        addr: LineAddr,
        kind: TimeoutKind,
        gen: u64,
    },
}

/// Why a run ended without completing the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// No core made progress for the watchdog window — the protocol
    /// deadlocked (expected for DirCMP on a faulty network, §3).
    Deadlock {
        /// Simulated time at detection.
        at: u64,
        /// Cores still blocked on memory.
        blocked_cores: Vec<u8>,
        /// In-flight state of every controller at detection time.
        diagnostics: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            RunError::Deadlock {
                at,
                blocked_cores,
                diagnostics,
            } => write!(
                f,
                "deadlock detected at cycle {at}: {} cores blocked\n{diagnostics}",
                blocked_cores.len()
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Protocol that ran.
    pub protocol: ProtocolVariant,
    /// Workload name.
    pub workload: String,
    /// Execution time: cycle at which the last core retired its last
    /// operation.
    pub cycles: u64,
    /// Total operations retired.
    pub total_ops: u64,
    /// Total memory operations retired.
    pub total_mem_ops: u64,
    /// Protocol statistics (traffic by type, misses, timeouts, …).
    pub stats: ProtocolStats,
    /// Network statistics (traffic by class, drops, latency).
    pub noc: NocStats,
    /// Invariant violations found by the checker (must be empty).
    pub violations: Vec<String>,
    /// Messages lost to injected faults.
    pub messages_lost: u64,
    /// Residual protocol activity never drained (diagnostic; should be 0).
    pub residual_activity: u64,
    /// Utilization of the busiest mesh link over the run (0.0..=1.0).
    pub max_link_utilization: f64,
    /// Mean utilization across links that carried traffic.
    pub mean_link_utilization: f64,
    /// Total simulation events processed (throughput denominator for
    /// events/sec reporting).
    pub events: u64,
    /// Virtual-channel class of every message the fault injector examined,
    /// index-aligned with deterministic drop indices. Empty unless
    /// `mesh.record_injections` was set; the exploration harness uses it to
    /// target drops at protocol-dense message classes.
    pub injection_classes: Vec<ftdircmp_noc::VcClass>,
}

impl SimReport {
    /// Execution time relative to a baseline run (the y-axis of Figure 3).
    pub fn relative_execution_time(&self, baseline: &SimReport) -> f64 {
        ftdircmp_stats::ratio_or(self.cycles, baseline.cycles, 1.0)
    }

    /// Network message overhead relative to a baseline run (Figure 4 left).
    pub fn message_overhead(&self, baseline: &SimReport) -> f64 {
        ftdircmp_stats::ratio_or(
            self.stats.total_messages(),
            baseline.stats.total_messages(),
            1.0,
        ) - 1.0
    }

    /// Network byte overhead relative to a baseline run (Figure 4 right).
    pub fn byte_overhead(&self, baseline: &SimReport) -> f64 {
        ftdircmp_stats::ratio_or(self.stats.total_bytes(), baseline.stats.total_bytes(), 1.0) - 1.0
    }
}

/// The simulated 16-tile CMP.
pub struct System {
    config: SystemConfig,
    queue: EventQueue<Event>,
    mesh: Mesh,
    l1s: Vec<L1Controller>,
    l2s: Vec<L2Controller>,
    mems: Vec<MemController>,
    cpus: Vec<Cpu>,
    checker: Checker,
    stats: ProtocolStats,
    workload_name: String,
    last_progress: Cycle,
    finished_at: Cycle,
    trace_sink: Option<Box<dyn TraceSink>>,
    /// Cores whose `is_done()` transition has been counted (done is
    /// monotonic: a drained core never becomes un-done).
    core_done: Vec<bool>,
    cores_done: usize,
    /// Whether the initial `CpuStep` events have been scheduled (set by the
    /// first `advance`, so a restored snapshot never re-schedules them).
    started: bool,
    /// Scratch buffers reused across `dispatch` calls so the hot loop does
    /// not allocate three `Vec`s per event.
    scratch_out: Vec<Outgoing>,
    scratch_timeouts: Vec<TimeoutReq>,
    scratch_completions: Vec<CoreCompletion>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("config", &self.config)
            .field("now", &self.queue.now())
            .field("pending_events", &self.queue.len())
            .finish_non_exhaustive()
    }
}

/// Cloning duplicates the entire simulation state — caches, directories,
/// TBEs, in-flight events, RNG streams — *except* the trace sink, which is
/// not duplicated (the clone gets `None`): a forked run replaying the same
/// prefix would otherwise interleave its trace with the original's.
impl Clone for System {
    fn clone(&self) -> Self {
        System {
            config: self.config.clone(),
            queue: self.queue.clone(),
            mesh: self.mesh.clone(),
            l1s: self.l1s.clone(),
            l2s: self.l2s.clone(),
            mems: self.mems.clone(),
            cpus: self.cpus.clone(),
            checker: self.checker.clone(),
            stats: self.stats.clone(),
            workload_name: self.workload_name.clone(),
            last_progress: self.last_progress,
            finished_at: self.finished_at,
            trace_sink: None,
            core_done: self.core_done.clone(),
            cores_done: self.cores_done,
            started: self.started,
            scratch_out: Vec::new(),
            scratch_timeouts: Vec::new(),
            scratch_completions: Vec::new(),
        }
    }
}

/// A resumable checkpoint of a paused [`System`].
///
/// Taken with [`System::snapshot`] and turned back into runnable systems
/// with [`System::restore`] any number of times. The checkpoint contract
/// (DESIGN.md §8): a restored system continues **byte-identically** to the
/// system it was taken from — same event order, same RNG draws, same
/// report — because the snapshot captures every piece of simulation state
/// (caches, directory/TBE slabs, NoC link reservations and in-flight
/// events, RNG streams, the event queue with its sequence counter, and all
/// statistics). Only the trace sink is excluded (see [`System`]'s `Clone`).
#[derive(Debug, Clone)]
pub struct SystemSnapshot {
    system: System,
}

impl System {
    /// Builds a system for `config` running `workload`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidConfig`] if the configuration is
    /// inconsistent or the workload has more traces than cores.
    pub fn new(config: SystemConfig, workload: &Workload) -> Result<Self, RunError> {
        config.validate().map_err(RunError::InvalidConfig)?;
        if workload.traces.len() > usize::from(config.tiles) {
            return Err(RunError::InvalidConfig(format!(
                "workload has {} traces but only {} cores",
                workload.traces.len(),
                config.tiles
            )));
        }
        let root = DetRng::from_seed(config.seed);
        let mesh = Mesh::new(config.mesh.clone(), root.fork("mesh"));
        let ft = config.protocol.is_fault_tolerant();
        let l1s = (0..config.tiles)
            .map(|i| {
                let mut rng = root.fork_indexed("l1", u64::from(i));
                L1Controller::new(i, &config, &mut rng)
            })
            .collect();
        let l2s = (0..config.tiles)
            .map(|i| {
                let mut rng = root.fork_indexed("l2", u64::from(i));
                L2Controller::new(i, &config, &mut rng)
            })
            .collect();
        let mems = (0..config.mem_controllers)
            .map(|i| MemController::new(i, ft))
            .collect();
        let window = config.max_outstanding_misses;
        let cpus: Vec<Cpu> = (0..config.tiles)
            .map(|i| {
                let trace = workload
                    .traces
                    .get(usize::from(i))
                    .cloned()
                    .unwrap_or_default();
                Cpu::new(i, trace, window)
            })
            .collect();
        let core_done: Vec<bool> = cpus.iter().map(Cpu::is_done).collect();
        let cores_done = core_done.iter().filter(|d| **d).count();
        let queue = EventQueue::with_schedule_seed(config.schedule_seed);
        Ok(System {
            config,
            queue,
            mesh,
            l1s,
            l2s,
            mems,
            cpus,
            checker: Checker::new(true),
            stats: ProtocolStats::new(),
            workload_name: workload.name.clone(),
            last_progress: Cycle::ZERO,
            finished_at: Cycle::ZERO,
            trace_sink: StderrSink::from_env().map(|s| Box::new(s) as Box<dyn TraceSink>),
            core_done,
            cores_done,
            started: false,
            scratch_out: Vec::new(),
            scratch_timeouts: Vec::new(),
            scratch_completions: Vec::new(),
        })
    }

    /// Convenience: build and run in one call.
    ///
    /// # Errors
    ///
    /// See [`System::new`] and [`System::run`].
    pub fn run_workload(config: SystemConfig, workload: &Workload) -> Result<SimReport, RunError> {
        System::new(config, workload)?.run()
    }

    fn node_router(&self, node: NodeId) -> RouterId {
        match node {
            NodeId::L1(i) | NodeId::L2(i) => RouterId::new(u16::from(i)),
            NodeId::Mem(j) => RouterId::new(self.config.mem_routers[usize::from(j)]),
        }
    }

    fn all_cores_done(&self) -> bool {
        // O(1): maintained by `note_core_progress` instead of scanning every
        // core on every event pop.
        self.cores_done == self.cpus.len()
    }

    /// In-flight state of every controller (deadlock diagnostics).
    pub fn diagnostics(&self) -> String {
        let mut out = String::new();
        for c in &self.l1s {
            out.push_str(&c.pending_summary());
        }
        for c in &self.l2s {
            out.push_str(&c.pending_summary());
        }
        for c in &self.mems {
            out.push_str(&c.pending_summary());
        }
        out
    }

    fn residual_activity(&self) -> u64 {
        let l1 = self.l1s.iter().filter(|c| !c.is_idle()).count();
        let l2 = self.l2s.iter().filter(|c| !c.is_idle()).count();
        let mem = self.mems.iter().filter(|c| !c.is_idle()).count();
        (l1 + l2 + mem) as u64
    }

    /// Runs the workload to completion (from the start, or from wherever a
    /// restored snapshot was paused).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Deadlock`] if no core retires an operation within
    /// the watchdog window — which is the guaranteed outcome of losing any
    /// message under DirCMP (§3), and must never happen under FtDirCMP.
    pub fn run(mut self) -> Result<SimReport, RunError> {
        self.advance(None)?;
        self.into_report()
    }

    /// Advances the simulation until at least `mem_ops` memory operations
    /// have retired (or the workload completes first), then pauses. The
    /// warmup phase of a checkpoint-fork campaign: pause, [`System::snapshot`],
    /// fork. Running to a threshold and then to completion processes exactly
    /// the event sequence of an uninterrupted [`System::run`].
    ///
    /// # Errors
    ///
    /// See [`System::run`].
    pub fn run_until_retired(&mut self, mem_ops: u64) -> Result<(), RunError> {
        self.advance(Some(mem_ops))
    }

    /// Event loop: pops and dispatches until the queue drains, the watchdog
    /// trips, or (with `stop_after_mem_ops`) the retirement threshold is
    /// crossed. The threshold check only decides where to *pause* — it
    /// mutates nothing — so a paused-and-resumed run is indistinguishable
    /// from an uninterrupted one.
    fn advance(&mut self, stop_after_mem_ops: Option<u64>) -> Result<(), RunError> {
        if !self.started {
            self.started = true;
            for i in 0..self.cpus.len() {
                if !self.cpus[i].is_done() {
                    self.queue.schedule(Cycle::ZERO, Event::CpuStep(i as u8));
                }
            }
        }
        let watchdog = self.config.watchdog_cycles;

        while let Some((now, ev)) = self.queue.pop() {
            // Deadlock watchdog: cores alive but nothing retiring.
            if !self.all_cores_done() && now.saturating_since(self.last_progress) > watchdog {
                let blocked: Vec<u8> = self
                    .cpus
                    .iter()
                    .filter(|c| !c.is_done())
                    .map(Cpu::core)
                    .collect();
                return Err(RunError::Deadlock {
                    at: now.as_u64(),
                    blocked_cores: blocked,
                    diagnostics: self.diagnostics(),
                });
            }
            // Leftover-activity guard: cores done but timers keep re-arming.
            if self.all_cores_done() && now.saturating_since(self.finished_at) > watchdog {
                break;
            }
            self.dispatch(now, ev);
            if stop_after_mem_ops.is_some_and(|target| self.retired_mem_ops() >= target) {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Finishes a run whose event loop has ended, producing the report.
    ///
    /// # Errors
    ///
    /// An empty event queue with blocked cores is a deadlock: under DirCMP a
    /// lost message leaves nothing in flight and no timer to recover (§3).
    fn into_report(self) -> Result<SimReport, RunError> {
        if !self.all_cores_done() {
            let blocked: Vec<u8> = self
                .cpus
                .iter()
                .filter(|c| !c.is_done())
                .map(Cpu::core)
                .collect();
            return Err(RunError::Deadlock {
                at: self.queue.now().as_u64(),
                blocked_cores: blocked,
                diagnostics: self.diagnostics(),
            });
        }

        let residual_activity = self.residual_activity();
        let elapsed = self.queue.now().as_u64().max(1);
        let max_link_utilization = self.mesh.max_link_utilization(elapsed);
        let mean_link_utilization = self.mesh.mean_link_utilization(elapsed);
        let report = SimReport {
            protocol: self.config.protocol,
            workload: self.workload_name.clone(),
            cycles: self.finished_at.as_u64(),
            total_ops: self.cpus.iter().map(Cpu::ops_done).sum(),
            total_mem_ops: self.cpus.iter().map(Cpu::mem_ops_done).sum(),
            stats: self.stats,
            noc: self.mesh.stats().clone(),
            violations: self.checker.violations().to_vec(),
            messages_lost: self.mesh.fault_injector().messages_dropped(),
            residual_activity,
            max_link_utilization,
            mean_link_utilization,
            events: self.queue.scheduled_total(),
            injection_classes: self.mesh.fault_injector().injection_log().to_vec(),
        };
        Ok(report)
    }

    /// Captures a resumable checkpoint of the current simulation state.
    pub fn snapshot(&self) -> SystemSnapshot {
        SystemSnapshot {
            system: self.clone(),
        }
    }

    /// Reconstructs a runnable system from a checkpoint. May be called any
    /// number of times on the same snapshot; every restored system resumes
    /// from the identical state.
    pub fn restore(snapshot: &SystemSnapshot) -> System {
        snapshot.system.clone()
    }

    /// Replaces the network fault configuration mid-run.
    ///
    /// The fork step of a checkpoint-fork campaign: the shared warmup runs
    /// with [`FaultConfig::none`] (zero fault-RNG draws), each fork restores
    /// the snapshot and installs its own fault cell here. The injector's
    /// RNG stream and message counters are preserved, so the forked run is
    /// byte-identical to a from-scratch run whose faults were gated until
    /// the same point (see [`ftdircmp_noc::FaultInjector::set_config`]).
    pub fn set_fault_config(&mut self, faults: FaultConfig) {
        self.config.mesh.faults = faults.clone();
        self.mesh.set_fault_config(faults);
    }

    /// Memory operations retired so far across all cores (the warmup
    /// progress measure of [`System::run_until_retired`]).
    pub fn retired_mem_ops(&self) -> u64 {
        self.cpus.iter().map(Cpu::mem_ops_done).sum()
    }

    /// Messages the fault injector has examined so far. Deterministic drop
    /// indices at or above this count can still fire after a
    /// [`System::set_fault_config`] swap; lower ones are already past.
    pub fn messages_examined(&self) -> u64 {
        self.mesh.fault_injector().messages_seen()
    }

    /// Attaches a trace sink observing every delivered message, fired
    /// timeout and retired operation. By default a stderr sink is installed
    /// when the `FTDIRCMP_TRACE_LINE` environment variable is set.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace_sink = Some(sink);
    }

    fn trace(&mut self, at: Cycle, kind: TraceEventKind) {
        if let Some(sink) = &mut self.trace_sink {
            sink.record(TraceEvent { at, kind });
        }
    }

    fn dispatch(&mut self, now: Cycle, ev: Event) {
        if self.trace_sink.is_some() {
            match &ev {
                Event::Deliver(m) => {
                    self.trace(now, TraceEventKind::Delivered(m.clone()));
                }
                Event::Timeout {
                    node, addr, kind, ..
                } => {
                    self.trace(
                        now,
                        TraceEventKind::TimeoutFired {
                            node: *node,
                            addr: *addr,
                            kind: *kind,
                        },
                    );
                }
                Event::CpuStep(_) => {}
            }
        }
        // Reuse the scratch buffers instead of allocating three Vecs per
        // event; they are drained by `apply_effects` and handed back empty.
        let mut out = std::mem::take(&mut self.scratch_out);
        let mut timeouts = std::mem::take(&mut self.scratch_timeouts);
        let mut completions = std::mem::take(&mut self.scratch_completions);
        debug_assert!(out.is_empty() && timeouts.is_empty() && completions.is_empty());

        match ev {
            Event::CpuStep(core) => {
                self.cpu_step(now, core, &mut out, &mut timeouts, &mut completions);
            }
            Event::Deliver(msg) => {
                let mut ctx = Ctx {
                    now,
                    out: &mut out,
                    timeouts: &mut timeouts,
                    completions: &mut completions,
                    stats: &mut self.stats,
                    checker: &mut self.checker,
                    config: &self.config,
                };
                match msg.dst {
                    NodeId::L1(i) => self.l1s[usize::from(i)].handle_message(msg, &mut ctx),
                    NodeId::L2(i) => self.l2s[usize::from(i)].handle_message(msg, &mut ctx),
                    NodeId::Mem(i) => self.mems[usize::from(i)].handle_message(msg, &mut ctx),
                }
            }
            Event::Timeout {
                node,
                addr,
                kind,
                gen,
            } => {
                let mut ctx = Ctx {
                    now,
                    out: &mut out,
                    timeouts: &mut timeouts,
                    completions: &mut completions,
                    stats: &mut self.stats,
                    checker: &mut self.checker,
                    config: &self.config,
                };
                match node {
                    NodeId::L1(i) => {
                        self.l1s[usize::from(i)].handle_timeout(kind, addr, gen, &mut ctx);
                    }
                    NodeId::L2(i) => {
                        self.l2s[usize::from(i)].handle_timeout(kind, addr, gen, &mut ctx);
                    }
                    NodeId::Mem(i) => {
                        self.mems[usize::from(i)].handle_timeout(kind, addr, gen, &mut ctx);
                    }
                }
            }
        }

        self.apply_effects(now, &mut out, &mut timeouts, &mut completions);
        self.scratch_out = out;
        self.scratch_timeouts = timeouts;
        self.scratch_completions = completions;
    }

    fn cpu_step(
        &mut self,
        now: Cycle,
        core: u8,
        out: &mut Vec<Outgoing>,
        timeouts: &mut Vec<TimeoutReq>,
        completions: &mut Vec<CoreCompletion>,
    ) {
        let idx = usize::from(core);
        let line_bytes = self.config.line_bytes;
        // Issue operations until the core blocks (miss window full,
        // same-line dependence, hit pacing, or trace drained).
        loop {
            if self.cpus[idx].is_done() {
                self.note_core_progress(now, idx);
                return;
            }
            match self.cpus[idx].issue_state(|op| op.addr().map(|a| a.line(line_bytes))) {
                IssueBlock::Ready => {}
                // Blocked: a completion will reschedule this core.
                IssueBlock::SameLine(_) | IssueBlock::WindowFull | IssueBlock::Drained => return,
            }
            let op = self.cpus[idx].current_op().expect("ready implies an op");
            match op {
                TraceOp::Think(n) => {
                    self.cpus[idx].retire_now();
                    if self.trace_sink.is_some() {
                        self.trace(now, TraceEventKind::OpRetired { core, op });
                    }
                    self.note_core_progress(now, idx);
                    if !self.cpus[idx].is_done() {
                        self.queue.schedule(now + n.max(1), Event::CpuStep(core));
                    }
                    return;
                }
                TraceOp::Load(addr) | TraceOp::Store(addr) => {
                    let line = addr.line(line_bytes);
                    let cpu_op = CpuOp {
                        addr: line,
                        is_store: matches!(op, TraceOp::Store(_)),
                    };
                    let mut ctx = Ctx {
                        now,
                        out,
                        timeouts,
                        completions,
                        stats: &mut self.stats,
                        checker: &mut self.checker,
                        config: &self.config,
                    };
                    match self.l1s[idx].cpu_access(cpu_op, &mut ctx) {
                        CpuOutcome::Hit => {
                            self.cpus[idx].retire_now();
                            if self.trace_sink.is_some() {
                                self.trace(now, TraceEventKind::OpRetired { core, op });
                            }
                            self.note_core_progress(now, idx);
                            if !self.cpus[idx].is_done() {
                                self.queue.schedule(
                                    now + self.config.l1_hit_cycles,
                                    Event::CpuStep(core),
                                );
                            }
                            return;
                        }
                        CpuOutcome::Miss | CpuOutcome::Stalled => {
                            // In flight (the L1 owns stalled ops too, and
                            // completes them when the writeback resolves);
                            // keep issuing if the window allows.
                            self.cpus[idx].issue_miss(line);
                        }
                    }
                }
            }
        }
    }

    fn note_core_progress(&mut self, now: Cycle, core: usize) {
        self.last_progress = now;
        if !self.core_done[core] && self.cpus[core].is_done() {
            self.core_done[core] = true;
            self.cores_done += 1;
        }
        if self.all_cores_done() {
            self.finished_at = now;
        }
    }

    fn apply_effects(
        &mut self,
        now: Cycle,
        out: &mut Vec<Outgoing>,
        timeouts: &mut Vec<TimeoutReq>,
        completions: &mut Vec<CoreCompletion>,
    ) {
        for Outgoing { msg, delay } in out.drain(..) {
            let send_at = now + delay;
            let src = self.node_router(msg.src);
            let dst = self.node_router(msg.dst);
            let bytes = msg.size_bytes(self.config.control_msg_bytes, self.config.data_msg_bytes);
            self.stats.record_msg(msg.mtype, bytes);
            match self.mesh.send(send_at, src, dst, bytes, msg.vc_class()) {
                ftdircmp_noc::SendOutcome::Delivered { at } => {
                    self.queue
                        .schedule(at.max(send_at + 1), Event::Deliver(msg));
                }
                ftdircmp_noc::SendOutcome::Dropped => {
                    // The message vanished in the network (transient fault).
                }
            }
        }
        for t in timeouts.drain(..) {
            self.queue.schedule(
                now + t.delay,
                Event::Timeout {
                    node: t.node,
                    addr: t.addr,
                    kind: t.kind,
                    gen: t.gen,
                },
            );
        }
        for c in completions.drain(..) {
            let idx = usize::from(c.core);
            self.cpus[idx].complete(c.addr);
            if self.trace_sink.is_some() {
                // Reconstruct the retired op (line-granular address).
                let a = c.addr.base_addr(self.config.line_bytes);
                let op = if c.was_store {
                    TraceOp::Store(a)
                } else {
                    TraceOp::Load(a)
                };
                self.trace(now, TraceEventKind::OpRetired { core: c.core, op });
            }
            self.note_core_progress(now, idx);
            self.queue
                .schedule(now + c.delay.max(1), Event::CpuStep(c.core));
        }
    }
}

#[cfg(test)]
#[path = "system_tests.rs"]
mod tests;
