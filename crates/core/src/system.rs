//! System assembly and the simulation driver.
//!
//! A [`System`] wires 16 tiles (core + L1 + L2 bank), the memory
//! controllers, and the mesh network together, then runs a [`Workload`] to
//! completion, producing a [`SimReport`] with the quantities the paper's
//! evaluation reports.

use ftdircmp_noc::{FaultConfig, Mesh, NocStats, RouterId};
use ftdircmp_sim::{Cycle, DetRng, EventQueue};

use crate::checker::Checker;
use crate::config::{ProtocolVariant, SystemConfig};
use crate::cpu::{Cpu, IssueBlock};
use crate::ids::{LineAddr, NodeId};
use crate::l1::{CpuOp, CpuOutcome, L1Controller};
use crate::l2::L2Controller;
use crate::mem::MemController;
use crate::msg::Message;
use crate::proto::{CoreCompletion, Ctx, Outgoing, TimeoutKind, TimeoutReq};
use crate::stats::ProtocolStats;
use crate::trace::{TraceOp, Workload};
use crate::tracelog::{StderrSink, TraceEvent, TraceEventKind, TraceSink};

#[derive(Debug, Clone)]
enum Event {
    CpuStep(u8),
    Deliver(Message),
    Timeout {
        node: NodeId,
        addr: LineAddr,
        kind: TimeoutKind,
        gen: u64,
    },
}

/// One stalled core at deadlock-detection time: which lines it is blocked
/// on and how far it got. Quarantine records and exploration reports use
/// this to name the stuck line instead of just reporting "no progress".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StalledCore {
    /// Core index.
    pub core: u8,
    /// Line addresses of the misses still in flight (issue order).
    pub pending_lines: Vec<LineAddr>,
    /// Memory operations the core had retired before stalling.
    pub mem_ops_done: u64,
}

impl std::fmt::Display for StalledCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core {} blocked on [", self.core)?;
        for (i, line) in self.pending_lines.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{line}")?;
        }
        write!(f, "] after {} mem ops", self.mem_ops_done)
    }
}

/// Why a run ended without completing the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// No core made progress for the watchdog window — the protocol
    /// deadlocked (expected for DirCMP on a faulty network, §3).
    Deadlock {
        /// Simulated time at detection.
        at: u64,
        /// Cores still blocked on memory.
        blocked_cores: Vec<u8>,
        /// Last cycle at which any core retired an operation.
        last_progress: u64,
        /// Per-core stall context: the lines each blocked core is waiting
        /// on and its retirement progress.
        stalled: Vec<StalledCore>,
        /// In-flight state of every controller at detection time.
        diagnostics: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            RunError::Deadlock {
                at,
                blocked_cores,
                last_progress,
                stalled,
                diagnostics,
            } => {
                write!(
                    f,
                    "deadlock detected at cycle {at}: {} cores blocked \
                     (no progress since cycle {last_progress})",
                    blocked_cores.len()
                )?;
                for s in stalled {
                    write!(f, "\n  {s}")?;
                }
                write!(f, "\n{diagnostics}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Protocol that ran.
    pub protocol: ProtocolVariant,
    /// Workload name.
    pub workload: String,
    /// Execution time: cycle at which the last core retired its last
    /// operation.
    pub cycles: u64,
    /// Total operations retired.
    pub total_ops: u64,
    /// Total memory operations retired.
    pub total_mem_ops: u64,
    /// Protocol statistics (traffic by type, misses, timeouts, …).
    pub stats: ProtocolStats,
    /// Network statistics (traffic by class, drops, latency).
    pub noc: NocStats,
    /// Invariant violations found by the checker (must be empty).
    pub violations: Vec<String>,
    /// Messages the network lost, to the fault injector or to correlated
    /// fault domains (link flaps, degraded channels, unroutable drops).
    pub messages_lost: u64,
    /// Residual protocol activity never drained (diagnostic; should be 0).
    pub residual_activity: u64,
    /// Utilization of the busiest mesh link over the run (0.0..=1.0).
    pub max_link_utilization: f64,
    /// Mean utilization across links that carried traffic.
    pub mean_link_utilization: f64,
    /// Total simulation events processed (throughput denominator for
    /// events/sec reporting).
    pub events: u64,
    /// Virtual-channel class of every message the fault injector examined,
    /// index-aligned with deterministic drop indices. Empty unless
    /// `mesh.record_injections` was set; the exploration harness uses it to
    /// target drops at protocol-dense message classes.
    pub injection_classes: Vec<ftdircmp_noc::VcClass>,
    /// Per-fault-epoch recovery telemetry, one entry per scheduled fault
    /// event whose window opened during the run (empty without fault
    /// domains). Campaigns use these to plot degradation/recovery curves.
    pub fault_epochs: Vec<FaultEpochReport>,
}

/// Recovery telemetry for one scheduled fault event (DESIGN.md §12): what
/// the protocol spent riding through the event and how quickly it resumed
/// retiring work once the event cleared.
///
/// Counters cover the epoch window `[start, recovered_at)` — or
/// `[start, end-of-run)` if the run finished before recovery was observed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEpochReport {
    /// Event label (e.g. `"flap r1-east@[100,200)"`).
    pub label: String,
    /// First cycle of the event window.
    pub start: u64,
    /// First cycle after the event window.
    pub end: u64,
    /// Protocol timeouts fired during the epoch (all kinds).
    pub timeouts_fired: u64,
    /// Requests reissued during the epoch.
    pub reissues: u64,
    /// Recovery pings sent during the epoch.
    pub pings_sent: u64,
    /// Messages the network lost during the epoch (all causes).
    pub messages_lost: u64,
    /// Memory operations retired during the epoch (forward progress under
    /// degradation).
    pub mem_ops_retired: u64,
    /// Cycle of the first operation retired at or after `end` — the moment
    /// the system demonstrably recovered. `None` if the run finished (or
    /// gave up) without retiring anything after the event cleared.
    pub recovered_at: Option<u64>,
}

impl FaultEpochReport {
    /// Cycles from the end of the event to the first retirement after it.
    pub fn time_to_recover(&self) -> Option<u64> {
        self.recovered_at.map(|r| r.saturating_sub(self.end))
    }
}

/// Counter snapshot used to delta per-epoch telemetry.
#[derive(Debug, Clone, Copy, Default)]
struct EpochMarks {
    timeouts: u64,
    reissues: u64,
    pings: u64,
    lost: u64,
    ops: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EpochPhase {
    /// Window not yet reached.
    Pending,
    /// Inside the event window.
    Active,
    /// Window closed; waiting for the first retirement to stamp recovery.
    AwaitingRecovery,
    /// Recovery observed; totals frozen.
    Done,
}

/// Tracks one scheduled fault event through the run.
#[derive(Debug, Clone)]
struct EpochTracker {
    label: String,
    start: u64,
    end: u64,
    phase: EpochPhase,
    marks: EpochMarks,
    /// Deltas frozen at recovery time (`None` until then).
    totals: Option<EpochMarks>,
    recovered_at: Option<u64>,
}

impl SimReport {
    /// Execution time relative to a baseline run (the y-axis of Figure 3).
    pub fn relative_execution_time(&self, baseline: &SimReport) -> f64 {
        ftdircmp_stats::ratio_or(self.cycles, baseline.cycles, 1.0)
    }

    /// Network message overhead relative to a baseline run (Figure 4 left).
    pub fn message_overhead(&self, baseline: &SimReport) -> f64 {
        ftdircmp_stats::ratio_or(
            self.stats.total_messages(),
            baseline.stats.total_messages(),
            1.0,
        ) - 1.0
    }

    /// Network byte overhead relative to a baseline run (Figure 4 right).
    pub fn byte_overhead(&self, baseline: &SimReport) -> f64 {
        ftdircmp_stats::ratio_or(self.stats.total_bytes(), baseline.stats.total_bytes(), 1.0) - 1.0
    }
}

/// The simulated 16-tile CMP.
pub struct System {
    config: SystemConfig,
    queue: EventQueue<Event>,
    mesh: Mesh,
    l1s: Vec<L1Controller>,
    l2s: Vec<L2Controller>,
    mems: Vec<MemController>,
    cpus: Vec<Cpu>,
    checker: Checker,
    stats: ProtocolStats,
    workload_name: String,
    last_progress: Cycle,
    finished_at: Cycle,
    trace_sink: Option<Box<dyn TraceSink>>,
    /// Cores whose `is_done()` transition has been counted (done is
    /// monotonic: a drained core never becomes un-done).
    core_done: Vec<bool>,
    cores_done: usize,
    /// Whether the initial `CpuStep` events have been scheduled (set by the
    /// first `advance`, so a restored snapshot never re-schedules them).
    started: bool,
    /// One tracker per scheduled fault event (empty without fault domains).
    epochs: Vec<EpochTracker>,
    /// Next cycle at which some epoch changes phase (`u64::MAX` when no
    /// transition is pending) — the hot loop's one-compare gate.
    next_epoch_boundary: u64,
    /// Epochs past their window still waiting for a recovery retirement.
    epochs_awaiting: usize,
    /// Scratch buffers reused across `dispatch` calls so the hot loop does
    /// not allocate three `Vec`s per event.
    scratch_out: Vec<Outgoing>,
    scratch_timeouts: Vec<TimeoutReq>,
    scratch_completions: Vec<CoreCompletion>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("config", &self.config)
            .field("now", &self.queue.now())
            .field("pending_events", &self.queue.len())
            .finish_non_exhaustive()
    }
}

/// Cloning duplicates the entire simulation state — caches, directories,
/// TBEs, in-flight events, RNG streams — *except* the trace sink, which is
/// not duplicated (the clone gets `None`): a forked run replaying the same
/// prefix would otherwise interleave its trace with the original's.
impl Clone for System {
    fn clone(&self) -> Self {
        System {
            config: self.config.clone(),
            queue: self.queue.clone(),
            mesh: self.mesh.clone(),
            l1s: self.l1s.clone(),
            l2s: self.l2s.clone(),
            mems: self.mems.clone(),
            cpus: self.cpus.clone(),
            checker: self.checker.clone(),
            stats: self.stats.clone(),
            workload_name: self.workload_name.clone(),
            last_progress: self.last_progress,
            finished_at: self.finished_at,
            trace_sink: None,
            core_done: self.core_done.clone(),
            cores_done: self.cores_done,
            started: self.started,
            epochs: self.epochs.clone(),
            next_epoch_boundary: self.next_epoch_boundary,
            epochs_awaiting: self.epochs_awaiting,
            scratch_out: Vec::new(),
            scratch_timeouts: Vec::new(),
            scratch_completions: Vec::new(),
        }
    }
}

/// A resumable checkpoint of a paused [`System`].
///
/// Taken with [`System::snapshot`] and turned back into runnable systems
/// with [`System::restore`] any number of times. The checkpoint contract
/// (DESIGN.md §8): a restored system continues **byte-identically** to the
/// system it was taken from — same event order, same RNG draws, same
/// report — because the snapshot captures every piece of simulation state
/// (caches, directory/TBE slabs, NoC link reservations and in-flight
/// events, RNG streams, the event queue with its sequence counter, and all
/// statistics). Only the trace sink is excluded (see [`System`]'s `Clone`).
#[derive(Debug, Clone)]
pub struct SystemSnapshot {
    system: System,
}

impl System {
    /// Builds a system for `config` running `workload`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidConfig`] if the configuration is
    /// inconsistent or the workload has more traces than cores.
    pub fn new(config: SystemConfig, workload: &Workload) -> Result<Self, RunError> {
        config.validate().map_err(RunError::InvalidConfig)?;
        if workload.traces.len() > usize::from(config.tiles) {
            return Err(RunError::InvalidConfig(format!(
                "workload has {} traces but only {} cores",
                workload.traces.len(),
                config.tiles
            )));
        }
        let root = DetRng::from_seed(config.seed);
        let mesh = Mesh::new(config.mesh.clone(), root.fork("mesh"));
        let ft = config.protocol.is_fault_tolerant();
        let l1s = (0..config.tiles)
            .map(|i| {
                let mut rng = root.fork_indexed("l1", u64::from(i));
                L1Controller::new(i, &config, &mut rng)
            })
            .collect();
        let l2s = (0..config.tiles)
            .map(|i| {
                let mut rng = root.fork_indexed("l2", u64::from(i));
                L2Controller::new(i, &config, &mut rng)
            })
            .collect();
        let mems = (0..config.mem_controllers)
            .map(|i| MemController::new(i, ft))
            .collect();
        let window = config.max_outstanding_misses;
        let cpus: Vec<Cpu> = (0..config.tiles)
            .map(|i| {
                let trace = workload
                    .traces
                    .get(usize::from(i))
                    .cloned()
                    .unwrap_or_default();
                Cpu::new(i, trace, window)
            })
            .collect();
        let core_done: Vec<bool> = cpus.iter().map(Cpu::is_done).collect();
        let cores_done = core_done.iter().filter(|d| **d).count();
        let queue = EventQueue::with_schedule_seed(config.schedule_seed);
        let epochs = Self::epoch_trackers(&config.mesh.faults);
        let next_epoch_boundary = Self::next_epoch_boundary_of(&epochs);
        Ok(System {
            config,
            queue,
            mesh,
            l1s,
            l2s,
            mems,
            cpus,
            checker: Checker::new(true),
            stats: ProtocolStats::new(),
            workload_name: workload.name.clone(),
            last_progress: Cycle::ZERO,
            finished_at: Cycle::ZERO,
            trace_sink: StderrSink::from_env().map(|s| Box::new(s) as Box<dyn TraceSink>),
            core_done,
            cores_done,
            started: false,
            epochs,
            next_epoch_boundary,
            epochs_awaiting: 0,
            scratch_out: Vec::new(),
            scratch_timeouts: Vec::new(),
            scratch_completions: Vec::new(),
        })
    }

    /// Convenience: build and run in one call.
    ///
    /// # Errors
    ///
    /// See [`System::new`] and [`System::run`].
    pub fn run_workload(config: SystemConfig, workload: &Workload) -> Result<SimReport, RunError> {
        System::new(config, workload)?.run()
    }

    fn node_router(&self, node: NodeId) -> RouterId {
        match node {
            NodeId::L1(i) | NodeId::L2(i) => RouterId::new(u16::from(i)),
            NodeId::Mem(j) => RouterId::new(self.config.mem_routers[usize::from(j)]),
        }
    }

    fn all_cores_done(&self) -> bool {
        // O(1): maintained by `note_core_progress` instead of scanning every
        // core on every event pop.
        self.cores_done == self.cpus.len()
    }

    /// In-flight state of every controller (deadlock diagnostics).
    pub fn diagnostics(&self) -> String {
        let mut out = String::new();
        for c in &self.l1s {
            out.push_str(&c.pending_summary());
        }
        for c in &self.l2s {
            out.push_str(&c.pending_summary());
        }
        for c in &self.mems {
            out.push_str(&c.pending_summary());
        }
        out
    }

    /// Per-core stall context for deadlock reports.
    fn stalled_cores(&self) -> Vec<StalledCore> {
        self.cpus
            .iter()
            .filter(|c| !c.is_done())
            .map(|c| StalledCore {
                core: c.core(),
                pending_lines: c.outstanding_lines().to_vec(),
                mem_ops_done: c.mem_ops_done(),
            })
            .collect()
    }

    /// One tracker per scheduled fault event in `faults`.
    fn epoch_trackers(faults: &FaultConfig) -> Vec<EpochTracker> {
        faults.domains.as_ref().map_or_else(Vec::new, |d| {
            d.events
                .iter()
                .map(|ev| {
                    let (start, end) = ev.window();
                    EpochTracker {
                        label: ev.label(),
                        start,
                        end,
                        phase: EpochPhase::Pending,
                        marks: EpochMarks::default(),
                        totals: None,
                        recovered_at: None,
                    }
                })
                .collect()
        })
    }

    /// Earliest cycle at which any epoch changes phase.
    fn next_epoch_boundary_of(epochs: &[EpochTracker]) -> u64 {
        epochs
            .iter()
            .filter_map(|e| match e.phase {
                EpochPhase::Pending => Some(e.start),
                EpochPhase::Active => Some(e.end),
                EpochPhase::AwaitingRecovery | EpochPhase::Done => None,
            })
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Current values of the counters the epoch telemetry deltas.
    fn epoch_counters(&self) -> EpochMarks {
        EpochMarks {
            timeouts: self.stats.total_timeouts(),
            reissues: self.stats.reissues.get(),
            pings: self.stats.messages_by_class(ftdircmp_noc::VcClass::Ping),
            lost: self.mesh.stats().total_dropped(),
            ops: self.retired_mem_ops(),
        }
    }

    /// Advances epoch phases across `now`. Counters only move on event
    /// dispatch, so taking the marks at the first event at-or-after a
    /// boundary is exact.
    fn update_epochs(&mut self, now: u64) {
        let counters = self.epoch_counters();
        let mut newly_awaiting = 0;
        for e in &mut self.epochs {
            if e.phase == EpochPhase::Pending && e.start <= now {
                e.marks = counters;
                e.phase = EpochPhase::Active;
            }
            if e.phase == EpochPhase::Active && e.end <= now {
                e.phase = EpochPhase::AwaitingRecovery;
                newly_awaiting += 1;
            }
        }
        self.epochs_awaiting += newly_awaiting;
        self.next_epoch_boundary = Self::next_epoch_boundary_of(&self.epochs);
    }

    /// Stamps recovery on every epoch whose window has closed: `now` is the
    /// cycle of the first retirement after the event cleared.
    fn note_epoch_recovery(&mut self, now: u64) {
        let counters = self.epoch_counters();
        let mut recovered = 0;
        for e in &mut self.epochs {
            if e.phase == EpochPhase::AwaitingRecovery {
                e.recovered_at = Some(now);
                e.totals = Some(EpochMarks {
                    timeouts: counters.timeouts - e.marks.timeouts,
                    reissues: counters.reissues - e.marks.reissues,
                    pings: counters.pings - e.marks.pings,
                    lost: counters.lost - e.marks.lost,
                    ops: counters.ops - e.marks.ops,
                });
                e.phase = EpochPhase::Done;
                recovered += 1;
            }
        }
        self.epochs_awaiting -= recovered;
    }

    /// Renders the epoch trackers into report entries; epochs that never
    /// opened are omitted, unfinished ones delta against the final counters.
    fn fault_epoch_reports(&self) -> Vec<FaultEpochReport> {
        let current = self.epoch_counters();
        self.epochs
            .iter()
            .filter(|e| e.phase != EpochPhase::Pending)
            .map(|e| {
                let t = e.totals.unwrap_or(EpochMarks {
                    timeouts: current.timeouts - e.marks.timeouts,
                    reissues: current.reissues - e.marks.reissues,
                    pings: current.pings - e.marks.pings,
                    lost: current.lost - e.marks.lost,
                    ops: current.ops - e.marks.ops,
                });
                FaultEpochReport {
                    label: e.label.clone(),
                    start: e.start,
                    end: e.end,
                    timeouts_fired: t.timeouts,
                    reissues: t.reissues,
                    pings_sent: t.pings,
                    messages_lost: t.lost,
                    mem_ops_retired: t.ops,
                    recovered_at: e.recovered_at,
                }
            })
            .collect()
    }

    fn residual_activity(&self) -> u64 {
        let l1 = self.l1s.iter().filter(|c| !c.is_idle()).count();
        let l2 = self.l2s.iter().filter(|c| !c.is_idle()).count();
        let mem = self.mems.iter().filter(|c| !c.is_idle()).count();
        (l1 + l2 + mem) as u64
    }

    /// Runs the workload to completion (from the start, or from wherever a
    /// restored snapshot was paused).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Deadlock`] if no core retires an operation within
    /// the watchdog window — which is the guaranteed outcome of losing any
    /// message under DirCMP (§3), and must never happen under FtDirCMP.
    pub fn run(mut self) -> Result<SimReport, RunError> {
        self.advance(None)?;
        self.into_report()
    }

    /// Advances the simulation until at least `mem_ops` memory operations
    /// have retired (or the workload completes first), then pauses. The
    /// warmup phase of a checkpoint-fork campaign: pause, [`System::snapshot`],
    /// fork. Running to a threshold and then to completion processes exactly
    /// the event sequence of an uninterrupted [`System::run`].
    ///
    /// # Errors
    ///
    /// See [`System::run`].
    pub fn run_until_retired(&mut self, mem_ops: u64) -> Result<(), RunError> {
        self.advance(Some(mem_ops))
    }

    /// Event loop: pops and dispatches until the queue drains, the watchdog
    /// trips, or (with `stop_after_mem_ops`) the retirement threshold is
    /// crossed. The threshold check only decides where to *pause* — it
    /// mutates nothing — so a paused-and-resumed run is indistinguishable
    /// from an uninterrupted one.
    fn advance(&mut self, stop_after_mem_ops: Option<u64>) -> Result<(), RunError> {
        if !self.started {
            self.started = true;
            for i in 0..self.cpus.len() {
                if !self.cpus[i].is_done() {
                    self.queue.schedule(Cycle::ZERO, Event::CpuStep(i as u8));
                }
            }
        }
        let watchdog = self.config.watchdog_cycles;

        while let Some((now, ev)) = self.queue.pop() {
            // Fault-epoch bookkeeping: one compare per event when domains
            // are configured, a cold branch otherwise.
            if now.as_u64() >= self.next_epoch_boundary {
                self.update_epochs(now.as_u64());
            }
            // Deadlock watchdog: cores alive but nothing retiring.
            if !self.all_cores_done() && now.saturating_since(self.last_progress) > watchdog {
                let blocked: Vec<u8> = self
                    .cpus
                    .iter()
                    .filter(|c| !c.is_done())
                    .map(Cpu::core)
                    .collect();
                return Err(RunError::Deadlock {
                    at: now.as_u64(),
                    blocked_cores: blocked,
                    last_progress: self.last_progress.as_u64(),
                    stalled: self.stalled_cores(),
                    diagnostics: self.diagnostics(),
                });
            }
            // Leftover-activity guard: cores done but timers keep re-arming.
            if self.all_cores_done() && now.saturating_since(self.finished_at) > watchdog {
                break;
            }
            self.dispatch(now, ev);
            if stop_after_mem_ops.is_some_and(|target| self.retired_mem_ops() >= target) {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Finishes a run whose event loop has ended, producing the report.
    ///
    /// # Errors
    ///
    /// An empty event queue with blocked cores is a deadlock: under DirCMP a
    /// lost message leaves nothing in flight and no timer to recover (§3).
    fn into_report(self) -> Result<SimReport, RunError> {
        if !self.all_cores_done() {
            let blocked: Vec<u8> = self
                .cpus
                .iter()
                .filter(|c| !c.is_done())
                .map(Cpu::core)
                .collect();
            return Err(RunError::Deadlock {
                at: self.queue.now().as_u64(),
                blocked_cores: blocked,
                last_progress: self.last_progress.as_u64(),
                stalled: self.stalled_cores(),
                diagnostics: self.diagnostics(),
            });
        }

        let fault_epochs = self.fault_epoch_reports();
        let residual_activity = self.residual_activity();
        let elapsed = self.queue.now().as_u64().max(1);
        let max_link_utilization = self.mesh.max_link_utilization(elapsed);
        let mean_link_utilization = self.mesh.mean_link_utilization(elapsed);
        let report = SimReport {
            protocol: self.config.protocol,
            workload: self.workload_name.clone(),
            cycles: self.finished_at.as_u64(),
            total_ops: self.cpus.iter().map(Cpu::ops_done).sum(),
            total_mem_ops: self.cpus.iter().map(Cpu::mem_ops_done).sum(),
            stats: self.stats,
            noc: self.mesh.stats().clone(),
            violations: self.checker.violations().to_vec(),
            messages_lost: self.mesh.stats().total_dropped(),
            residual_activity,
            max_link_utilization,
            mean_link_utilization,
            events: self.queue.scheduled_total(),
            injection_classes: self.mesh.fault_injector().injection_log().to_vec(),
            fault_epochs,
        };
        Ok(report)
    }

    /// Captures a resumable checkpoint of the current simulation state.
    pub fn snapshot(&self) -> SystemSnapshot {
        SystemSnapshot {
            system: self.clone(),
        }
    }

    /// Reconstructs a runnable system from a checkpoint. May be called any
    /// number of times on the same snapshot; every restored system resumes
    /// from the identical state.
    pub fn restore(snapshot: &SystemSnapshot) -> System {
        snapshot.system.clone()
    }

    /// Replaces the network fault configuration mid-run.
    ///
    /// The fork step of a checkpoint-fork campaign: the shared warmup runs
    /// with [`FaultConfig::none`] (zero fault-RNG draws), each fork restores
    /// the snapshot and installs its own fault cell here. The injector's
    /// RNG stream and message counters are preserved, so the forked run is
    /// byte-identical to a from-scratch run whose faults were gated until
    /// the same point (see [`ftdircmp_noc::FaultInjector::set_config`]).
    pub fn set_fault_config(&mut self, faults: FaultConfig) {
        self.config.mesh.faults = faults.clone();
        // Fresh epoch trackers for the incoming fault schedule: the warmup
        // ran fault-free, so no epoch can already be in flight.
        self.epochs = Self::epoch_trackers(&faults);
        self.next_epoch_boundary = Self::next_epoch_boundary_of(&self.epochs);
        self.epochs_awaiting = 0;
        self.mesh.set_fault_config(faults);
    }

    /// Memory operations retired so far across all cores (the warmup
    /// progress measure of [`System::run_until_retired`]).
    pub fn retired_mem_ops(&self) -> u64 {
        self.cpus.iter().map(Cpu::mem_ops_done).sum()
    }

    /// Messages the fault injector has examined so far. Deterministic drop
    /// indices at or above this count can still fire after a
    /// [`System::set_fault_config`] swap; lower ones are already past.
    pub fn messages_examined(&self) -> u64 {
        self.mesh.fault_injector().messages_seen()
    }

    /// Attaches a trace sink observing every delivered message, fired
    /// timeout and retired operation. By default a stderr sink is installed
    /// when the `FTDIRCMP_TRACE_LINE` environment variable is set.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace_sink = Some(sink);
    }

    fn trace(&mut self, at: Cycle, kind: TraceEventKind) {
        if let Some(sink) = &mut self.trace_sink {
            sink.record(TraceEvent { at, kind });
        }
    }

    fn dispatch(&mut self, now: Cycle, ev: Event) {
        if self.trace_sink.is_some() {
            match &ev {
                Event::Deliver(m) => {
                    self.trace(now, TraceEventKind::Delivered(m.clone()));
                }
                Event::Timeout {
                    node, addr, kind, ..
                } => {
                    self.trace(
                        now,
                        TraceEventKind::TimeoutFired {
                            node: *node,
                            addr: *addr,
                            kind: *kind,
                        },
                    );
                }
                Event::CpuStep(_) => {}
            }
        }
        // Reuse the scratch buffers instead of allocating three Vecs per
        // event; they are drained by `apply_effects` and handed back empty.
        let mut out = std::mem::take(&mut self.scratch_out);
        let mut timeouts = std::mem::take(&mut self.scratch_timeouts);
        let mut completions = std::mem::take(&mut self.scratch_completions);
        debug_assert!(out.is_empty() && timeouts.is_empty() && completions.is_empty());

        match ev {
            Event::CpuStep(core) => {
                self.cpu_step(now, core, &mut out, &mut timeouts, &mut completions);
            }
            Event::Deliver(msg) => {
                let mut ctx = Ctx {
                    now,
                    out: &mut out,
                    timeouts: &mut timeouts,
                    completions: &mut completions,
                    stats: &mut self.stats,
                    checker: &mut self.checker,
                    config: &self.config,
                };
                match msg.dst {
                    NodeId::L1(i) => self.l1s[usize::from(i)].handle_message(msg, &mut ctx),
                    NodeId::L2(i) => self.l2s[usize::from(i)].handle_message(msg, &mut ctx),
                    NodeId::Mem(i) => self.mems[usize::from(i)].handle_message(msg, &mut ctx),
                }
            }
            Event::Timeout {
                node,
                addr,
                kind,
                gen,
            } => {
                let mut ctx = Ctx {
                    now,
                    out: &mut out,
                    timeouts: &mut timeouts,
                    completions: &mut completions,
                    stats: &mut self.stats,
                    checker: &mut self.checker,
                    config: &self.config,
                };
                match node {
                    NodeId::L1(i) => {
                        self.l1s[usize::from(i)].handle_timeout(kind, addr, gen, &mut ctx);
                    }
                    NodeId::L2(i) => {
                        self.l2s[usize::from(i)].handle_timeout(kind, addr, gen, &mut ctx);
                    }
                    NodeId::Mem(i) => {
                        self.mems[usize::from(i)].handle_timeout(kind, addr, gen, &mut ctx);
                    }
                }
            }
        }

        self.apply_effects(now, &mut out, &mut timeouts, &mut completions);
        self.scratch_out = out;
        self.scratch_timeouts = timeouts;
        self.scratch_completions = completions;
    }

    fn cpu_step(
        &mut self,
        now: Cycle,
        core: u8,
        out: &mut Vec<Outgoing>,
        timeouts: &mut Vec<TimeoutReq>,
        completions: &mut Vec<CoreCompletion>,
    ) {
        let idx = usize::from(core);
        let line_bytes = self.config.line_bytes;
        // Issue operations until the core blocks (miss window full,
        // same-line dependence, hit pacing, or trace drained).
        loop {
            if self.cpus[idx].is_done() {
                self.note_core_progress(now, idx);
                return;
            }
            match self.cpus[idx].issue_state(|op| op.addr().map(|a| a.line(line_bytes))) {
                IssueBlock::Ready => {}
                // Blocked: a completion will reschedule this core.
                IssueBlock::SameLine(_) | IssueBlock::WindowFull | IssueBlock::Drained => return,
            }
            let op = self.cpus[idx].current_op().expect("ready implies an op");
            match op {
                TraceOp::Think(n) => {
                    self.cpus[idx].retire_now();
                    if self.trace_sink.is_some() {
                        self.trace(now, TraceEventKind::OpRetired { core, op });
                    }
                    self.note_core_progress(now, idx);
                    if !self.cpus[idx].is_done() {
                        self.queue.schedule(now + n.max(1), Event::CpuStep(core));
                    }
                    return;
                }
                TraceOp::Load(addr) | TraceOp::Store(addr) => {
                    let line = addr.line(line_bytes);
                    let cpu_op = CpuOp {
                        addr: line,
                        is_store: matches!(op, TraceOp::Store(_)),
                    };
                    let mut ctx = Ctx {
                        now,
                        out,
                        timeouts,
                        completions,
                        stats: &mut self.stats,
                        checker: &mut self.checker,
                        config: &self.config,
                    };
                    match self.l1s[idx].cpu_access(cpu_op, &mut ctx) {
                        CpuOutcome::Hit => {
                            self.cpus[idx].retire_now();
                            if self.trace_sink.is_some() {
                                self.trace(now, TraceEventKind::OpRetired { core, op });
                            }
                            self.note_core_progress(now, idx);
                            if !self.cpus[idx].is_done() {
                                self.queue.schedule(
                                    now + self.config.l1_hit_cycles,
                                    Event::CpuStep(core),
                                );
                            }
                            return;
                        }
                        CpuOutcome::Miss | CpuOutcome::Stalled => {
                            // In flight (the L1 owns stalled ops too, and
                            // completes them when the writeback resolves);
                            // keep issuing if the window allows.
                            self.cpus[idx].issue_miss(line);
                        }
                    }
                }
            }
        }
    }

    fn note_core_progress(&mut self, now: Cycle, core: usize) {
        self.last_progress = now;
        if self.epochs_awaiting > 0 {
            self.note_epoch_recovery(now.as_u64());
        }
        if !self.core_done[core] && self.cpus[core].is_done() {
            self.core_done[core] = true;
            self.cores_done += 1;
        }
        if self.all_cores_done() {
            self.finished_at = now;
        }
    }

    fn apply_effects(
        &mut self,
        now: Cycle,
        out: &mut Vec<Outgoing>,
        timeouts: &mut Vec<TimeoutReq>,
        completions: &mut Vec<CoreCompletion>,
    ) {
        for Outgoing { msg, delay } in out.drain(..) {
            let send_at = now + delay;
            let src = self.node_router(msg.src);
            let dst = self.node_router(msg.dst);
            let bytes = msg.size_bytes(self.config.control_msg_bytes, self.config.data_msg_bytes);
            self.stats.record_msg(msg.mtype, bytes);
            match self.mesh.send(send_at, src, dst, bytes, msg.vc_class()) {
                ftdircmp_noc::SendOutcome::Delivered { at } => {
                    self.queue
                        .schedule(at.max(send_at + 1), Event::Deliver(msg));
                }
                ftdircmp_noc::SendOutcome::Dropped => {
                    // The message vanished in the network (transient fault).
                }
            }
        }
        for t in timeouts.drain(..) {
            self.queue.schedule(
                now + t.delay,
                Event::Timeout {
                    node: t.node,
                    addr: t.addr,
                    kind: t.kind,
                    gen: t.gen,
                },
            );
        }
        for c in completions.drain(..) {
            let idx = usize::from(c.core);
            self.cpus[idx].complete(c.addr);
            if self.trace_sink.is_some() {
                // Reconstruct the retired op (line-granular address).
                let a = c.addr.base_addr(self.config.line_bytes);
                let op = if c.was_store {
                    TraceOp::Store(a)
                } else {
                    TraceOp::Load(a)
                };
                self.trace(now, TraceEventKind::OpRetired { core: c.core, op });
            }
            self.note_core_progress(now, idx);
            self.queue
                .schedule(now + c.delay.max(1), Event::CpuStep(c.core));
        }
    }
}

#[cfg(test)]
#[path = "system_tests.rs"]
mod tests;
