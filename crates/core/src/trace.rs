//! Trace format consumed by the trace-driven cores.

use crate::ids::Addr;

/// One operation in a core's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Load from a byte address.
    Load(Addr),
    /// Store to a byte address.
    Store(Addr),
    /// Compute for the given number of cycles without touching memory.
    Think(u64),
}

impl TraceOp {
    /// The address touched, if this is a memory operation.
    pub fn addr(self) -> Option<Addr> {
        match self {
            TraceOp::Load(a) | TraceOp::Store(a) => Some(a),
            TraceOp::Think(_) => None,
        }
    }

    /// Whether this is a memory operation.
    pub fn is_mem(self) -> bool {
        self.addr().is_some()
    }
}

/// The per-core instruction stream of a workload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreTrace {
    ops: Vec<TraceOp>,
}

impl CoreTrace {
    /// Creates a trace from a list of operations.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        CoreTrace { ops }
    }

    /// The operations.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of memory operations (loads + stores).
    pub fn mem_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_mem()).count()
    }
}

impl FromIterator<TraceOp> for CoreTrace {
    fn from_iter<T: IntoIterator<Item = TraceOp>>(iter: T) -> Self {
        CoreTrace::new(iter.into_iter().collect())
    }
}

/// A complete workload: one trace per core, plus a name for reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Workload {
    /// Display name (e.g. the benchmark this trace models).
    pub name: String,
    /// One trace per core, indexed by core id.
    pub traces: Vec<CoreTrace>,
}

impl Workload {
    /// Creates a named workload.
    pub fn new(name: impl Into<String>, traces: Vec<CoreTrace>) -> Self {
        Workload {
            name: name.into(),
            traces,
        }
    }

    /// Total memory operations across all cores.
    pub fn total_mem_ops(&self) -> usize {
        self.traces.iter().map(CoreTrace::mem_ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        assert!(TraceOp::Load(Addr(4)).is_mem());
        assert!(TraceOp::Store(Addr(4)).is_mem());
        assert!(!TraceOp::Think(10).is_mem());
        assert_eq!(TraceOp::Store(Addr(8)).addr(), Some(Addr(8)));
        assert_eq!(TraceOp::Think(10).addr(), None);
    }

    #[test]
    fn trace_counts() {
        let t: CoreTrace = [
            TraceOp::Load(Addr(0)),
            TraceOp::Think(5),
            TraceOp::Store(Addr(64)),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 3);
        assert_eq!(t.mem_ops(), 2);
        assert!(!t.is_empty());
        assert!(CoreTrace::default().is_empty());
    }

    #[test]
    fn workload_totals() {
        let t = CoreTrace::new(vec![TraceOp::Load(Addr(0)); 3]);
        let w = Workload::new("toy", vec![t.clone(), t]);
        assert_eq!(w.total_mem_ops(), 6);
        assert_eq!(w.name, "toy");
    }
}
