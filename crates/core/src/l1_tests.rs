//! Unit tests for the L1 controller, driven in isolation through the test
//! harness. Each test documents one transition of the state machine.

use crate::data::LineData;
use crate::ids::{LineAddr, NodeId};
use crate::l1::{CpuOp, CpuOutcome, L1Controller};
use crate::msg::{Message, MsgType};
use crate::proto::TimeoutKind;
use crate::serial::SerialNum;
use crate::testharness::Harness;

const ME: NodeId = NodeId::L1(0);
/// Line 3 is homed at L2 bank 3.
const L: LineAddr = LineAddr(3);
const HOME: NodeId = NodeId::L2(3);

fn l1(h: &Harness) -> L1Controller {
    let mut rng = h.rng();
    L1Controller::new(0, &h.config, &mut rng)
}

fn load(addr: LineAddr) -> CpuOp {
    CpuOp {
        addr,
        is_store: false,
    }
}

fn store(addr: LineAddr) -> CpuOp {
    CpuOp {
        addr,
        is_store: true,
    }
}

/// Drives the controller into M for `addr` (request + exclusive grant +
/// AckBD), clearing the harness afterwards.
fn fill_modified(c: &mut L1Controller, h: &mut Harness, addr: LineAddr) -> LineData {
    assert_eq!(c.cpu_access(store(addr), &mut h.ctx()), CpuOutcome::Miss);
    let home = NodeId::L2(addr.home_bank(16));
    let getx = h.sent_one(MsgType::GetX);
    let data = LineData::pristine();
    let grant = Message::new(MsgType::DataEx, addr, home, ME)
        .requester(ME)
        .serial(getx.serial)
        .data(data);
    c.handle_message(grant, &mut h.ctx());
    if h.config.protocol.is_fault_tolerant() {
        let unblock = h.sent_one(MsgType::UnblockEx);
        c.handle_message(
            Message::new(MsgType::AckBD, addr, home, ME).serial(unblock.serial),
            &mut h.ctx(),
        );
    }
    h.clear();
    data
}

// ---------------------------------------------------------------------
// Miss issue and completion
// ---------------------------------------------------------------------

#[test]
fn load_miss_sends_gets_to_home_and_arms_lost_request() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    assert_eq!(c.cpu_access(load(L), &mut h.ctx()), CpuOutcome::Miss);
    let gets = h.sent_one(MsgType::GetS);
    assert_eq!(gets.dst, HOME);
    assert_eq!(gets.src, ME);
    assert!(h.armed(ME, TimeoutKind::LostRequest).is_some());
    assert_eq!(h.stats.l1_load_misses.get(), 1);
}

#[test]
fn store_miss_sends_getx() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    assert_eq!(c.cpu_access(store(L), &mut h.ctx()), CpuOutcome::Miss);
    let getx = h.sent_one(MsgType::GetX);
    assert_eq!(getx.dst, HOME);
    assert_eq!(h.stats.l1_store_misses.get(), 1);
}

#[test]
fn dircmp_misses_arm_no_timers() {
    let mut h = Harness::dircmp();
    let mut c = l1(&h);
    c.cpu_access(load(L), &mut h.ctx());
    assert!(h.timeouts.is_empty());
    assert_eq!(h.sent_one(MsgType::GetS).serial, SerialNum::ZERO);
}

#[test]
fn shared_data_completes_load_with_plain_unblock() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    c.cpu_access(load(L), &mut h.ctx());
    let serial = h.sent_one(MsgType::GetS).serial;
    h.clear();
    c.handle_message(
        Message::new(MsgType::Data, L, HOME, ME)
            .requester(ME)
            .serial(serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    let unblock = h.sent_one(MsgType::Unblock);
    assert_eq!(unblock.dst, HOME);
    assert!(!unblock.piggy_acko, "shared grants need no ownership ack");
    h.sent_none(MsgType::AckO);
    assert_eq!(h.completions.len(), 1);
    // Subsequent loads hit; stores miss (upgrade).
    assert_eq!(c.cpu_access(load(L), &mut h.ctx()), CpuOutcome::Hit);
}

#[test]
fn exclusive_clean_grant_installs_e_with_piggybacked_acko() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    c.cpu_access(load(L), &mut h.ctx());
    let serial = h.sent_one(MsgType::GetS).serial;
    h.clear();
    // Home L2 supplies exclusively: AckO piggybacks on the UnblockEx (§3.1).
    c.handle_message(
        Message::new(MsgType::DataEx, L, HOME, ME)
            .requester(ME)
            .serial(serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    let unblock = h.sent_one(MsgType::UnblockEx);
    assert!(unblock.piggy_acko);
    h.sent_none(MsgType::AckO);
    assert!(h.armed(ME, TimeoutKind::LostAckBd).is_some());
    // E state: a store after the handshake is a silent hit.
    c.handle_message(
        Message::new(MsgType::AckBD, L, HOME, ME).serial(serial),
        &mut h.ctx(),
    );
    assert_eq!(c.cpu_access(store(L), &mut h.ctx()), CpuOutcome::Hit);
}

#[test]
fn exclusive_grant_from_peer_l1_sends_standalone_acko() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    c.cpu_access(store(L), &mut h.ctx());
    let serial = h.sent_one(MsgType::GetX).serial;
    h.clear();
    let peer = NodeId::L1(7);
    c.handle_message(
        Message::new(MsgType::DataEx, L, peer, ME)
            .requester(ME)
            .serial(serial)
            .data(LineData::pristine())
            .dirty(true),
        &mut h.ctx(),
    );
    // Separate AckO to the data supplier, UnblockEx (no piggyback) to home.
    assert_eq!(h.sent_one(MsgType::AckO).dst, peer);
    assert!(!h.sent_one(MsgType::UnblockEx).piggy_acko);
}

#[test]
fn dirty_exclusive_load_grant_installs_m_not_e() {
    // A clean-E install of dirty data could later evict silently (WbNoData)
    // and lose the only up-to-date copy.
    let mut h = Harness::ft();
    let mut c = l1(&h);
    c.cpu_access(load(L), &mut h.ctx());
    let serial = h.sent_one(MsgType::GetS).serial;
    h.clear();
    let mut dirty = LineData::pristine();
    dirty.write(NodeId::L1(9));
    c.handle_message(
        Message::new(MsgType::DataEx, L, NodeId::L1(9), ME)
            .requester(ME)
            .serial(serial)
            .data(dirty)
            .dirty(true),
        &mut h.ctx(),
    );
    c.handle_message(
        Message::new(MsgType::AckBD, L, NodeId::L1(9), ME).serial(serial),
        &mut h.ctx(),
    );
    h.clear();
    // M line answers FwdGetX with dirty data (an E line would say clean).
    c.handle_message(
        Message::new(MsgType::FwdGetX, L, HOME, NodeId::L1(2))
            .requester(NodeId::L1(2))
            .serial(SerialNum::new(5, 8)),
        &mut h.ctx(),
    );
    assert!(h.sent_one(MsgType::DataEx).data_dirty);
}

#[test]
fn getx_waits_for_all_invalidation_acks() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    c.cpu_access(store(L), &mut h.ctx());
    let serial = h.sent_one(MsgType::GetX).serial;
    h.clear();
    c.handle_message(
        Message::new(MsgType::DataEx, L, HOME, ME)
            .requester(ME)
            .serial(serial)
            .data(LineData::pristine())
            .acks(2),
        &mut h.ctx(),
    );
    assert!(h.completions.is_empty(), "must wait for 2 acks");
    c.handle_message(
        Message::new(MsgType::Ack, L, NodeId::L1(4), ME).serial(serial),
        &mut h.ctx(),
    );
    assert!(h.completions.is_empty(), "must wait for 1 more ack");
    c.handle_message(
        Message::new(MsgType::Ack, L, NodeId::L1(5), ME).serial(serial),
        &mut h.ctx(),
    );
    assert_eq!(h.completions.len(), 1);
}

#[test]
fn acks_arriving_before_data_are_counted() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    c.cpu_access(store(L), &mut h.ctx());
    let serial = h.sent_one(MsgType::GetX).serial;
    h.clear();
    c.handle_message(
        Message::new(MsgType::Ack, L, NodeId::L1(4), ME).serial(serial),
        &mut h.ctx(),
    );
    c.handle_message(
        Message::new(MsgType::DataEx, L, HOME, ME)
            .requester(ME)
            .serial(serial)
            .data(LineData::pristine())
            .acks(1),
        &mut h.ctx(),
    );
    assert_eq!(h.completions.len(), 1, "early ack must count");
}

#[test]
fn stale_serial_responses_are_discarded() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    c.cpu_access(store(L), &mut h.ctx());
    let gen = h.armed(ME, TimeoutKind::LostRequest).unwrap().gen;
    h.clear();
    // Timeout fires: reissue with a new serial.
    c.handle_timeout(TimeoutKind::LostRequest, L, gen, &mut h.ctx());
    let reissued = h.sent_one(MsgType::GetX);
    h.clear();
    // The slow original response arrives with the old serial: discarded.
    let old = Message::new(MsgType::DataEx, L, HOME, ME)
        .requester(ME)
        .serial(SerialNum::new(reissued.serial.value().wrapping_sub(1), 8))
        .data(LineData::pristine());
    c.handle_message(old, &mut h.ctx());
    assert!(h.completions.is_empty());
    assert!(h.stats.stale_discards.get() > 0);
    assert!(h.stats.false_positives.get() > 0);
    // The correctly-serialed response completes.
    c.handle_message(
        Message::new(MsgType::DataEx, L, HOME, ME)
            .requester(ME)
            .serial(reissued.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    assert_eq!(h.completions.len(), 1);
}

// ---------------------------------------------------------------------
// Invalidations and forwards
// ---------------------------------------------------------------------

#[test]
fn inv_is_acked_even_without_a_copy() {
    // The directory's sharer list overapproximates (silent S evictions);
    // the requester is counting acks, so every Inv must be answered.
    let mut h = Harness::ft();
    let mut c = l1(&h);
    let requester = NodeId::L1(9);
    c.handle_message(
        Message::new(MsgType::Inv, L, HOME, ME)
            .requester(requester)
            .serial(SerialNum::new(7, 8)),
        &mut h.ctx(),
    );
    let ack = h.sent_one(MsgType::Ack);
    assert_eq!(ack.dst, requester);
    assert_eq!(ack.serial, SerialNum::new(7, 8));
}

#[test]
fn inv_removes_shared_copy() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    // Install S.
    c.cpu_access(load(L), &mut h.ctx());
    let serial = h.sent_one(MsgType::GetS).serial;
    c.handle_message(
        Message::new(MsgType::Data, L, HOME, ME)
            .requester(ME)
            .serial(serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::Inv, L, HOME, NodeId::L1(9))
            .requester(NodeId::L1(9))
            .serial(SerialNum::new(1, 8)),
        &mut h.ctx(),
    );
    h.sent_one(MsgType::Ack);
    // The next load misses again.
    h.clear();
    assert_eq!(c.cpu_access(load(L), &mut h.ctx()), CpuOutcome::Miss);
}

#[test]
fn fwd_gets_supplies_data_and_downgrades_owner_to_o() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    fill_modified(&mut c, &mut h, L);
    let requester = NodeId::L1(5);
    c.handle_message(
        Message::new(MsgType::FwdGetS, L, HOME, requester)
            .requester(requester)
            .serial(SerialNum::new(3, 8)),
        &mut h.ctx(),
    );
    let data = h.sent_one(MsgType::Data);
    assert_eq!(data.dst, requester);
    // Still owner (O): loads hit, stores upgrade-miss.
    h.clear();
    assert_eq!(c.cpu_access(load(L), &mut h.ctx()), CpuOutcome::Hit);
    assert_eq!(c.cpu_access(store(L), &mut h.ctx()), CpuOutcome::Miss);
}

#[test]
fn fwd_getx_transfers_ownership_and_keeps_backup() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    fill_modified(&mut c, &mut h, L);
    let requester = NodeId::L1(5);
    let fwd_serial = SerialNum::new(9, 8);
    c.handle_message(
        Message::new(MsgType::FwdGetX, L, HOME, requester)
            .requester(requester)
            .serial(fwd_serial)
            .acks(1),
        &mut h.ctx(),
    );
    let dx = h.sent_one(MsgType::DataEx);
    assert_eq!(dx.dst, requester);
    assert_eq!(dx.ack_count, 1, "ack count is relayed from the forward");
    assert!(dx.data_dirty);
    assert!(h.armed(ME, TimeoutKind::LostData).is_some(), "backup timer");
    // No permission left; access misses.
    h.clear();
    assert_eq!(c.cpu_access(load(L), &mut h.ctx()), CpuOutcome::Miss);
}

#[test]
fn backup_answers_reissued_forward_with_new_serial() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    fill_modified(&mut c, &mut h, L);
    let requester = NodeId::L1(5);
    c.handle_message(
        Message::new(MsgType::FwdGetX, L, HOME, requester)
            .requester(requester)
            .serial(SerialNum::new(9, 8)),
        &mut h.ctx(),
    );
    h.clear();
    // The DataEx was lost; the requester reissued and the home re-forwarded.
    c.handle_message(
        Message::new(MsgType::FwdGetX, L, HOME, requester)
            .requester(requester)
            .serial(SerialNum::new(10, 8))
            .acks(2),
        &mut h.ctx(),
    );
    let dx = h.sent_one(MsgType::DataEx);
    assert_eq!(dx.serial, SerialNum::new(10, 8));
    assert_eq!(dx.ack_count, 2);
}

#[test]
fn acko_deletes_backup_and_answers_ackbd() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    fill_modified(&mut c, &mut h, L);
    let requester = NodeId::L1(5);
    let serial = SerialNum::new(9, 8);
    c.handle_message(
        Message::new(MsgType::FwdGetX, L, HOME, requester)
            .requester(requester)
            .serial(serial),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::AckO, L, requester, ME).serial(serial),
        &mut h.ctx(),
    );
    assert_eq!(h.sent_one(MsgType::AckBD).dst, requester);
    // A duplicate AckO (reissued, §3.4) still gets an AckBD.
    h.clear();
    c.handle_message(
        Message::new(MsgType::AckO, L, requester, ME).serial(SerialNum::new(10, 8)),
        &mut h.ctx(),
    );
    assert_eq!(h.sent_one(MsgType::AckBD).serial, SerialNum::new(10, 8));
}

#[test]
fn forwards_are_deferred_while_ownership_is_blocked() {
    // §3.1 step 2: while in Mb, the node must not transfer ownership.
    let mut h = Harness::ft();
    let mut c = l1(&h);
    c.cpu_access(store(L), &mut h.ctx());
    let serial = h.sent_one(MsgType::GetX).serial;
    h.clear();
    c.handle_message(
        Message::new(MsgType::DataEx, L, HOME, ME)
            .requester(ME)
            .serial(serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    h.clear();
    // Forward arrives while still waiting for the AckBD: must be deferred.
    c.handle_message(
        Message::new(MsgType::FwdGetX, L, HOME, NodeId::L1(5))
            .requester(NodeId::L1(5))
            .serial(SerialNum::new(11, 8)),
        &mut h.ctx(),
    );
    h.sent_none(MsgType::DataEx);
    assert_eq!(h.stats.deferred_forwards.get(), 1);
    // AckBD arrives: the deferred forward drains.
    c.handle_message(
        Message::new(MsgType::AckBD, L, HOME, ME).serial(serial),
        &mut h.ctx(),
    );
    assert_eq!(h.sent_one(MsgType::DataEx).dst, NodeId::L1(5));
}

// ---------------------------------------------------------------------
// Writebacks
// ---------------------------------------------------------------------

/// Fills four M lines in one set, then a fifth in the same set to force an
/// eviction; returns the victim's address.
fn force_eviction(c: &mut L1Controller, h: &mut Harness) -> LineAddr {
    let sets = h.config.l1_sets();
    let base = 3u64;
    for way in 0..4 {
        fill_modified(c, h, LineAddr(base + way * sets));
        // Touch to set LRU order deterministically.
    }
    // Fifth line in the same set evicts the LRU (= first filled).
    let new = LineAddr(base + 4 * sets);
    assert_eq!(c.cpu_access(store(new), &mut h.ctx()), CpuOutcome::Miss);
    let getx = h.sent_one(MsgType::GetX);
    let home = NodeId::L2(new.home_bank(16));
    c.handle_message(
        Message::new(MsgType::DataEx, new, home, ME)
            .requester(ME)
            .serial(getx.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    LineAddr(base)
}

#[test]
fn eviction_of_modified_line_starts_three_phase_writeback() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    let victim = force_eviction(&mut c, &mut h);
    let put = h.sent_one(MsgType::Put);
    assert_eq!(put.addr, victim);
    assert_eq!(put.dst, NodeId::L2(victim.home_bank(16)));
    assert_eq!(h.stats.l1_writebacks.get(), 1);
    h.clear();
    // WbAck: send the data, keep a backup.
    let home = NodeId::L2(victim.home_bank(16));
    let mut wback = Message::new(MsgType::WbAck, victim, home, ME).serial(put.serial);
    wback.wb_wants_data = true;
    c.handle_message(wback, &mut h.ctx());
    let wbdata = h.sent_one(MsgType::WbData);
    assert!(wbdata.data.is_some());
    assert!(
        h.armed(ME, TimeoutKind::LostData).is_some(),
        "wb backup timer"
    );
    // Memory-side handshake: AckO deletes the backup.
    h.clear();
    c.handle_message(
        Message::new(MsgType::AckO, victim, home, ME).serial(put.serial),
        &mut h.ctx(),
    );
    h.sent_one(MsgType::AckBD);
}

#[test]
fn cpu_op_on_line_with_writeback_in_flight_is_stalled_then_retried() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    let victim = force_eviction(&mut c, &mut h);
    let put = h.sent_one(MsgType::Put);
    h.clear();
    // Re-access the victim while its Put is outstanding.
    assert_eq!(
        c.cpu_access(load(victim), &mut h.ctx()),
        CpuOutcome::Stalled
    );
    h.sent_none(MsgType::GetS);
    // The WbAck resolves the writeback; the stalled op is retried (miss).
    let home = NodeId::L2(victim.home_bank(16));
    let mut wback = Message::new(MsgType::WbAck, victim, home, ME).serial(put.serial);
    wback.wb_wants_data = true;
    c.handle_message(wback, &mut h.ctx());
    h.sent_one(MsgType::GetS);
}

#[test]
fn stale_wback_reinstates_line_when_data_still_held() {
    // Ownership moved while the Put was queued but the forward has not
    // reached us (unordered networks): we must keep the data to answer it.
    let mut h = Harness::ft();
    let mut c = l1(&h);
    let victim = force_eviction(&mut c, &mut h);
    let put = h.sent_one(MsgType::Put);
    h.clear();
    let home = NodeId::L2(victim.home_bank(16));
    let mut stale = Message::new(MsgType::WbAck, victim, home, ME).serial(put.serial);
    stale.wb_stale = true;
    c.handle_message(stale, &mut h.ctx());
    h.sent_none(MsgType::WbData);
    // Line is live again: the late forward can be answered.
    c.handle_message(
        Message::new(MsgType::FwdGetX, victim, home, NodeId::L1(5))
            .requester(NodeId::L1(5))
            .serial(SerialNum::new(4, 8)),
        &mut h.ctx(),
    );
    h.sent_one(MsgType::DataEx);
}

#[test]
fn fwd_getx_racing_a_writeback_takes_the_data() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    let victim = force_eviction(&mut c, &mut h);
    h.clear();
    // The forward wins the race: data surrendered from the wb buffer.
    let home = NodeId::L2(victim.home_bank(16));
    c.handle_message(
        Message::new(MsgType::FwdGetX, victim, home, NodeId::L1(5))
            .requester(NodeId::L1(5))
            .serial(SerialNum::new(4, 8)),
        &mut h.ctx(),
    );
    assert_eq!(h.sent_one(MsgType::DataEx).dst, NodeId::L1(5));
    h.clear();
    // The eventual stale WbAck now has nothing to reinstate.
    let put_serial = {
        // wb entry still open with the original serial; any serial works
        // for DirCMP, FT requires a match — fetch from the wb ping path:
        // simplest: the stale ack uses the wb serial captured earlier.
        SerialNum::ZERO
    };
    let _ = put_serial; // (FT serial check exercised in other tests)
}

// ---------------------------------------------------------------------
// Recovery: pings
// ---------------------------------------------------------------------

#[test]
fn unblock_ping_for_pending_same_kind_miss_is_ignored() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    c.cpu_access(load(L), &mut h.ctx());
    let serial = h.sent_one(MsgType::GetS).serial;
    h.clear();
    let mut ping = Message::new(MsgType::UnblockPing, L, HOME, ME).serial(serial);
    ping.ping_for_store = false;
    c.handle_message(ping, &mut h.ctx());
    h.sent_none(MsgType::Unblock);
    h.sent_none(MsgType::UnblockEx);
}

#[test]
fn unblock_ping_for_completed_transaction_resends_the_unblock() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    fill_modified(&mut c, &mut h, L);
    // The home lost our UnblockEx and pings (kind = store).
    let mut ping = Message::new(MsgType::UnblockPing, L, HOME, ME).serial(SerialNum::new(2, 8));
    ping.ping_for_store = true;
    c.handle_message(ping, &mut h.ctx());
    let reply = h.sent_one(MsgType::UnblockEx);
    assert_eq!(reply.serial, SerialNum::new(2, 8));
    assert!(reply.piggy_acko, "the original UnblockEx carried the AckO");
}

#[test]
fn unblock_ping_for_old_kind_answers_while_new_miss_pending() {
    // The scenario that deadlocked mid-development: GetS completed (unblock
    // lost), then a GetX for the same line is pending; the ping refers to
    // the GetS and must be answered despite the pending miss.
    let mut h = Harness::ft();
    let mut c = l1(&h);
    // Complete a load (granted S so no handshake).
    c.cpu_access(load(L), &mut h.ctx());
    let s1 = h.sent_one(MsgType::GetS).serial;
    c.handle_message(
        Message::new(MsgType::Data, L, HOME, ME)
            .requester(ME)
            .serial(s1)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    h.clear();
    // Now a store upgrade is pending.
    assert_eq!(c.cpu_access(store(L), &mut h.ctx()), CpuOutcome::Miss);
    h.clear();
    // Ping for the completed GetS (kind = load).
    let mut ping = Message::new(MsgType::UnblockPing, L, HOME, ME).serial(s1);
    ping.ping_for_store = false;
    c.handle_message(ping, &mut h.ctx());
    assert_eq!(h.sent_one(MsgType::Unblock).serial, s1);
}

#[test]
fn wb_ping_substitutes_for_a_lost_wback() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    let victim = force_eviction(&mut c, &mut h);
    let put = h.sent_one(MsgType::Put);
    h.clear();
    // The WbAck was lost; the home's lost-unblock timer pings instead.
    let home = NodeId::L2(victim.home_bank(16));
    let mut ping = Message::new(MsgType::WbPing, victim, home, ME).serial(put.serial);
    ping.wb_wants_data = true;
    c.handle_message(ping, &mut h.ctx());
    h.sent_one(MsgType::WbData);
}

#[test]
fn wb_ping_without_any_record_answers_wbcancel() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    let ping = Message::new(MsgType::WbPing, L, HOME, ME).serial(SerialNum::new(3, 8));
    c.handle_message(ping, &mut h.ctx());
    assert_eq!(h.sent_one(MsgType::WbCancel).serial, SerialNum::new(3, 8));
}

#[test]
fn ownership_ping_nacks_when_data_never_arrived() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    // Miss in flight: the DataEx was lost, the backup holder pings.
    c.cpu_access(store(L), &mut h.ctx());
    h.clear();
    c.handle_message(
        Message::new(MsgType::OwnershipPing, L, NodeId::L1(7), ME).serial(SerialNum::new(5, 8)),
        &mut h.ctx(),
    );
    assert_eq!(h.sent_one(MsgType::NackO).dst, NodeId::L1(7));
}

#[test]
fn ownership_ping_acks_when_line_is_held() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    fill_modified(&mut c, &mut h, L);
    c.handle_message(
        Message::new(MsgType::OwnershipPing, L, NodeId::L1(7), ME).serial(SerialNum::new(5, 8)),
        &mut h.ctx(),
    );
    h.sent_one(MsgType::AckO);
}

#[test]
fn nacko_triggers_data_resend_from_backup() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    fill_modified(&mut c, &mut h, L);
    let requester = NodeId::L1(5);
    let serial = SerialNum::new(9, 8);
    c.handle_message(
        Message::new(MsgType::FwdGetX, L, HOME, requester)
            .requester(requester)
            .serial(serial)
            .acks(3),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::NackO, L, requester, ME).serial(serial),
        &mut h.ctx(),
    );
    let dx = h.sent_one(MsgType::DataEx);
    assert_eq!(dx.dst, requester);
    assert_eq!(dx.ack_count, 3, "resend preserves the ack count");
}

// ---------------------------------------------------------------------
// Timeouts
// ---------------------------------------------------------------------

#[test]
fn lost_request_timeout_reissues_with_backoff() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    c.cpu_access(store(L), &mut h.ctx());
    let first = h.sent_one(MsgType::GetX);
    let t0 = h.armed(ME, TimeoutKind::LostRequest).unwrap();
    assert_eq!(t0.delay, h.config.ft.lost_request_timeout);
    h.clear();
    c.handle_timeout(TimeoutKind::LostRequest, L, t0.gen, &mut h.ctx());
    let second = h.sent_one(MsgType::GetX);
    assert_ne!(second.serial, first.serial);
    let t1 = h.armed(ME, TimeoutKind::LostRequest).unwrap();
    assert_eq!(t1.delay, h.config.ft.lost_request_timeout * 2, "backoff");
    assert_eq!(h.stats.reissues.get(), 1);
}

#[test]
fn stale_generation_timeouts_are_noops() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    c.cpu_access(store(L), &mut h.ctx());
    let t0 = h.armed(ME, TimeoutKind::LostRequest).unwrap();
    let serial = h.sent_one(MsgType::GetX).serial;
    // The response arrives: MSHR closes.
    c.handle_message(
        Message::new(MsgType::DataEx, L, HOME, ME)
            .requester(ME)
            .serial(serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    h.clear();
    // The already-scheduled timeout fires late: nothing must happen.
    c.handle_timeout(TimeoutKind::LostRequest, L, t0.gen, &mut h.ctx());
    h.sent_none(MsgType::GetX);
    assert_eq!(h.stats.reissues.get(), 0);
}

#[test]
fn lost_ackbd_timeout_resends_acko_with_new_serial() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    c.cpu_access(store(L), &mut h.ctx());
    let serial = h.sent_one(MsgType::GetX).serial;
    c.handle_message(
        Message::new(MsgType::DataEx, L, NodeId::L1(7), ME)
            .requester(ME)
            .serial(serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    let t = h.armed(ME, TimeoutKind::LostAckBd).unwrap();
    h.clear();
    c.handle_timeout(TimeoutKind::LostAckBd, L, t.gen, &mut h.ctx());
    let acko = h.sent_one(MsgType::AckO);
    assert_eq!(acko.dst, NodeId::L1(7));
    assert_ne!(
        acko.serial, serial,
        "reissued AckO gets a new serial (§3.4)"
    );
    // And the matching AckBD releases the blocked state.
    c.handle_message(
        Message::new(MsgType::AckBD, L, NodeId::L1(7), ME).serial(acko.serial),
        &mut h.ctx(),
    );
    assert!(c.is_idle());
}

#[test]
fn lost_data_timeout_pings_the_destination() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    fill_modified(&mut c, &mut h, L);
    c.handle_message(
        Message::new(MsgType::FwdGetX, L, HOME, NodeId::L1(5))
            .requester(NodeId::L1(5))
            .serial(SerialNum::new(9, 8)),
        &mut h.ctx(),
    );
    let t = h.armed(ME, TimeoutKind::LostData).unwrap();
    h.clear();
    c.handle_timeout(TimeoutKind::LostData, L, t.gen, &mut h.ctx());
    assert_eq!(h.sent_one(MsgType::OwnershipPing).dst, NodeId::L1(5));
}

#[test]
fn controller_reports_idle_after_full_transaction() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    assert!(c.is_idle());
    fill_modified(&mut c, &mut h, L);
    assert!(c.is_idle());
    assert_eq!(c.resident_lines(), 1);
    assert_eq!(c.overflow_peak(), 0);
}

// ---------------------------------------------------------------------
// Additional edge cases
// ---------------------------------------------------------------------

#[test]
fn o_upgrade_completes_with_dataex_without_data() {
    // Owner in O issuing GetX receives permission + ack count only; the
    // data it already holds is used (and no FT handshake runs: no data
    // moved).
    let mut h = Harness::ft();
    let mut c = l1(&h);
    fill_modified(&mut c, &mut h, L);
    // Downgrade to O via FwdGetS.
    c.handle_message(
        Message::new(MsgType::FwdGetS, L, HOME, NodeId::L1(5))
            .requester(NodeId::L1(5))
            .serial(SerialNum::new(3, 8)),
        &mut h.ctx(),
    );
    h.clear();
    // Store now upgrade-misses from O.
    assert_eq!(c.cpu_access(store(L), &mut h.ctx()), CpuOutcome::Miss);
    let serial = h.sent_one(MsgType::GetX).serial;
    h.clear();
    c.handle_message(
        Message::new(MsgType::DataEx, L, HOME, ME)
            .requester(ME)
            .serial(serial)
            .acks(1),
        &mut h.ctx(),
    );
    assert!(h.completions.is_empty(), "one ack outstanding");
    c.handle_message(
        Message::new(MsgType::Ack, L, NodeId::L1(5), ME).serial(serial),
        &mut h.ctx(),
    );
    assert_eq!(h.completions.len(), 1);
    // No data came, so no ownership handshake.
    h.sent_none(MsgType::AckO);
    assert!(!h.sent_one(MsgType::UnblockEx).piggy_acko);
    // Store committed on the retained copy: next store hits.
    h.clear();
    assert_eq!(c.cpu_access(store(L), &mut h.ctx()), CpuOutcome::Hit);
}

#[test]
fn clean_exclusive_eviction_sends_wbnodata() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    // Install E (load, exclusive clean grant).
    c.cpu_access(load(L), &mut h.ctx());
    let serial = h.sent_one(MsgType::GetS).serial;
    c.handle_message(
        Message::new(MsgType::DataEx, L, HOME, ME)
            .requester(ME)
            .serial(serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    c.handle_message(
        Message::new(MsgType::AckBD, L, HOME, ME).serial(serial),
        &mut h.ctx(),
    );
    h.clear();
    // Fill the rest of the set with M lines, then one more to evict L (LRU).
    let sets = h.config.l1_sets();
    for way in 1..4 {
        fill_modified(&mut c, &mut h, LineAddr(3 + way * sets));
    }
    fill_modified(&mut c, &mut h, LineAddr(3 + 4 * sets));
    // L was evicted: the Put for it is in flight.
    // (fill_modified clears the harness, so re-derive via WbPing.)
    let mut ping = Message::new(MsgType::WbPing, L, HOME, ME).serial(SerialNum::new(9, 8));
    ping.wb_wants_data = false;
    c.handle_message(ping, &mut h.ctx());
    // Clean E line: WbNoData (memory's copy is current), never WbData.
    h.sent_none(MsgType::WbData);
    h.sent_one(MsgType::WbNoData);
}

#[test]
fn silent_shared_eviction_needs_no_messages() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    // Install S in a set, then fill the set with M lines: the S victim
    // leaves silently.
    c.cpu_access(load(L), &mut h.ctx());
    let serial = h.sent_one(MsgType::GetS).serial;
    c.handle_message(
        Message::new(MsgType::Data, L, HOME, ME)
            .requester(ME)
            .serial(serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    h.clear();
    let sets = h.config.l1_sets();
    for way in 1..5 {
        fill_modified(&mut c, &mut h, LineAddr(3 + way * sets));
    }
    // Three Puts for three evicted M lines at most — none for the S line.
    assert!(h.stats.l1_writebacks.get() <= 3);
    assert_eq!(c.cpu_access(load(L), &mut h.ctx()), CpuOutcome::Miss);
}

#[test]
fn duplicate_ackbd_is_discarded() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    fill_modified(&mut c, &mut h, L); // consumes one AckBD
    c.handle_message(
        Message::new(MsgType::AckBD, L, HOME, ME).serial(SerialNum::new(200, 8)),
        &mut h.ctx(),
    );
    assert!(h.stats.stale_discards.get() > 0);
}

#[test]
fn is_idle_reflects_open_backups() {
    let mut h = Harness::ft();
    let mut c = l1(&h);
    fill_modified(&mut c, &mut h, L);
    c.handle_message(
        Message::new(MsgType::FwdGetX, L, HOME, NodeId::L1(5))
            .requester(NodeId::L1(5))
            .serial(SerialNum::new(9, 8)),
        &mut h.ctx(),
    );
    assert!(!c.is_idle(), "backup pending");
    c.handle_message(
        Message::new(MsgType::AckO, L, NodeId::L1(5), ME).serial(SerialNum::new(9, 8)),
        &mut h.ctx(),
    );
    assert!(c.is_idle());
}
