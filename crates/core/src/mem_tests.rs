//! Unit tests for the memory controller in isolation.

use crate::data::LineData;
use crate::ids::{LineAddr, NodeId};
use crate::mem::MemController;
use crate::msg::{Message, MsgType};
use crate::proto::TimeoutKind;
use crate::serial::SerialNum;
use crate::testharness::Harness;

const ME: NodeId = NodeId::Mem(3);
const L: LineAddr = LineAddr(3);
const BANK: NodeId = NodeId::L2(3);

fn mem(ft: bool) -> MemController {
    MemController::new(3, ft)
}

fn sn(v: u16) -> SerialNum {
    SerialNum::new(v, 8)
}

/// Fill + exclusive unblock: leaves the line chip-owned.
fn grant_to_l2(c: &mut MemController, h: &mut Harness, serial: u16) {
    c.handle_message(
        Message::new(MsgType::GetX, L, BANK, ME).serial(sn(serial)),
        &mut h.ctx(),
    );
    h.sent_one(MsgType::DataEx);
    h.clear();
    let mut unblock = Message::new(MsgType::UnblockEx, L, BANK, ME).serial(sn(serial));
    if h.config.protocol.is_fault_tolerant() {
        unblock = unblock.with_acko();
    }
    c.handle_message(unblock, &mut h.ctx());
    h.clear();
}

#[test]
fn fill_grants_pristine_data_exclusively() {
    let mut h = Harness::ft();
    let mut c = mem(true);
    c.handle_message(
        Message::new(MsgType::GetX, L, BANK, ME).serial(sn(10)),
        &mut h.ctx(),
    );
    let grant = h.sent_one(MsgType::DataEx);
    assert_eq!(grant.dst, BANK);
    assert_eq!(grant.data.unwrap().version(), 0);
    assert!(!grant.data_dirty, "memory data is clean by definition");
    assert!(h.armed(ME, TimeoutKind::LostUnblock).is_some());
    assert!(!c.is_chip_owned(L), "ownership moves at the unblock");
}

#[test]
fn unblock_with_acko_marks_chip_owned_and_answers_ackbd() {
    let mut h = Harness::ft();
    let mut c = mem(true);
    c.handle_message(
        Message::new(MsgType::GetX, L, BANK, ME).serial(sn(10)),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, BANK, ME)
            .serial(sn(10))
            .with_acko(),
        &mut h.ctx(),
    );
    assert_eq!(h.sent_one(MsgType::AckBD).dst, BANK);
    assert!(c.is_chip_owned(L));
    assert!(c.is_idle());
}

#[test]
fn stale_unblock_with_acko_still_gets_ackbd() {
    // Idempotence: a resent UnblockEx+AckO after the transaction closed
    // must still release the L2's external-blocked state.
    let mut h = Harness::ft();
    let mut c = mem(true);
    grant_to_l2(&mut c, &mut h, 10);
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, BANK, ME)
            .serial(sn(10))
            .with_acko(),
        &mut h.ctx(),
    );
    h.sent_one(MsgType::AckBD);
    assert!(h.stats.stale_discards.get() > 0);
}

#[test]
fn writeback_roundtrip_updates_the_store() {
    let mut h = Harness::ft();
    let mut c = mem(true);
    grant_to_l2(&mut c, &mut h, 10);
    c.handle_message(
        Message::new(MsgType::Put, L, BANK, ME).serial(sn(20)),
        &mut h.ctx(),
    );
    let wback = h.sent_one(MsgType::WbAck);
    assert!(wback.wb_wants_data && !wback.wb_stale);
    h.clear();
    let mut dirty = LineData::pristine();
    dirty.write(NodeId::L1(5));
    dirty.write(NodeId::L1(6));
    c.handle_message(
        Message::new(MsgType::WbData, L, BANK, ME)
            .serial(sn(20))
            .data(dirty)
            .dirty(true),
        &mut h.ctx(),
    );
    assert_eq!(c.stored_version(L), 2);
    assert!(!c.is_chip_owned(L));
    // FT: ownership handshake.
    let acko = h.sent_one(MsgType::AckO);
    c.handle_message(
        Message::new(MsgType::AckBD, L, BANK, ME).serial(acko.serial),
        &mut h.ctx(),
    );
    assert!(c.is_idle());
}

#[test]
fn put_from_non_owner_is_stale() {
    let mut h = Harness::ft();
    let mut c = mem(true);
    c.handle_message(
        Message::new(MsgType::Put, L, BANK, ME).serial(sn(20)),
        &mut h.ctx(),
    );
    assert!(h.sent_one(MsgType::WbAck).wb_stale);
    assert!(c.is_idle(), "stale puts create no transaction");
}

#[test]
fn refill_after_writeback_returns_the_new_version() {
    let mut h = Harness::ft();
    let mut c = mem(true);
    grant_to_l2(&mut c, &mut h, 10);
    // Write back version 1.
    c.handle_message(
        Message::new(MsgType::Put, L, BANK, ME).serial(sn(20)),
        &mut h.ctx(),
    );
    h.clear();
    let mut v1 = LineData::pristine();
    v1.write(NodeId::L1(5));
    c.handle_message(
        Message::new(MsgType::WbData, L, BANK, ME)
            .serial(sn(20))
            .data(v1)
            .dirty(true),
        &mut h.ctx(),
    );
    let acko = h.sent_one(MsgType::AckO);
    c.handle_message(
        Message::new(MsgType::AckBD, L, BANK, ME).serial(acko.serial),
        &mut h.ctx(),
    );
    h.clear();
    // A new fill must carry version 1.
    c.handle_message(
        Message::new(MsgType::GetX, L, BANK, ME).serial(sn(30)),
        &mut h.ctx(),
    );
    assert_eq!(h.sent_one(MsgType::DataEx).data.unwrap().version(), 1);
}

#[test]
fn reissued_fill_resends_data_with_new_serial() {
    let mut h = Harness::ft();
    let mut c = mem(true);
    c.handle_message(
        Message::new(MsgType::GetX, L, BANK, ME).serial(sn(10)),
        &mut h.ctx(),
    );
    h.clear();
    // The DataEx was lost; the bank reissues with serial 11.
    c.handle_message(
        Message::new(MsgType::GetX, L, BANK, ME).serial(sn(11)),
        &mut h.ctx(),
    );
    assert_eq!(h.sent_one(MsgType::DataEx).serial, sn(11));
    assert!(h.stats.false_positives.get() > 0);
}

#[test]
fn put_while_fill_unblock_pending_queues() {
    // Different kind from the same blocker = a new transaction (the fill's
    // unblock is still owed); it must wait, not alias as a reissue.
    let mut h = Harness::ft();
    let mut c = mem(true);
    c.handle_message(
        Message::new(MsgType::GetX, L, BANK, ME).serial(sn(10)),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::Put, L, BANK, ME).serial(sn(20)),
        &mut h.ctx(),
    );
    h.sent_none(MsgType::WbAck);
    assert_eq!(h.stats.deferred_requests.get(), 1);
    // The unblock closes the fill; the queued Put is then serviced.
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, BANK, ME)
            .serial(sn(10))
            .with_acko(),
        &mut h.ctx(),
    );
    h.sent_one(MsgType::WbAck);
}

#[test]
fn lost_unblock_timeout_pings_the_bank() {
    let mut h = Harness::ft();
    let mut c = mem(true);
    c.handle_message(
        Message::new(MsgType::GetX, L, BANK, ME).serial(sn(10)),
        &mut h.ctx(),
    );
    let t = h.armed(ME, TimeoutKind::LostUnblock).unwrap();
    h.clear();
    c.handle_timeout(TimeoutKind::LostUnblock, L, t.gen, &mut h.ctx());
    let ping = h.sent_one(MsgType::UnblockPing);
    assert_eq!(ping.dst, BANK);
    assert!(ping.ping_for_store);
    // Backoff applies.
    let t2 = h.armed(ME, TimeoutKind::LostUnblock).unwrap();
    assert_eq!(t2.delay, h.config.ft.lost_unblock_timeout * 2);
}

#[test]
fn lost_wbdata_timeout_sends_wbping() {
    let mut h = Harness::ft();
    let mut c = mem(true);
    grant_to_l2(&mut c, &mut h, 10);
    c.handle_message(
        Message::new(MsgType::Put, L, BANK, ME).serial(sn(20)),
        &mut h.ctx(),
    );
    let t = h.armed(ME, TimeoutKind::LostUnblock).unwrap();
    h.clear();
    c.handle_timeout(TimeoutKind::LostUnblock, L, t.gen, &mut h.ctx());
    let ping = h.sent_one(MsgType::WbPing);
    assert!(ping.wb_wants_data);
}

#[test]
fn lost_ackbd_timeout_resends_acko_with_new_serial() {
    let mut h = Harness::ft();
    let mut c = mem(true);
    grant_to_l2(&mut c, &mut h, 10);
    c.handle_message(
        Message::new(MsgType::Put, L, BANK, ME).serial(sn(20)),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::WbData, L, BANK, ME)
            .serial(sn(20))
            .data(LineData::pristine())
            .dirty(true),
        &mut h.ctx(),
    );
    let first = h.sent_one(MsgType::AckO);
    let t = h.armed(ME, TimeoutKind::LostAckBd).unwrap();
    h.clear();
    c.handle_timeout(TimeoutKind::LostAckBd, L, t.gen, &mut h.ctx());
    let second = h.sent_one(MsgType::AckO);
    assert_ne!(
        second.serial, first.serial,
        "reissued AckO gets a new serial"
    );
    // The matching AckBD closes it.
    c.handle_message(
        Message::new(MsgType::AckBD, L, BANK, ME).serial(second.serial),
        &mut h.ctx(),
    );
    assert!(c.is_idle());
}

#[test]
fn ownership_ping_reports_wbdata_receipt() {
    let mut h = Harness::ft();
    let mut c = mem(true);
    grant_to_l2(&mut c, &mut h, 10);
    c.handle_message(
        Message::new(MsgType::Put, L, BANK, ME).serial(sn(20)),
        &mut h.ctx(),
    );
    h.clear();
    // The WbData has not arrived: NackO (the bank will resend it).
    c.handle_message(
        Message::new(MsgType::OwnershipPing, L, BANK, ME).serial(sn(20)),
        &mut h.ctx(),
    );
    h.sent_one(MsgType::NackO);
    h.clear();
    // After the data arrives: AckO.
    c.handle_message(
        Message::new(MsgType::WbData, L, BANK, ME)
            .serial(sn(20))
            .data(LineData::pristine())
            .dirty(true),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::OwnershipPing, L, BANK, ME).serial(sn(20)),
        &mut h.ctx(),
    );
    h.sent_one(MsgType::AckO);
}

#[test]
fn dircmp_memory_uses_no_timers_or_handshakes() {
    let mut h = Harness::dircmp();
    let mut c = mem(false);
    c.handle_message(
        Message::new(MsgType::GetX, L, BANK, ME).serial(SerialNum::ZERO),
        &mut h.ctx(),
    );
    assert!(h.timeouts.is_empty());
    h.clear();
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, BANK, ME).serial(SerialNum::ZERO),
        &mut h.ctx(),
    );
    h.sent_none(MsgType::AckBD);
    assert!(c.is_chip_owned(L));
    // Writeback without the FT handshake.
    c.handle_message(
        Message::new(MsgType::Put, L, BANK, ME).serial(SerialNum::ZERO),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::WbData, L, BANK, ME)
            .serial(SerialNum::ZERO)
            .data(LineData::pristine())
            .dirty(true),
        &mut h.ctx(),
    );
    h.sent_none(MsgType::AckO);
    assert!(c.is_idle());
}
