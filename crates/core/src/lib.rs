//! # FtDirCMP core: fault-tolerant directory coherence for tiled CMPs
//!
//! This crate implements the system of *"A fault-tolerant directory-based
//! cache coherence protocol for CMP architectures"* (DSN 2008): a 16-tile
//! chip multiprocessor with private L1 caches, a shared distributed L2 that
//! doubles as the directory, memory controllers, and two coherence
//! protocols —
//!
//! * [`config::ProtocolVariant::DirCmp`]: the baseline MOESI directory
//!   protocol, which **deadlocks if the network loses any message**;
//! * [`config::ProtocolVariant::FtDirCmp`]: the paper's fault-tolerant
//!   extension, which guarantees correct execution on a network that drops
//!   messages, using backup copies, ownership acknowledgments, detection
//!   timeouts and request serial numbers.
//!
//! # Quick start
//!
//! ```
//! use ftdircmp_core::{System, SystemConfig};
//! use ftdircmp_core::trace::{CoreTrace, TraceOp, Workload};
//! use ftdircmp_core::ids::Addr;
//!
//! // One core stores a value; another loads it back.
//! let writer = CoreTrace::new(vec![TraceOp::Store(Addr(0x100))]);
//! let reader = CoreTrace::new(vec![TraceOp::Think(500), TraceOp::Load(Addr(0x100))]);
//! let wl = Workload::new("hello", vec![writer, reader]);
//!
//! let report = System::run_workload(SystemConfig::ftdircmp(), &wl)?;
//! assert!(report.violations.is_empty());
//! assert_eq!(report.total_mem_ops, 2);
//! # Ok::<(), ftdircmp_core::system::RunError>(())
//! ```

pub mod cache;
pub mod checker;
pub mod config;
pub mod cpu;
mod data;
pub mod hardware;
pub mod ids;
pub mod l1;
pub mod l2;
mod linetab;
pub mod mem;
pub mod msc;
pub mod msg;
pub mod proto;
mod report;
mod serial;
pub mod stats;
pub mod system;
#[cfg(test)]
mod testharness;
pub mod trace;
pub mod trace_io;
pub mod tracelog;
pub mod transitions;

pub use config::{FtConfig, ProtocolVariant, SystemConfig};
pub use data::LineData;
pub use ids::{Addr, LineAddr, NodeId, SharerSet};
pub use msg::{Message, MsgType};
pub use proto::TimeoutKind;
pub use serial::{SerialAllocator, SerialNum};
pub use stats::ProtocolStats;
pub use system::{FaultEpochReport, RunError, SimReport, StalledCore, System, SystemSnapshot};
pub use trace::{CoreTrace, TraceOp, Workload};
