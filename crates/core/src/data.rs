//! Cache-line data model.
//!
//! The protocols never look inside a line, so data is modeled as a version
//! counter plus provenance. This makes *data loss observable*: if a fault
//! destroyed the only up-to-date copy of a dirty line, a later load would
//! see a stale version and the [`crate::checker`] would flag it.

use crate::ids::NodeId;

/// The contents of one cache line, modeled as a monotone version number.
///
/// Version 0 is the pristine (memory-initialized) content. Every committed
/// store increments the version, so two copies are identical iff their
/// versions match.
///
/// # Example
///
/// ```
/// use ftdircmp_core::{LineData, NodeId};
///
/// let mut d = LineData::pristine();
/// assert_eq!(d.version(), 0);
/// d.write(NodeId::L1(3));
/// assert_eq!(d.version(), 1);
/// assert_eq!(d.last_writer(), Some(NodeId::L1(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineData {
    version: u64,
    last_writer: Option<NodeId>,
}

impl LineData {
    /// The memory-initialized content (version 0, never written).
    pub const fn pristine() -> Self {
        LineData {
            version: 0,
            last_writer: None,
        }
    }

    /// Current version.
    pub const fn version(self) -> u64 {
        self.version
    }

    /// The node whose store produced this version, if any.
    pub const fn last_writer(self) -> Option<NodeId> {
        self.last_writer
    }

    /// Commits a store by `writer`, bumping the version.
    pub fn write(&mut self, writer: NodeId) {
        self.version += 1;
        self.last_writer = Some(writer);
    }
}

impl Default for LineData {
    fn default() -> Self {
        LineData::pristine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_is_version_zero() {
        let d = LineData::pristine();
        assert_eq!(d.version(), 0);
        assert_eq!(d.last_writer(), None);
        assert_eq!(LineData::default(), d);
    }

    #[test]
    fn writes_bump_version_and_record_writer() {
        let mut d = LineData::pristine();
        d.write(NodeId::L1(0));
        d.write(NodeId::L1(1));
        assert_eq!(d.version(), 2);
        assert_eq!(d.last_writer(), Some(NodeId::L1(1)));
    }

    #[test]
    fn copies_compare_by_version() {
        let mut a = LineData::pristine();
        let b = a;
        a.write(NodeId::L1(0));
        assert_ne!(a, b);
    }
}
