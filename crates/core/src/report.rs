//! Human-readable rendering of simulation reports.

use ftdircmp_noc::VcClass;
use ftdircmp_stats::table::Table;

use crate::msg::MsgType;
use crate::proto::TimeoutKind;
use crate::system::SimReport;

impl SimReport {
    /// Renders a full text summary of the run: headline numbers, traffic by
    /// class and type, miss behaviour and fault-tolerance activity.
    ///
    /// # Example
    ///
    /// ```
    /// use ftdircmp_core::{System, SystemConfig};
    /// use ftdircmp_core::trace::{CoreTrace, TraceOp, Workload};
    /// use ftdircmp_core::ids::Addr;
    ///
    /// let wl = Workload::new("t", vec![CoreTrace::new(vec![TraceOp::Store(Addr(64))])]);
    /// let report = System::run_workload(SystemConfig::ftdircmp(), &wl)?;
    /// let text = report.render_summary();
    /// assert!(text.contains("execution time"));
    /// # Ok::<(), ftdircmp_core::system::RunError>(())
    /// ```
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run: {} under {} — {} cycles, {} ops ({} memory)\n",
            self.workload, self.protocol, self.cycles, self.total_ops, self.total_mem_ops
        ));
        out.push_str(&format!(
            "execution time: {} cycles   network: {} messages / {} bytes ({} lost to faults)\n",
            self.cycles,
            self.stats.total_messages(),
            self.stats.total_bytes(),
            self.messages_lost
        ));
        out.push_str(&format!(
            "L1: {} hits / {} misses (miss rate {:.1}%)   L2: {} hits / {} misses\n",
            self.stats.l1_load_hits.get() + self.stats.l1_store_hits.get(),
            self.stats.l1_misses(),
            ftdircmp_stats::percent(self.stats.l1_misses(), self.stats.l1_accesses()),
            self.stats.l2_hits.get(),
            self.stats.l2_misses.get(),
        ));
        if self.stats.miss_latency.count() > 0 {
            out.push_str(&format!(
                "miss latency: mean {:.0}, p50 {}, p99 {}, max {} cycles\n",
                self.stats.miss_latency.mean(),
                self.stats.miss_latency.percentile(50.0).unwrap_or(0),
                self.stats.miss_latency.percentile(99.0).unwrap_or(0),
                self.stats.miss_latency.max().unwrap_or(0),
            ));
        }
        out.push_str(&format!(
            "network links: busiest {:.1}% utilized, mean {:.1}%\n",
            100.0 * self.max_link_utilization,
            100.0 * self.mean_link_utilization,
        ));
        out.push_str(&format!(
            "writebacks: {} L1, {} L2   recalls: {}   migratory grants: {}\n",
            self.stats.l1_writebacks.get(),
            self.stats.l2_writebacks.get(),
            self.stats.recalls.get(),
            self.stats.migratory_grants.get(),
        ));

        // Fault-tolerance activity.
        if self.protocol.is_fault_tolerant() {
            let timeouts: Vec<String> = TimeoutKind::ALL
                .iter()
                .filter(|k| self.stats.timeouts(**k) > 0)
                .map(|k| format!("{}={}", k.label(), self.stats.timeouts(*k)))
                .collect();
            out.push_str(&format!(
                "fault tolerance: {} reissues, {} stale discards, {} false positives, timeouts [{}]\n",
                self.stats.reissues.get(),
                self.stats.stale_discards.get(),
                self.stats.false_positives.get(),
                timeouts.join(", "),
            ));
        }

        // Correlated fault-domain drops and recovery telemetry.
        let domain_drops =
            self.noc.link_down_drops() + self.noc.channel_drops() + self.noc.unroutable_drops();
        if domain_drops > 0 {
            out.push_str(&format!(
                "fault domains: {} link-down, {} channel, {} unroutable drops\n",
                self.noc.link_down_drops(),
                self.noc.channel_drops(),
                self.noc.unroutable_drops(),
            ));
        }
        if !self.fault_epochs.is_empty() {
            let mut t = Table::with_columns(&[
                "fault epoch",
                "lost",
                "timeouts",
                "reissues",
                "pings",
                "ops",
                "recovery",
            ]);
            for e in &self.fault_epochs {
                t.row(vec![
                    e.label.clone(),
                    e.messages_lost.to_string(),
                    e.timeouts_fired.to_string(),
                    e.reissues.to_string(),
                    e.pings_sent.to_string(),
                    e.mem_ops_retired.to_string(),
                    e.time_to_recover()
                        .map_or_else(|| "never".into(), |t| format!("{t} cycles")),
                ]);
            }
            out.push('\n');
            out.push_str(&t.render());
        }

        // Traffic by class.
        let mut t = Table::with_columns(&["class", "messages", "bytes"]);
        for class in VcClass::ALL {
            let m = self.stats.messages_by_class(class);
            if m > 0 {
                t.row(vec![
                    class.label().into(),
                    m.to_string(),
                    self.stats.bytes_by_class(class).to_string(),
                ]);
            }
        }
        out.push('\n');
        out.push_str(&t.render());

        // Non-zero message types.
        let mut t = Table::with_columns(&["message", "count", "bytes"]);
        for mtype in MsgType::ALL {
            let n = self.stats.messages(mtype);
            if n > 0 {
                t.row(vec![
                    mtype.name().into(),
                    n.to_string(),
                    self.stats.bytes(mtype).to_string(),
                ]);
            }
        }
        out.push('\n');
        out.push_str(&t.render());

        if !self.violations.is_empty() {
            out.push_str(&format!(
                "\nINVARIANT VIOLATIONS ({}):\n",
                self.violations.len()
            ));
            for v in &self.violations {
                out.push_str(&format!("  {v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SystemConfig;
    use crate::ids::Addr;
    use crate::system::System;
    use crate::trace::{CoreTrace, TraceOp, Workload};

    fn report() -> crate::system::SimReport {
        let wl = Workload::new(
            "render",
            vec![
                CoreTrace::new(vec![TraceOp::Store(Addr(64)), TraceOp::Load(Addr(128))]),
                CoreTrace::new(vec![TraceOp::Think(500), TraceOp::Load(Addr(64))]),
            ],
        );
        System::run_workload(SystemConfig::ftdircmp(), &wl).unwrap()
    }

    #[test]
    fn summary_contains_headline_sections() {
        let text = report().render_summary();
        for needle in [
            "execution time",
            "L1:",
            "miss latency",
            "fault tolerance",
            "class",
            "GetS",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(!text.contains("VIOLATIONS"));
    }

    #[test]
    fn dircmp_summary_omits_ft_section() {
        let wl = Workload::new(
            "render",
            vec![CoreTrace::new(vec![TraceOp::Store(Addr(64))])],
        );
        let r = System::run_workload(SystemConfig::dircmp(), &wl).unwrap();
        assert!(!r.render_summary().contains("fault tolerance:"));
    }
}
