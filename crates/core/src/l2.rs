//! The L2 bank controller: shared cache bank + on-chip directory.
//!
//! Each bank is the *home* for a slice of the address space and acts as the
//! directory for the L1 caches (paper §2): per-line busy states serialize
//! transactions, three-phase writebacks coordinate evictions, and the
//! migratory-sharing optimization converts read requests to migratory lines
//! into exclusive grants.
//!
//! Under FtDirCMP the bank additionally implements the §3.1.1 relaxation:
//! data arriving from memory is forwarded to the requesting L1 immediately,
//! with the bank keeping a backup and the line marked *internally* blocked
//! (L1-facing handshake pending) and *externally* blocked (memory-facing
//! handshake pending) — so L2 misses see no added latency, yet at most one
//! backup exists outside the chip.

use std::collections::VecDeque;

use ftdircmp_sim::DetRng;

use crate::cache::SetAssocCache;
use crate::config::SystemConfig;
use crate::data::LineData;
use crate::ids::{LineAddr, NodeId, SharerSet};
use crate::linetab::LineTable;
use crate::msg::{Message, MsgType};
use crate::proto::{backoff_delay, Ctx, Facets, TimeoutKind};
use crate::serial::{SerialAllocator, SerialNum};

/// Directory + data state of one line resident in this bank.
#[derive(Debug, Clone)]
struct L2Line {
    /// Data held by the bank (`None` while an L1 owns the line).
    data: Option<LineData>,
    /// Bank data differs from memory.
    dirty: bool,
    /// L1 tile currently owning the line (M/E/O), if any.
    owner: Option<u8>,
    /// L1 tiles holding shared copies (may overapproximate: S evictions are
    /// silent).
    sharers: SharerSet,
    /// Migratory-sharing bit (paper §2).
    migratory: bool,
    /// Most recent requester, for migratory detection.
    last_getter: Option<u8>,
    /// Whether the most recent request was a GetS.
    last_was_gets: bool,
    /// Consecutive GetS transactions (≥2 clears the migratory bit).
    consecutive_gets: u8,
    /// FtDirCMP: externally blocked — the memory-side backup handshake is
    /// pending, so this line must not be written back or evicted (§3.1.1).
    ext_blocked: bool,
}

impl L2Line {
    fn fresh() -> Self {
        L2Line {
            data: None,
            dirty: false,
            owner: None,
            sharers: SharerSet::new(),
            migratory: false,
            last_getter: None,
            last_was_gets: false,
            consecutive_gets: 0,
            ext_blocked: false,
        }
    }
}

/// What the bank last sent for the active transaction — kept so a reissued
/// request can be answered by resending it (§3.2).
#[derive(Debug, Clone)]
enum Resp {
    Data {
        data: LineData,
    },
    DataEx {
        data: Option<LineData>,
        dirty: bool,
        acks: u8,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TbeKind {
    /// An L1 miss (GetS or GetX) being serviced.
    Miss { store: bool },
    /// A three-phase writeback from an L1.
    Wb,
    /// Directory-initiated recall of a line with L1 copies (bank eviction).
    Recall,
    /// Bank eviction writeback to memory.
    L2Evict,
}

#[allow(clippy::enum_variant_names)] // Wait* mirrors the protocol's terminology
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Fill: GetX sent to memory, waiting for DataEx.
    WaitMem,
    /// Response or forward sent, waiting for Unblock/UnblockEx.
    WaitUnblock,
    /// WbAck sent, waiting for WbData/WbNoData.
    WaitWbData,
    /// FT: AckO sent for received WbData, waiting for AckBD.
    WaitWbAckBd,
    /// Recall in progress (data and/or invalidation acks outstanding).
    WaitRecall,
    /// FT: recall data received, AckO sent, waiting for AckBD.
    WaitRecallAckBd,
    /// Bank eviction: Put sent to memory, waiting for WbAck.
    WaitMemWbAck,
}

/// Per-line transaction state (the paper's MSHR/TBE at the directory, which
/// also remembers the *blocker* so reissued requests can be recognized).
#[derive(Debug, Clone)]
struct Tbe {
    kind: TbeKind,
    stage: Stage,
    blocker: NodeId,
    serial: SerialNum,
    own_serial: SerialNum,
    inv_targets: Vec<u8>,
    fwd_to: Option<u8>,
    fwd_gets: bool,
    resp: Option<Resp>,
    /// Fill: data received from memory. Recall/evict: data being saved.
    data: Option<LineData>,
    data_dirty: bool,
    /// Recall: sharers whose invalidation acks are still outstanding.
    recall_acks: SharerSet,
    /// Recall: waiting for the owner's data.
    recall_needs_data: bool,
    /// This transaction was filled from memory (FT: run the §3.1.1 external
    /// handshake after the L1 unblocks).
    from_mem: bool,
    /// The bank sent data itself and (FT) holds it as backup until AckO.
    sent_data_backup: bool,
    unblock_gen: u64,
    unblock_retries: u32,
    req_gen: u64,
    req_retries: u32,
    ackbd_gen: u64,
    ackbd_retries: u32,
    acko_serial: SerialNum,
}

impl Tbe {
    fn new(kind: TbeKind, blocker: NodeId, serial: SerialNum) -> Self {
        Tbe {
            kind,
            stage: Stage::WaitUnblock,
            blocker,
            serial,
            own_serial: SerialNum::ZERO,
            inv_targets: Vec::new(),
            fwd_to: None,
            fwd_gets: false,
            resp: None,
            data: None,
            data_dirty: false,
            recall_acks: SharerSet::new(),
            recall_needs_data: false,
            from_mem: false,
            sent_data_backup: false,
            unblock_gen: 0,
            unblock_retries: 0,
            req_gen: 0,
            req_retries: 0,
            ackbd_gen: 0,
            ackbd_retries: 0,
            acko_serial: SerialNum::ZERO,
        }
    }
}

/// FT: memory-facing ownership handshake pending after a fill (§3.1.1).
#[derive(Debug, Clone)]
struct ExtPending {
    serial: SerialNum,
    retries: u32,
    gen: u64,
}

/// FT: backup of data written back to memory, held until memory's AckO.
#[derive(Debug, Clone)]
struct MemBackup {
    data: LineData,
    serial: SerialNum,
    retries: u32,
    gen: u64,
}

/// Every in-flight facet of one line at this bank, held together in one
/// [`LineTable`] slot so a message handler resolves all of them with a
/// single lookup. The deferred-request queue keeps its buffer across
/// drain/refill cycles instead of being dropped when it empties.
#[derive(Debug, Clone, Default)]
struct L2LineState {
    tbe: Option<Tbe>,
    waiting: VecDeque<Message>,
    ext_pending: Option<ExtPending>,
    mem_backup: Option<MemBackup>,
}

/// The L2 bank controller for one tile.
#[derive(Debug, Clone)]
pub struct L2Controller {
    tile: u8,
    me: NodeId,
    ft: bool,
    cache: SetAssocCache<L2Line>,
    lines: LineTable<L2LineState>,
    /// Number of slots currently holding a TBE (occupancy statistics).
    tbe_count: usize,
    serials: SerialAllocator,
    gen_counter: u64,
}

impl L2Controller {
    /// Creates the bank controller for `tile`.
    pub fn new(tile: u8, config: &SystemConfig, rng: &mut DetRng) -> Self {
        L2Controller {
            tile,
            me: NodeId::L2(tile),
            ft: config.protocol.is_fault_tolerant(),
            cache: SetAssocCache::new(config.l2_sets(), config.l2_assoc),
            lines: LineTable::new(),
            tbe_count: 0,
            serials: SerialAllocator::new(config.ft.serial_bits, rng),
            gen_counter: 0,
        }
    }

    /// This controller's node id.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Tile index of this bank.
    pub fn tile(&self) -> u8 {
        self.tile
    }

    /// Whether no transactions or handshakes are in flight.
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.tbe_count,
            self.lines.iter().filter(|(_, st)| st.tbe.is_some()).count()
        );
        self.lines.iter().all(|(_, st)| {
            st.tbe.is_none()
                && st.ext_pending.is_none()
                && st.mem_backup.is_none()
                && st.waiting.is_empty()
        })
    }

    /// Peak overflow-buffer occupancy (diagnostics).
    pub fn overflow_peak(&self) -> usize {
        self.cache.overflow_peak()
    }

    /// Human-readable summary of in-flight state (deadlock diagnostics).
    pub fn pending_summary(&self) -> String {
        let mut out = String::new();
        for (a, st) in self.lines.iter() {
            if let Some(t) = &st.tbe {
                out.push_str(&format!(
                    "{} tbe {a} kind={:?} stage={:?} blocker={} serial={} own={} recall_acks={} needs_data={}\n",
                    self.me, t.kind, t.stage, t.blocker, t.serial, t.own_serial, t.recall_acks, t.recall_needs_data
                ));
            }
        }
        for (a, st) in self.lines.iter() {
            if !st.waiting.is_empty() {
                let kinds: Vec<String> = st
                    .waiting
                    .iter()
                    .map(|m| format!("{}:{}", m.src, m.mtype))
                    .collect();
                out.push_str(&format!("{} waiting {a} [{}]\n", self.me, kinds.join(", ")));
            }
        }
        for (a, st) in self.lines.iter() {
            if let Some(e) = &st.ext_pending {
                out.push_str(&format!(
                    "{} ext-pending {a} serial={}\n",
                    self.me, e.serial
                ));
            }
        }
        for (a, st) in self.lines.iter() {
            if let Some(b) = &st.mem_backup {
                out.push_str(&format!("{} mem-backup {a} serial={}\n", self.me, b.serial));
            }
        }
        out
    }

    fn next_gen(&mut self) -> u64 {
        self.gen_counter += 1;
        self.gen_counter
    }

    fn mem_of(&self, addr: LineAddr, config: &SystemConfig) -> NodeId {
        NodeId::Mem(addr.home_mem(config.mem_controllers))
    }

    fn fresh_serial(&mut self) -> SerialNum {
        if self.ft {
            self.serials.fresh()
        } else {
            SerialNum::ZERO
        }
    }

    /// Stores `tbe` in the line's slot; the line must not already have one.
    fn set_tbe(&mut self, addr: LineAddr, tbe: Tbe) {
        let slot = &mut self.lines.entry(addr).tbe;
        debug_assert!(slot.is_none(), "tbe already present");
        *slot = Some(tbe);
        self.tbe_count += 1;
    }

    /// Removes and returns the line's TBE, if any.
    fn take_tbe(&mut self, addr: LineAddr) -> Option<Tbe> {
        let t = self.lines.get_mut(addr).and_then(|s| s.tbe.take());
        if t.is_some() {
            self.tbe_count -= 1;
        }
        t
    }

    // ------------------------------------------------------------------
    // Entry points
    // ------------------------------------------------------------------

    /// The line's current facet configuration, in the state vocabulary of
    /// the reified transition table ([`crate::transitions::l2_table`]).
    /// The first entry is always the mandatory `Line` facet.
    pub fn table_facets(&self, addr: LineAddr) -> Facets {
        let mut f = Facets::new();
        f.push(match self.cache.get(addr) {
            None => "NP",
            Some(line) if line.owner.is_some() => "MT",
            Some(_) => "RO",
        });
        if let Some(st) = self.lines.get(addr) {
            if let Some(tbe) = &st.tbe {
                f.push(match tbe.stage {
                    Stage::WaitMem => "WaitMem",
                    Stage::WaitUnblock => "WaitUnblock",
                    Stage::WaitWbData => "WaitWbData",
                    Stage::WaitWbAckBd => "WaitWbAckBd",
                    Stage::WaitRecall => "WaitRecall",
                    Stage::WaitRecallAckBd => "WaitRecallAckBd",
                    Stage::WaitMemWbAck => "WaitMemWbAck",
                });
            }
            if st.ext_pending.is_some() {
                f.push("EXT");
            }
            if st.mem_backup.is_some() {
                f.push("MB");
            }
        }
        f
    }

    /// Cross-checks an incoming message against the reified transition
    /// table (guards are not evaluated — this is an over-approximation).
    /// Only active while the invariant checker is enabled, keeping the
    /// campaign hot path untouched.
    fn table_check(&self, msg: &Message, ctx: &mut Ctx<'_>) {
        if !ctx.checker.is_enabled() {
            return;
        }
        let facets = self.table_facets(msg.addr);
        if !crate::transitions::l2_table().legal_message(&facets, msg.mtype) {
            ctx.checker.protocol_error(
                self.me,
                msg.addr,
                &format!("unexpected {} in state {}", msg.mtype, facets.join("+")),
                ctx.now,
            );
        }
    }

    /// Handles an incoming network message.
    pub fn handle_message(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        self.table_check(&msg, ctx);
        match msg.mtype {
            MsgType::GetS | MsgType::GetX | MsgType::Put => self.on_request(msg, ctx),
            MsgType::Unblock | MsgType::UnblockEx => self.on_unblock(msg, ctx),
            MsgType::WbData | MsgType::WbNoData | MsgType::WbCancel => self.on_wb_data(msg, ctx),
            MsgType::Data | MsgType::DataEx => self.on_data(msg, ctx),
            MsgType::Ack => self.on_ack(msg, ctx),
            MsgType::WbAck => self.on_mem_wback(msg, ctx),
            MsgType::AckO => self.on_acko(msg, ctx),
            MsgType::AckBD => self.on_ackbd(msg, ctx),
            MsgType::UnblockPing => self.on_unblock_ping(msg, ctx),
            MsgType::WbPing => self.on_wb_ping(msg, ctx),
            MsgType::OwnershipPing => self.on_ownership_ping(msg, ctx),
            MsgType::NackO => self.on_nacko(msg, ctx),
            MsgType::Inv | MsgType::FwdGetS | MsgType::FwdGetX => {
                // Misrouted: no L2 handler. `table_check` above recorded the
                // protocol violation; drop the message instead of panicking.
            }
        }
    }

    /// Handles a fired timeout; stale generations are ignored.
    pub fn handle_timeout(
        &mut self,
        kind: TimeoutKind,
        addr: LineAddr,
        gen: u64,
        ctx: &mut Ctx<'_>,
    ) {
        match kind {
            TimeoutKind::LostUnblock => self.on_lost_unblock(addr, gen, ctx),
            TimeoutKind::LostRequest => self.on_lost_request(addr, gen, ctx),
            TimeoutKind::LostAckBd => self.on_lost_ackbd(addr, gen, ctx),
            TimeoutKind::LostData => self.on_lost_data(addr, gen, ctx),
        }
    }

    // ------------------------------------------------------------------
    // Request admission (busy lines, reissue detection, queuing)
    // ------------------------------------------------------------------

    fn on_request(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        if let Some(st) = self.lines.get_mut(msg.addr) {
            if let Some(tbe) = &st.tbe {
                // A message is a *reissue* of the in-service transaction only if
                // it comes from the blocker AND is the same kind of request
                // (§3.2: "same requestor and address ... but a different request
                // serial number"). A different kind from the same node is a new
                // transaction (e.g. a GetX issued right after a GetS whose
                // unblock is still in flight) and must be deferred like any
                // other.
                let same_kind = match tbe.kind {
                    TbeKind::Miss { store } => {
                        msg.mtype == if store { MsgType::GetX } else { MsgType::GetS }
                    }
                    TbeKind::Wb => msg.mtype == MsgType::Put,
                    TbeKind::Recall | TbeKind::L2Evict => false,
                };
                if tbe.blocker == msg.src && same_kind {
                    if self.ft && tbe.serial != msg.serial {
                        // A reissued request from the current blocker (§3.2):
                        // adopt the new serial and repeat the service action.
                        self.on_reissue(msg, ctx);
                    } // else: duplicate of the in-service request; ignore.
                    return;
                }
                // Busy with another requester: defer (per-line busy states, §2).
                if let Some(existing) = st
                    .waiting
                    .iter_mut()
                    .find(|m| m.src == msg.src && m.mtype == msg.mtype)
                {
                    // Reissue of a queued request: refresh its serial.
                    existing.serial = msg.serial;
                } else {
                    st.waiting.push_back(msg);
                    ctx.stats.deferred_requests.incr();
                }
                return;
            }
        }
        self.service_request(msg, ctx);
    }

    fn on_reissue(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        ctx.stats.false_positives.incr();
        let Some(tbe) = self.lines.get_mut(msg.addr).and_then(|s| s.tbe.as_mut()) else {
            return;
        };
        tbe.serial = msg.serial;
        let serial = msg.serial;
        let addr = msg.addr;
        let requester = msg.src;
        match tbe.stage {
            Stage::WaitMem => {
                // The response will be generated when memory answers; it
                // will carry the updated serial.
            }
            Stage::WaitUnblock => {
                // Resend invalidations (sharers will re-ack with the new
                // serial; the requester discards old-serial acks).
                for t in &tbe.inv_targets {
                    ctx.send(
                        Message::new(MsgType::Inv, addr, self.me, NodeId::L1(*t))
                            .requester(requester)
                            .serial(serial),
                        ctx.config.l2_tag_cycles,
                    );
                }
                if let Some(owner) = tbe.fwd_to {
                    let fwd = if tbe.fwd_gets {
                        MsgType::FwdGetS
                    } else {
                        MsgType::FwdGetX
                    };
                    ctx.send(
                        Message::new(fwd, addr, self.me, NodeId::L1(owner))
                            .requester(requester)
                            .serial(serial)
                            .acks(tbe.inv_targets.len() as u8),
                        ctx.config.l2_tag_cycles,
                    );
                } else if let Some(resp) = &tbe.resp {
                    Self::send_resp(self.me, addr, requester, serial, resp, ctx);
                }
            }
            Stage::WaitWbData => {
                let mut wback =
                    Message::new(MsgType::WbAck, addr, self.me, requester).serial(serial);
                wback.wb_wants_data = true;
                ctx.send(wback, ctx.config.l2_tag_cycles);
            }
            _ => {}
        }
    }

    fn send_resp(
        me: NodeId,
        addr: LineAddr,
        requester: NodeId,
        serial: SerialNum,
        resp: &Resp,
        ctx: &mut Ctx<'_>,
    ) {
        match resp {
            Resp::Data { data } => {
                ctx.send(
                    Message::new(MsgType::Data, addr, me, requester)
                        .requester(requester)
                        .serial(serial)
                        .data(*data),
                    ctx.config.l2_hit_cycles,
                );
            }
            Resp::DataEx { data, dirty, acks } => {
                let mut m = Message::new(MsgType::DataEx, addr, me, requester)
                    .requester(requester)
                    .serial(serial)
                    .acks(*acks);
                if let Some(d) = data {
                    m = m.data(*d).dirty(*dirty);
                }
                ctx.send(m, ctx.config.l2_hit_cycles);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fresh request servicing
    // ------------------------------------------------------------------

    fn service_request(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        ctx.stats.l2_tbe_occupancy.record(self.tbe_count as u64 + 1);
        match msg.mtype {
            MsgType::GetS | MsgType::GetX => self.service_get(msg, ctx),
            MsgType::Put => self.service_put(msg, ctx),
            other => {
                ctx.checker.protocol_error(
                    self.me,
                    msg.addr,
                    &format!("{other} reached request servicing"),
                    ctx.now,
                );
            }
        }
    }

    fn service_get(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let store = msg.mtype == MsgType::GetX;
        let requester_tile = msg.src.index();
        let addr = msg.addr;

        let Some(line) = self.cache.get_mut(addr) else {
            // L2 miss: fill from memory (always granted exclusively; this
            // bank is the only L2-level requester for its slice).
            ctx.stats.l2_misses.incr();
            let mut tbe = Tbe::new(TbeKind::Miss { store }, msg.src, msg.serial);
            tbe.stage = Stage::WaitMem;
            tbe.own_serial = self.fresh_serial();
            let own_serial = tbe.own_serial;
            if self.ft {
                tbe.req_gen = self.next_gen();
                let gen = tbe.req_gen;
                ctx.arm_timeout(
                    self.me,
                    addr,
                    TimeoutKind::LostRequest,
                    gen,
                    ctx.config.ft.lost_request_timeout,
                );
            }
            self.set_tbe(addr, tbe);
            let mem = self.mem_of(addr, ctx.config);
            ctx.send(
                Message::new(MsgType::GetX, addr, self.me, mem).serial(own_serial),
                ctx.config.l2_tag_cycles,
            );
            return;
        };

        ctx.stats.l2_hits.incr();

        // Migratory-sharing bookkeeping (paper §2).
        let migratory_grant = if store {
            if ctx.config.migratory_sharing
                && line.last_getter == Some(requester_tile)
                && line.last_was_gets
            {
                line.migratory = true;
            }
            line.consecutive_gets = 0;
            line.last_getter = Some(requester_tile);
            line.last_was_gets = false;
            false
        } else {
            line.consecutive_gets = line.consecutive_gets.saturating_add(1);
            if line.consecutive_gets >= 2 {
                line.migratory = false;
            }
            line.last_getter = Some(requester_tile);
            line.last_was_gets = true;
            line.migratory && line.owner.is_some() && line.sharers.is_empty()
        };
        if migratory_grant {
            ctx.stats.migratory_grants.incr();
        }
        let exclusive = store || migratory_grant;

        let mut tbe = Tbe::new(TbeKind::Miss { store }, msg.src, msg.serial);

        if let Some(owner) = line.owner {
            if store && owner == requester_tile {
                // Upgrade by the current (O-state) owner: permission plus
                // ack count, no data (the owner already has it).
                let invs: Vec<u8> = line
                    .sharers
                    .iter()
                    .filter(|t| *t != requester_tile)
                    .collect();
                let resp = Resp::DataEx {
                    data: None,
                    dirty: false,
                    acks: invs.len() as u8,
                };
                Self::send_resp(self.me, addr, msg.src, msg.serial, &resp, ctx);
                self.send_invs(addr, &invs, msg.src, msg.serial, ctx);
                tbe.resp = Some(resp);
                tbe.inv_targets = invs;
            } else {
                // Forward to the L1 owner.
                let invs: Vec<u8> = if exclusive {
                    line.sharers
                        .iter()
                        .filter(|t| *t != requester_tile)
                        .collect()
                } else {
                    Vec::new()
                };
                let fwd = if exclusive {
                    MsgType::FwdGetX
                } else {
                    MsgType::FwdGetS
                };
                ctx.send(
                    Message::new(fwd, addr, self.me, NodeId::L1(owner))
                        .requester(msg.src)
                        .serial(msg.serial)
                        .acks(invs.len() as u8),
                    ctx.config.l2_tag_cycles,
                );
                self.send_invs(addr, &invs, msg.src, msg.serial, ctx);
                tbe.fwd_to = Some(owner);
                tbe.fwd_gets = !exclusive;
                tbe.inv_targets = invs;
            }
        } else {
            // The bank itself owns the data.
            let data = line
                .data
                .expect("resident line without owner must hold data");
            let dirty = line.dirty;
            if exclusive || line.sharers.is_empty() {
                // Exclusive grant (GetX, migratory GetS, or GetS with no
                // sharers → E).
                let invs: Vec<u8> = line
                    .sharers
                    .iter()
                    .filter(|t| *t != requester_tile)
                    .collect();
                let resp = Resp::DataEx {
                    data: Some(data),
                    dirty,
                    acks: invs.len() as u8,
                };
                Self::send_resp(self.me, addr, msg.src, msg.serial, &resp, ctx);
                self.send_invs(addr, &invs, msg.src, msg.serial, ctx);
                tbe.resp = Some(resp);
                tbe.inv_targets = invs;
                tbe.sent_data_backup = true;
            } else {
                let resp = Resp::Data { data };
                Self::send_resp(self.me, addr, msg.src, msg.serial, &resp, ctx);
                tbe.resp = Some(resp);
            }
        }

        tbe.stage = Stage::WaitUnblock;
        self.arm_unblock(&mut tbe, addr, ctx);
        self.set_tbe(addr, tbe);
    }

    fn send_invs(
        &self,
        addr: LineAddr,
        targets: &[u8],
        requester: NodeId,
        serial: SerialNum,
        ctx: &mut Ctx<'_>,
    ) {
        for t in targets {
            ctx.send(
                Message::new(MsgType::Inv, addr, self.me, NodeId::L1(*t))
                    .requester(requester)
                    .serial(serial),
                ctx.config.l2_tag_cycles,
            );
        }
    }

    fn arm_unblock(&mut self, tbe: &mut Tbe, addr: LineAddr, ctx: &mut Ctx<'_>) {
        if !self.ft {
            return;
        }
        self.gen_counter += 1;
        tbe.unblock_gen = self.gen_counter;
        ctx.arm_timeout(
            self.me,
            addr,
            TimeoutKind::LostUnblock,
            tbe.unblock_gen,
            ctx.config.ft.lost_unblock_timeout,
        );
    }

    fn service_put(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let addr = msg.addr;
        let requester_tile = msg.src.index();
        let is_owner = self
            .cache
            .get(addr)
            .is_some_and(|l| l.owner == Some(requester_tile));
        if !is_owner {
            // Stale Put: ownership already moved (raced with a forward).
            let mut wback = Message::new(MsgType::WbAck, addr, self.me, msg.src).serial(msg.serial);
            wback.wb_stale = true;
            ctx.send(wback, ctx.config.l2_tag_cycles);
            return;
        }
        let mut tbe = Tbe::new(TbeKind::Wb, msg.src, msg.serial);
        tbe.stage = Stage::WaitWbData;
        self.arm_unblock(&mut tbe, addr, ctx);
        self.set_tbe(addr, tbe);
        let mut wback = Message::new(MsgType::WbAck, addr, self.me, msg.src).serial(msg.serial);
        wback.wb_wants_data = true;
        ctx.send(wback, ctx.config.l2_tag_cycles);
    }

    // ------------------------------------------------------------------
    // Unblocks and writeback data
    // ------------------------------------------------------------------

    fn on_unblock(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let addr = msg.addr;
        let tbe_ref = self.lines.get(addr).and_then(|s| s.tbe.as_ref());
        let stale = match tbe_ref {
            None => true,
            Some(tbe) => {
                tbe.stage != Stage::WaitUnblock
                    || tbe.blocker != msg.src
                    || (self.ft && tbe.serial != msg.serial)
            }
        };
        let wrong_kind = matches!(tbe_ref.map(|t| t.kind), Some(TbeKind::Miss { store: true }))
            && msg.mtype == MsgType::Unblock;
        if stale || wrong_kind {
            // A duplicate/stale unblock; still answer a piggybacked AckO so
            // the sender's blocked-ownership state can always drain (§3.4
            // idempotence). A plain Unblock can also never complete a GetX
            // transaction (it would record a sharer where an owner is
            // required) — only a crossing stale ping-reply can produce one.
            if msg.piggy_acko {
                ctx.send(
                    Message::new(MsgType::AckBD, addr, self.me, msg.src).serial(msg.serial),
                    ctx.config.l2_tag_cycles,
                );
            }
            ctx.stats.stale_discards.incr();
            return;
        }
        let tbe = self.take_tbe(addr).expect("checked above");
        let requester_tile = msg.src.index();

        // Update the directory.
        {
            let line = self
                .cache
                .get_mut(addr)
                .expect("unblocked line must be resident");
            if msg.mtype == MsgType::UnblockEx {
                line.owner = Some(requester_tile);
                line.sharers.clear();
                // Any bank copy is now stale (or was handed over).
                line.data = None;
                line.dirty = false;
            } else {
                line.sharers.insert(requester_tile);
            }
        }

        // FT: L1-facing ownership handshake (AckO piggybacked, §3.1).
        if self.ft && msg.piggy_acko {
            ctx.send(
                Message::new(MsgType::AckBD, addr, self.me, msg.src).serial(msg.serial),
                ctx.config.l2_tag_cycles,
            );
            if tbe.sent_data_backup {
                ctx.checker.backup_deleted(self.me, addr, ctx.now);
            }
        }

        // FT §3.1.1: the fill's memory-facing handshake starts now.
        if tbe.from_mem {
            let mem = self.mem_of(addr, ctx.config);
            if self.ft {
                let gen = self.next_gen();
                self.lines.entry(addr).ext_pending = Some(ExtPending {
                    serial: tbe.own_serial,
                    retries: 0,
                    gen,
                });
                if let Some(line) = self.cache.get_mut(addr) {
                    line.ext_blocked = true;
                }
                ctx.send(
                    Message::new(MsgType::UnblockEx, addr, self.me, mem)
                        .serial(tbe.own_serial)
                        .with_acko(),
                    ctx.config.l2_tag_cycles,
                );
                ctx.arm_timeout(
                    self.me,
                    addr,
                    TimeoutKind::LostAckBd,
                    gen,
                    ctx.config.ft.lost_ackbd_timeout,
                );
            }
            // (DirCMP sends its unblock to memory as soon as the data
            // arrives; see on_data.)
        }

        self.pump_waiting(addr, ctx);
    }

    fn on_wb_data(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let addr = msg.addr;
        let Some(tbe) = self.lines.get(addr).and_then(|s| s.tbe.as_ref()) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if tbe.kind != TbeKind::Wb
            || tbe.stage != Stage::WaitWbData
            || tbe.blocker != msg.src
            || (self.ft && tbe.serial != msg.serial)
        {
            ctx.stats.stale_discards.incr();
            return;
        }
        let mut tbe = self.take_tbe(addr).expect("checked above");

        match msg.mtype {
            MsgType::WbData => {
                {
                    let line = self
                        .cache
                        .get_mut(addr)
                        .expect("writeback line must be resident");
                    line.data = Some(msg.data.expect("WbData carries data"));
                    line.dirty = msg.data_dirty || line.dirty;
                    line.owner = None;
                }
                if self.ft {
                    // The bank is the new owner: acknowledge ownership and
                    // stay blocked until the backup is deleted (§3.1).
                    tbe.stage = Stage::WaitWbAckBd;
                    tbe.acko_serial = msg.serial;
                    self.gen_counter += 1;
                    tbe.ackbd_gen = self.gen_counter;
                    let gen = tbe.ackbd_gen;
                    ctx.send(
                        Message::new(MsgType::AckO, addr, self.me, msg.src).serial(msg.serial),
                        ctx.config.l2_tag_cycles,
                    );
                    ctx.arm_timeout(
                        self.me,
                        addr,
                        TimeoutKind::LostAckBd,
                        gen,
                        ctx.config.ft.lost_ackbd_timeout,
                    );
                    self.set_tbe(addr, tbe);
                    return;
                }
            }
            MsgType::WbNoData | MsgType::WbCancel => {
                let remove = {
                    let line = self
                        .cache
                        .get_mut(addr)
                        .expect("writeback line must be resident");
                    line.owner = None;
                    line.data.is_none() && line.sharers.is_empty()
                };
                if remove {
                    // Clean line with no copies anywhere on chip: memory is
                    // the owner again.
                    self.cache.remove(addr);
                }
            }
            other => {
                // Only writeback-data messages are dispatched here; anything
                // else is a protocol error, not a panic.
                ctx.checker.protocol_error(
                    self.me,
                    addr,
                    &format!("{other} reached writeback-data handling"),
                    ctx.now,
                );
                self.set_tbe(addr, tbe);
                return;
            }
        }
        self.pump_waiting(addr, ctx);
    }

    // ------------------------------------------------------------------
    // Memory-facing handlers
    // ------------------------------------------------------------------

    fn on_data(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        // DataEx from memory (fill) or from an L1 owner (recall).
        let addr = msg.addr;
        let Some(tbe) = self.lines.get_mut(addr).and_then(|s| s.tbe.as_mut()) else {
            ctx.stats.stale_discards.incr();
            ctx.stats.false_positives.incr();
            return;
        };
        match tbe.stage {
            Stage::WaitMem => {
                if self.ft && tbe.own_serial != msg.serial {
                    ctx.stats.stale_discards.incr();
                    return;
                }
                let data = msg.data.expect("memory fill carries data");
                tbe.stage = Stage::WaitUnblock;
                tbe.from_mem = true;
                tbe.sent_data_backup = true;
                tbe.data = Some(data);
                let serial = tbe.serial;
                let blocker = tbe.blocker;
                let resp = Resp::DataEx {
                    data: Some(data),
                    dirty: false,
                    acks: 0,
                };
                tbe.resp = Some(resp.clone());
                // Install the line (may evict a victim).
                self.install_line(addr, data, ctx);
                // §3.1.1: answer the L1 immediately, keeping a backup.
                Self::send_resp(self.me, addr, blocker, serial, &resp, ctx);
                if self.ft {
                    ctx.checker.backup_created(self.me, addr, ctx.now);
                } else {
                    // DirCMP: unblock memory right away.
                    let mem = self.mem_of(addr, ctx.config);
                    ctx.send(
                        Message::new(MsgType::UnblockEx, addr, self.me, mem).serial(msg.serial),
                        ctx.config.l2_tag_cycles,
                    );
                }
                if self.ft {
                    self.gen_counter += 1;
                    let gen = self.gen_counter;
                    self.lines
                        .get_mut(addr)
                        .and_then(|s| s.tbe.as_mut())
                        .expect("still present")
                        .unblock_gen = gen;
                    ctx.arm_timeout(
                        self.me,
                        addr,
                        TimeoutKind::LostUnblock,
                        gen,
                        ctx.config.ft.lost_unblock_timeout,
                    );
                }
            }
            Stage::WaitRecall => {
                if self.ft && tbe.own_serial != msg.serial {
                    ctx.stats.stale_discards.incr();
                    return;
                }
                tbe.data = msg.data;
                tbe.data_dirty = msg.data_dirty;
                tbe.recall_needs_data = false;
                if self.ft {
                    // Acknowledge ownership to the old owner; wait for the
                    // backup deletion before moving the data off-chip.
                    tbe.acko_serial = msg.serial;
                    self.gen_counter += 1;
                    tbe.ackbd_gen = self.gen_counter;
                    let gen = tbe.ackbd_gen;
                    ctx.send(
                        Message::new(MsgType::AckO, addr, self.me, msg.src).serial(msg.serial),
                        ctx.config.l2_tag_cycles,
                    );
                    ctx.arm_timeout(
                        self.me,
                        addr,
                        TimeoutKind::LostAckBd,
                        gen,
                        ctx.config.ft.lost_ackbd_timeout,
                    );
                    tbe.stage = Stage::WaitRecallAckBd;
                    return;
                }
                self.try_finish_recall(addr, ctx);
            }
            _ => {
                ctx.stats.stale_discards.incr();
            }
        }
    }

    fn on_ack(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        // Invalidation acks for a recall (the bank is the requester).
        let addr = msg.addr;
        let Some(tbe) = self.lines.get_mut(addr).and_then(|s| s.tbe.as_mut()) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if !matches!(tbe.stage, Stage::WaitRecall | Stage::WaitRecallAckBd)
            || (self.ft && tbe.own_serial != msg.serial)
        {
            ctx.stats.stale_discards.incr();
            return;
        }
        // Set-based removal: duplicate acks (possible after Inv resends) are
        // no-ops.
        tbe.recall_acks.remove(msg.src.index());
        if tbe.stage == Stage::WaitRecall {
            self.try_finish_recall(addr, ctx);
        }
    }

    fn on_mem_wback(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        // WbAck from memory for a bank eviction.
        let addr = msg.addr;
        let Some(tbe) = self.lines.get(addr).and_then(|s| s.tbe.as_ref()) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if tbe.stage != Stage::WaitMemWbAck || (self.ft && tbe.own_serial != msg.serial) {
            ctx.stats.stale_discards.incr();
            return;
        }
        let tbe = self.take_tbe(addr).expect("checked above");
        if msg.wb_stale {
            // Memory does not consider us the owner; drop the eviction.
            self.pump_waiting(addr, ctx);
            return;
        }
        let data = tbe.data.expect("bank eviction holds data");
        ctx.send(
            Message::new(MsgType::WbData, addr, self.me, msg.src)
                .serial(msg.serial)
                .data(data)
                .dirty(true),
            ctx.config.l2_tag_cycles,
        );
        if self.ft {
            let gen = self.next_gen();
            self.lines.entry(addr).mem_backup = Some(MemBackup {
                data,
                serial: msg.serial,
                retries: 0,
                gen,
            });
            ctx.checker.backup_created(self.me, addr, ctx.now);
            ctx.arm_timeout(
                self.me,
                addr,
                TimeoutKind::LostData,
                gen,
                ctx.config.ft.lost_data_timeout,
            );
        }
        self.pump_waiting(addr, ctx);
    }

    fn on_acko(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let addr = msg.addr;
        if msg.src.is_mem() {
            // Memory acknowledges our WbData: delete the backup.
            if self
                .lines
                .get_mut(addr)
                .is_some_and(|s| s.mem_backup.take().is_some())
            {
                ctx.checker.backup_deleted(self.me, addr, ctx.now);
            }
            ctx.send(
                Message::new(MsgType::AckBD, addr, self.me, msg.src).serial(msg.serial),
                ctx.config.l2_tag_cycles,
            );
            return;
        }
        // Standalone AckO from an L1 (its UnblockEx with the piggyback was
        // lost, or a reissued AckO): delete our grant backup and reply.
        if let Some(tbe) = self.lines.get(addr).and_then(|s| s.tbe.as_ref()) {
            if tbe.sent_data_backup && tbe.blocker == msg.src {
                ctx.checker.backup_deleted(self.me, addr, ctx.now);
            }
        }
        ctx.send(
            Message::new(MsgType::AckBD, addr, self.me, msg.src).serial(msg.serial),
            ctx.config.l2_tag_cycles,
        );
    }

    fn on_ackbd(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let addr = msg.addr;
        if msg.src.is_mem() {
            // Memory-facing §3.1.1 handshake complete.
            if let Some(st) = self.lines.get_mut(addr) {
                if let Some(p) = &st.ext_pending {
                    if p.serial == msg.serial || !self.ft {
                        st.ext_pending = None;
                        if let Some(line) = self.cache.get_mut(addr) {
                            line.ext_blocked = false;
                        }
                    }
                }
            }
            return;
        }
        // AckBD from an L1: completes a writeback or recall handshake.
        let Some(tbe) = self.lines.get_mut(addr).and_then(|s| s.tbe.as_mut()) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if tbe.acko_serial != msg.serial {
            ctx.stats.stale_discards.incr();
            return;
        }
        match tbe.stage {
            Stage::WaitWbAckBd => {
                self.take_tbe(addr);
                self.pump_waiting(addr, ctx);
            }
            Stage::WaitRecallAckBd => {
                tbe.ackbd_gen = 0; // handshake done
                tbe.stage = Stage::WaitRecall;
                tbe.recall_needs_data = false;
                self.try_finish_recall(addr, ctx);
            }
            _ => {
                ctx.stats.stale_discards.incr();
            }
        }
    }

    // ------------------------------------------------------------------
    // Fills, evictions and recalls
    // ------------------------------------------------------------------

    fn install_line(&mut self, addr: LineAddr, data: LineData, ctx: &mut Ctx<'_>) {
        let mut line = L2Line::fresh();
        line.data = Some(data);
        let lines = &self.lines;
        let outcome = self.cache.insert(addr, line, |a, l| {
            !l.ext_blocked
                && lines
                    .get(a)
                    .is_none_or(|s| s.tbe.is_none() && s.ext_pending.is_none())
        });
        if let Some((vaddr, vline)) = outcome.evicted {
            self.dispose_victim(vaddr, vline, ctx);
        }
    }

    fn dispose_victim(&mut self, vaddr: LineAddr, vline: L2Line, ctx: &mut Ctx<'_>) {
        if vline.owner.is_some() || !vline.sharers.is_empty() {
            self.start_recall(vaddr, vline, ctx);
        } else if vline.dirty {
            let data = vline.data.expect("dirty line holds data");
            self.start_mem_writeback(vaddr, data, ctx);
        }
        // Clean, uncached-above victim: silent drop (memory copy is valid).
    }

    fn start_recall(&mut self, vaddr: LineAddr, vline: L2Line, ctx: &mut Ctx<'_>) {
        ctx.stats.recalls.incr();
        let mut tbe = Tbe::new(TbeKind::Recall, self.me, SerialNum::ZERO);
        tbe.own_serial = self.fresh_serial();
        tbe.serial = tbe.own_serial;
        tbe.stage = Stage::WaitRecall;
        tbe.data = vline.data;
        tbe.data_dirty = vline.dirty;
        let own_serial = tbe.own_serial;
        let sharers: Vec<u8> = vline.sharers.iter().collect();
        tbe.recall_acks = vline.sharers;
        if let Some(owner) = vline.owner {
            tbe.recall_needs_data = true;
            tbe.fwd_to = Some(owner);
            ctx.send(
                Message::new(MsgType::FwdGetX, vaddr, self.me, NodeId::L1(owner))
                    .requester(self.me)
                    .serial(own_serial)
                    .acks(0),
                ctx.config.l2_tag_cycles,
            );
        }
        for t in &sharers {
            ctx.send(
                Message::new(MsgType::Inv, vaddr, self.me, NodeId::L1(*t))
                    .requester(self.me)
                    .serial(own_serial),
                ctx.config.l2_tag_cycles,
            );
        }
        if self.ft {
            self.gen_counter += 1;
            tbe.unblock_gen = self.gen_counter;
            let gen = tbe.unblock_gen;
            ctx.arm_timeout(
                self.me,
                vaddr,
                TimeoutKind::LostUnblock,
                gen,
                ctx.config.ft.lost_unblock_timeout,
            );
        }
        self.set_tbe(vaddr, tbe);
    }

    fn try_finish_recall(&mut self, addr: LineAddr, ctx: &mut Ctx<'_>) {
        let Some(tbe) = self.lines.get(addr).and_then(|s| s.tbe.as_ref()) else {
            return;
        };
        if tbe.stage != Stage::WaitRecall || tbe.recall_needs_data || !tbe.recall_acks.is_empty() {
            return;
        }
        let tbe = self.take_tbe(addr).expect("checked above");
        if tbe.data_dirty {
            let data = tbe.data.expect("dirty recall holds data");
            self.start_mem_writeback(addr, data, ctx);
        } else {
            self.pump_waiting(addr, ctx);
        }
    }

    fn start_mem_writeback(&mut self, addr: LineAddr, data: LineData, ctx: &mut Ctx<'_>) {
        ctx.stats.l2_writebacks.incr();
        let mut tbe = Tbe::new(TbeKind::L2Evict, self.me, SerialNum::ZERO);
        tbe.stage = Stage::WaitMemWbAck;
        tbe.own_serial = self.fresh_serial();
        tbe.serial = tbe.own_serial;
        tbe.data = Some(data);
        tbe.data_dirty = true;
        let own_serial = tbe.own_serial;
        if self.ft {
            tbe.req_gen = self.next_gen();
            let gen = tbe.req_gen;
            ctx.arm_timeout(
                self.me,
                addr,
                TimeoutKind::LostRequest,
                gen,
                ctx.config.ft.lost_request_timeout,
            );
        }
        self.set_tbe(addr, tbe);
        let mem = self.mem_of(addr, ctx.config);
        ctx.send(
            Message::new(MsgType::Put, addr, self.me, mem).serial(own_serial),
            ctx.config.l2_tag_cycles,
        );
    }

    /// After a transaction completes, service deferred requests for the
    /// line until one blocks it again (or the queue drains). The queue's
    /// buffer stays in the slot, ready for the next deferral.
    fn pump_waiting(&mut self, addr: LineAddr, ctx: &mut Ctx<'_>) {
        loop {
            let Some(st) = self.lines.get_mut(addr) else {
                return;
            };
            if st.tbe.is_some() {
                return;
            }
            let Some(msg) = st.waiting.pop_front() else {
                return;
            };
            self.service_request(msg, ctx);
        }
    }

    // ------------------------------------------------------------------
    // Fault-recovery handlers (FtDirCMP only)
    // ------------------------------------------------------------------

    fn on_unblock_ping(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        // From memory: "is your fill still in progress?"
        let addr = msg.addr;
        if let Some(st) = self.lines.get(addr) {
            if st.tbe.as_ref().is_some_and(|t| t.stage == Stage::WaitMem) {
                return; // fill unresolved: nothing was lost (§3.3)
            }
            if let Some(p) = &st.ext_pending {
                let serial = p.serial;
                ctx.send(
                    Message::new(MsgType::UnblockEx, addr, self.me, msg.src)
                        .serial(serial)
                        .with_acko(),
                    ctx.config.l2_tag_cycles,
                );
                return;
            }
        }
        // Handshake fully complete (or never ours): answer idempotently.
        ctx.send(
            Message::new(MsgType::UnblockEx, addr, self.me, msg.src)
                .serial(msg.serial)
                .with_acko(),
            ctx.config.l2_tag_cycles,
        );
    }

    fn on_wb_ping(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let addr = msg.addr;
        if let Some(st) = self.lines.get_mut(addr) {
            if let Some(tbe) = &st.tbe {
                if tbe.stage == Stage::WaitMemWbAck {
                    // Our Put is in flight and memory answered it (the WbAck was
                    // lost): the ping substitutes for the WbAck.
                    let mut as_wback =
                        Message::new(MsgType::WbAck, addr, msg.src, self.me).serial(tbe.own_serial);
                    as_wback.wb_wants_data = true;
                    self.on_mem_wback(as_wback, ctx);
                    return;
                }
            }
            if let Some(b) = st.mem_backup.as_mut() {
                b.serial = msg.serial;
                let data = b.data;
                ctx.send(
                    Message::new(MsgType::WbData, addr, self.me, msg.src)
                        .serial(msg.serial)
                        .data(data)
                        .dirty(true),
                    ctx.config.l2_tag_cycles,
                );
                return;
            }
        }
        ctx.send(
            Message::new(MsgType::WbCancel, addr, self.me, msg.src).serial(msg.serial),
            ctx.config.l2_tag_cycles,
        );
    }

    fn on_ownership_ping(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        // An L1 holding a writeback backup asks whether we received its
        // WbData.
        let addr = msg.addr;
        let still_waiting = self
            .lines
            .get(addr)
            .and_then(|s| s.tbe.as_ref())
            .is_some_and(|t| t.kind == TbeKind::Wb && t.stage == Stage::WaitWbData);
        let reply = if still_waiting {
            MsgType::NackO
        } else {
            MsgType::AckO
        };
        ctx.send(
            Message::new(reply, addr, self.me, msg.src).serial(msg.serial),
            ctx.config.l2_tag_cycles,
        );
    }

    fn on_nacko(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        // Memory never received our WbData: resend it from the backup.
        let Some(b) = self.lines.get(msg.addr).and_then(|s| s.mem_backup.as_ref()) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if b.serial != msg.serial {
            ctx.stats.stale_discards.incr();
            return;
        }
        let data = b.data;
        ctx.send(
            Message::new(MsgType::WbData, msg.addr, self.me, msg.src)
                .serial(msg.serial)
                .data(data)
                .dirty(true),
            ctx.config.l2_tag_cycles,
        );
    }

    // ------------------------------------------------------------------
    // Timeout handlers
    // ------------------------------------------------------------------

    fn on_lost_unblock(&mut self, addr: LineAddr, gen: u64, ctx: &mut Ctx<'_>) {
        let Some(tbe) = self.lines.get_mut(addr).and_then(|s| s.tbe.as_mut()) else {
            return;
        };
        if tbe.unblock_gen != gen {
            return;
        }
        ctx.stats.record_timeout(TimeoutKind::LostUnblock);
        self.gen_counter += 1;
        tbe.unblock_gen = self.gen_counter;
        tbe.unblock_retries += 1;
        let new_gen = tbe.unblock_gen;
        let retries = tbe.unblock_retries;
        let blocker = tbe.blocker;
        let serial = tbe.serial;
        let stage = tbe.stage;
        let tbe_kind = tbe.kind;
        match stage {
            Stage::WaitUnblock => {
                let mut ping =
                    Message::new(MsgType::UnblockPing, addr, self.me, blocker).serial(serial);
                ping.ping_for_store = matches!(tbe_kind, TbeKind::Miss { store: true });
                ctx.send(ping, ctx.config.l2_tag_cycles);
            }
            Stage::WaitWbData => {
                let mut ping = Message::new(MsgType::WbPing, addr, self.me, blocker).serial(serial);
                ping.wb_wants_data = true;
                ctx.send(ping, ctx.config.l2_tag_cycles);
            }
            Stage::WaitRecall | Stage::WaitRecallAckBd => {
                // Re-prod the recall participants: the owner if its data is
                // still outstanding, and every sharer whose ack is missing
                // (re-invalidation is idempotent; duplicate acks are no-ops
                // thanks to set-based tracking).
                let own_serial = tbe.own_serial;
                let fwd_to = tbe.fwd_to;
                let needs_data = tbe.recall_needs_data;
                let remaining = tbe.recall_acks;
                if needs_data && stage == Stage::WaitRecall {
                    if let Some(owner) = fwd_to {
                        ctx.send(
                            Message::new(MsgType::FwdGetX, addr, self.me, NodeId::L1(owner))
                                .requester(self.me)
                                .serial(own_serial)
                                .acks(0),
                            ctx.config.l2_tag_cycles,
                        );
                    }
                }
                for t in remaining.iter() {
                    ctx.send(
                        Message::new(MsgType::Inv, addr, self.me, NodeId::L1(t))
                            .requester(self.me)
                            .serial(own_serial),
                        ctx.config.l2_tag_cycles,
                    );
                }
            }
            _ => {}
        }
        ctx.arm_timeout(
            self.me,
            addr,
            TimeoutKind::LostUnblock,
            new_gen,
            backoff_delay(ctx.config.ft.lost_unblock_timeout, retries),
        );
    }

    fn on_lost_request(&mut self, addr: LineAddr, gen: u64, ctx: &mut Ctx<'_>) {
        // Reissue serials come from the allocator stream (see the L1-side
        // comment: avoids cross-transaction serial collisions).
        let fresh = self.serials.fresh();
        let Some(tbe) = self.lines.get_mut(addr).and_then(|s| s.tbe.as_mut()) else {
            return;
        };
        if tbe.req_gen != gen {
            return;
        }
        ctx.stats.record_timeout(TimeoutKind::LostRequest);
        ctx.stats.reissues.incr();
        tbe.own_serial = fresh;
        tbe.req_retries += 1;
        self.gen_counter += 1;
        tbe.req_gen = self.gen_counter;
        let new_gen = tbe.req_gen;
        let retries = tbe.req_retries;
        let own_serial = tbe.own_serial;
        let stage = tbe.stage;
        let mem = self.mem_of(addr, ctx.config);
        match stage {
            Stage::WaitMem => {
                ctx.send(
                    Message::new(MsgType::GetX, addr, self.me, mem).serial(own_serial),
                    ctx.config.l2_tag_cycles,
                );
            }
            Stage::WaitMemWbAck => {
                ctx.send(
                    Message::new(MsgType::Put, addr, self.me, mem).serial(own_serial),
                    ctx.config.l2_tag_cycles,
                );
            }
            _ => return,
        }
        ctx.arm_timeout(
            self.me,
            addr,
            TimeoutKind::LostRequest,
            new_gen,
            backoff_delay(ctx.config.ft.lost_request_timeout, retries),
        );
    }

    fn on_lost_ackbd(&mut self, addr: LineAddr, gen: u64, ctx: &mut Ctx<'_>) {
        let fresh = self.serials.fresh();
        if let Some(tbe) = self.lines.get_mut(addr).and_then(|s| s.tbe.as_mut()) {
            if tbe.ackbd_gen == gen
                && matches!(tbe.stage, Stage::WaitWbAckBd | Stage::WaitRecallAckBd)
            {
                ctx.stats.record_timeout(TimeoutKind::LostAckBd);
                tbe.acko_serial = fresh;
                tbe.ackbd_retries += 1;
                self.gen_counter += 1;
                tbe.ackbd_gen = self.gen_counter;
                let new_gen = tbe.ackbd_gen;
                let retries = tbe.ackbd_retries;
                let serial = tbe.acko_serial;
                let peer = if tbe.stage == Stage::WaitWbAckBd {
                    tbe.blocker
                } else {
                    NodeId::L1(tbe.fwd_to.expect("recall has an owner"))
                };
                ctx.send(
                    Message::new(MsgType::AckO, addr, self.me, peer).serial(serial),
                    ctx.config.l2_tag_cycles,
                );
                ctx.arm_timeout(
                    self.me,
                    addr,
                    TimeoutKind::LostAckBd,
                    new_gen,
                    backoff_delay(ctx.config.ft.lost_ackbd_timeout, retries),
                );
                return;
            }
        }
        if let Some(p) = self
            .lines
            .get_mut(addr)
            .and_then(|s| s.ext_pending.as_mut())
        {
            if p.gen != gen {
                return;
            }
            ctx.stats.record_timeout(TimeoutKind::LostAckBd);
            p.retries += 1;
            self.gen_counter += 1;
            p.gen = self.gen_counter;
            let new_gen = p.gen;
            let retries = p.retries;
            // Resend with the same serial: memory matches its TBE by it.
            let serial = p.serial;
            let mem = self.mem_of(addr, ctx.config);
            ctx.send(
                Message::new(MsgType::UnblockEx, addr, self.me, mem)
                    .serial(serial)
                    .with_acko(),
                ctx.config.l2_tag_cycles,
            );
            ctx.arm_timeout(
                self.me,
                addr,
                TimeoutKind::LostAckBd,
                new_gen,
                backoff_delay(ctx.config.ft.lost_ackbd_timeout, retries),
            );
        }
    }

    fn on_lost_data(&mut self, addr: LineAddr, gen: u64, ctx: &mut Ctx<'_>) {
        let Some(b) = self.lines.get_mut(addr).and_then(|s| s.mem_backup.as_mut()) else {
            return;
        };
        if b.gen != gen {
            return;
        }
        ctx.stats.record_timeout(TimeoutKind::LostData);
        b.retries += 1;
        self.gen_counter += 1;
        b.gen = self.gen_counter;
        let (serial, new_gen, retries) = (b.serial, b.gen, b.retries);
        let mem = self.mem_of(addr, ctx.config);
        ctx.send(
            Message::new(MsgType::OwnershipPing, addr, self.me, mem).serial(serial),
            ctx.config.l2_tag_cycles,
        );
        ctx.arm_timeout(
            self.me,
            addr,
            TimeoutKind::LostData,
            new_gen,
            backoff_delay(ctx.config.ft.lost_data_timeout, retries),
        );
    }
}

#[cfg(test)]
#[path = "l2_tests.rs"]
mod tests;
