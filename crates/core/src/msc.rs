//! ASCII message-sequence-chart rendering of trace-log events.
//!
//! Turns the events collected by a [`crate::tracelog::CollectSink`] into the
//! kind of message-flow diagram the paper's Figures 1 and 2 use, with one
//! column per node and one row per delivered message:
//!
//! ```text
//! cycle      L1-5        L2-1        Mem-1
//! 6          GetX ------->
//! 20                     GetX ------->
//! 198                    <------ DataEx
//! ...
//! ```
//!
//! See `examples/protocol_walkthrough.rs` for end-to-end use.

use std::collections::BTreeSet;

use crate::ids::{LineAddr, NodeId};
use crate::tracelog::{TraceEvent, TraceEventKind};

/// Renders a message-sequence chart for all messages touching `line`.
///
/// Nodes appear as columns in the order they first participate. Timeout
/// firings are shown as annotations on the owning node's column.
///
/// # Example
///
/// ```
/// use ftdircmp_core::msc;
/// use ftdircmp_core::tracelog::{CollectSink, TraceSink, TraceEvent, TraceEventKind};
/// use ftdircmp_core::{Message, MsgType, LineAddr, NodeId};
/// use ftdircmp_sim::Cycle;
///
/// let (mut sink, handle) = CollectSink::new(100);
/// sink.record(TraceEvent {
///     at: Cycle::new(6),
///     kind: TraceEventKind::Delivered(
///         Message::new(MsgType::GetS, LineAddr(1), NodeId::L1(0), NodeId::L2(1)),
///     ),
/// });
/// let chart = msc::render(&handle.take(), LineAddr(1));
/// assert!(chart.contains("GetS"));
/// assert!(chart.contains("L1-0"));
/// ```
pub fn render(events: &[TraceEvent], line: LineAddr) -> String {
    let relevant: Vec<&TraceEvent> = events.iter().filter(|e| e.line() == Some(line)).collect();
    if relevant.is_empty() {
        return format!("(no events for {line})\n");
    }

    // Column order: participation order, L1s/L2s/Mems interleaved as seen.
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    for e in &relevant {
        let parts: Vec<NodeId> = match &e.kind {
            TraceEventKind::Delivered(m) => vec![m.src, m.dst],
            TraceEventKind::TimeoutFired { node, .. } => vec![*node],
            TraceEventKind::OpRetired { .. } => vec![],
        };
        for n in parts {
            if seen.insert(n) {
                nodes.push(n);
            }
        }
    }

    const COL: usize = 14;
    let col_of = |n: NodeId| nodes.iter().position(|x| *x == n).expect("node indexed");
    let mut out = String::new();

    // Header.
    out.push_str(&format!("{:<10}", "cycle"));
    for n in &nodes {
        out.push_str(&format!("{:<COL$}", n.to_string()));
    }
    out.push('\n');

    for e in &relevant {
        match &e.kind {
            TraceEventKind::Delivered(m) => {
                let (a, b) = (col_of(m.src), col_of(m.dst));
                let (lo, hi) = (a.min(b), a.max(b));
                let label = format!("{}{}", m.mtype, if m.piggy_acko { "+AckO" } else { "" });
                let mut row = format!("{:<10}", e.at.as_u64());
                row.push_str(&" ".repeat(lo * COL));
                if a == b {
                    row.push_str(&format!("({label} local)"));
                } else {
                    // Span from lo to hi columns with an arrow.
                    let span = (hi - lo) * COL;
                    let body_len = span.saturating_sub(label.len() + 2).max(2);
                    let (pre, post) = (body_len / 2, body_len - body_len / 2);
                    if a < b {
                        row.push_str(&format!(
                            "{}{} {}>",
                            "-".repeat(pre),
                            label,
                            "-".repeat(post)
                        ));
                    } else {
                        row.push_str(&format!(
                            "<{} {}{}",
                            "-".repeat(pre),
                            label,
                            "-".repeat(post)
                        ));
                    }
                }
                out.push_str(row.trim_end());
                out.push('\n');
            }
            TraceEventKind::TimeoutFired { node, kind, .. } => {
                let c = col_of(*node);
                let mut row = format!("{:<10}", e.at.as_u64());
                row.push_str(&" ".repeat(c * COL));
                row.push_str(&format!("!{kind}"));
                out.push_str(row.trim_end());
                out.push('\n');
            }
            TraceEventKind::OpRetired { .. } => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Message, MsgType};
    use crate::proto::TimeoutKind;
    use ftdircmp_sim::Cycle;

    fn deliver(at: u64, t: MsgType, src: NodeId, dst: NodeId, line: u64) -> TraceEvent {
        TraceEvent {
            at: Cycle::new(at),
            kind: TraceEventKind::Delivered(Message::new(t, LineAddr(line), src, dst)),
        }
    }

    #[test]
    fn renders_arrows_in_both_directions() {
        let events = vec![
            deliver(5, MsgType::GetX, NodeId::L1(0), NodeId::L2(1), 7),
            deliver(9, MsgType::DataEx, NodeId::L2(1), NodeId::L1(0), 7),
        ];
        let chart = render(&events, LineAddr(7));
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains("L1-0") && lines[0].contains("L2-1"));
        assert!(lines[1].contains("GetX") && lines[1].contains('>'));
        assert!(lines[2].contains("DataEx") && lines[2].contains('<'));
    }

    #[test]
    fn filters_by_line() {
        let events = vec![
            deliver(5, MsgType::GetS, NodeId::L1(0), NodeId::L2(1), 7),
            deliver(6, MsgType::GetS, NodeId::L1(2), NodeId::L2(3), 8),
        ];
        let chart = render(&events, LineAddr(7));
        assert!(chart.contains("L1-0"));
        assert!(!chart.contains("L1-2"));
    }

    #[test]
    fn shows_timeouts_as_annotations() {
        let events = vec![
            deliver(5, MsgType::GetX, NodeId::L1(0), NodeId::L2(1), 7),
            TraceEvent {
                at: Cycle::new(3005),
                kind: TraceEventKind::TimeoutFired {
                    node: NodeId::L1(0),
                    addr: LineAddr(7),
                    kind: TimeoutKind::LostRequest,
                },
            },
        ];
        let chart = render(&events, LineAddr(7));
        assert!(chart.contains("!lost-request"));
    }

    #[test]
    fn empty_chart_mentions_the_line() {
        let chart = render(&[], LineAddr(9));
        assert!(chart.contains("line:0x9"));
    }

    #[test]
    fn same_node_deliveries_are_marked_local() {
        // Synthetic: real protocol messages always cross nodes, but the
        // renderer handles the degenerate case gracefully.
        let events = vec![deliver(5, MsgType::GetS, NodeId::L1(1), NodeId::L1(1), 7)];
        let chart = render(&events, LineAddr(7));
        assert!(chart.contains("local"));
    }
}
