//! Reified transition table for an L2 bank (directory) controller.
//!
//! Facet families:
//! * `Line` (mandatory, default `NP`): directory-visible line state —
//!   `NP` not present, `RO` resident with the bank holding data and no L1
//!   owner, `MT` an L1 owner holds the line.
//! * `Tbe`: an allocated transaction buffer entry, named by its stage.
//! * `Ext`: the §3.1.1 external-unblock record (`EXT`) — the bank has
//!   unblocked the requester but memory's AckBD is still outstanding.
//! * `MemBk`: backup of data written back to memory (`MB`), held until
//!   memory acknowledges ownership (§3.1).

use super::Resource::{
    ExtPending, MemBackup, Tbe, TimerLostAckBd, TimerLostData, TimerLostRequest, TimerLostUnblock,
};
use super::{
    defer, ignore, impossible, msg, tmo, Controller, ControllerTable, Event, Exception, StateDecl,
};
use crate::msg::MsgType;
use crate::proto::TimeoutKind;

const TBE_STATES: [&str; 7] = [
    "WaitMem",
    "WaitUnblock",
    "WaitWbData",
    "WaitWbAckBd",
    "WaitRecall",
    "WaitRecallAckBd",
    "WaitMemWbAck",
];

fn states() -> Vec<StateDecl> {
    vec![
        StateDecl::new("NP", "Line", "not present in this bank"),
        StateDecl::new("RO", "Line", "resident, bank holds data, no L1 owner"),
        StateDecl::new("MT", "Line", "an L1 owner holds the line"),
        StateDecl::new("WaitMem", "Tbe", "fill requested from memory")
            .implies(&[Tbe])
            .ft_implies(&[TimerLostRequest]),
        StateDecl::new("WaitUnblock", "Tbe", "grant sent, waiting for Unblock")
            .implies(&[Tbe])
            .ft_implies(&[TimerLostUnblock]),
        StateDecl::new(
            "WaitWbData",
            "Tbe",
            "WbAck sent, waiting for writeback data",
        )
        .implies(&[Tbe])
        .ft_implies(&[TimerLostUnblock]),
        StateDecl::new(
            "WaitWbAckBd",
            "Tbe",
            "writeback data taken, waiting for AckBD",
        )
        .ft()
        .implies(&[Tbe, TimerLostAckBd, TimerLostUnblock]),
        StateDecl::new("WaitRecall", "Tbe", "victim recall in progress")
            .implies(&[Tbe])
            .ft_implies(&[TimerLostUnblock]),
        StateDecl::new(
            "WaitRecallAckBd",
            "Tbe",
            "recall data taken, waiting for AckBD",
        )
        .ft()
        .implies(&[Tbe, TimerLostAckBd, TimerLostUnblock]),
        StateDecl::new(
            "WaitMemWbAck",
            "Tbe",
            "Put sent to memory, waiting for WbAck",
        )
        .implies(&[Tbe])
        .ft_implies(&[TimerLostRequest]),
        StateDecl::new("EXT", "Ext", "external unblock pending at memory (§3.1.1)")
            .ft()
            .implies(&[ExtPending, TimerLostAckBd]),
        StateDecl::new(
            "MB",
            "MemBk",
            "backup of data written back to memory (§3.1)",
        )
        .ft()
        .implies(&[MemBackup, TimerLostData]),
    ]
}

#[allow(clippy::too_many_lines)]
fn rows() -> Vec<super::Transition> {
    crate::transitions![
        // ---- Request admission & service ------------------------------
        { [NP] @ msg(MsgType::GetS), if "miss: fill from memory" => [WaitMem];
          sends [GetX -> MemCtl]; alloc [Tbe]; ft_alloc [TimerLostRequest];
          paper "§2 L2 miss" },
        { [NP] @ msg(MsgType::GetX), if "miss: fill from memory" => [WaitMem];
          sends [GetX -> MemCtl]; alloc [Tbe]; ft_alloc [TimerLostRequest] },
        { [RO] @ msg(MsgType::GetS), if "no sharers: exclusive grant" => [RO, WaitUnblock];
          sends [DataEx -> Requester]; alloc [Tbe]; ft_alloc [TimerLostUnblock] },
        { [RO] @ msg(MsgType::GetS), if "sharers exist: shared grant" => [RO, WaitUnblock];
          sends [Data -> Requester]; alloc [Tbe]; ft_alloc [TimerLostUnblock] },
        { [RO] @ msg(MsgType::GetX), if "exclusive grant with invalidations" => [RO, WaitUnblock];
          sends [DataEx -> Requester, Inv -> Sharers];
          alloc [Tbe]; ft_alloc [TimerLostUnblock] },
        { [MT] @ msg(MsgType::GetS), if "forward to owner" => [MT, WaitUnblock];
          sends [FwdGetS -> OwnerL1]; alloc [Tbe]; ft_alloc [TimerLostUnblock] },
        { [MT] @ msg(MsgType::GetS), if "migratory grant" => [MT, WaitUnblock];
          sends [FwdGetX -> OwnerL1]; alloc [Tbe]; ft_alloc [TimerLostUnblock];
          paper "migratory sharing" },
        { [MT] @ msg(MsgType::GetX), if "owner upgrade" => [MT, WaitUnblock];
          sends [DataEx -> Requester, Inv -> Sharers];
          alloc [Tbe]; ft_alloc [TimerLostUnblock] },
        { [MT] @ msg(MsgType::GetX), if "forward to owner" => [MT, WaitUnblock];
          sends [FwdGetX -> OwnerL1, Inv -> Sharers];
          alloc [Tbe]; ft_alloc [TimerLostUnblock] },
        { [MT] @ msg(MsgType::Put), if "from the current owner" => [MT, WaitWbData];
          sends [WbAck -> Requester]; alloc [Tbe]; ft_alloc [TimerLostUnblock];
          paper "three-phase writeback" },
        { [MT] @ msg(MsgType::Put), if "not the owner: stale put acknowledged" => [MT];
          sends [WbAck -> Sender] },
        { [NP] @ msg(MsgType::Put), if "stale put acknowledged" => [NP];
          sends [WbAck -> Sender] },
        { [RO] @ msg(MsgType::Put), if "stale put acknowledged" => [RO];
          sends [WbAck -> Sender] },
        // ---- Unblocks -------------------------------------------------
        { [WaitUnblock] @ msg(MsgType::UnblockEx), if "exclusive grant acknowledged" => [MT];
          gate NonFtOnly; free [Tbe] },
        { [WaitUnblock] @ msg(MsgType::UnblockEx),
          if "exclusive grant acknowledged (AckBD for piggybacked AckO)" => [MT];
          gate FtOnly; sends [AckBD -> Sender]; free [Tbe, TimerLostUnblock] },
        { [WaitUnblock] @ msg(MsgType::UnblockEx), if "fill from memory: unblock forwarded" => [MT];
          gate NonFtOnly; sends [UnblockEx -> MemCtl]; free [Tbe] },
        { [WaitUnblock] @ msg(MsgType::UnblockEx),
          if "fill from memory: external unblock pending" => [MT, EXT];
          gate FtOnly; sends [UnblockEx -> MemCtl, AckO -> MemCtl, AckBD -> Sender];
          free [Tbe, TimerLostUnblock]; alloc [ExtPending, TimerLostAckBd];
          paper "§3.1.1" },
        { [WaitUnblock] @ msg(MsgType::Unblock), if "shared grant acknowledged" => [];
          free [Tbe]; ft_free [TimerLostUnblock] },
        // ---- Writeback data -------------------------------------------
        { [WaitWbData] @ msg(MsgType::WbData), if "writeback data accepted" => [RO];
          gate NonFtOnly; free [Tbe] },
        { [WaitWbData] @ msg(MsgType::WbData),
          if "writeback data accepted: ownership handshake" => [RO, WaitWbAckBd];
          gate FtOnly; sends [AckO -> Sender]; alloc [TimerLostAckBd];
          paper "§3.1" },
        { [WaitWbData] @ msg(MsgType::WbNoData), if "no data: line dropped" => [NP];
          free [Tbe]; ft_free [TimerLostUnblock] },
        { [WaitWbData] @ msg(MsgType::WbNoData), if "copies remain" => [RO];
          free [Tbe]; ft_free [TimerLostUnblock] },
        { [WaitWbData] @ msg(MsgType::WbCancel), if "cancelled: line dropped" => [NP];
          free [Tbe]; ft_free [TimerLostUnblock] },
        { [WaitWbData] @ msg(MsgType::WbCancel), if "cancelled: copies remain" => [RO];
          free [Tbe]; ft_free [TimerLostUnblock] },
        { [WaitWbAckBd] @ msg(MsgType::AckBD), if "handshake complete" => [];
          gate FtOnly; free [Tbe, TimerLostAckBd, TimerLostUnblock] },
        // ---- Memory fill ----------------------------------------------
        { [WaitMem] @ msg(MsgType::DataEx), if "memory fill" => [RO, WaitUnblock];
          gate NonFtOnly; sends [DataEx -> Blocker, UnblockEx -> MemCtl] },
        { [WaitMem] @ msg(MsgType::DataEx), if "memory fill" => [RO, WaitUnblock];
          gate FtOnly; sends [DataEx -> Blocker];
          free [TimerLostRequest]; alloc [TimerLostUnblock] },
        // ---- Victim selection (internal bank eviction) ----------------
        { [RO] @ Event::Victim, if "clean, uncached above: silent drop" => [] },
        { [RO] @ Event::Victim, if "dirty, uncached above: write back" => [WaitMemWbAck];
          sends [Put -> MemCtl]; alloc [Tbe]; ft_alloc [TimerLostRequest] },
        { [RO] @ Event::Victim, if "sharers exist: recall" => [WaitRecall];
          sends [Inv -> Sharers]; alloc [Tbe]; ft_alloc [TimerLostUnblock] },
        { [MT] @ Event::Victim, if "owner holds the line: recall" => [WaitRecall];
          sends [FwdGetX -> OwnerL1, Inv -> Sharers];
          alloc [Tbe]; ft_alloc [TimerLostUnblock] },
        // ---- Victim recall --------------------------------------------
        { [WaitRecall] @ msg(MsgType::DataEx), if "recall data from owner" => [WaitRecallAckBd];
          gate FtOnly; sends [AckO -> Sender]; alloc [TimerLostAckBd] },
        { [WaitRecall] @ msg(MsgType::DataEx), if "recall data, acks pending" => [WaitRecall];
          gate NonFtOnly },
        { [WaitRecall] @ msg(MsgType::DataEx), if "recall complete, clean: dropped" => [];
          gate NonFtOnly; free [Tbe] },
        { [WaitRecall] @ msg(MsgType::DataEx), if "recall complete, dirty: write back" => [WaitMemWbAck];
          gate NonFtOnly; sends [Put -> MemCtl] },
        { [WaitRecall] @ msg(MsgType::Ack), if "sharer invalidated, more pending" => [WaitRecall] },
        { [WaitRecall] @ msg(MsgType::Ack), if "last ack, clean: dropped" => [];
          free [Tbe]; ft_free [TimerLostUnblock] },
        { [WaitRecall] @ msg(MsgType::Ack), if "last ack, dirty: write back" => [WaitMemWbAck];
          sends [Put -> MemCtl]; ft_free [TimerLostUnblock]; ft_alloc [TimerLostRequest] },
        { [WaitRecallAckBd] @ msg(MsgType::Ack), if "sharer invalidated" => [WaitRecallAckBd];
          gate FtOnly },
        { [WaitRecallAckBd] @ msg(MsgType::AckBD), if "acks still pending" => [WaitRecall];
          gate FtOnly; free [TimerLostAckBd] },
        { [WaitRecallAckBd] @ msg(MsgType::AckBD), if "recall complete, clean: dropped" => [];
          gate FtOnly; free [Tbe, TimerLostAckBd, TimerLostUnblock] },
        { [WaitRecallAckBd] @ msg(MsgType::AckBD), if "recall complete, dirty: write back" => [WaitMemWbAck];
          gate FtOnly; sends [Put -> MemCtl];
          free [TimerLostAckBd, TimerLostUnblock]; alloc [TimerLostRequest] },
        // ---- Writeback to memory --------------------------------------
        { [WaitMemWbAck] @ msg(MsgType::WbAck), if "memory writeback proceeds" => [];
          gate NonFtOnly; sends [WbData -> Sender]; free [Tbe] },
        { [WaitMemWbAck] @ msg(MsgType::WbAck), if "memory writeback proceeds" => [MB];
          gate FtOnly; sends [WbData -> Sender];
          free [Tbe, TimerLostRequest]; alloc [MemBackup, TimerLostData];
          paper "§3.1" },
        { [WaitMemWbAck] @ msg(MsgType::WbAck), if "stale writeback: dropped" => [];
          free [Tbe]; ft_free [TimerLostRequest] },
        // ---- Ownership handshake --------------------------------------
        { [MB] @ msg(MsgType::AckO), if "memory took ownership" => [];
          gate FtOnly; sends [AckBD -> MemCtl]; free [MemBackup, TimerLostData] },
        { [WaitUnblock] @ msg(MsgType::AckO), if "requester acknowledges ownership" => [WaitUnblock];
          gate FtOnly; sends [AckBD -> Sender] },
        { [NP] @ msg(MsgType::AckO), if "no backup: idempotent re-ack" => [NP];
          gate FtOnly; sends [AckBD -> Sender]; paper "§3.4" },
        { [EXT] @ msg(MsgType::AckBD), if "external unblock complete" => [];
          gate FtOnly; free [ExtPending, TimerLostAckBd]; paper "§3.1.1" },
        // ---- Recovery pings -------------------------------------------
        { [WaitMem] @ msg(MsgType::UnblockPing), if "fill still pending: ignored" => [WaitMem];
          gate FtOnly },
        { [EXT] @ msg(MsgType::UnblockPing), if "re-send external unblock" => [EXT];
          gate FtOnly; sends [UnblockEx -> Sender, AckO -> Sender] },
        { [NP] @ msg(MsgType::UnblockPing), if "idempotent re-unblock" => [NP];
          gate FtOnly; sends [UnblockEx -> Sender, AckO -> Sender]; paper "§3.4" },
        { [RO] @ msg(MsgType::UnblockPing), if "idempotent re-unblock" => [RO];
          gate FtOnly; sends [UnblockEx -> Sender, AckO -> Sender] },
        { [MT] @ msg(MsgType::UnblockPing), if "idempotent re-unblock" => [MT];
          gate FtOnly; sends [UnblockEx -> Sender, AckO -> Sender] },
        { [WaitMemWbAck] @ msg(MsgType::WbPing), if "ping completes memory writeback" => [MB];
          gate FtOnly; sends [WbData -> Sender];
          free [Tbe, TimerLostRequest]; alloc [MemBackup, TimerLostData] },
        { [MB] @ msg(MsgType::WbPing), if "backup re-sends data" => [MB];
          gate FtOnly; sends [WbData -> Sender]; paper "§3.3" },
        { [NP] @ msg(MsgType::WbPing), if "no writeback in flight" => [NP];
          gate FtOnly; sends [WbCancel -> Sender] },
        { [RO] @ msg(MsgType::WbPing), if "no writeback in flight" => [RO];
          gate FtOnly; sends [WbCancel -> Sender] },
        { [MT] @ msg(MsgType::WbPing), if "no writeback in flight" => [MT];
          gate FtOnly; sends [WbCancel -> Sender] },
        { [WaitWbData] @ msg(MsgType::OwnershipPing), if "writeback in flight: refused" => [WaitWbData];
          gate FtOnly; sends [NackO -> Sender]; paper "§3.3" },
        { [NP] @ msg(MsgType::OwnershipPing) => [NP]; gate FtOnly; sends [AckO -> Sender] },
        { [RO] @ msg(MsgType::OwnershipPing) => [RO]; gate FtOnly; sends [AckO -> Sender] },
        { [MT] @ msg(MsgType::OwnershipPing) => [MT]; gate FtOnly; sends [AckO -> Sender] },
        { [MB] @ msg(MsgType::NackO), if "memory refused: re-send data" => [MB];
          gate FtOnly; sends [WbData -> MemCtl]; paper "§3.3" },
        // ---- Timeouts -------------------------------------------------
        { [WaitUnblock] @ tmo(TimeoutKind::LostUnblock), if "ping the blocker" => [WaitUnblock];
          gate FtOnly; sends [UnblockPing -> Blocker]; paper "§3.5" },
        { [WaitWbData] @ tmo(TimeoutKind::LostUnblock), if "ping the writer" => [WaitWbData];
          gate FtOnly; sends [WbPing -> Blocker] },
        { [WaitRecall] @ tmo(TimeoutKind::LostUnblock), if "re-prod owner and sharers" => [WaitRecall];
          gate FtOnly; sends [FwdGetX -> OwnerL1, Inv -> Sharers] },
        { [WaitRecallAckBd] @ tmo(TimeoutKind::LostUnblock), if "re-prod sharers" => [WaitRecallAckBd];
          gate FtOnly; sends [Inv -> Sharers] },
        { [WaitWbAckBd] @ tmo(TimeoutKind::LostUnblock), if "inert while AckBD pending" => [WaitWbAckBd];
          gate FtOnly },
        { [WaitMem] @ tmo(TimeoutKind::LostRequest), if "reissue fill" => [WaitMem];
          gate FtOnly; sends [GetX -> MemCtl]; paper "§3.2" },
        { [WaitMemWbAck] @ tmo(TimeoutKind::LostRequest), if "reissue writeback" => [WaitMemWbAck];
          gate FtOnly; sends [Put -> MemCtl] },
        { [WaitWbAckBd] @ tmo(TimeoutKind::LostAckBd), if "re-send AckO" => [WaitWbAckBd];
          gate FtOnly; sends [AckO -> Blocker]; paper "§3.4" },
        { [WaitRecallAckBd] @ tmo(TimeoutKind::LostAckBd), if "re-send AckO" => [WaitRecallAckBd];
          gate FtOnly; sends [AckO -> OwnerL1] },
        { [EXT] @ tmo(TimeoutKind::LostAckBd), if "re-send external unblock" => [EXT];
          gate FtOnly; sends [UnblockEx -> MemCtl, AckO -> MemCtl] },
        { [MB] @ tmo(TimeoutKind::LostData), if "probe memory" => [MB];
          gate FtOnly; sends [OwnershipPing -> MemCtl]; paper "§3.3" },
    ]
}

fn exceptions() -> Vec<Exception> {
    use MsgType as T;
    let mut ex = Vec::new();
    for t in [T::Inv, T::FwdGetS, T::FwdGetX] {
        ex.push(impossible("*", msg(t), "never routed to an L2 bank"));
    }
    for t in [
        T::Unblock,
        T::UnblockEx,
        T::WbData,
        T::WbNoData,
        T::WbCancel,
        T::Data,
        T::DataEx,
        T::Ack,
        T::WbAck,
        T::AckO,
        T::AckBD,
        T::UnblockPing,
        T::WbPing,
        T::OwnershipPing,
        T::NackO,
    ] {
        ex.push(ignore(
            "*",
            msg(t),
            "stale serial or no matching TBE: discarded",
        ));
    }
    for k in TimeoutKind::ALL {
        ex.push(ignore("*", tmo(k), "stale timer generation: no-op"));
    }
    for s in TBE_STATES {
        for t in [T::GetS, T::GetX, T::Put] {
            ex.push(ignore(
                s,
                msg(t),
                "queued behind the active transaction (FT reissues refresh the serial)",
            ));
        }
    }
    for s in ["EXT", "MB"] {
        for t in [T::GetS, T::GetX, T::Put] {
            ex.push(defer(
                s,
                msg(t),
                "Line facet services the request (§3.1.1 relaxation)",
            ));
        }
    }
    // Victim selection is an internal event: the bank only evicts lines
    // with no active transaction, external-unblock record, or backup.
    ex.push(impossible(
        "NP",
        Event::Victim,
        "absent lines cannot be victims",
    ));
    for s in TBE_STATES {
        ex.push(impossible(
            s,
            Event::Victim,
            "a line with an active transaction is never chosen as victim",
        ));
    }
    ex.push(impossible(
        "EXT",
        Event::Victim,
        "ext-blocked lines are never chosen as victims",
    ));
    ex.push(impossible(
        "MB",
        Event::Victim,
        "backup lines are not cache-resident",
    ));
    ex
}

pub(super) fn build() -> Result<ControllerTable, String> {
    ControllerTable::new(Controller::L2, states(), rows(), exceptions())
}
