//! Reified transition table for the L1 cache controller.
//!
//! Facet families:
//! * `Cache` (mandatory, default `I`): stable MOESI permission of the
//!   resident line, plus the FT blocked states `Mb`/`Eb` (§3.1).
//! * `Miss`: an allocated miss MSHR — `IS` (load, no line), `IM` (store, no
//!   line), `SM`/`OM` (store upgrade with the old copy still resident).
//! * `Wb`: an allocated writeback MSHR — `MI`/`OI`/`EI` by evicted
//!   permission, `II` once the data was surrendered to a forward.
//! * `Backup`: an FT data backup — `B` (created when forwarding owned data)
//!   or `Bw` (created when completing a writeback), held until AckO (§3.1).

use super::Resource::{
    AckBdPend, Backup, Mshr, TimerLostAckBd, TimerLostData, TimerLostRequest, WbMshr,
};
use super::{
    cpu, defer, ignore, impossible, msg, tmo, Controller, ControllerTable, CpuOp, Exception,
    StateDecl,
};
use crate::msg::MsgType;
use crate::proto::TimeoutKind;

fn states() -> Vec<StateDecl> {
    vec![
        StateDecl::new("I", "Cache", "invalid / not present"),
        StateDecl::new("S", "Cache", "shared, clean"),
        StateDecl::new("E", "Cache", "exclusive, clean"),
        StateDecl::new("O", "Cache", "owned, dirty, shared"),
        StateDecl::new("M", "Cache", "modified, dirty, exclusive"),
        StateDecl::new("Mb", "Cache", "modified, blocked until AckBD (§3.1)")
            .ft()
            .implies(&[AckBdPend, TimerLostAckBd]),
        StateDecl::new("Eb", "Cache", "exclusive, blocked until AckBD (§3.1)")
            .ft()
            .implies(&[AckBdPend, TimerLostAckBd]),
        StateDecl::new("IS", "Miss", "load miss outstanding")
            .implies(&[Mshr])
            .ft_implies(&[TimerLostRequest]),
        StateDecl::new("IM", "Miss", "store miss outstanding")
            .implies(&[Mshr])
            .ft_implies(&[TimerLostRequest]),
        StateDecl::new("SM", "Miss", "store upgrade from S outstanding")
            .implies(&[Mshr])
            .ft_implies(&[TimerLostRequest]),
        StateDecl::new("OM", "Miss", "store upgrade from O outstanding")
            .implies(&[Mshr])
            .ft_implies(&[TimerLostRequest]),
        StateDecl::new("MI", "Wb", "writeback of M outstanding")
            .implies(&[WbMshr])
            .ft_implies(&[TimerLostRequest]),
        StateDecl::new("OI", "Wb", "writeback of O outstanding")
            .implies(&[WbMshr])
            .ft_implies(&[TimerLostRequest]),
        StateDecl::new("EI", "Wb", "writeback of clean E outstanding")
            .implies(&[WbMshr])
            .ft_implies(&[TimerLostRequest]),
        StateDecl::new(
            "II",
            "Wb",
            "writeback whose data was surrendered to a forward",
        )
        .implies(&[WbMshr])
        .ft_implies(&[TimerLostRequest]),
        StateDecl::new(
            "B",
            "Backup",
            "backup of data forwarded to another L1 (§3.1)",
        )
        .ft()
        .implies(&[Backup, TimerLostData]),
        StateDecl::new(
            "Bw",
            "Backup",
            "backup of data written back to the home (§3.1)",
        )
        .ft()
        .implies(&[Backup, TimerLostData]),
    ]
}

#[allow(clippy::too_many_lines)]
fn rows() -> Vec<super::Transition> {
    crate::transitions![
        // ---- CPU operations -------------------------------------------
        { [I] @ cpu(CpuOp::Load) => [IS];
          sends [GetS -> Home]; alloc [Mshr]; ft_alloc [TimerLostRequest];
          paper "read miss" },
        { [I] @ cpu(CpuOp::Store) => [IM];
          sends [GetX -> Home]; alloc [Mshr]; ft_alloc [TimerLostRequest];
          paper "write miss" },
        { [S] @ cpu(CpuOp::Load) => [S] },
        { [E] @ cpu(CpuOp::Load) => [E] },
        { [O] @ cpu(CpuOp::Load) => [O] },
        { [M] @ cpu(CpuOp::Load) => [M] },
        { [Mb] @ cpu(CpuOp::Load) => [Mb]; gate FtOnly },
        { [Eb] @ cpu(CpuOp::Load) => [Eb]; gate FtOnly },
        { [M] @ cpu(CpuOp::Store) => [M] },
        { [E] @ cpu(CpuOp::Store), if "silent upgrade" => [M] },
        { [Mb] @ cpu(CpuOp::Store) => [Mb]; gate FtOnly },
        { [Eb] @ cpu(CpuOp::Store), if "silent upgrade while blocked" => [Mb]; gate FtOnly },
        { [S] @ cpu(CpuOp::Store), if "upgrade miss" => [S, SM];
          sends [GetX -> Home]; alloc [Mshr]; ft_alloc [TimerLostRequest] },
        { [O] @ cpu(CpuOp::Store), if "upgrade miss" => [O, OM];
          sends [GetX -> Home]; alloc [Mshr]; ft_alloc [TimerLostRequest] },
        { [MI] @ cpu(CpuOp::Load), if "stalled behind writeback" => [MI] },
        { [OI] @ cpu(CpuOp::Load), if "stalled behind writeback" => [OI] },
        { [EI] @ cpu(CpuOp::Load), if "stalled behind writeback" => [EI] },
        { [II] @ cpu(CpuOp::Load), if "stalled behind writeback" => [II] },
        { [MI] @ cpu(CpuOp::Store), if "stalled behind writeback" => [MI] },
        { [OI] @ cpu(CpuOp::Store), if "stalled behind writeback" => [OI] },
        { [EI] @ cpu(CpuOp::Store), if "stalled behind writeback" => [EI] },
        { [II] @ cpu(CpuOp::Store), if "stalled behind writeback" => [II] },
        { [S] @ cpu(CpuOp::Evict), if "silent eviction" => [] },
        { [E] @ cpu(CpuOp::Evict) => [EI];
          sends [Put -> Home]; alloc [WbMshr]; ft_alloc [TimerLostRequest];
          paper "three-phase writeback" },
        { [M] @ cpu(CpuOp::Evict) => [MI];
          sends [Put -> Home]; alloc [WbMshr]; ft_alloc [TimerLostRequest] },
        { [O] @ cpu(CpuOp::Evict) => [OI];
          sends [Put -> Home]; alloc [WbMshr]; ft_alloc [TimerLostRequest] },
        // ---- Data / DataEx / Ack: miss completion ---------------------
        { [IS] @ msg(MsgType::Data), if "read miss completes shared" => [S];
          sends [Unblock -> Home]; free [Mshr]; ft_free [TimerLostRequest] },
        { [IS] @ msg(MsgType::DataEx), if "clean exclusive grant, acks complete" => [E];
          gate NonFtOnly; sends [UnblockEx -> Home]; free [Mshr] },
        { [IS] @ msg(MsgType::DataEx), if "dirty exclusive grant, acks complete" => [M];
          gate NonFtOnly; sends [UnblockEx -> Home]; free [Mshr] },
        { [IS] @ msg(MsgType::DataEx), if "clean exclusive grant, acks complete" => [Eb];
          gate FtOnly; sends [UnblockEx -> Home, AckO -> AckPeer];
          free [Mshr, TimerLostRequest]; alloc [AckBdPend, TimerLostAckBd];
          paper "§3.1 ownership handshake" },
        { [IS] @ msg(MsgType::DataEx), if "dirty exclusive grant, acks complete" => [Mb];
          gate FtOnly; sends [UnblockEx -> Home, AckO -> AckPeer];
          free [Mshr, TimerLostRequest]; alloc [AckBdPend, TimerLostAckBd];
          paper "§3.1 ownership handshake" },
        { [IS] @ msg(MsgType::DataEx), if "invalidation acks outstanding" => [IS] },
        { [IM] @ msg(MsgType::DataEx), if "invalidation acks outstanding" => [IM] },
        { [IM] @ msg(MsgType::DataEx), if "acks complete" => [M];
          gate NonFtOnly; sends [UnblockEx -> Home]; free [Mshr] },
        { [IM] @ msg(MsgType::DataEx), if "acks complete" => [Mb];
          gate FtOnly; sends [UnblockEx -> Home, AckO -> AckPeer];
          free [Mshr, TimerLostRequest]; alloc [AckBdPend, TimerLostAckBd];
          paper "§3.1 ownership handshake" },
        { [SM] @ msg(MsgType::DataEx), if "upgrade grant without data" => [M];
          sends [UnblockEx -> Home]; free [Mshr]; ft_free [TimerLostRequest] },
        { [SM] @ msg(MsgType::DataEx), if "data from previous owner, acks complete" => [M];
          gate NonFtOnly; sends [UnblockEx -> Home]; free [Mshr] },
        { [SM] @ msg(MsgType::DataEx), if "data from previous owner, acks complete" => [Mb];
          gate FtOnly; sends [UnblockEx -> Home, AckO -> AckPeer];
          free [Mshr, TimerLostRequest]; alloc [AckBdPend, TimerLostAckBd] },
        { [SM] @ msg(MsgType::DataEx), if "invalidation acks outstanding" => [SM] },
        { [OM] @ msg(MsgType::DataEx), if "upgrade grant, acks complete" => [M];
          sends [UnblockEx -> Home]; free [Mshr]; ft_free [TimerLostRequest] },
        { [OM] @ msg(MsgType::DataEx), if "invalidation acks outstanding" => [OM] },
        { [IS] @ msg(MsgType::Ack), if "acks outstanding" => [IS] },
        { [IM] @ msg(MsgType::Ack), if "acks outstanding" => [IM] },
        { [SM] @ msg(MsgType::Ack), if "acks outstanding" => [SM] },
        { [OM] @ msg(MsgType::Ack), if "acks outstanding" => [OM] },
        { [IS] @ msg(MsgType::Ack), if "final ack, clean exclusive grant" => [E];
          gate NonFtOnly; sends [UnblockEx -> Home]; free [Mshr] },
        { [IS] @ msg(MsgType::Ack), if "final ack, dirty exclusive grant" => [M];
          gate NonFtOnly; sends [UnblockEx -> Home]; free [Mshr] },
        { [IS] @ msg(MsgType::Ack), if "final ack, clean exclusive grant" => [Eb];
          gate FtOnly; sends [UnblockEx -> Home, AckO -> AckPeer];
          free [Mshr, TimerLostRequest]; alloc [AckBdPend, TimerLostAckBd] },
        { [IS] @ msg(MsgType::Ack), if "final ack, dirty exclusive grant" => [Mb];
          gate FtOnly; sends [UnblockEx -> Home, AckO -> AckPeer];
          free [Mshr, TimerLostRequest]; alloc [AckBdPend, TimerLostAckBd] },
        { [IM] @ msg(MsgType::Ack), if "final ack completes store" => [M];
          gate NonFtOnly; sends [UnblockEx -> Home]; free [Mshr] },
        { [IM] @ msg(MsgType::Ack), if "final ack completes store" => [Mb];
          gate FtOnly; sends [UnblockEx -> Home, AckO -> AckPeer];
          free [Mshr, TimerLostRequest]; alloc [AckBdPend, TimerLostAckBd] },
        { [SM] @ msg(MsgType::Ack), if "final ack, upgrade without data" => [M];
          sends [UnblockEx -> Home]; free [Mshr]; ft_free [TimerLostRequest] },
        { [SM] @ msg(MsgType::Ack), if "final ack, data held" => [M];
          gate NonFtOnly; sends [UnblockEx -> Home]; free [Mshr] },
        { [SM] @ msg(MsgType::Ack), if "final ack, data held" => [Mb];
          gate FtOnly; sends [UnblockEx -> Home, AckO -> AckPeer];
          free [Mshr, TimerLostRequest]; alloc [AckBdPend, TimerLostAckBd] },
        { [OM] @ msg(MsgType::Ack), if "final ack, upgrade without data" => [M];
          sends [UnblockEx -> Home]; free [Mshr]; ft_free [TimerLostRequest] },
        // ---- Invalidations --------------------------------------------
        { [I] @ msg(MsgType::Inv), if "stale: no line" => [I];
          sends [Ack -> Requester] },
        { [S] @ msg(MsgType::Inv) => []; sends [Ack -> Requester] },
        { [O] @ msg(MsgType::Inv) => []; sends [Ack -> Requester] },
        // A delayed Inv can reach a (re-acquired) exclusive owner even
        // under plain DirCMP when the network reorders it past a complete
        // later transaction; the ack it triggers is stale and discarded.
        { [E] @ msg(MsgType::Inv), if "stale: exclusive line kept" => [E];
          sends [Ack -> Requester] },
        { [M] @ msg(MsgType::Inv), if "stale: exclusive line kept" => [M];
          sends [Ack -> Requester] },
        { [Mb] @ msg(MsgType::Inv), if "blocked line kept" => [Mb];
          gate FtOnly; sends [Ack -> Requester] },
        { [Eb] @ msg(MsgType::Inv), if "blocked line kept" => [Eb];
          gate FtOnly; sends [Ack -> Requester] },
        { [IS] @ msg(MsgType::Inv), if "no line yet" => [IS]; sends [Ack -> Requester] },
        { [IM] @ msg(MsgType::Inv), if "no line yet" => [IM]; sends [Ack -> Requester] },
        { [SM] @ msg(MsgType::Inv), if "upgrade loses the line" => [I, IM];
          sends [Ack -> Requester] },
        { [OM] @ msg(MsgType::Inv), if "upgrade loses the line" => [I, IM];
          sends [Ack -> Requester] },
        // ---- Forwards -------------------------------------------------
        { [M] @ msg(MsgType::FwdGetS) => [O]; sends [Data -> Requester];
          paper "owner downgrades" },
        { [E] @ msg(MsgType::FwdGetS) => [O]; sends [Data -> Requester] },
        { [O] @ msg(MsgType::FwdGetS) => [O]; sends [Data -> Requester] },
        { [Mb] @ msg(MsgType::FwdGetS), if "deferred until AckBD" => [Mb]; gate FtOnly },
        { [Eb] @ msg(MsgType::FwdGetS), if "deferred until AckBD" => [Eb]; gate FtOnly },
        { [MI] @ msg(MsgType::FwdGetS), if "writeback in flight supplies data" => [MI];
          sends [Data -> Requester] },
        { [OI] @ msg(MsgType::FwdGetS), if "writeback in flight supplies data" => [OI];
          sends [Data -> Requester] },
        { [EI] @ msg(MsgType::FwdGetS), if "writeback in flight supplies data" => [EI];
          sends [Data -> Requester] },
        { [M] @ msg(MsgType::FwdGetX) => []; gate NonFtOnly; sends [DataEx -> Requester] },
        { [E] @ msg(MsgType::FwdGetX) => []; gate NonFtOnly; sends [DataEx -> Requester] },
        { [O] @ msg(MsgType::FwdGetX) => []; gate NonFtOnly; sends [DataEx -> Requester] },
        { [M] @ msg(MsgType::FwdGetX) => [B]; gate FtOnly;
          sends [DataEx -> Requester]; alloc [Backup, TimerLostData];
          paper "§3.1 backup creation" },
        { [E] @ msg(MsgType::FwdGetX) => [B]; gate FtOnly;
          sends [DataEx -> Requester]; alloc [Backup, TimerLostData] },
        { [O] @ msg(MsgType::FwdGetX) => [B]; gate FtOnly;
          sends [DataEx -> Requester]; alloc [Backup, TimerLostData] },
        { [S] @ msg(MsgType::FwdGetX), if "non-owner copy dropped" => [] },
        { [Mb] @ msg(MsgType::FwdGetX), if "deferred until AckBD" => [Mb]; gate FtOnly },
        { [Eb] @ msg(MsgType::FwdGetX), if "deferred until AckBD" => [Eb]; gate FtOnly },
        { [MI] @ msg(MsgType::FwdGetX), if "writeback surrenders data" => [II];
          gate NonFtOnly; sends [DataEx -> Requester] },
        { [OI] @ msg(MsgType::FwdGetX), if "writeback surrenders data" => [II];
          gate NonFtOnly; sends [DataEx -> Requester] },
        { [EI] @ msg(MsgType::FwdGetX), if "writeback surrenders data" => [II];
          gate NonFtOnly; sends [DataEx -> Requester] },
        { [MI] @ msg(MsgType::FwdGetX), if "writeback surrenders data" => [II, B];
          gate FtOnly; sends [DataEx -> Requester]; alloc [Backup, TimerLostData] },
        { [OI] @ msg(MsgType::FwdGetX), if "writeback surrenders data" => [II, B];
          gate FtOnly; sends [DataEx -> Requester]; alloc [Backup, TimerLostData] },
        { [EI] @ msg(MsgType::FwdGetX), if "writeback surrenders data" => [II, B];
          gate FtOnly; sends [DataEx -> Requester]; alloc [Backup, TimerLostData] },
        { [B] @ msg(MsgType::FwdGetX), if "backup re-targets the new requester" => [B];
          gate FtOnly; sends [DataEx -> Requester]; paper "§3.3" },
        // ---- Writeback acknowledgements -------------------------------
        { [MI] @ msg(MsgType::WbAck), if "writeback proceeds" => [];
          gate NonFtOnly; sends [WbData -> Sender]; free [WbMshr] },
        { [OI] @ msg(MsgType::WbAck), if "writeback proceeds" => [];
          gate NonFtOnly; sends [WbData -> Sender]; free [WbMshr] },
        { [EI] @ msg(MsgType::WbAck), if "writeback proceeds (home always wants data)" => [];
          gate NonFtOnly; sends [WbData -> Sender]; free [WbMshr] },
        { [MI] @ msg(MsgType::WbAck), if "writeback proceeds" => [Bw];
          gate FtOnly; sends [WbData -> Sender];
          free [WbMshr, TimerLostRequest]; alloc [Backup, TimerLostData];
          paper "§3.1 writeback backup" },
        { [OI] @ msg(MsgType::WbAck), if "writeback proceeds" => [Bw];
          gate FtOnly; sends [WbData -> Sender];
          free [WbMshr, TimerLostRequest]; alloc [Backup, TimerLostData] },
        { [EI] @ msg(MsgType::WbAck), if "writeback proceeds (home always wants data)" => [Bw];
          gate FtOnly; sends [WbData -> Sender];
          free [WbMshr, TimerLostRequest]; alloc [Backup, TimerLostData] },
        { [II] @ msg(MsgType::WbAck), if "data surrendered: cancel" => [];
          sends [WbNoData -> Sender]; free [WbMshr]; ft_free [TimerLostRequest] },
        { [MI] @ msg(MsgType::WbAck), if "stale put: line reinstated" => [M];
          free [WbMshr]; ft_free [TimerLostRequest] },
        { [EI] @ msg(MsgType::WbAck), if "stale put: line reinstated" => [M];
          free [WbMshr]; ft_free [TimerLostRequest] },
        { [OI] @ msg(MsgType::WbAck), if "stale put: line reinstated" => [O];
          free [WbMshr]; ft_free [TimerLostRequest] },
        { [II] @ msg(MsgType::WbAck), if "stale put, no data left" => [];
          free [WbMshr]; ft_free [TimerLostRequest] },
        // ---- Ownership handshake (§3.1) -------------------------------
        { [B] @ msg(MsgType::AckO) => []; gate FtOnly;
          sends [AckBD -> Sender]; free [Backup, TimerLostData]; paper "§3.1" },
        { [Bw] @ msg(MsgType::AckO) => []; gate FtOnly;
          sends [AckBD -> Sender]; free [Backup, TimerLostData]; paper "§3.1" },
        { [I] @ msg(MsgType::AckO), if "no backup: idempotent re-ack" => [I];
          gate FtOnly; sends [AckBD -> Sender]; paper "§3.4" },
        { [Mb] @ msg(MsgType::AckBD) => [M]; gate FtOnly;
          free [AckBdPend, TimerLostAckBd]; paper "§3.1 unblock" },
        { [Eb] @ msg(MsgType::AckBD) => [E]; gate FtOnly;
          free [AckBdPend, TimerLostAckBd]; paper "§3.1 unblock" },
        // ---- Recovery pings -------------------------------------------
        { [IS] @ msg(MsgType::UnblockPing), if "miss still pending: ignored" => [IS];
          gate FtOnly },
        { [IM] @ msg(MsgType::UnblockPing), if "miss still pending: ignored" => [IM];
          gate FtOnly },
        { [SM] @ msg(MsgType::UnblockPing), if "miss still pending: ignored" => [SM];
          gate FtOnly },
        { [OM] @ msg(MsgType::UnblockPing), if "miss still pending: ignored" => [OM];
          gate FtOnly },
        { [M] @ msg(MsgType::UnblockPing), if "idempotent re-unblock" => [M];
          gate FtOnly; sends [UnblockEx -> Sender]; paper "§3.4" },
        { [E] @ msg(MsgType::UnblockPing), if "idempotent re-unblock" => [E];
          gate FtOnly; sends [UnblockEx -> Sender] },
        { [Mb] @ msg(MsgType::UnblockPing), if "idempotent re-unblock" => [Mb];
          gate FtOnly; sends [UnblockEx -> Sender] },
        { [Eb] @ msg(MsgType::UnblockPing), if "idempotent re-unblock" => [Eb];
          gate FtOnly; sends [UnblockEx -> Sender] },
        { [S] @ msg(MsgType::UnblockPing), if "idempotent re-unblock" => [S];
          gate FtOnly; sends [Unblock -> Sender] },
        { [O] @ msg(MsgType::UnblockPing), if "idempotent re-unblock" => [O];
          gate FtOnly; sends [Unblock -> Sender] },
        { [I] @ msg(MsgType::UnblockPing), if "replayed from completion record (shared)" => [I];
          gate FtOnly; sends [Unblock -> Sender] },
        { [I] @ msg(MsgType::UnblockPing), if "replayed from completion record (exclusive)" => [I];
          gate FtOnly; sends [UnblockEx -> Sender] },
        { [MI] @ msg(MsgType::UnblockPing), if "conservative re-unblock from wb" => [MI];
          gate FtOnly; sends [UnblockEx -> Sender] },
        { [EI] @ msg(MsgType::UnblockPing), if "conservative re-unblock from wb" => [EI];
          gate FtOnly; sends [UnblockEx -> Sender] },
        { [II] @ msg(MsgType::UnblockPing), if "conservative re-unblock from wb" => [II];
          gate FtOnly; sends [UnblockEx -> Sender] },
        { [OI] @ msg(MsgType::UnblockPing), if "conservative re-unblock from wb" => [OI];
          gate FtOnly; sends [Unblock -> Sender] },
        { [MI] @ msg(MsgType::WbPing), if "ping completes writeback" => [Bw];
          gate FtOnly; sends [WbData -> Sender];
          free [WbMshr, TimerLostRequest]; alloc [Backup, TimerLostData] },
        { [OI] @ msg(MsgType::WbPing), if "ping completes writeback" => [Bw];
          gate FtOnly; sends [WbData -> Sender];
          free [WbMshr, TimerLostRequest]; alloc [Backup, TimerLostData] },
        { [EI] @ msg(MsgType::WbPing), if "ping completes writeback" => [Bw];
          gate FtOnly; sends [WbData -> Sender];
          free [WbMshr, TimerLostRequest]; alloc [Backup, TimerLostData] },
        { [II] @ msg(MsgType::WbPing), if "data surrendered: cancel" => [];
          gate FtOnly; sends [WbNoData -> Sender]; free [WbMshr, TimerLostRequest] },
        { [Bw] @ msg(MsgType::WbPing), if "backup re-sends writeback data" => [Bw];
          gate FtOnly; sends [WbData -> Sender]; paper "§3.3" },
        { [I] @ msg(MsgType::WbPing), if "no writeback in flight" => [I];
          gate FtOnly; sends [WbCancel -> Sender] },
        { [S] @ msg(MsgType::OwnershipPing) => [S]; gate FtOnly; sends [AckO -> Sender] },
        { [E] @ msg(MsgType::OwnershipPing) => [E]; gate FtOnly; sends [AckO -> Sender] },
        { [O] @ msg(MsgType::OwnershipPing) => [O]; gate FtOnly; sends [AckO -> Sender] },
        { [M] @ msg(MsgType::OwnershipPing) => [M]; gate FtOnly; sends [AckO -> Sender] },
        { [Mb] @ msg(MsgType::OwnershipPing) => [Mb]; gate FtOnly; sends [AckO -> Sender] },
        { [Eb] @ msg(MsgType::OwnershipPing) => [Eb]; gate FtOnly; sends [AckO -> Sender] },
        { [MI] @ msg(MsgType::OwnershipPing) => [MI]; gate FtOnly; sends [AckO -> Sender] },
        { [OI] @ msg(MsgType::OwnershipPing) => [OI]; gate FtOnly; sends [AckO -> Sender] },
        { [EI] @ msg(MsgType::OwnershipPing) => [EI]; gate FtOnly; sends [AckO -> Sender] },
        { [II] @ msg(MsgType::OwnershipPing) => [II]; gate FtOnly; sends [AckO -> Sender] },
        { [B] @ msg(MsgType::OwnershipPing), if "holder acknowledges ownership" => [B];
          gate FtOnly; sends [AckO -> Sender] },
        { [Bw] @ msg(MsgType::OwnershipPing), if "holder acknowledges ownership" => [Bw];
          gate FtOnly; sends [AckO -> Sender] },
        { [IS] @ msg(MsgType::OwnershipPing), if "miss in flight: ownership refused" => [IS];
          gate FtOnly; sends [NackO -> Sender]; paper "§3.3" },
        { [IM] @ msg(MsgType::OwnershipPing), if "miss in flight: ownership refused" => [IM];
          gate FtOnly; sends [NackO -> Sender] },
        { [SM] @ msg(MsgType::OwnershipPing), if "miss in flight: ownership refused" => [SM];
          gate FtOnly; sends [NackO -> Sender] },
        { [OM] @ msg(MsgType::OwnershipPing), if "miss in flight: ownership refused" => [OM];
          gate FtOnly; sends [NackO -> Sender] },
        { [I] @ msg(MsgType::OwnershipPing), if "no copy" => [I];
          gate FtOnly; sends [NackO -> Sender] },
        { [B] @ msg(MsgType::NackO), if "backup re-supplies data" => [B];
          gate FtOnly; sends [DataEx -> BackupDest]; paper "§3.3 recovery" },
        { [Bw] @ msg(MsgType::NackO), if "backup re-supplies data" => [Bw];
          gate FtOnly; sends [WbData -> BackupDest] },
        // ---- Timeouts (§3.2 / §3.5) -----------------------------------
        { [IS] @ tmo(TimeoutKind::LostRequest), if "reissue with fresh serial" => [IS];
          gate FtOnly; sends [GetS -> Home]; paper "§3.2" },
        { [IM] @ tmo(TimeoutKind::LostRequest), if "reissue with fresh serial" => [IM];
          gate FtOnly; sends [GetX -> Home] },
        { [SM] @ tmo(TimeoutKind::LostRequest), if "reissue with fresh serial" => [SM];
          gate FtOnly; sends [GetX -> Home] },
        { [OM] @ tmo(TimeoutKind::LostRequest), if "reissue with fresh serial" => [OM];
          gate FtOnly; sends [GetX -> Home] },
        { [MI] @ tmo(TimeoutKind::LostRequest), if "reissue writeback" => [MI];
          gate FtOnly; sends [Put -> Home] },
        { [OI] @ tmo(TimeoutKind::LostRequest), if "reissue writeback" => [OI];
          gate FtOnly; sends [Put -> Home] },
        { [EI] @ tmo(TimeoutKind::LostRequest), if "reissue writeback" => [EI];
          gate FtOnly; sends [Put -> Home] },
        { [II] @ tmo(TimeoutKind::LostRequest), if "reissue writeback" => [II];
          gate FtOnly; sends [Put -> Home] },
        { [Mb] @ tmo(TimeoutKind::LostAckBd), if "re-send AckO with fresh serial" => [Mb];
          gate FtOnly; sends [AckO -> AckPeer]; paper "§3.4" },
        { [Eb] @ tmo(TimeoutKind::LostAckBd), if "re-send AckO with fresh serial" => [Eb];
          gate FtOnly; sends [AckO -> AckPeer] },
        { [B] @ tmo(TimeoutKind::LostData), if "probe the owner" => [B];
          gate FtOnly; sends [OwnershipPing -> BackupDest]; paper "§3.3" },
        { [Bw] @ tmo(TimeoutKind::LostData), if "probe the owner" => [Bw];
          gate FtOnly; sends [OwnershipPing -> BackupDest] },
    ]
}

fn exceptions() -> Vec<Exception> {
    use MsgType as T;
    let mut ex = Vec::new();
    for t in [
        T::GetX,
        T::GetS,
        T::Put,
        T::Unblock,
        T::UnblockEx,
        T::WbData,
        T::WbNoData,
        T::WbCancel,
    ] {
        ex.push(impossible("*", msg(t), "never routed to an L1"));
    }
    ex.push(impossible(
        "*",
        tmo(TimeoutKind::LostUnblock),
        "L1 never arms lost-unblock timers",
    ));
    for t in [
        T::Data,
        T::DataEx,
        T::Ack,
        T::Inv,
        T::FwdGetS,
        T::FwdGetX,
        T::WbAck,
        T::AckO,
        T::AckBD,
        T::UnblockPing,
        T::WbPing,
        T::OwnershipPing,
        T::NackO,
    ] {
        ex.push(ignore(
            "*",
            msg(t),
            "stale serial or no matching structure: discarded",
        ));
    }
    for k in [
        TimeoutKind::LostRequest,
        TimeoutKind::LostAckBd,
        TimeoutKind::LostData,
    ] {
        ex.push(ignore("*", tmo(k), "stale timer generation: no-op"));
    }
    for s in ["IS", "IM", "SM", "OM"] {
        ex.push(impossible(
            s,
            cpu(CpuOp::Load),
            "the CPU blocks on its outstanding miss",
        ));
        ex.push(impossible(
            s,
            cpu(CpuOp::Store),
            "the CPU blocks on its outstanding miss",
        ));
    }
    for s in ["B", "Bw"] {
        ex.push(defer(s, cpu(CpuOp::Load), "cache facet handles the access"));
        ex.push(defer(
            s,
            cpu(CpuOp::Store),
            "cache facet handles the access",
        ));
        ex.push(defer(
            s,
            cpu(CpuOp::Evict),
            "backups are not cache entries; the cache facet decides",
        ));
    }
    ex.push(impossible("I", cpu(CpuOp::Evict), "no resident line"));
    for s in ["Mb", "Eb"] {
        ex.push(impossible(
            s,
            cpu(CpuOp::Evict),
            "blocked lines are not eviction candidates",
        ));
    }
    for s in ["IS", "IM"] {
        ex.push(impossible(
            s,
            cpu(CpuOp::Evict),
            "no cache entry while the miss is pending",
        ));
    }
    for s in ["MI", "OI", "EI", "II"] {
        ex.push(impossible(
            s,
            cpu(CpuOp::Evict),
            "no cache entry during a writeback",
        ));
    }
    for s in ["SM", "OM"] {
        ex.push(ignore(
            s,
            cpu(CpuOp::Evict),
            "eviction races with in-flight upgrades are excluded from the model",
        ));
    }
    ex
}

pub(super) fn build() -> Result<ControllerTable, String> {
    ControllerTable::new(Controller::L1, states(), rows(), exceptions())
}
