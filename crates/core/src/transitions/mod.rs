//! Reified protocol transition tables.
//!
//! The three controller state machines (L1, L2 bank, memory controller) are
//! declared here as data: per controller a set of *states* grouped into
//! *facet families*, a list of *transition rows*, and a list of *exceptions*
//! (pairs that are declared impossible, or benignly ignored / discarded).
//!
//! A cache line's configuration at a controller is one state per family:
//! the first declared family is *mandatory* (its first state is the default,
//! e.g. `I` at L1), the remaining families are optional (at most one state,
//! or absent).  A row belongs to its source state's family; `next` may name
//! states across several families — applying a row sets every family that is
//! mentioned, and clears the source's family if it is not (mandatory
//! families fall back to their default).  `next = []` means the facet ends.
//!
//! Each state declares the resources (MSHRs, TBEs, backups, armed timers)
//! its presence *implies*; each row declares the resource deltas the handler
//! performs.  `ftdircmp-lint` checks the books balance (lint 4), that every
//! (state, event) pair is covered (lint 1), that the tables match
//! PROTOCOL.md (lint 2), that an abstract single-line model agrees with the
//! reachability claims (lint 3), and that FT-only machinery is unreachable
//! with fault tolerance disabled (lint 5).
//!
//! The simulator cross-checks incoming messages against these tables at
//! runtime when the invariant checker is enabled (see `handle_message` in
//! `l1.rs` / `l2.rs` / `mem.rs`).

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use crate::msg::MsgType;
use crate::proto::TimeoutKind;

mod l1;
mod l2;
mod mem;

/// Which controller a table describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Controller {
    L1,
    L2,
    Mem,
}

impl Controller {
    pub const ALL: [Controller; 3] = [Controller::L1, Controller::L2, Controller::Mem];

    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Controller::L1 => "L1",
            Controller::L2 => "L2",
            Controller::Mem => "Mem",
        }
    }
}

/// Processor-side events (only meaningful at the L1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuOp {
    Load,
    Store,
    Evict,
}

impl CpuOp {
    pub const ALL: [CpuOp; 3] = [CpuOp::Load, CpuOp::Store, CpuOp::Evict];

    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CpuOp::Load => "Load",
            CpuOp::Store => "Store",
            CpuOp::Evict => "Evict",
        }
    }
}

/// An event class a controller reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    Msg(MsgType),
    Cpu(CpuOp),
    Timeout(TimeoutKind),
    /// Internal L2 event: the line is selected as a victim to make room
    /// for a fill install (bank eviction).
    Victim,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Msg(t) => write!(f, "{}", t.name()),
            Event::Cpu(op) => write!(f, "cpu:{}", op.name()),
            Event::Timeout(k) => write!(f, "timeout:{}", k.label()),
            Event::Victim => write!(f, "victim"),
        }
    }
}

/// Shorthand constructors used by the table modules.
#[must_use]
pub fn msg(t: MsgType) -> Event {
    Event::Msg(t)
}
#[must_use]
pub fn cpu(op: CpuOp) -> Event {
    Event::Cpu(op)
}
#[must_use]
pub fn tmo(k: TimeoutKind) -> Event {
    Event::Timeout(k)
}

/// Whether a row applies with fault tolerance on, off, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    Both,
    FtOnly,
    NonFtOnly,
}

impl Gate {
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gate::Both => "both",
            Gate::FtOnly => "ft",
            Gate::NonFtOnly => "non-ft",
        }
    }

    #[must_use]
    pub fn active(self, ft: bool) -> bool {
        match self {
            Gate::Both => true,
            Gate::FtOnly => ft,
            Gate::NonFtOnly => !ft,
        }
    }
}

/// Destination role of an emitted message (resolved dynamically at runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The home L2 bank of the address.
    Home,
    /// The memory controller.
    MemCtl,
    /// The original requester named in the triggering message.
    Requester,
    /// The immediate sender of the triggering message.
    Sender,
    /// The L1 currently recorded as owner.
    OwnerL1,
    /// Every current sharer.
    Sharers,
    /// The node the local TBE/MSHR is blocked on.
    Blocker,
    /// The destination recorded in the local backup.
    BackupDest,
    /// The peer of a pending AckO/AckBD handshake.
    AckPeer,
    /// This controller itself (internal re-dispatch).
    SelfNode,
}

impl Role {
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Role::Home => "home",
            Role::MemCtl => "mem",
            Role::Requester => "requester",
            Role::Sender => "sender",
            Role::OwnerL1 => "owner",
            Role::Sharers => "sharers",
            Role::Blocker => "blocker",
            Role::BackupDest => "backup-dest",
            Role::AckPeer => "ack-peer",
            Role::SelfNode => "self",
        }
    }
}

/// A countable resource whose occupancy is tied to controller states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// L1 miss MSHR.
    Mshr,
    /// L1 writeback MSHR.
    WbMshr,
    /// L2 / memory transaction buffer entry.
    Tbe,
    /// L1 data backup (§3.1).
    Backup,
    /// L2-side backup of data written back to memory.
    MemBackup,
    /// L2 external-unblock pending record (§3.1.1).
    ExtPending,
    /// L1 pending AckBD bookkeeping for a blocked line.
    AckBdPend,
    /// Armed lost-request timer.
    TimerLostRequest,
    /// Armed lost-unblock timer.
    TimerLostUnblock,
    /// Armed lost-AckBD timer.
    TimerLostAckBd,
    /// Armed lost-data (backup) timer.
    TimerLostData,
}

impl Resource {
    pub const ALL: [Resource; 11] = [
        Resource::Mshr,
        Resource::WbMshr,
        Resource::Tbe,
        Resource::Backup,
        Resource::MemBackup,
        Resource::ExtPending,
        Resource::AckBdPend,
        Resource::TimerLostRequest,
        Resource::TimerLostUnblock,
        Resource::TimerLostAckBd,
        Resource::TimerLostData,
    ];

    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Resource::Mshr => "mshr",
            Resource::WbMshr => "wb-mshr",
            Resource::Tbe => "tbe",
            Resource::Backup => "backup",
            Resource::MemBackup => "mem-backup",
            Resource::ExtPending => "ext-pending",
            Resource::AckBdPend => "ackbd-pend",
            Resource::TimerLostRequest => "t-lost-request",
            Resource::TimerLostUnblock => "t-lost-unblock",
            Resource::TimerLostAckBd => "t-lost-ackbd",
            Resource::TimerLostData => "t-lost-data",
        }
    }

    #[must_use]
    pub fn from_name(s: &str) -> Option<Resource> {
        Resource::ALL.into_iter().find(|r| r.name() == s)
    }
}

/// Declaration of one controller state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDecl {
    pub name: &'static str,
    /// Facet family this state belongs to.  The first declared family is
    /// mandatory; its first state is the default.
    pub family: &'static str,
    /// State only exists with fault tolerance enabled.
    pub ft_only: bool,
    /// Resources implied by this state in both modes.
    pub implies: Vec<Resource>,
    /// Additional resources implied only when fault tolerance is on.
    pub ft_implies: Vec<Resource>,
    pub desc: &'static str,
}

impl StateDecl {
    #[must_use]
    pub fn new(name: &'static str, family: &'static str, desc: &'static str) -> Self {
        StateDecl {
            name,
            family,
            ft_only: false,
            implies: Vec::new(),
            ft_implies: Vec::new(),
            desc,
        }
    }

    #[must_use]
    pub fn ft(mut self) -> Self {
        self.ft_only = true;
        self
    }

    #[must_use]
    pub fn implies(mut self, rs: &[Resource]) -> Self {
        self.implies = rs.to_vec();
        self
    }

    #[must_use]
    pub fn ft_implies(mut self, rs: &[Resource]) -> Self {
        self.ft_implies = rs.to_vec();
        self
    }

    /// Resources implied by this state under the given mode.
    #[must_use]
    pub fn implied(&self, ft: bool) -> Vec<Resource> {
        let mut v = self.implies.clone();
        if ft {
            v.extend_from_slice(&self.ft_implies);
        }
        v.sort_unstable();
        v
    }
}

/// One declarative transition row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    pub src: &'static str,
    pub event: Event,
    /// Free-text guard distinguishing rows that share (src, event).
    pub guard: &'static str,
    /// Resulting states, possibly across families (see module docs).
    pub next: Vec<&'static str>,
    /// Messages emitted by this row.
    pub sends: Vec<(MsgType, Role)>,
    /// Resources allocated / armed in both modes.
    pub alloc: Vec<Resource>,
    /// Resources freed / disarmed in both modes.
    pub free: Vec<Resource>,
    /// Extra allocations only performed when fault tolerance is on.
    pub ft_alloc: Vec<Resource>,
    /// Extra frees only performed when fault tolerance is on.
    pub ft_free: Vec<Resource>,
    pub gate: Gate,
    /// Paper / PROTOCOL.md reference.
    pub paper: &'static str,
}

impl Transition {
    #[must_use]
    pub fn new(src: &'static str, event: Event, next: &[&'static str]) -> Self {
        Transition {
            src,
            event,
            guard: "",
            next: next.to_vec(),
            sends: Vec::new(),
            alloc: Vec::new(),
            free: Vec::new(),
            ft_alloc: Vec::new(),
            ft_free: Vec::new(),
            gate: Gate::Both,
            paper: "",
        }
    }
}

/// Why a (state, event) pair has no transition row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExceptionKind {
    /// The pair must never occur; observing it is a protocol error.
    Impossible,
    /// The pair is legal but terminally a no-op: the event is discarded
    /// (stale duplicate) or queued for later replay; no coexisting facet
    /// gets to act on it.
    Ignore,
    /// The pair is legal and this facet is transparent to it: a
    /// coexisting facet of another (lower-priority) family handles the
    /// event instead.
    Defer,
}

/// Declares a (state, event) pair that intentionally has no row.
/// `state == "*"` matches every state of the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exception {
    pub state: &'static str,
    pub event: Event,
    pub kind: ExceptionKind,
    pub reason: &'static str,
}

#[must_use]
pub fn impossible(state: &'static str, event: Event, reason: &'static str) -> Exception {
    Exception {
        state,
        event,
        kind: ExceptionKind::Impossible,
        reason,
    }
}

#[must_use]
pub fn ignore(state: &'static str, event: Event, reason: &'static str) -> Exception {
    Exception {
        state,
        event,
        kind: ExceptionKind::Ignore,
        reason,
    }
}

#[must_use]
pub fn defer(state: &'static str, event: Event, reason: &'static str) -> Exception {
    Exception {
        state,
        event,
        kind: ExceptionKind::Defer,
        reason,
    }
}

/// How a (state, event) pair is covered by a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    Row,
    Ignored,
    Deferred,
    Impossible,
    Uncovered,
}

/// A complete, validated controller table.
#[derive(Debug, Clone)]
pub struct ControllerTable {
    pub controller: Controller,
    pub states: Vec<StateDecl>,
    pub rows: Vec<Transition>,
    pub exceptions: Vec<Exception>,
    /// Declared family order; `families[0]` is the mandatory family.
    pub families: Vec<&'static str>,
    state_index: HashMap<&'static str, usize>,
}

impl ControllerTable {
    /// Builds and validates a table.  Errors on unknown state names,
    /// duplicate states, rows naming two next-states in one family, or
    /// contradictory exception/row coverage.
    pub fn new(
        controller: Controller,
        states: Vec<StateDecl>,
        rows: Vec<Transition>,
        exceptions: Vec<Exception>,
    ) -> Result<Self, String> {
        let mut state_index = HashMap::new();
        let mut families: Vec<&'static str> = Vec::new();
        for (i, s) in states.iter().enumerate() {
            if state_index.insert(s.name, i).is_some() {
                return Err(format!("{}: duplicate state {}", controller.name(), s.name));
            }
            if !families.contains(&s.family) {
                families.push(s.family);
            }
        }
        for row in &rows {
            if !state_index.contains_key(row.src) {
                return Err(format!(
                    "{}: row `{} @ {}` names unknown source state",
                    controller.name(),
                    row.src,
                    row.event
                ));
            }
            let mut seen_families: Vec<&str> = Vec::new();
            for n in &row.next {
                let Some(&idx) = state_index.get(n) else {
                    return Err(format!(
                        "{}: row `{} @ {}` names unknown next state {}",
                        controller.name(),
                        row.src,
                        row.event,
                        n
                    ));
                };
                let fam = states[idx].family;
                if seen_families.contains(&fam) {
                    return Err(format!(
                        "{}: row `{} @ {}` sets family {} twice",
                        controller.name(),
                        row.src,
                        row.event,
                        fam
                    ));
                }
                seen_families.push(fam);
            }
        }
        for ex in &exceptions {
            if ex.state != "*" && !state_index.contains_key(ex.state) {
                return Err(format!(
                    "{}: exception `{} @ {}` names unknown state",
                    controller.name(),
                    ex.state,
                    ex.event
                ));
            }
        }
        Ok(ControllerTable {
            controller,
            states,
            rows,
            exceptions,
            families,
            state_index,
        })
    }

    #[must_use]
    pub fn state(&self, name: &str) -> Option<&StateDecl> {
        self.state_index.get(name).map(|&i| &self.states[i])
    }

    /// The mandatory family's default state (first state of first family).
    #[must_use]
    pub fn default_state(&self) -> &StateDecl {
        &self.states[0]
    }

    /// Full event universe for this controller (used by the completeness
    /// lint): every message type, every timeout kind, and — at the L1 —
    /// every CPU op.
    #[must_use]
    pub fn event_universe(&self) -> Vec<Event> {
        let mut evs: Vec<Event> = MsgType::ALL.iter().map(|&t| Event::Msg(t)).collect();
        if self.controller == Controller::L1 {
            evs.extend(CpuOp::ALL.iter().map(|&op| Event::Cpu(op)));
        }
        if self.controller == Controller::L2 {
            evs.push(Event::Victim);
        }
        evs.extend(TimeoutKind::ALL.iter().map(|&k| Event::Timeout(k)));
        evs
    }

    pub fn rows_for(&self, state: &str, event: Event) -> impl Iterator<Item = &Transition> {
        let state = state.to_owned();
        self.rows
            .iter()
            .filter(move |r| r.src == state && r.event == event)
    }

    fn exception_for(&self, state: &str, event: Event) -> Option<&Exception> {
        // Exact-state declarations take precedence over wildcards.
        self.exceptions
            .iter()
            .find(|e| e.state == state && e.event == event)
            .or_else(|| {
                self.exceptions
                    .iter()
                    .find(|e| e.state == "*" && e.event == event)
            })
    }

    /// Coverage of a (state, event) pair: a row wins over an exception.
    #[must_use]
    pub fn coverage(&self, state: &str, event: Event) -> Coverage {
        if self.rows_for(state, event).next().is_some() {
            return Coverage::Row;
        }
        match self.exception_for(state, event).map(|e| e.kind) {
            Some(ExceptionKind::Ignore) => Coverage::Ignored,
            Some(ExceptionKind::Defer) => Coverage::Deferred,
            Some(ExceptionKind::Impossible) => Coverage::Impossible,
            None => Coverage::Uncovered,
        }
    }

    /// Runtime legality of a message arriving while the line's facets are
    /// `facets` (one state name per populated family, mandatory family
    /// always present).  Legal iff any facet has a row for the message or
    /// declares it ignored.  Guards are *not* evaluated: this is an
    /// over-approximation suitable for a cheap runtime cross-check.
    #[must_use]
    pub fn legal_message(&self, facets: &[&str], mt: MsgType) -> bool {
        facets.iter().any(|f| {
            !matches!(
                self.coverage(f, Event::Msg(mt)),
                Coverage::Impossible | Coverage::Uncovered
            )
        })
    }
}

/// Builds one or more `Transition`s from a compact row grammar:
///
/// ```ignore
/// row!([I] @ cpu(CpuOp::Load) => [IS];
///      sends [GetS -> Home]; alloc [Mshr]; ft_alloc [TimerLostRequest];
///      paper "§2")
/// ```
///
/// Optional clauses, in order: `if "guard"` (after the event), `gate G`,
/// `sends [..]`, `alloc [..]`, `free [..]`, `ft_alloc [..]`, `ft_free [..]`,
/// `paper ".."`.
#[macro_export]
macro_rules! row {
    ( [$($src:ident),+] @ $ev:expr $(, if $guard:literal)? => [$($next:ident),*]
      $(; $($rest:tt)*)?
    ) => {{
        #[allow(unused_mut)]
        let mut proto = $crate::transitions::Transition::new(
            "",
            $ev,
            &[$(stringify!($next)),*],
        );
        $( proto.guard = $guard; )?
        $( $crate::row_clauses!(proto; $($rest)*); )?
        let mut out: Vec<$crate::transitions::Transition> = Vec::new();
        $(
            let mut t = proto.clone();
            t.src = stringify!($src);
            out.push(t);
        )+
        out
    }};
}

/// Internal helper of [`row!`]: applies `; clause` items in any order.
#[doc(hidden)]
#[macro_export]
macro_rules! row_clauses {
    ($p:ident; ) => {};
    ($p:ident; gate $gate:ident $(; $($rest:tt)*)? ) => {
        $p.gate = $crate::transitions::Gate::$gate;
        $( $crate::row_clauses!($p; $($rest)*); )?
    };
    ($p:ident; sends [$($mt:ident -> $role:ident),* $(,)?] $(; $($rest:tt)*)? ) => {
        $p.sends = vec![$((
            $crate::msg::MsgType::$mt,
            $crate::transitions::Role::$role
        )),*];
        $( $crate::row_clauses!($p; $($rest)*); )?
    };
    ($p:ident; alloc [$($r:ident),* $(,)?] $(; $($rest:tt)*)? ) => {
        $p.alloc = vec![$($crate::transitions::Resource::$r),*];
        $( $crate::row_clauses!($p; $($rest)*); )?
    };
    ($p:ident; free [$($r:ident),* $(,)?] $(; $($rest:tt)*)? ) => {
        $p.free = vec![$($crate::transitions::Resource::$r),*];
        $( $crate::row_clauses!($p; $($rest)*); )?
    };
    ($p:ident; ft_alloc [$($r:ident),* $(,)?] $(; $($rest:tt)*)? ) => {
        $p.ft_alloc = vec![$($crate::transitions::Resource::$r),*];
        $( $crate::row_clauses!($p; $($rest)*); )?
    };
    ($p:ident; ft_free [$($r:ident),* $(,)?] $(; $($rest:tt)*)? ) => {
        $p.ft_free = vec![$($crate::transitions::Resource::$r),*];
        $( $crate::row_clauses!($p; $($rest)*); )?
    };
    ($p:ident; paper $paper:literal $(; $($rest:tt)*)? ) => {
        $p.paper = $paper;
        $( $crate::row_clauses!($p; $($rest)*); )?
    };
}

/// Collects `row!` invocations into a flat `Vec<Transition>`:
///
/// ```ignore
/// transitions![
///     { [I] @ cpu(CpuOp::Load) => [IS]; sends [GetS -> Home]; alloc [Mshr] },
///     { [S, E, O, M] @ cpu(CpuOp::Load) => [] },
/// ]
/// ```
///
/// A `next` of `[]` in a multi-source row means "facet unchanged" is *not*
/// implied — it means the facet ends; rows that keep the facet name it
/// explicitly.
#[macro_export]
macro_rules! transitions {
    ( $( { $($row:tt)* } ),* $(,)? ) => {{
        let mut v: Vec<$crate::transitions::Transition> = Vec::new();
        $( v.extend($crate::row!( $($row)* )); )*
        v
    }};
}

static L1_TABLE: OnceLock<ControllerTable> = OnceLock::new();
static L2_TABLE: OnceLock<ControllerTable> = OnceLock::new();
static MEM_TABLE: OnceLock<ControllerTable> = OnceLock::new();

/// The reified L1 controller table.
pub fn l1_table() -> &'static ControllerTable {
    L1_TABLE.get_or_init(|| l1::build().expect("L1 transition table is malformed"))
}

/// The reified L2 bank controller table.
pub fn l2_table() -> &'static ControllerTable {
    L2_TABLE.get_or_init(|| l2::build().expect("L2 transition table is malformed"))
}

/// The reified memory controller table.
pub fn mem_table() -> &'static ControllerTable {
    MEM_TABLE.get_or_init(|| mem::build().expect("Mem transition table is malformed"))
}

/// Table for a controller by id.
pub fn table(c: Controller) -> &'static ControllerTable {
    match c {
        Controller::L1 => l1_table(),
        Controller::L2 => l2_table(),
        Controller::Mem => mem_table(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_build() {
        for c in Controller::ALL {
            let t = table(c);
            assert!(!t.states.is_empty());
            assert!(!t.rows.is_empty());
        }
    }

    #[test]
    fn default_states() {
        assert_eq!(l1_table().default_state().name, "I");
        assert_eq!(l2_table().default_state().name, "NP");
        assert_eq!(mem_table().default_state().name, "U");
    }

    #[test]
    fn misrouted_types_are_impossible() {
        use crate::msg::MsgType as T;
        for t in [T::GetX, T::GetS, T::Put, T::Unblock, T::UnblockEx] {
            assert_eq!(
                l1_table().coverage("I", Event::Msg(t)),
                Coverage::Impossible,
                "{t} should be impossible at L1"
            );
        }
        for t in [T::Inv, T::FwdGetS, T::FwdGetX] {
            assert_eq!(
                l2_table().coverage("NP", Event::Msg(t)),
                Coverage::Impossible
            );
        }
    }

    #[test]
    fn legality_over_facets() {
        use crate::msg::MsgType as T;
        // A blocked line with a pending backup still accepts Inv.
        assert!(l1_table().legal_message(&["Mb"], T::Inv));
        // GetX is never legal at an L1, whatever the facets.
        assert!(!l1_table().legal_message(&["I", "IS"], T::GetX));
    }
}
