//! Reified transition table for the memory controller.
//!
//! Facet families:
//! * `Line` (mandatory, default `U`): `U` — memory owns the line (its copy
//!   is up to date, and under FT doubles as the implicit backup of any
//!   exclusive grant), `C` — the chip (some L2 bank) owns the line.
//! * `Tbe`: an allocated transaction buffer entry, named by its stage.

use super::Resource::{Tbe, TimerLostAckBd, TimerLostUnblock};
use super::{ignore, impossible, msg, tmo, Controller, ControllerTable, Exception, StateDecl};
use crate::msg::MsgType;
use crate::proto::TimeoutKind;

fn states() -> Vec<StateDecl> {
    vec![
        StateDecl::new("U", "Line", "memory owns the line"),
        StateDecl::new("C", "Line", "the chip (an L2 bank) owns the line"),
        StateDecl::new(
            "WaitUnblock",
            "Tbe",
            "exclusive grant sent, waiting for UnblockEx",
        )
        .implies(&[Tbe])
        .ft_implies(&[TimerLostUnblock]),
        StateDecl::new(
            "WaitWbData",
            "Tbe",
            "WbAck sent, waiting for writeback data",
        )
        .implies(&[Tbe])
        .ft_implies(&[TimerLostUnblock]),
        StateDecl::new(
            "WaitAckBd",
            "Tbe",
            "writeback data taken, waiting for AckBD",
        )
        .ft()
        .implies(&[Tbe, TimerLostAckBd]),
    ]
}

fn rows() -> Vec<super::Transition> {
    crate::transitions![
        // ---- Requests -------------------------------------------------
        { [U] @ msg(MsgType::GetX), if "fill: memory always grants exclusively" => [U, WaitUnblock];
          sends [DataEx -> Requester]; alloc [Tbe]; ft_alloc [TimerLostUnblock];
          paper "§2; the retained copy is the implicit backup (§3.1)" },
        { [C] @ msg(MsgType::GetX), if "reissued fill" => [C, WaitUnblock];
          sends [DataEx -> Requester]; alloc [Tbe]; ft_alloc [TimerLostUnblock] },
        { [C] @ msg(MsgType::Put), if "writeback from the owning chip" => [C, WaitWbData];
          sends [WbAck -> Requester]; alloc [Tbe]; ft_alloc [TimerLostUnblock];
          paper "three-phase writeback" },
        { [U] @ msg(MsgType::Put), if "stale put acknowledged" => [U];
          sends [WbAck -> Sender] },
        // ---- Unblocks -------------------------------------------------
        { [WaitUnblock] @ msg(MsgType::UnblockEx), if "grant acknowledged" => [C];
          gate NonFtOnly; free [Tbe] },
        { [WaitUnblock] @ msg(MsgType::UnblockEx),
          if "grant acknowledged (AckBD for piggybacked AckO)" => [C];
          gate FtOnly; sends [AckBD -> Sender]; free [Tbe, TimerLostUnblock];
          paper "§3.1.1" },
        // ---- Writeback data -------------------------------------------
        { [WaitWbData] @ msg(MsgType::WbData), if "writeback data accepted" => [U];
          gate NonFtOnly; free [Tbe] },
        { [WaitWbData] @ msg(MsgType::WbData),
          if "writeback data accepted: ownership handshake" => [U, WaitAckBd];
          gate FtOnly; sends [AckO -> Sender];
          free [TimerLostUnblock]; alloc [TimerLostAckBd]; paper "§3.1" },
        { [WaitWbData] @ msg(MsgType::WbNoData), if "no data: chip copy dropped" => [U];
          free [Tbe]; ft_free [TimerLostUnblock] },
        { [WaitWbData] @ msg(MsgType::WbCancel), if "cancelled: chip copy dropped" => [U];
          free [Tbe]; ft_free [TimerLostUnblock] },
        { [WaitAckBd] @ msg(MsgType::AckBD), if "handshake complete" => [];
          gate FtOnly; free [Tbe, TimerLostAckBd] },
        // ---- Ownership probes -----------------------------------------
        { [WaitWbData] @ msg(MsgType::OwnershipPing), if "writeback in flight: refused" => [WaitWbData];
          gate FtOnly; sends [NackO -> Sender]; paper "§3.3" },
        { [WaitUnblock] @ msg(MsgType::OwnershipPing) => [WaitUnblock];
          gate FtOnly; sends [AckO -> Sender] },
        { [WaitAckBd] @ msg(MsgType::OwnershipPing) => [WaitAckBd];
          gate FtOnly; sends [AckO -> Sender] },
        { [U] @ msg(MsgType::OwnershipPing) => [U]; gate FtOnly; sends [AckO -> Sender] },
        { [C] @ msg(MsgType::OwnershipPing) => [C]; gate FtOnly; sends [AckO -> Sender] },
        { [U] @ msg(MsgType::AckO), if "idempotent re-ack" => [U];
          gate FtOnly; sends [AckBD -> Sender]; paper "§3.4" },
        { [C] @ msg(MsgType::AckO), if "idempotent re-ack" => [C];
          gate FtOnly; sends [AckBD -> Sender] },
        // ---- Timeouts -------------------------------------------------
        { [WaitUnblock] @ tmo(TimeoutKind::LostUnblock), if "ping the blocker" => [WaitUnblock];
          gate FtOnly; sends [UnblockPing -> Blocker]; paper "§3.5" },
        { [WaitWbData] @ tmo(TimeoutKind::LostUnblock), if "ping the writer" => [WaitWbData];
          gate FtOnly; sends [WbPing -> Blocker] },
        { [WaitAckBd] @ tmo(TimeoutKind::LostAckBd), if "re-send AckO" => [WaitAckBd];
          gate FtOnly; sends [AckO -> Blocker]; paper "§3.4" },
    ]
}

fn exceptions() -> Vec<Exception> {
    use MsgType as T;
    let mut ex = Vec::new();
    for t in [
        T::WbAck,
        T::Inv,
        T::Ack,
        T::Data,
        T::DataEx,
        T::FwdGetS,
        T::FwdGetX,
        T::UnblockPing,
        T::WbPing,
        T::NackO,
    ] {
        ex.push(impossible(
            "*",
            msg(t),
            "never routed to the memory controller",
        ));
    }
    ex.push(impossible(
        "*",
        msg(T::GetS),
        "the L2 always fetches exclusively (GetX)",
    ));
    ex.push(impossible(
        "*",
        msg(T::Unblock),
        "the L2 always unblocks exclusively (UnblockEx)",
    ));
    ex.push(impossible(
        "*",
        tmo(TimeoutKind::LostRequest),
        "memory never issues requests",
    ));
    ex.push(impossible(
        "*",
        tmo(TimeoutKind::LostData),
        "memory keeps no explicit backup (its retained copy is implicit)",
    ));
    for t in [
        T::UnblockEx,
        T::WbData,
        T::WbNoData,
        T::WbCancel,
        T::AckBD,
        T::AckO,
        T::OwnershipPing,
    ] {
        ex.push(ignore(
            "*",
            msg(t),
            "stale serial or no matching TBE: discarded",
        ));
    }
    for k in [TimeoutKind::LostUnblock, TimeoutKind::LostAckBd] {
        ex.push(ignore("*", tmo(k), "stale timer generation: no-op"));
    }
    for s in ["WaitUnblock", "WaitWbData", "WaitAckBd"] {
        for t in [T::GetX, T::Put] {
            ex.push(ignore(
                s,
                msg(t),
                "queued behind the active transaction (FT reissues refresh the serial)",
            ));
        }
    }
    ex
}

pub(super) fn build() -> Result<ControllerTable, String> {
    ControllerTable::new(Controller::Mem, states(), rows(), exceptions())
}
