//! Shared plumbing between the protocol controllers and the system driver.
//!
//! Controllers are passive state machines: they receive a message, a CPU
//! operation, or a timeout, mutate their local state, and emit effects into
//! a [`Ctx`] — outgoing messages, timeout (re)arms, and core completions.
//! The system driver turns those effects into network sends and scheduled
//! events. This keeps every controller single-threaded, deterministic and
//! unit-testable in isolation.

use ftdircmp_sim::Cycle;

use crate::checker::Checker;
use crate::config::SystemConfig;
use crate::ids::{LineAddr, NodeId};
use crate::msg::Message;
use crate::stats::ProtocolStats;

/// The fault-detection timers of FtDirCMP (paper Table 3, plus the
/// backup-side lost-data timer documented in DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeoutKind {
    /// Lost request: armed at the requester when a request is issued,
    /// disarmed when it is satisfied. Fires → reissue with a new serial.
    LostRequest,
    /// Lost unblock: armed at the responder (L2/memory) when a request is
    /// answered, disarmed when the unblock/writeback arrives. Fires →
    /// `UnblockPing`/`WbPing`.
    LostUnblock,
    /// Lost backup-deletion acknowledgment: armed when an `AckO` is sent,
    /// disarmed when the `AckBD` arrives. Fires → reissue the `AckO`.
    LostAckBd,
    /// Lost data (extension): armed when a node enters backup state,
    /// disarmed when its backup is deleted. Fires → `OwnershipPing`.
    LostData,
}

impl TimeoutKind {
    /// All kinds, in report order.
    pub const ALL: [TimeoutKind; 4] = [
        TimeoutKind::LostRequest,
        TimeoutKind::LostUnblock,
        TimeoutKind::LostAckBd,
        TimeoutKind::LostData,
    ];

    /// Dense index for array-backed counters.
    pub fn index(self) -> usize {
        match self {
            TimeoutKind::LostRequest => 0,
            TimeoutKind::LostUnblock => 1,
            TimeoutKind::LostAckBd => 2,
            TimeoutKind::LostData => 3,
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            TimeoutKind::LostRequest => "lost-request",
            TimeoutKind::LostUnblock => "lost-unblock",
            TimeoutKind::LostAckBd => "lost-ackbd",
            TimeoutKind::LostData => "lost-data",
        }
    }
}

impl std::fmt::Display for TimeoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The set of transition-table facets a controller currently holds for a
/// line (e.g. `"Mb"`, `"miss:GetX"`). At most four facets can coexist on one
/// line, so the set lives on the stack — `table_facets` is called once per
/// delivered message when transition checking is enabled and must not
/// allocate.
#[derive(Debug, Clone, Copy, Default)]
pub struct Facets {
    buf: [&'static str; 4],
    len: u8,
}

impl Facets {
    /// An empty facet set.
    pub const fn new() -> Self {
        Facets {
            buf: [""; 4],
            len: 0,
        }
    }

    /// Adds a facet.
    ///
    /// # Panics
    ///
    /// Panics if more than four facets are pushed.
    pub fn push(&mut self, facet: &'static str) {
        self.buf[self.len as usize] = facet;
        self.len += 1;
    }
}

impl std::ops::Deref for Facets {
    type Target = [&'static str];

    fn deref(&self) -> &[&'static str] {
        &self.buf[..self.len as usize]
    }
}

/// Exponential backoff for recovery retries: attempt `n` waits
/// `base << min(n, 6)` cycles. Without backoff, a detection timeout shorter
/// than the worst-case service latency livelocks: every response arrives
/// after the next reissue already bumped the serial and is discarded as
/// stale. Backoff guarantees the window eventually exceeds any finite
/// latency, making recovery convergent for *any* positive base timeout
/// (DESIGN.md §6.3).
pub fn backoff_delay(base: u64, attempt: u32) -> u64 {
    base.saturating_mul(1u64 << attempt.min(6))
}

/// A request to arm a timeout `delay` cycles from now.
///
/// Timeouts are invalidated by generation counters rather than cancelled:
/// each (node, line, kind) slot has a `gen` that the owning controller bumps
/// whenever the timer is re-armed or becomes irrelevant; a firing with a
/// stale `gen` is ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutReq {
    /// Node that owns the timer.
    pub node: NodeId,
    /// Line the timer guards.
    pub addr: LineAddr,
    /// Which timer.
    pub kind: TimeoutKind,
    /// Generation at arm time.
    pub gen: u64,
    /// Cycles from now until it fires.
    pub delay: u64,
}

/// An outgoing message plus the local processing latency before it enters
/// the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// The message to send.
    pub msg: Message,
    /// Cycles of local processing before injection.
    pub delay: u64,
}

/// Notification that a core's pending memory operation finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreCompletion {
    /// Core whose operation completed.
    pub core: u8,
    /// Line the completed operation touched.
    pub addr: LineAddr,
    /// Whether the completed operation was a store.
    pub was_store: bool,
    /// Extra cycles before the core may proceed.
    pub delay: u64,
}

/// Effect sink handed to controllers.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: Cycle,
    /// Messages to inject into the network.
    pub out: &'a mut Vec<Outgoing>,
    /// Timeouts to arm.
    pub timeouts: &'a mut Vec<TimeoutReq>,
    /// Core completions to deliver.
    pub completions: &'a mut Vec<CoreCompletion>,
    /// Protocol statistics.
    pub stats: &'a mut ProtocolStats,
    /// Global invariant checker.
    pub checker: &'a mut Checker,
    /// System configuration.
    pub config: &'a SystemConfig,
}

impl Ctx<'_> {
    /// Queues `msg` for injection after `delay` cycles of local processing.
    pub fn send(&mut self, msg: Message, delay: u64) {
        self.out.push(Outgoing { msg, delay });
    }

    /// Arms a timeout.
    pub fn arm_timeout(
        &mut self,
        node: NodeId,
        addr: LineAddr,
        kind: TimeoutKind,
        gen: u64,
        delay: u64,
    ) {
        self.timeouts.push(TimeoutReq {
            node,
            addr,
            kind,
            gen,
            delay,
        });
    }

    /// Notifies that `core`'s pending memory operation on `addr` completed.
    pub fn complete(&mut self, core: u8, addr: LineAddr, was_store: bool, delay: u64) {
        self.completions.push(CoreCompletion {
            core,
            addr,
            was_store,
            delay,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_kind_indices_dense() {
        for (i, k) in TimeoutKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.label().is_empty());
        }
    }

    #[test]
    fn labels_distinct() {
        let labels: Vec<&str> = TimeoutKind::ALL.iter().map(|k| k.label()).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(TimeoutKind::LostRequest.to_string(), "lost-request");
    }
}
