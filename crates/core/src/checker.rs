//! Global coherence and data-integrity checker.
//!
//! The checker observes every permission change, store commit, load
//! observation and backup-copy event in the system and verifies the
//! invariants the protocols must uphold:
//!
//! * **SWMR** — at any instant a line has at most one writer, and no reader
//!   other than the writer while a writer exists.
//! * **Data-value integrity** — every load observes the version produced by
//!   the most recent committed store to that line (coherence order), and
//!   every store builds on the latest version: a transient fault that
//!   destroyed the only up-to-date copy of a dirty line surfaces here.
//! * **Bounded backups** — FtDirCMP keeps at most one backup copy per line
//!   in the chip plus at most one at the memory side (paper §3.1.1).
//!
//! Violations are recorded, not panicked on, so a simulation run can report
//! them alongside its other results (and tests can assert their absence).

use ftdircmp_sim::FxHashMap;

use ftdircmp_sim::Cycle;

use crate::ids::{LineAddr, NodeId};

/// Permission a node holds on a line, from the checker's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perm {
    /// No access (Invalid / Backup).
    None,
    /// Read permission (S, O, Ob).
    Read,
    /// Write permission (M, E, Mb, Eb — E counts as write: it may upgrade
    /// silently).
    Write,
}

#[derive(Debug, Default, Clone)]
struct LineTrack {
    writer: Option<NodeId>,
    readers: Vec<NodeId>,
    version: u64,
    backups: Vec<NodeId>,
}

/// The system-wide invariant checker.
///
/// # Example
///
/// ```
/// use ftdircmp_core::checker::{Checker, Perm};
/// use ftdircmp_core::{LineAddr, NodeId};
/// use ftdircmp_sim::Cycle;
///
/// let mut c = Checker::new(true);
/// c.set_perm(NodeId::L1(0), LineAddr(1), Perm::Write, Cycle::ZERO);
/// c.set_perm(NodeId::L1(1), LineAddr(1), Perm::Read, Cycle::ZERO); // violation!
/// assert_eq!(c.violations().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Checker {
    enabled: bool,
    lines: FxHashMap<LineAddr, LineTrack>,
    violations: Vec<String>,
    max_violations: usize,
}

impl Checker {
    /// Creates a checker; a disabled checker records nothing (useful for
    /// pure performance runs).
    pub fn new(enabled: bool) -> Self {
        Checker {
            enabled,
            lines: FxHashMap::default(),
            violations: Vec::new(),
            max_violations: 64,
        }
    }

    /// Whether checking is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    fn violation(&mut self, at: Cycle, text: String) {
        if self.violations.len() < self.max_violations {
            self.violations.push(format!("[{at}] {text}"));
        }
    }

    /// Records a protocol-level error: a message or timeout that the reified
    /// transition tables declare impossible for the controller's current
    /// state, or one that no handler accepts.  Surfaced as a `PROTOCOL:`
    /// violation instead of panicking a campaign worker mid-sweep.
    pub fn protocol_error(&mut self, node: NodeId, addr: LineAddr, what: &str, at: Cycle) {
        if !self.enabled {
            return;
        }
        let msg = format!("PROTOCOL: {node} on {addr}: {what}");
        self.violation(at, msg);
    }

    /// Records that `node` now holds `perm` on `addr`.
    pub fn set_perm(&mut self, node: NodeId, addr: LineAddr, perm: Perm, at: Cycle) {
        if !self.enabled {
            return;
        }
        let t = self.lines.entry(addr).or_default();
        // Remove the node's previous standing.
        if t.writer == Some(node) {
            t.writer = None;
        }
        t.readers.retain(|n| *n != node);
        match perm {
            Perm::None => {}
            Perm::Read => {
                if let Some(w) = t.writer {
                    let msg = format!("SWMR: {node} granted READ on {addr} while {w} holds WRITE");
                    self.violation(at, msg);
                }
                let t = self.lines.entry(addr).or_default();
                t.readers.push(node);
            }
            Perm::Write => {
                let writer = t.writer;
                let readers: Vec<NodeId> = t.readers.clone();
                if let Some(w) = writer {
                    let msg = format!("SWMR: {node} granted WRITE on {addr} while {w} holds WRITE");
                    self.violation(at, msg);
                }
                for r in readers {
                    if r != node {
                        let msg =
                            format!("SWMR: {node} granted WRITE on {addr} while {r} holds READ");
                        self.violation(at, msg);
                    }
                }
                let t = self.lines.entry(addr).or_default();
                t.writer = Some(node);
            }
        }
    }

    /// Records a committed store producing `new_version`.
    ///
    /// The new version must be exactly one past the last committed version:
    /// a store built on stale data (lost update) shows up as a skip or
    /// repeat.
    pub fn store_committed(&mut self, node: NodeId, addr: LineAddr, new_version: u64, at: Cycle) {
        if !self.enabled {
            return;
        }
        let expected = self.lines.entry(addr).or_default().version + 1;
        if new_version != expected {
            let msg = format!(
                "DATA: store by {node} on {addr} produced v{new_version}, expected v{expected} (lost update?)"
            );
            self.violation(at, msg);
        }
        let t = self.lines.entry(addr).or_default();
        t.version = t.version.max(new_version);
    }

    /// Records a load that observed `version`.
    pub fn load_observed(&mut self, node: NodeId, addr: LineAddr, version: u64, at: Cycle) {
        if !self.enabled {
            return;
        }
        let current = self.lines.entry(addr).or_default().version;
        if version != current {
            let msg = format!(
                "DATA: load by {node} on {addr} observed v{version}, but last committed is v{current}"
            );
            self.violation(at, msg);
        }
    }

    /// Records creation of a backup copy at `node`.
    pub fn backup_created(&mut self, node: NodeId, addr: LineAddr, at: Cycle) {
        if !self.enabled {
            return;
        }
        let t = self.lines.entry(addr).or_default();
        if t.backups.contains(&node) {
            let msg = format!("BACKUP: duplicate backup at {node} for {addr}");
            self.violation(at, msg);
            return;
        }
        t.backups.push(node);
        let count = t.backups.len();
        if count > 2 {
            // §3.1.1 allows one backup in-chip plus one at the memory side.
            let msg = format!("BACKUP: {count} simultaneous backups for {addr}");
            self.violation(at, msg);
        }
    }

    /// Records deletion of the backup copy at `node`.
    pub fn backup_deleted(&mut self, node: NodeId, addr: LineAddr, _at: Cycle) {
        if !self.enabled {
            return;
        }
        let t = self.lines.entry(addr).or_default();
        t.readers.len(); // keep borrowck simple
        t.backups.retain(|n| *n != node);
    }

    /// Last committed version of a line (0 if never written).
    pub fn committed_version(&self, addr: LineAddr) -> u64 {
        self.lines.get(&addr).map_or(0, |t| t.version)
    }

    /// Number of lines ever tracked.
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: LineAddr = LineAddr(7);

    fn l1(i: u8) -> NodeId {
        NodeId::L1(i)
    }

    #[test]
    fn single_writer_is_fine() {
        let mut c = Checker::new(true);
        c.set_perm(l1(0), A, Perm::Write, Cycle::ZERO);
        c.set_perm(l1(0), A, Perm::None, Cycle::ZERO);
        c.set_perm(l1(1), A, Perm::Write, Cycle::ZERO);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn many_readers_are_fine() {
        let mut c = Checker::new(true);
        for i in 0..8 {
            c.set_perm(l1(i), A, Perm::Read, Cycle::ZERO);
        }
        assert!(c.violations().is_empty());
    }

    #[test]
    fn writer_plus_reader_violates() {
        let mut c = Checker::new(true);
        c.set_perm(l1(0), A, Perm::Write, Cycle::ZERO);
        c.set_perm(l1(1), A, Perm::Read, Cycle::new(5));
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("SWMR"));
        assert!(c.violations()[0].contains("[5c]"));
    }

    #[test]
    fn reader_then_writer_violates() {
        let mut c = Checker::new(true);
        c.set_perm(l1(0), A, Perm::Read, Cycle::ZERO);
        c.set_perm(l1(1), A, Perm::Write, Cycle::ZERO);
        assert_eq!(c.violations().len(), 1);
    }

    #[test]
    fn upgrade_by_same_node_is_fine() {
        let mut c = Checker::new(true);
        c.set_perm(l1(0), A, Perm::Read, Cycle::ZERO);
        c.set_perm(l1(0), A, Perm::Write, Cycle::ZERO);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn two_writers_violate() {
        let mut c = Checker::new(true);
        c.set_perm(l1(0), A, Perm::Write, Cycle::ZERO);
        c.set_perm(l1(1), A, Perm::Write, Cycle::ZERO);
        assert_eq!(c.violations().len(), 1);
    }

    #[test]
    fn version_sequence_checks() {
        let mut c = Checker::new(true);
        c.store_committed(l1(0), A, 1, Cycle::ZERO);
        c.store_committed(l1(0), A, 2, Cycle::ZERO);
        c.load_observed(l1(1), A, 2, Cycle::ZERO);
        assert!(c.violations().is_empty());
        assert_eq!(c.committed_version(A), 2);
    }

    #[test]
    fn stale_load_is_flagged() {
        let mut c = Checker::new(true);
        c.store_committed(l1(0), A, 1, Cycle::ZERO);
        c.load_observed(l1(1), A, 0, Cycle::ZERO);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("observed v0"));
    }

    #[test]
    fn lost_update_is_flagged() {
        let mut c = Checker::new(true);
        c.store_committed(l1(0), A, 1, Cycle::ZERO);
        // A second store built on the pristine copy (lost update).
        c.store_committed(l1(1), A, 1, Cycle::ZERO);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("lost update"));
    }

    #[test]
    fn backups_bounded_by_two() {
        let mut c = Checker::new(true);
        c.backup_created(l1(0), A, Cycle::ZERO);
        c.backup_created(NodeId::L2(4), A, Cycle::ZERO);
        assert!(c.violations().is_empty());
        c.backup_created(NodeId::Mem(0), A, Cycle::ZERO);
        assert_eq!(c.violations().len(), 1);
        c.backup_deleted(l1(0), A, Cycle::ZERO);
        c.backup_deleted(NodeId::L2(4), A, Cycle::ZERO);
    }

    #[test]
    fn backup_delete_then_recreate_is_legal() {
        // Ownership migration (paper §3.1.1): each hop creates a backup at
        // the previous owner and deletes it once AckBD arrives. Any chain
        // of create/delete pairs must stay inside the bound.
        let mut c = Checker::new(true);
        for hop in 0..10u8 {
            c.backup_created(l1(hop % 4), A, Cycle::new(u64::from(hop) * 100));
            c.backup_created(NodeId::Mem(0), A, Cycle::new(u64::from(hop) * 100 + 10));
            c.backup_deleted(NodeId::Mem(0), A, Cycle::new(u64::from(hop) * 100 + 20));
            c.backup_deleted(l1(hop % 4), A, Cycle::new(u64::from(hop) * 100 + 30));
        }
        assert!(c.violations().is_empty(), "{:#?}", c.violations());
    }

    #[test]
    fn third_simultaneous_backup_violates_even_after_churn() {
        // The bound is on *simultaneous* backups: deletions must free the
        // slot, and a third live backup must still be flagged afterwards.
        let mut c = Checker::new(true);
        c.backup_created(l1(0), A, Cycle::ZERO);
        c.backup_created(NodeId::Mem(0), A, Cycle::ZERO);
        c.backup_deleted(l1(0), A, Cycle::ZERO);
        c.backup_created(l1(1), A, Cycle::ZERO);
        assert!(c.violations().is_empty());
        c.backup_created(l1(2), A, Cycle::new(9));
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("3 simultaneous backups"));
        assert!(c.violations()[0].contains("[9c]"));
    }

    #[test]
    fn backup_bound_is_per_line() {
        // Two backups on each of several distinct lines never interact.
        let mut c = Checker::new(true);
        for line in 0..8u64 {
            c.backup_created(l1(0), LineAddr(line), Cycle::ZERO);
            c.backup_created(NodeId::Mem(0), LineAddr(line), Cycle::ZERO);
        }
        assert!(c.violations().is_empty());
        assert_eq!(c.tracked_lines(), 8);
    }

    #[test]
    fn deleting_a_nonexistent_backup_is_harmless() {
        let mut c = Checker::new(true);
        c.backup_deleted(l1(3), A, Cycle::ZERO);
        c.backup_created(l1(0), A, Cycle::ZERO);
        c.backup_deleted(l1(1), A, Cycle::ZERO); // wrong node: no effect
        c.backup_created(NodeId::Mem(0), A, Cycle::ZERO);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn duplicate_backup_at_same_node_flagged() {
        let mut c = Checker::new(true);
        c.backup_created(l1(0), A, Cycle::ZERO);
        c.backup_created(l1(0), A, Cycle::ZERO);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("duplicate"));
    }

    #[test]
    fn disabled_checker_records_nothing() {
        let mut c = Checker::new(false);
        c.set_perm(l1(0), A, Perm::Write, Cycle::ZERO);
        c.set_perm(l1(1), A, Perm::Write, Cycle::ZERO);
        c.store_committed(l1(0), A, 99, Cycle::ZERO);
        assert!(c.violations().is_empty());
        assert!(!c.is_enabled());
        assert_eq!(c.tracked_lines(), 0);
    }

    #[test]
    fn violation_list_is_capped() {
        let mut c = Checker::new(true);
        for i in 0..100u8 {
            c.set_perm(l1(i % 16), A, Perm::Write, Cycle::ZERO);
        }
        assert!(c.violations().len() <= 64);
    }
}
