//! Protocol-level statistics.

use ftdircmp_noc::VcClass;
use ftdircmp_stats::{Counter, Histogram};

use crate::msg::MsgType;
use crate::proto::TimeoutKind;

/// Everything the evaluation section of the paper reports, collected per
/// run: traffic by message type, miss behavior, fault-tolerance activity.
#[derive(Debug, Clone)]
pub struct ProtocolStats {
    msg_sent: Vec<Counter>,
    msg_bytes: Vec<Counter>,
    /// L1 load hits.
    pub l1_load_hits: Counter,
    /// L1 store hits.
    pub l1_store_hits: Counter,
    /// L1 load misses.
    pub l1_load_misses: Counter,
    /// L1 store misses (including upgrades).
    pub l1_store_misses: Counter,
    /// L2 hits (request satisfied without going to memory).
    pub l2_hits: Counter,
    /// L2 misses (fills from memory).
    pub l2_misses: Counter,
    /// End-to-end L1 miss latency, cycles.
    pub miss_latency: Histogram,
    /// L1 writebacks initiated.
    pub l1_writebacks: Counter,
    /// L2-to-memory writebacks initiated.
    pub l2_writebacks: Counter,
    /// Directory-initiated recalls (L2 evicting a line with L1 copies).
    pub recalls: Counter,
    /// GetS requests converted to exclusive grants by the migratory
    /// optimization.
    pub migratory_grants: Counter,
    timeouts_fired: [Counter; 4],
    /// Requests reissued after a lost-request timeout.
    pub reissues: Counter,
    /// Messages discarded because their serial number was stale (§3.5).
    pub stale_discards: Counter,
    /// Timeouts that fired although nothing was lost (detected when a
    /// stale-serial message later arrives): false positives (§3.5).
    pub false_positives: Counter,
    /// Forwards deferred because the owner was in a blocked-ownership state.
    pub deferred_forwards: Counter,
    /// Requests deferred at a busy directory line.
    pub deferred_requests: Counter,
    /// L1 MSHR occupancy sampled at each miss issue.
    pub l1_mshr_occupancy: Histogram,
    /// L2 TBE occupancy sampled at each transaction start.
    pub l2_tbe_occupancy: Histogram,
}

impl ProtocolStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        ProtocolStats {
            msg_sent: vec![Counter::new(); MsgType::ALL.len()],
            msg_bytes: vec![Counter::new(); MsgType::ALL.len()],
            l1_load_hits: Counter::new(),
            l1_store_hits: Counter::new(),
            l1_load_misses: Counter::new(),
            l1_store_misses: Counter::new(),
            l2_hits: Counter::new(),
            l2_misses: Counter::new(),
            miss_latency: Histogram::new(),
            l1_writebacks: Counter::new(),
            l2_writebacks: Counter::new(),
            recalls: Counter::new(),
            migratory_grants: Counter::new(),
            timeouts_fired: [Counter::new(); 4],
            reissues: Counter::new(),
            stale_discards: Counter::new(),
            false_positives: Counter::new(),
            deferred_forwards: Counter::new(),
            deferred_requests: Counter::new(),
            l1_mshr_occupancy: Histogram::new(),
            l2_tbe_occupancy: Histogram::new(),
        }
    }

    /// Records an injected message of `bytes` bytes.
    pub fn record_msg(&mut self, mtype: MsgType, bytes: u32) {
        self.msg_sent[mtype.index()].incr();
        self.msg_bytes[mtype.index()].add(u64::from(bytes));
    }

    /// Records a fired timeout.
    pub fn record_timeout(&mut self, kind: TimeoutKind) {
        self.timeouts_fired[kind.index()].incr();
    }

    /// Messages sent of a given type.
    pub fn messages(&self, mtype: MsgType) -> u64 {
        self.msg_sent[mtype.index()].get()
    }

    /// Bytes sent of a given type.
    pub fn bytes(&self, mtype: MsgType) -> u64 {
        self.msg_bytes[mtype.index()].get()
    }

    /// Total messages sent.
    pub fn total_messages(&self) -> u64 {
        self.msg_sent.iter().map(|c| c.get()).sum()
    }

    /// Total bytes sent.
    pub fn total_bytes(&self) -> u64 {
        self.msg_bytes.iter().map(|c| c.get()).sum()
    }

    /// Messages aggregated by virtual-channel class (the categories of the
    /// paper's Figure 4).
    pub fn messages_by_class(&self, class: VcClass) -> u64 {
        MsgType::ALL
            .iter()
            .filter(|t| t.vc_class() == class)
            .map(|t| self.messages(*t))
            .sum()
    }

    /// Bytes aggregated by virtual-channel class.
    pub fn bytes_by_class(&self, class: VcClass) -> u64 {
        MsgType::ALL
            .iter()
            .filter(|t| t.vc_class() == class)
            .map(|t| self.bytes(*t))
            .sum()
    }

    /// Timeouts fired of a given kind.
    pub fn timeouts(&self, kind: TimeoutKind) -> u64 {
        self.timeouts_fired[kind.index()].get()
    }

    /// Total timeouts fired across kinds.
    pub fn total_timeouts(&self) -> u64 {
        self.timeouts_fired.iter().map(|c| c.get()).sum()
    }

    /// Total L1 misses.
    pub fn l1_misses(&self) -> u64 {
        self.l1_load_misses.get() + self.l1_store_misses.get()
    }

    /// Total L1 accesses.
    pub fn l1_accesses(&self) -> u64 {
        self.l1_misses() + self.l1_load_hits.get() + self.l1_store_hits.get()
    }
}

impl Default for ProtocolStats {
    fn default() -> Self {
        ProtocolStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_counters_by_type_and_class() {
        let mut s = ProtocolStats::new();
        s.record_msg(MsgType::GetS, 8);
        s.record_msg(MsgType::GetX, 8);
        s.record_msg(MsgType::Data, 72);
        s.record_msg(MsgType::AckO, 8);
        assert_eq!(s.messages(MsgType::GetS), 1);
        assert_eq!(s.total_messages(), 4);
        assert_eq!(s.total_bytes(), 96);
        assert_eq!(s.messages_by_class(VcClass::Request), 2);
        assert_eq!(s.messages_by_class(VcClass::OwnershipAck), 1);
        assert_eq!(s.bytes_by_class(VcClass::Response), 72);
    }

    #[test]
    fn timeout_counters() {
        let mut s = ProtocolStats::new();
        s.record_timeout(TimeoutKind::LostRequest);
        s.record_timeout(TimeoutKind::LostRequest);
        s.record_timeout(TimeoutKind::LostAckBd);
        assert_eq!(s.timeouts(TimeoutKind::LostRequest), 2);
        assert_eq!(s.timeouts(TimeoutKind::LostUnblock), 0);
        assert_eq!(s.total_timeouts(), 3);
    }

    #[test]
    fn l1_aggregates() {
        let mut s = ProtocolStats::new();
        s.l1_load_hits.add(10);
        s.l1_store_hits.add(5);
        s.l1_load_misses.add(2);
        s.l1_store_misses.add(3);
        assert_eq!(s.l1_misses(), 5);
        assert_eq!(s.l1_accesses(), 20);
    }
}
