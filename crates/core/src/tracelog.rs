//! Structured simulation tracing.
//!
//! A [`TraceSink`] attached to a [`crate::System`] observes every delivered
//! message, fired timeout and retired operation — the protocol activity the
//! paper's figures narrate. Two sinks are provided:
//!
//! * [`StderrSink`] — prints events (optionally filtered to a set of lines)
//!   as they happen; also installable via the `FTDIRCMP_TRACE_LINE`
//!   environment variable (comma-separated hex line addresses).
//! * [`CollectSink`] — records events into a shared buffer for programmatic
//!   inspection (used by tests and the walkthrough example).
//!
//! # Example
//!
//! ```
//! use ftdircmp_core::tracelog::{CollectSink, TraceEventKind};
//! use ftdircmp_core::trace::{CoreTrace, TraceOp, Workload};
//! use ftdircmp_core::ids::Addr;
//! use ftdircmp_core::{System, SystemConfig};
//!
//! let (sink, handle) = CollectSink::new(10_000);
//! let wl = Workload::new("t", vec![CoreTrace::new(vec![TraceOp::Store(Addr(0x40))])]);
//! let mut sys = System::new(SystemConfig::ftdircmp(), &wl)?;
//! sys.set_trace_sink(Box::new(sink));
//! sys.run()?;
//! let events = handle.take();
//! assert!(events.iter().any(|e| matches!(e.kind, TraceEventKind::Delivered(_))));
//! # Ok::<(), ftdircmp_core::system::RunError>(())
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use ftdircmp_sim::Cycle;

use crate::ids::{LineAddr, NodeId};
use crate::msg::Message;
use crate::proto::TimeoutKind;
use crate::trace::TraceOp;

/// One observed simulation event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at: Cycle,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The kinds of observable events.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A coherence message arrived at its destination.
    Delivered(Message),
    /// A fault-detection timer fired (possibly as a stale no-op).
    TimeoutFired {
        /// Owning node.
        node: NodeId,
        /// Guarded line.
        addr: LineAddr,
        /// Timer kind.
        kind: TimeoutKind,
    },
    /// A core retired an operation.
    OpRetired {
        /// Core index.
        core: u8,
        /// The retired operation.
        op: TraceOp,
    },
}

impl TraceEvent {
    /// The line this event concerns, if any.
    pub fn line(&self) -> Option<LineAddr> {
        match &self.kind {
            TraceEventKind::Delivered(m) => Some(m.addr),
            TraceEventKind::TimeoutFired { addr, .. } => Some(*addr),
            TraceEventKind::OpRetired { .. } => None,
        }
    }
}

/// Receiver of simulation events.
pub trait TraceSink {
    /// Called once per event, in simulation order.
    fn record(&mut self, event: TraceEvent);
}

/// Prints events to stderr, optionally filtered to a set of line addresses.
#[derive(Debug, Default)]
pub struct StderrSink {
    lines: Option<Vec<u64>>,
}

impl StderrSink {
    /// Prints every event.
    pub fn all() -> Self {
        StderrSink { lines: None }
    }

    /// Prints only events touching the given line addresses.
    pub fn for_lines(lines: Vec<u64>) -> Self {
        StderrSink { lines: Some(lines) }
    }

    /// Builds a sink from the `FTDIRCMP_TRACE_LINE` environment variable
    /// (comma-separated hex line addresses), if set.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("FTDIRCMP_TRACE_LINE").ok()?;
        let lines: Vec<u64> = raw
            .split(',')
            .filter_map(|t| u64::from_str_radix(t.trim().trim_start_matches("0x"), 16).ok())
            .collect();
        Some(StderrSink { lines: Some(lines) })
    }

    fn wants(&self, event: &TraceEvent) -> bool {
        match (&self.lines, event.line()) {
            (None, _) => true,
            (Some(lines), Some(l)) => lines.contains(&l.0),
            (Some(_), None) => false,
        }
    }
}

impl TraceSink for StderrSink {
    fn record(&mut self, event: TraceEvent) {
        if !self.wants(&event) {
            return;
        }
        match &event.kind {
            TraceEventKind::Delivered(m) => {
                eprintln!(
                    "[{}] {} -> {} {} serial={} acks={} data={} dirty={} acko={} stale={}",
                    event.at,
                    m.src,
                    m.dst,
                    m.mtype,
                    m.serial,
                    m.ack_count,
                    m.data.map_or(-1, |d| d.version() as i64),
                    m.data_dirty,
                    m.piggy_acko,
                    m.wb_stale,
                );
            }
            TraceEventKind::TimeoutFired { node, addr, kind } => {
                eprintln!("[{}] TIMEOUT {node} {addr} {kind}", event.at);
            }
            TraceEventKind::OpRetired { core, op } => {
                eprintln!("[{}] RETIRE core{core} {op:?}", event.at);
            }
        }
    }
}

/// Shared handle to the events collected by a [`CollectSink`].
#[derive(Debug, Clone, Default)]
pub struct CollectHandle {
    events: Rc<RefCell<Vec<TraceEvent>>>,
}

impl CollectHandle {
    /// Takes all collected events, leaving the buffer empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.borrow_mut())
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

/// Collects events into a bounded in-memory buffer.
#[derive(Debug)]
pub struct CollectSink {
    events: Rc<RefCell<Vec<TraceEvent>>>,
    cap: usize,
}

impl CollectSink {
    /// Creates a sink capped at `cap` events, plus a handle to read them.
    pub fn new(cap: usize) -> (Self, CollectHandle) {
        let events = Rc::new(RefCell::new(Vec::new()));
        (
            CollectSink {
                events: events.clone(),
                cap,
            },
            CollectHandle { events },
        )
    }
}

impl TraceSink for CollectSink {
    fn record(&mut self, event: TraceEvent) {
        let mut v = self.events.borrow_mut();
        if v.len() < self.cap {
            v.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgType;

    fn event(line: u64) -> TraceEvent {
        TraceEvent {
            at: Cycle::new(5),
            kind: TraceEventKind::Delivered(Message::new(
                MsgType::GetS,
                LineAddr(line),
                NodeId::L1(0),
                NodeId::L2(1),
            )),
        }
    }

    #[test]
    fn collect_sink_caps_and_takes() {
        let (mut sink, handle) = CollectSink::new(2);
        for i in 0..5 {
            sink.record(event(i));
        }
        assert_eq!(handle.len(), 2);
        let taken = handle.take();
        assert_eq!(taken.len(), 2);
        assert!(handle.is_empty());
        assert_eq!(taken[0].line(), Some(LineAddr(0)));
    }

    #[test]
    fn stderr_sink_filters_by_line() {
        let sink = StderrSink::for_lines(vec![7]);
        assert!(sink.wants(&event(7)));
        assert!(!sink.wants(&event(8)));
        assert!(StderrSink::all().wants(&event(8)));
    }

    #[test]
    fn op_retired_has_no_line_and_is_filtered_out_by_line_filters() {
        let e = TraceEvent {
            at: Cycle::ZERO,
            kind: TraceEventKind::OpRetired {
                core: 0,
                op: TraceOp::Think(3),
            },
        };
        assert_eq!(e.line(), None);
        assert!(!StderrSink::for_lines(vec![1]).wants(&e));
    }

    #[test]
    fn from_env_parses_hex_lists() {
        std::env::set_var("FTDIRCMP_TRACE_LINE", "0x6, 1d");
        let sink = StderrSink::from_env().unwrap();
        assert!(sink.wants(&event(0x6)));
        assert!(sink.wants(&event(0x1d)));
        assert!(!sink.wants(&event(0x7)));
        std::env::remove_var("FTDIRCMP_TRACE_LINE");
    }
}
