//! Unit tests for the L2 bank controller (home directory) in isolation.

use crate::data::LineData;
use crate::ids::{LineAddr, NodeId};
use crate::l2::L2Controller;
use crate::msg::{Message, MsgType};
use crate::proto::TimeoutKind;
use crate::serial::SerialNum;
use crate::testharness::Harness;

/// Bank 3 is home for line 3 (+ multiples of 16).
const ME: NodeId = NodeId::L2(3);
const L: LineAddr = LineAddr(3);
/// Line 3 is served by memory controller 3 % 4 = 3.
const MEM: NodeId = NodeId::Mem(3);

fn l2(h: &Harness) -> L2Controller {
    let mut rng = h.rng();
    L2Controller::new(3, &h.config, &mut rng)
}

fn gets(src: u8, serial: u16) -> Message {
    Message::new(MsgType::GetS, L, NodeId::L1(src), ME).serial(SerialNum::new(serial, 8))
}

fn getx(src: u8, serial: u16) -> Message {
    Message::new(MsgType::GetX, L, NodeId::L1(src), ME).serial(SerialNum::new(serial, 8))
}

/// Drives the bank through a full fill: L1 `src` requests, memory answers,
/// the L1 unblocks exclusively. Leaves the directory with owner = src.
fn fill_via_memory(c: &mut L2Controller, h: &mut Harness, src: u8, serial: u16) {
    c.handle_message(getx(src, serial), &mut h.ctx());
    let mem_req = h.sent_one(MsgType::GetX);
    assert_eq!(mem_req.dst, MEM);
    h.clear();
    c.handle_message(
        Message::new(MsgType::DataEx, L, MEM, ME)
            .requester(ME)
            .serial(mem_req.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    let grant = h.sent_one(MsgType::DataEx);
    assert_eq!(grant.dst, NodeId::L1(src));
    h.clear();
    let mut unblock =
        Message::new(MsgType::UnblockEx, L, NodeId::L1(src), ME).serial(SerialNum::new(serial, 8));
    if h.config.protocol.is_fault_tolerant() {
        unblock = unblock.with_acko();
    }
    c.handle_message(unblock, &mut h.ctx());
    if h.config.protocol.is_fault_tolerant() {
        // Memory-side §3.1.1 handshake completes with memory's AckBD.
        let to_mem = h.sent_one(MsgType::UnblockEx);
        assert_eq!(to_mem.dst, MEM);
        assert!(to_mem.piggy_acko);
        c.handle_message(
            Message::new(MsgType::AckBD, L, MEM, ME).serial(to_mem.serial),
            &mut h.ctx(),
        );
    }
    h.clear();
}

// ---------------------------------------------------------------------
// Fills and local grants
// ---------------------------------------------------------------------

#[test]
fn miss_fills_from_memory_and_answers_the_l1_immediately() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    c.handle_message(getx(5, 10), &mut h.ctx());
    let mem_req = h.sent_one(MsgType::GetX);
    assert_eq!(mem_req.dst, MEM);
    assert!(
        h.armed(ME, TimeoutKind::LostRequest).is_some(),
        "bank's own timer"
    );
    assert_eq!(h.stats.l2_misses.get(), 1);
    h.clear();
    c.handle_message(
        Message::new(MsgType::DataEx, L, MEM, ME)
            .requester(ME)
            .serial(mem_req.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    // §3.1.1 relaxation: data goes straight to the L1, no memory handshake
    // on the critical path; DirCMP-identical latency.
    let grant = h.sent_one(MsgType::DataEx);
    assert_eq!(grant.dst, NodeId::L1(5));
    assert_eq!(grant.serial, SerialNum::new(10, 8));
    h.sent_none(MsgType::UnblockEx); // not yet (FT defers it to the AckO)
}

#[test]
fn dircmp_fill_unblocks_memory_immediately() {
    let mut h = Harness::dircmp();
    let mut c = l2(&h);
    c.handle_message(getx(5, 0), &mut h.ctx());
    let mem_req = h.sent_one(MsgType::GetX);
    h.clear();
    c.handle_message(
        Message::new(MsgType::DataEx, L, MEM, ME)
            .requester(ME)
            .serial(mem_req.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    assert_eq!(h.sent_one(MsgType::UnblockEx).dst, MEM);
    h.sent_one(MsgType::DataEx);
}

#[test]
fn resident_line_grants_exclusive_clean_to_sole_reader() {
    // GetS to a line with no sharers is granted exclusively (E), which is
    // an ownership transfer and runs the handshake.
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    // Owner 5 writes back so the bank holds the data again.
    writeback(&mut c, &mut h, 5, 20);
    c.handle_message(gets(6, 30), &mut h.ctx());
    let grant = h.sent_one(MsgType::DataEx);
    assert_eq!(grant.dst, NodeId::L1(6));
    assert!(grant.data_dirty, "bank data was dirty; E would lose it");
    assert_eq!(h.stats.l2_hits.get(), 1);
}

/// Runs a three-phase writeback from L1 `src` (must be the current owner).
fn writeback(c: &mut L2Controller, h: &mut Harness, src: u8, serial: u16) {
    let sn = SerialNum::new(serial, 8);
    c.handle_message(
        Message::new(MsgType::Put, L, NodeId::L1(src), ME).serial(sn),
        &mut h.ctx(),
    );
    let wback = h.sent_one(MsgType::WbAck);
    assert!(wback.wb_wants_data && !wback.wb_stale);
    h.clear();
    let mut dirty = LineData::pristine();
    dirty.write(NodeId::L1(src));
    c.handle_message(
        Message::new(MsgType::WbData, L, NodeId::L1(src), ME)
            .serial(sn)
            .data(dirty)
            .dirty(true),
        &mut h.ctx(),
    );
    if h.config.protocol.is_fault_tolerant() {
        // The bank is the new owner: AckO out, blocked until AckBD.
        let acko = h.sent_one(MsgType::AckO);
        assert_eq!(acko.dst, NodeId::L1(src));
        c.handle_message(
            Message::new(MsgType::AckBD, L, NodeId::L1(src), ME).serial(acko.serial),
            &mut h.ctx(),
        );
    }
    h.clear();
}

#[test]
fn shared_grant_when_sharers_exist() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    writeback(&mut c, &mut h, 5, 20);
    // First reader gets E; it unblocks exclusively.
    c.handle_message(gets(6, 30), &mut h.ctx());
    h.clear();
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, NodeId::L1(6), ME)
            .serial(SerialNum::new(30, 8))
            .with_acko(),
        &mut h.ctx(),
    );
    h.clear();
    // Second reader: the owner is L1-6 now → FwdGetS.
    c.handle_message(gets(7, 40), &mut h.ctx());
    let fwd = h.sent_one(MsgType::FwdGetS);
    assert_eq!(fwd.dst, NodeId::L1(6));
    assert_eq!(fwd.requester, NodeId::L1(7));
    h.clear();
    // Requester unblocks (sharer); owner unchanged.
    c.handle_message(
        Message::new(MsgType::Unblock, L, NodeId::L1(7), ME).serial(SerialNum::new(40, 8)),
        &mut h.ctx(),
    );
    // Third reader: still owner L1-6 → forward again (sharers now {7}).
    c.handle_message(gets(8, 50), &mut h.ctx());
    assert_eq!(h.sent_one(MsgType::FwdGetS).dst, NodeId::L1(6));
}

#[test]
fn getx_forwards_to_owner_and_invalidates_sharers() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    // Add a sharer via forward + unblock.
    c.handle_message(gets(6, 20), &mut h.ctx());
    h.clear();
    c.handle_message(
        Message::new(MsgType::Unblock, L, NodeId::L1(6), ME).serial(SerialNum::new(20, 8)),
        &mut h.ctx(),
    );
    // L1-7 wants to write: forward to owner 5, Inv to sharer 6.
    c.handle_message(getx(7, 30), &mut h.ctx());
    let fwd = h.sent_one(MsgType::FwdGetX);
    assert_eq!(fwd.dst, NodeId::L1(5));
    assert_eq!(fwd.ack_count, 1, "one sharer to invalidate");
    let inv = h.sent_one(MsgType::Inv);
    assert_eq!(inv.dst, NodeId::L1(6));
    assert_eq!(inv.requester, NodeId::L1(7), "acks go to the requester");
}

#[test]
fn owner_upgrade_gets_permission_without_data() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    writeback(&mut c, &mut h, 5, 20);
    // L1-6 reads (E grant), then is downgraded by L1-7's read, leaving
    // owner=6 sharers={7}; then 6 upgrades.
    c.handle_message(gets(6, 30), &mut h.ctx());
    h.clear();
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, NodeId::L1(6), ME)
            .serial(SerialNum::new(30, 8))
            .with_acko(),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(gets(7, 40), &mut h.ctx());
    h.clear();
    c.handle_message(
        Message::new(MsgType::Unblock, L, NodeId::L1(7), ME).serial(SerialNum::new(40, 8)),
        &mut h.ctx(),
    );
    h.clear();
    // Owner 6 upgrades: DataEx without data + Inv to 7.
    c.handle_message(getx(6, 50), &mut h.ctx());
    let grant = h.sent_one(MsgType::DataEx);
    assert_eq!(grant.dst, NodeId::L1(6));
    assert!(grant.data.is_none(), "owner already has the data");
    assert_eq!(grant.ack_count, 1);
    assert_eq!(h.sent_one(MsgType::Inv).dst, NodeId::L1(7));
}

// ---------------------------------------------------------------------
// Serialization, queuing, reissues
// ---------------------------------------------------------------------

#[test]
fn requests_to_a_busy_line_are_deferred_in_order() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    c.handle_message(getx(5, 10), &mut h.ctx());
    let mem_req = h.sent_one(MsgType::GetX);
    h.clear();
    // Two more requests while the fill is outstanding.
    c.handle_message(gets(6, 20), &mut h.ctx());
    c.handle_message(getx(7, 30), &mut h.ctx());
    assert!(h.out.is_empty(), "busy line: nothing serviced");
    assert_eq!(h.stats.deferred_requests.get(), 2);
    // Complete the fill + unblock: the queue drains in FIFO order.
    c.handle_message(
        Message::new(MsgType::DataEx, L, MEM, ME)
            .requester(ME)
            .serial(mem_req.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, NodeId::L1(5), ME)
            .serial(SerialNum::new(10, 8))
            .with_acko(),
        &mut h.ctx(),
    );
    // L1-6's GetS is serviced next: forwarded to owner 5.
    let fwd = h.sent_one(MsgType::FwdGetS);
    assert_eq!(fwd.requester, NodeId::L1(6));
}

#[test]
fn reissued_request_from_blocker_repeats_the_response() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    writeback(&mut c, &mut h, 5, 20);
    c.handle_message(gets(6, 30), &mut h.ctx());
    h.sent_one(MsgType::DataEx);
    h.clear();
    // The grant was lost; L1-6 reissues with serial 31.
    c.handle_message(gets(6, 31), &mut h.ctx());
    let resent = h.sent_one(MsgType::DataEx);
    assert_eq!(resent.serial, SerialNum::new(31, 8));
    assert!(h.stats.false_positives.get() > 0);
}

#[test]
fn reissued_getx_resends_forward_and_invalidations() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    c.handle_message(gets(6, 20), &mut h.ctx());
    h.clear();
    c.handle_message(
        Message::new(MsgType::Unblock, L, NodeId::L1(6), ME).serial(SerialNum::new(20, 8)),
        &mut h.ctx(),
    );
    c.handle_message(getx(7, 30), &mut h.ctx());
    h.clear();
    // Reissue: both the forward and the Inv must be repeated (Figure 2's
    // fix relies on re-acks with the new serial).
    c.handle_message(getx(7, 31), &mut h.ctx());
    let fwd = h.sent_one(MsgType::FwdGetX);
    assert_eq!(fwd.serial, SerialNum::new(31, 8));
    let inv = h.sent_one(MsgType::Inv);
    assert_eq!(inv.serial, SerialNum::new(31, 8));
}

#[test]
fn different_kind_from_blocker_is_a_new_transaction_not_a_reissue() {
    // A GetX from the node whose GetS is still open (unblock lost) must
    // queue, not be answered with the stale GetS response.
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    writeback(&mut c, &mut h, 5, 20);
    c.handle_message(gets(6, 30), &mut h.ctx());
    h.clear();
    // The unblock never arrives; the same node now sends a GetX.
    c.handle_message(getx(6, 35), &mut h.ctx());
    h.sent_none(MsgType::DataEx);
    assert_eq!(h.stats.deferred_requests.get(), 1);
}

#[test]
fn plain_unblock_cannot_complete_a_getx_transaction() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    writeback(&mut c, &mut h, 5, 20);
    c.handle_message(getx(6, 30), &mut h.ctx());
    h.clear();
    // A crossed stale ping-reply: plain Unblock with the right serial.
    c.handle_message(
        Message::new(MsgType::Unblock, L, NodeId::L1(6), ME).serial(SerialNum::new(30, 8)),
        &mut h.ctx(),
    );
    assert!(h.stats.stale_discards.get() > 0);
    // The transaction is still open: the real UnblockEx completes it.
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, NodeId::L1(6), ME)
            .serial(SerialNum::new(30, 8))
            .with_acko(),
        &mut h.ctx(),
    );
    h.sent_one(MsgType::AckBD);
}

#[test]
fn stale_put_gets_a_stale_wback() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    // A Put from a non-owner (ownership raced away).
    c.handle_message(
        Message::new(MsgType::Put, L, NodeId::L1(9), ME).serial(SerialNum::new(40, 8)),
        &mut h.ctx(),
    );
    let wback = h.sent_one(MsgType::WbAck);
    assert!(wback.wb_stale);
}

// ---------------------------------------------------------------------
// FT handshakes and recovery
// ---------------------------------------------------------------------

#[test]
fn ext_handshake_blocks_eviction_until_memorys_ackbd() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    c.handle_message(getx(5, 10), &mut h.ctx());
    let mem_req = h.sent_one(MsgType::GetX);
    h.clear();
    c.handle_message(
        Message::new(MsgType::DataEx, L, MEM, ME)
            .requester(ME)
            .serial(mem_req.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, NodeId::L1(5), ME)
            .serial(SerialNum::new(10, 8))
            .with_acko(),
        &mut h.ctx(),
    );
    // The bank forwards the AckO chain to memory and waits for AckBD.
    let to_mem = h.sent_one(MsgType::UnblockEx);
    assert!(to_mem.piggy_acko);
    assert!(h.armed(ME, TimeoutKind::LostAckBd).is_some());
    assert!(!c.is_idle(), "external handshake still pending");
    c.handle_message(
        Message::new(MsgType::AckBD, L, MEM, ME).serial(to_mem.serial),
        &mut h.ctx(),
    );
    assert!(c.is_idle());
}

#[test]
fn lost_unblock_timeout_pings_the_blocker_with_the_kind() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    writeback(&mut c, &mut h, 5, 20);
    c.handle_message(getx(6, 30), &mut h.ctx());
    let t = h.armed(ME, TimeoutKind::LostUnblock).unwrap();
    h.clear();
    c.handle_timeout(TimeoutKind::LostUnblock, L, t.gen, &mut h.ctx());
    let ping = h.sent_one(MsgType::UnblockPing);
    assert_eq!(ping.dst, NodeId::L1(6));
    assert!(ping.ping_for_store, "the open transaction is a GetX");
    // Backoff on the re-arm.
    let t2 = h.armed(ME, TimeoutKind::LostUnblock).unwrap();
    assert_eq!(t2.delay, h.config.ft.lost_unblock_timeout * 2);
}

#[test]
fn lost_wbdata_timeout_sends_wbping() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    c.handle_message(
        Message::new(MsgType::Put, L, NodeId::L1(5), ME).serial(SerialNum::new(20, 8)),
        &mut h.ctx(),
    );
    let t = h.armed(ME, TimeoutKind::LostUnblock).unwrap();
    h.clear();
    c.handle_timeout(TimeoutKind::LostUnblock, L, t.gen, &mut h.ctx());
    let ping = h.sent_one(MsgType::WbPing);
    assert_eq!(ping.dst, NodeId::L1(5));
    assert!(ping.wb_wants_data);
}

#[test]
fn wbcancel_closes_the_writeback_transaction() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    c.handle_message(
        Message::new(MsgType::Put, L, NodeId::L1(5), ME).serial(SerialNum::new(20, 8)),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::WbCancel, L, NodeId::L1(5), ME).serial(SerialNum::new(20, 8)),
        &mut h.ctx(),
    );
    assert!(c.is_idle(), "WbCancel must close the transaction");
}

#[test]
fn standalone_acko_from_l1_is_answered_with_ackbd() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    writeback(&mut c, &mut h, 5, 20);
    c.handle_message(gets(6, 30), &mut h.ctx());
    h.clear();
    // The UnblockEx+AckO was lost; the L1's lost-AckBD timer resends a
    // standalone AckO.
    c.handle_message(
        Message::new(MsgType::AckO, L, NodeId::L1(6), ME).serial(SerialNum::new(31, 8)),
        &mut h.ctx(),
    );
    assert_eq!(h.sent_one(MsgType::AckBD).dst, NodeId::L1(6));
}

#[test]
fn unblock_ping_from_memory_resends_ext_handshake() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    c.handle_message(getx(5, 10), &mut h.ctx());
    let mem_req = h.sent_one(MsgType::GetX);
    h.clear();
    c.handle_message(
        Message::new(MsgType::DataEx, L, MEM, ME)
            .requester(ME)
            .serial(mem_req.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, NodeId::L1(5), ME)
            .serial(SerialNum::new(10, 8))
            .with_acko(),
        &mut h.ctx(),
    );
    h.clear();
    // Memory never saw the UnblockEx; it pings.
    let mut ping = Message::new(MsgType::UnblockPing, L, MEM, ME).serial(mem_req.serial);
    ping.ping_for_store = true;
    c.handle_message(ping, &mut h.ctx());
    let resent = h.sent_one(MsgType::UnblockEx);
    assert_eq!(resent.dst, MEM);
    assert!(resent.piggy_acko);
}

#[test]
fn unblock_ping_from_memory_during_fill_is_ignored() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    c.handle_message(getx(5, 10), &mut h.ctx());
    let mem_req = h.sent_one(MsgType::GetX);
    h.clear();
    // The DataEx from memory was lost; memory (wrongly) pings: the fill is
    // unresolved, so nothing must be sent — the bank's own lost-request
    // timer recovers by reissuing the fill.
    let mut ping = Message::new(MsgType::UnblockPing, L, MEM, ME).serial(mem_req.serial);
    ping.ping_for_store = true;
    c.handle_message(ping, &mut h.ctx());
    h.sent_none(MsgType::UnblockEx);
}

#[test]
fn fill_lost_request_timeout_reissues_to_memory() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    c.handle_message(getx(5, 10), &mut h.ctx());
    let first = h.sent_one(MsgType::GetX);
    let t = h.armed(ME, TimeoutKind::LostRequest).unwrap();
    h.clear();
    c.handle_timeout(TimeoutKind::LostRequest, L, t.gen, &mut h.ctx());
    let second = h.sent_one(MsgType::GetX);
    assert_eq!(second.dst, MEM);
    assert_ne!(second.serial, first.serial);
    // The response to the *new* serial is accepted.
    h.clear();
    c.handle_message(
        Message::new(MsgType::DataEx, L, MEM, ME)
            .requester(ME)
            .serial(second.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    h.sent_one(MsgType::DataEx);
}

// ---------------------------------------------------------------------
// Evictions and recalls
// ---------------------------------------------------------------------

/// Fills `n` distinct lines of the same L2 set via memory fills and
/// writebacks, leaving them bank-owned and dirty.
fn fill_bank_owned_lines(c: &mut L2Controller, h: &mut Harness, n: u64) -> Vec<LineAddr> {
    let sets = h.config.l2_sets();
    let mut lines = Vec::new();
    for i in 0..n {
        let addr = LineAddr(3 + i * sets * 16); // same set, all homed at bank 3
        fill_line(c, h, addr, 5, (10 + i * 10) as u16);
        writeback_line(c, h, addr, 5, (15 + i * 10) as u16);
        lines.push(addr);
    }
    lines
}

fn fill_line(c: &mut L2Controller, h: &mut Harness, addr: LineAddr, src: u8, serial: u16) {
    let sn = SerialNum::new(serial, 8);
    c.handle_message(
        Message::new(MsgType::GetX, addr, NodeId::L1(src), ME).serial(sn),
        &mut h.ctx(),
    );
    let mem_req = h.sent_one(MsgType::GetX);
    h.clear();
    c.handle_message(
        Message::new(MsgType::DataEx, addr, mem_req.dst, ME)
            .requester(ME)
            .serial(mem_req.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::UnblockEx, addr, NodeId::L1(src), ME)
            .serial(sn)
            .with_acko(),
        &mut h.ctx(),
    );
    let to_mem = h.sent_one(MsgType::UnblockEx);
    c.handle_message(
        Message::new(MsgType::AckBD, addr, to_mem.dst, ME).serial(to_mem.serial),
        &mut h.ctx(),
    );
    h.clear();
}

fn writeback_line(c: &mut L2Controller, h: &mut Harness, addr: LineAddr, src: u8, serial: u16) {
    let sn = SerialNum::new(serial, 8);
    c.handle_message(
        Message::new(MsgType::Put, addr, NodeId::L1(src), ME).serial(sn),
        &mut h.ctx(),
    );
    h.clear();
    let mut dirty = LineData::pristine();
    dirty.write(NodeId::L1(src));
    c.handle_message(
        Message::new(MsgType::WbData, addr, NodeId::L1(src), ME)
            .serial(sn)
            .data(dirty)
            .dirty(true),
        &mut h.ctx(),
    );
    let acko = h.sent_one(MsgType::AckO);
    c.handle_message(
        Message::new(MsgType::AckBD, addr, NodeId::L1(src), ME).serial(acko.serial),
        &mut h.ctx(),
    );
    h.clear();
}

#[test]
fn overfull_set_evicts_dirty_victim_to_memory() {
    let mut h = Harness::ft();
    // Shrink the bank so a set fills quickly: 1 set x 8 ways? Use default
    // assoc (8) and fill 8 + 1 lines of one set.
    let mut c = l2(&h);
    let assoc = u64::from(h.config.l2_assoc);
    fill_bank_owned_lines(&mut c, &mut h, assoc);
    // One more line in the same set: the LRU dirty victim goes to memory.
    // (Drive the fill by hand: the eviction is emitted when the memory data
    // arrives and the new line is installed.)
    let sets = h.config.l2_sets();
    let addr = LineAddr(3 + assoc * sets * 16);
    c.handle_message(
        Message::new(MsgType::GetX, addr, NodeId::L1(6), ME).serial(SerialNum::new(200, 8)),
        &mut h.ctx(),
    );
    let mem_req = h.sent_one(MsgType::GetX);
    h.clear();
    c.handle_message(
        Message::new(MsgType::DataEx, addr, mem_req.dst, ME)
            .requester(ME)
            .serial(mem_req.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    let put = h.sent_one(MsgType::Put);
    assert!(put.dst.is_mem());
    assert_eq!(h.stats.l2_writebacks.get(), 1);
    h.clear();
    // Complete the eviction: WbAck → WbData (+ backup) → AckO → AckBD.
    let mut wback = Message::new(MsgType::WbAck, put.addr, put.dst, ME).serial(put.serial);
    wback.wb_wants_data = true;
    c.handle_message(wback, &mut h.ctx());
    let wbdata = h.sent_one(MsgType::WbData);
    assert!(wbdata.data.is_some());
    assert!(h.armed(ME, TimeoutKind::LostData).is_some(), "backup timer");
    h.clear();
    c.handle_message(
        Message::new(MsgType::AckO, put.addr, put.dst, ME).serial(put.serial),
        &mut h.ctx(),
    );
    assert_eq!(h.sent_one(MsgType::AckBD).dst, put.dst);
    // (The 9th fill's own transaction is still open — only the eviction is
    // driven to completion here.)
}

#[test]
fn victim_with_l1_owner_is_recalled() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    let assoc = u64::from(h.config.l2_assoc);
    let sets = h.config.l2_sets();
    // Fill `assoc` lines owned by L1-5 (no writeback: L1 keeps ownership).
    for i in 0..assoc {
        let addr = LineAddr(3 + i * sets * 16);
        fill_line(&mut c, &mut h, addr, 5, (10 + i) as u16);
    }
    // One more: every way holds an L1-owned line; the LRU one is recalled.
    let addr = LineAddr(3 + assoc * sets * 16);
    c.handle_message(
        Message::new(MsgType::GetX, addr, NodeId::L1(6), ME).serial(SerialNum::new(200, 8)),
        &mut h.ctx(),
    );
    let mem_req = h.sent_one(MsgType::GetX);
    h.clear();
    c.handle_message(
        Message::new(MsgType::DataEx, addr, mem_req.dst, ME)
            .requester(ME)
            .serial(mem_req.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    let recall = h.sent_one(MsgType::FwdGetX);
    assert_eq!(recall.requester, ME, "the bank itself is the requester");
    assert_eq!(h.stats.recalls.get(), 1);
    h.clear();
    // The owner surrenders dirty data; bank AckOs, gets AckBD, then evicts
    // the recalled data to memory.
    let mut dirty = LineData::pristine();
    dirty.write(NodeId::L1(5));
    c.handle_message(
        Message::new(MsgType::DataEx, recall.addr, NodeId::L1(5), ME)
            .requester(ME)
            .serial(recall.serial)
            .data(dirty)
            .dirty(true),
        &mut h.ctx(),
    );
    let acko = h.sent_one(MsgType::AckO);
    assert_eq!(acko.dst, NodeId::L1(5));
    h.clear();
    c.handle_message(
        Message::new(MsgType::AckBD, recall.addr, NodeId::L1(5), ME).serial(acko.serial),
        &mut h.ctx(),
    );
    let put = h.sent_one(MsgType::Put);
    assert!(put.dst.is_mem(), "recalled dirty data must reach memory");
}

#[test]
fn recall_timeout_reprods_owner_and_sharers() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    let assoc = u64::from(h.config.l2_assoc);
    let sets = h.config.l2_sets();
    for i in 0..assoc {
        let addr = LineAddr(3 + i * sets * 16);
        fill_line(&mut c, &mut h, addr, 5, (10 + i) as u16);
    }
    let addr = LineAddr(3 + assoc * sets * 16);
    c.handle_message(
        Message::new(MsgType::GetX, addr, NodeId::L1(6), ME).serial(SerialNum::new(200, 8)),
        &mut h.ctx(),
    );
    let mem_req = h.sent_one(MsgType::GetX);
    h.clear();
    c.handle_message(
        Message::new(MsgType::DataEx, addr, mem_req.dst, ME)
            .requester(ME)
            .serial(mem_req.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    let recall = h.sent_one(MsgType::FwdGetX);
    // Find the recall's own lost-unblock timer (the newest one armed for
    // the victim's address).
    let t = h
        .timeouts
        .iter()
        .rev()
        .find(|t| t.node == ME && t.kind == TimeoutKind::LostUnblock && t.addr == recall.addr)
        .copied()
        .expect("recall arms a lost-unblock timer");
    h.clear();
    // The recall forward was lost: the timer re-sends it.
    c.handle_timeout(TimeoutKind::LostUnblock, recall.addr, t.gen, &mut h.ctx());
    let again = h.sent_one(MsgType::FwdGetX);
    assert_eq!(again.dst, recall.dst);
}

// ---------------------------------------------------------------------
// Migratory-sharing detection (paper §2)
// ---------------------------------------------------------------------

/// Drives: owner writes (GetX), another node reads (GetS), then that node
/// writes (GetX) — the classic migratory pattern.
fn establish_migratory(c: &mut L2Controller, h: &mut Harness) {
    fill_via_memory(c, h, 5, 10);
    // L1-6 reads: forwarded to owner 5; L1-6 unblocks exclusively (E grant
    // via forward is not what happens — owner stays; L1-6 becomes sharer).
    c.handle_message(gets(6, 20), &mut h.ctx());
    h.clear();
    c.handle_message(
        Message::new(MsgType::Unblock, L, NodeId::L1(6), ME).serial(SerialNum::new(20, 8)),
        &mut h.ctx(),
    );
    h.clear();
    // L1-6 now writes: last_getter == 6 and last was a GetS → migratory.
    c.handle_message(getx(6, 30), &mut h.ctx());
    h.clear();
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, NodeId::L1(6), ME).serial(SerialNum::new(30, 8)),
        &mut h.ctx(),
    );
    h.clear();
}

#[test]
fn migratory_pattern_converts_reads_to_exclusive_grants() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    establish_migratory(&mut c, &mut h);
    // The next GetS (from L1-7) is treated as exclusive: FwdGetX, so the
    // subsequent write by L1-7 hits locally (the optimization's point).
    c.handle_message(gets(7, 40), &mut h.ctx());
    h.sent_one(MsgType::FwdGetX);
    h.sent_none(MsgType::FwdGetS);
    assert_eq!(h.stats.migratory_grants.get(), 1);
}

#[test]
fn consecutive_reads_clear_the_migratory_bit() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    establish_migratory(&mut c, &mut h);
    // First reader: migratory grant (exclusive via forward).
    c.handle_message(gets(7, 40), &mut h.ctx());
    h.clear();
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, NodeId::L1(7), ME).serial(SerialNum::new(40, 8)),
        &mut h.ctx(),
    );
    h.clear();
    // Second consecutive reader: two GetS in a row clear the bit, so this
    // one is a plain shared forward.
    c.handle_message(gets(8, 50), &mut h.ctx());
    h.sent_one(MsgType::FwdGetS);
    h.sent_none(MsgType::FwdGetX);
    assert_eq!(
        h.stats.migratory_grants.get(),
        1,
        "no second migratory grant"
    );
}

#[test]
fn migratory_detection_respects_the_config_switch() {
    let mut h = Harness::new({
        let mut cfg = crate::config::SystemConfig::ftdircmp();
        cfg.migratory_sharing = false;
        cfg
    });
    let mut c = l2(&h);
    establish_migratory(&mut c, &mut h);
    c.handle_message(gets(7, 40), &mut h.ctx());
    h.sent_one(MsgType::FwdGetS);
    h.sent_none(MsgType::FwdGetX);
    assert_eq!(h.stats.migratory_grants.get(), 0);
}

// ---------------------------------------------------------------------
// Further edge cases
// ---------------------------------------------------------------------

#[test]
fn wbnodata_from_clean_exclusive_removes_dataless_line() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    // L1-5 holds E (granted exclusively) and evicts cleanly.
    c.handle_message(
        Message::new(MsgType::Put, L, NodeId::L1(5), ME).serial(SerialNum::new(20, 8)),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::WbNoData, L, NodeId::L1(5), ME).serial(SerialNum::new(20, 8)),
        &mut h.ctx(),
    );
    // No data anywhere on chip: memory owns again. No FT handshake (no
    // data moved).
    h.sent_none(MsgType::AckO);
    assert!(c.is_idle());
    // The next request is a fresh fill.
    c.handle_message(gets(6, 30), &mut h.ctx());
    assert_eq!(h.sent_one(MsgType::GetX).dst, MEM);
    assert_eq!(h.stats.l2_misses.get(), 2);
}

#[test]
fn queue_pumps_through_consecutive_transactions() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    writeback(&mut c, &mut h, 5, 20);
    // Three readers pile up while the first is serviced.
    c.handle_message(gets(6, 30), &mut h.ctx());
    c.handle_message(gets(7, 40), &mut h.ctx());
    c.handle_message(gets(8, 50), &mut h.ctx());
    h.clear();
    // 6 unblocks exclusively (it got the E grant)...
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, NodeId::L1(6), ME)
            .serial(SerialNum::new(30, 8))
            .with_acko(),
        &mut h.ctx(),
    );
    // ...which services 7 next: forwarded to owner 6.
    let fwd = h.sent_one(MsgType::FwdGetS);
    assert_eq!(fwd.requester, NodeId::L1(7));
    h.clear();
    c.handle_message(
        Message::new(MsgType::Unblock, L, NodeId::L1(7), ME).serial(SerialNum::new(40, 8)),
        &mut h.ctx(),
    );
    // ...and then 8.
    let fwd = h.sent_one(MsgType::FwdGetS);
    assert_eq!(fwd.requester, NodeId::L1(8));
}

#[test]
fn queued_reissue_refreshes_the_waiting_entry() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    c.handle_message(getx(5, 10), &mut h.ctx());
    let mem_req = h.sent_one(MsgType::GetX);
    h.clear();
    // L1-6's request queues; then it reissues while still queued.
    c.handle_message(gets(6, 20), &mut h.ctx());
    c.handle_message(gets(6, 21), &mut h.ctx());
    assert_eq!(
        h.stats.deferred_requests.get(),
        1,
        "reissue must not duplicate"
    );
    // Complete the fill; the queued request is serviced with serial 21.
    c.handle_message(
        Message::new(MsgType::DataEx, L, MEM, ME)
            .requester(ME)
            .serial(mem_req.serial)
            .data(LineData::pristine()),
        &mut h.ctx(),
    );
    h.clear();
    c.handle_message(
        Message::new(MsgType::UnblockEx, L, NodeId::L1(5), ME)
            .serial(SerialNum::new(10, 8))
            .with_acko(),
        &mut h.ctx(),
    );
    let fwd = h.sent_one(MsgType::FwdGetS);
    assert_eq!(fwd.serial, SerialNum::new(21, 8));
}

#[test]
fn tbe_occupancy_is_sampled() {
    let mut h = Harness::ft();
    let mut c = l2(&h);
    fill_via_memory(&mut c, &mut h, 5, 10);
    assert!(h.stats.l2_tbe_occupancy.count() > 0);
    assert_eq!(h.stats.l2_tbe_occupancy.max(), Some(1));
}
