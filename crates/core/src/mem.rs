//! The memory controller: directory of last resort and backing store.
//!
//! Each controller serves a line-interleaved slice of the address space.
//! From the coherence protocol's point of view it is just another node
//! (paper §3.1 footnote): it grants exclusive data to the home L2 bank,
//! coordinates L2 writebacks with the same three-phase scheme, and — under
//! FtDirCMP — participates in the ownership handshakes. Its resident copy
//! doubles as the backup for outgoing data, so fills need no extra storage.

use ftdircmp_sim::{FxHashMap, FxHashSet};
use std::collections::VecDeque;

use crate::data::LineData;
use crate::ids::{LineAddr, NodeId};
use crate::msg::{Message, MsgType};
use crate::proto::{backoff_delay, Ctx, Facets, TimeoutKind};
use crate::serial::SerialNum;

#[allow(clippy::enum_variant_names)] // Wait* mirrors the protocol's terminology
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemStage {
    /// DataEx sent; waiting for the L2's UnblockEx (+AckO under FT).
    WaitUnblock,
    /// WbAck sent; waiting for WbData/WbNoData.
    WaitWbData,
    /// FT: AckO sent for received WbData; waiting for AckBD.
    WaitAckBd,
}

#[derive(Debug, Clone)]
struct MemTbe {
    blocker: NodeId,
    serial: SerialNum,
    stage: MemStage,
    unblock_gen: u64,
    unblock_retries: u32,
    ackbd_gen: u64,
    ackbd_retries: u32,
    acko_serial: SerialNum,
}

/// One memory controller.
#[derive(Debug, Clone)]
pub struct MemController {
    me: NodeId,
    ft: bool,
    store: FxHashMap<LineAddr, LineData>,
    l2_owned: FxHashSet<LineAddr>,
    tbes: FxHashMap<LineAddr, MemTbe>,
    waiting: FxHashMap<LineAddr, VecDeque<Message>>,
    gen_counter: u64,
}

impl MemController {
    /// Creates memory controller `index`.
    pub fn new(index: u8, fault_tolerant: bool) -> Self {
        MemController {
            me: NodeId::Mem(index),
            ft: fault_tolerant,
            store: FxHashMap::default(),
            l2_owned: FxHashSet::default(),
            tbes: FxHashMap::default(),
            waiting: FxHashMap::default(),
            gen_counter: 0,
        }
    }

    /// This controller's node id.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Whether no transactions are in flight.
    pub fn is_idle(&self) -> bool {
        self.tbes.is_empty() && self.waiting.values().all(VecDeque::is_empty)
    }

    /// Human-readable summary of in-flight state (deadlock diagnostics).
    pub fn pending_summary(&self) -> String {
        let mut out = String::new();
        for (a, t) in &self.tbes {
            out.push_str(&format!(
                "{} tbe {a} stage={:?} blocker={} serial={}\n",
                self.me, t.stage, t.blocker, t.serial
            ));
        }
        for (a, q) in &self.waiting {
            if !q.is_empty() {
                out.push_str(&format!("{} waiting {a} n={}\n", self.me, q.len()));
            }
        }
        out
    }

    /// The stored version of a line (0 if never written back).
    pub fn stored_version(&self, addr: LineAddr) -> u64 {
        self.store.get(&addr).map_or(0, |d| d.version())
    }

    /// Whether the chip (L2) currently owns the line.
    pub fn is_chip_owned(&self, addr: LineAddr) -> bool {
        self.l2_owned.contains(&addr)
    }

    fn data_of(&self, addr: LineAddr) -> LineData {
        self.store.get(&addr).copied().unwrap_or_default()
    }

    fn next_gen(&mut self) -> u64 {
        self.gen_counter += 1;
        self.gen_counter
    }

    /// The line's current facet configuration, in the state vocabulary of
    /// the reified transition table ([`crate::transitions::mem_table`]).
    /// The first entry is always the mandatory `Line` facet.
    pub fn table_facets(&self, addr: LineAddr) -> Facets {
        let mut f = Facets::new();
        f.push(if self.l2_owned.contains(&addr) {
            "C"
        } else {
            "U"
        });
        if let Some(tbe) = self.tbes.get(&addr) {
            f.push(match tbe.stage {
                MemStage::WaitUnblock => "WaitUnblock",
                MemStage::WaitWbData => "WaitWbData",
                MemStage::WaitAckBd => "WaitAckBd",
            });
        }
        f
    }

    /// Cross-checks an incoming message against the reified transition
    /// table (guards are not evaluated — this is an over-approximation).
    /// Only active while the invariant checker is enabled, keeping the
    /// campaign hot path untouched.
    fn table_check(&self, msg: &Message, ctx: &mut Ctx<'_>) {
        if !ctx.checker.is_enabled() {
            return;
        }
        let facets = self.table_facets(msg.addr);
        if !crate::transitions::mem_table().legal_message(&facets, msg.mtype) {
            ctx.checker.protocol_error(
                self.me,
                msg.addr,
                &format!("unexpected {} in state {}", msg.mtype, facets.join("+")),
                ctx.now,
            );
        }
    }

    /// Handles an incoming network message.
    pub fn handle_message(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        self.table_check(&msg, ctx);
        match msg.mtype {
            MsgType::GetX | MsgType::GetS | MsgType::Put => self.on_request(msg, ctx),
            MsgType::Unblock | MsgType::UnblockEx => self.on_unblock(msg, ctx),
            MsgType::WbData | MsgType::WbNoData | MsgType::WbCancel => self.on_wb_data(msg, ctx),
            MsgType::AckBD => self.on_ackbd(msg, ctx),
            MsgType::AckO => {
                // Not part of any expected flow (memory's backups are
                // implicit), but answer idempotently.
                ctx.send(
                    Message::new(MsgType::AckBD, msg.addr, self.me, msg.src).serial(msg.serial),
                    2,
                );
            }
            MsgType::OwnershipPing => self.on_ownership_ping(msg, ctx),
            MsgType::WbAck
            | MsgType::Inv
            | MsgType::Ack
            | MsgType::Data
            | MsgType::DataEx
            | MsgType::FwdGetS
            | MsgType::FwdGetX
            | MsgType::UnblockPing
            | MsgType::WbPing
            | MsgType::NackO => {
                // Misrouted: no memory handler. `table_check` above recorded
                // the protocol violation; drop the message instead of
                // panicking.
            }
        }
    }

    /// Handles a fired timeout.
    pub fn handle_timeout(
        &mut self,
        kind: TimeoutKind,
        addr: LineAddr,
        gen: u64,
        ctx: &mut Ctx<'_>,
    ) {
        match kind {
            TimeoutKind::LostUnblock => self.on_lost_unblock(addr, gen, ctx),
            TimeoutKind::LostAckBd => self.on_lost_ackbd(addr, gen, ctx),
            _ => {}
        }
    }

    fn on_request(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        if let Some(tbe) = self.tbes.get(&msg.addr) {
            // Same-kind check: a Put from the blocker while its fill awaits
            // an unblock is a new transaction, not a reissue (and vice
            // versa) — it must queue.
            let same_kind = match tbe.stage {
                MemStage::WaitUnblock => msg.mtype == MsgType::GetX || msg.mtype == MsgType::GetS,
                MemStage::WaitWbData | MemStage::WaitAckBd => msg.mtype == MsgType::Put,
            };
            if tbe.blocker == msg.src && same_kind {
                if self.ft && tbe.serial != msg.serial {
                    self.on_reissue(msg, ctx);
                }
                return;
            }
            let q = self.waiting.entry(msg.addr).or_default();
            if let Some(existing) = q
                .iter_mut()
                .find(|m| m.src == msg.src && m.mtype == msg.mtype)
            {
                existing.serial = msg.serial;
            } else {
                q.push_back(msg);
                ctx.stats.deferred_requests.incr();
            }
            return;
        }
        self.service_request(msg, ctx);
    }

    fn on_reissue(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        ctx.stats.false_positives.incr();
        let Some(tbe) = self.tbes.get_mut(&msg.addr) else {
            return;
        };
        tbe.serial = msg.serial;
        let stage = tbe.stage;
        match stage {
            MemStage::WaitUnblock => {
                let data = self.data_of(msg.addr);
                ctx.send(
                    Message::new(MsgType::DataEx, msg.addr, self.me, msg.src)
                        .requester(msg.src)
                        .serial(msg.serial)
                        .data(data),
                    ctx.config.mem_cycles,
                );
            }
            MemStage::WaitWbData => {
                let mut wback =
                    Message::new(MsgType::WbAck, msg.addr, self.me, msg.src).serial(msg.serial);
                wback.wb_wants_data = true;
                ctx.send(wback, 2);
            }
            MemStage::WaitAckBd => {}
        }
    }

    fn service_request(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        match msg.mtype {
            MsgType::GetX | MsgType::GetS => {
                let mut tbe = MemTbe {
                    blocker: msg.src,
                    serial: msg.serial,
                    stage: MemStage::WaitUnblock,
                    unblock_gen: 0,
                    unblock_retries: 0,
                    ackbd_gen: 0,
                    ackbd_retries: 0,
                    acko_serial: SerialNum::ZERO,
                };
                if self.ft {
                    tbe.unblock_gen = self.next_gen();
                    ctx.arm_timeout(
                        self.me,
                        msg.addr,
                        TimeoutKind::LostUnblock,
                        tbe.unblock_gen,
                        ctx.config.ft.lost_unblock_timeout,
                    );
                }
                self.tbes.insert(msg.addr, tbe);
                let data = self.data_of(msg.addr);
                // Memory always grants exclusively: the home bank is the
                // only L2-level requester for its slice. Memory's retained
                // copy is the implicit backup (FT).
                ctx.send(
                    Message::new(MsgType::DataEx, msg.addr, self.me, msg.src)
                        .requester(msg.src)
                        .serial(msg.serial)
                        .data(data),
                    ctx.config.mem_cycles,
                );
            }
            MsgType::Put => {
                if !self.l2_owned.contains(&msg.addr) {
                    let mut wback =
                        Message::new(MsgType::WbAck, msg.addr, self.me, msg.src).serial(msg.serial);
                    wback.wb_stale = true;
                    ctx.send(wback, 2);
                    return;
                }
                let mut tbe = MemTbe {
                    blocker: msg.src,
                    serial: msg.serial,
                    stage: MemStage::WaitWbData,
                    unblock_gen: 0,
                    unblock_retries: 0,
                    ackbd_gen: 0,
                    ackbd_retries: 0,
                    acko_serial: SerialNum::ZERO,
                };
                if self.ft {
                    tbe.unblock_gen = self.next_gen();
                    ctx.arm_timeout(
                        self.me,
                        msg.addr,
                        TimeoutKind::LostUnblock,
                        tbe.unblock_gen,
                        ctx.config.ft.lost_unblock_timeout,
                    );
                }
                self.tbes.insert(msg.addr, tbe);
                let mut wback =
                    Message::new(MsgType::WbAck, msg.addr, self.me, msg.src).serial(msg.serial);
                wback.wb_wants_data = true;
                ctx.send(wback, 2);
            }
            other => {
                ctx.checker.protocol_error(
                    self.me,
                    msg.addr,
                    &format!("{other} reached request servicing"),
                    ctx.now,
                );
            }
        }
    }

    fn on_unblock(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let stale = match self.tbes.get(&msg.addr) {
            None => true,
            Some(tbe) => {
                tbe.stage != MemStage::WaitUnblock
                    || tbe.blocker != msg.src
                    || (self.ft && tbe.serial != msg.serial)
            }
        };
        if stale {
            // Stale or duplicate unblock: still acknowledge a piggybacked
            // AckO so the L2's external-blocked state can always drain.
            if msg.piggy_acko {
                ctx.send(
                    Message::new(MsgType::AckBD, msg.addr, self.me, msg.src).serial(msg.serial),
                    2,
                );
            }
            ctx.stats.stale_discards.incr();
            return;
        }
        self.tbes.remove(&msg.addr);
        self.l2_owned.insert(msg.addr);
        if self.ft && msg.piggy_acko {
            ctx.send(
                Message::new(MsgType::AckBD, msg.addr, self.me, msg.src).serial(msg.serial),
                2,
            );
        }
        self.pump_waiting(msg.addr, ctx);
    }

    fn on_wb_data(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let Some(tbe) = self.tbes.get_mut(&msg.addr) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if tbe.stage != MemStage::WaitWbData
            || tbe.blocker != msg.src
            || (self.ft && tbe.serial != msg.serial)
        {
            ctx.stats.stale_discards.incr();
            return;
        }
        match msg.mtype {
            MsgType::WbData => {
                let data = msg.data.expect("WbData carries data");
                debug_assert!(
                    data.version() >= self.store.get(&msg.addr).map_or(0, |d| d.version()),
                    "writeback would regress memory contents"
                );
                self.store.insert(msg.addr, data);
                self.l2_owned.remove(&msg.addr);
                if self.ft {
                    tbe.stage = MemStage::WaitAckBd;
                    tbe.acko_serial = msg.serial;
                    tbe.ackbd_gen = {
                        self.gen_counter += 1;
                        self.gen_counter
                    };
                    let gen = tbe.ackbd_gen;
                    ctx.send(
                        Message::new(MsgType::AckO, msg.addr, self.me, msg.src).serial(msg.serial),
                        2,
                    );
                    ctx.arm_timeout(
                        self.me,
                        msg.addr,
                        TimeoutKind::LostAckBd,
                        gen,
                        ctx.config.ft.lost_ackbd_timeout,
                    );
                    return;
                }
                self.tbes.remove(&msg.addr);
            }
            MsgType::WbNoData | MsgType::WbCancel => {
                self.l2_owned.remove(&msg.addr);
                self.tbes.remove(&msg.addr);
            }
            other => {
                ctx.checker.protocol_error(
                    self.me,
                    msg.addr,
                    &format!("{other} reached writeback-data handling"),
                    ctx.now,
                );
                return;
            }
        }
        self.pump_waiting(msg.addr, ctx);
    }

    fn on_ackbd(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let Some(tbe) = self.tbes.get(&msg.addr) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if tbe.stage != MemStage::WaitAckBd || tbe.acko_serial != msg.serial {
            ctx.stats.stale_discards.incr();
            return;
        }
        self.tbes.remove(&msg.addr);
        self.pump_waiting(msg.addr, ctx);
    }

    fn on_ownership_ping(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        // The L2 holds a writeback backup and asks whether its WbData made
        // it here.
        let still_waiting = self
            .tbes
            .get(&msg.addr)
            .is_some_and(|t| t.stage == MemStage::WaitWbData);
        let reply = if still_waiting {
            MsgType::NackO
        } else {
            MsgType::AckO
        };
        ctx.send(
            Message::new(reply, msg.addr, self.me, msg.src).serial(msg.serial),
            2,
        );
    }

    fn pump_waiting(&mut self, addr: LineAddr, ctx: &mut Ctx<'_>) {
        loop {
            if self.tbes.contains_key(&addr) {
                return;
            }
            let Some(q) = self.waiting.get_mut(&addr) else {
                return;
            };
            // The drained queue keeps its buffer for the next deferral
            // instead of being dropped from the map.
            let Some(msg) = q.pop_front() else {
                return;
            };
            self.service_request(msg, ctx);
        }
    }

    fn on_lost_unblock(&mut self, addr: LineAddr, gen: u64, ctx: &mut Ctx<'_>) {
        let Some(tbe) = self.tbes.get_mut(&addr) else {
            return;
        };
        if tbe.unblock_gen != gen {
            return;
        }
        ctx.stats.record_timeout(TimeoutKind::LostUnblock);
        tbe.unblock_retries += 1;
        self.gen_counter += 1;
        tbe.unblock_gen = self.gen_counter;
        let new_gen = tbe.unblock_gen;
        let retries = tbe.unblock_retries;
        let (blocker, serial, stage) = (tbe.blocker, tbe.serial, tbe.stage);
        match stage {
            MemStage::WaitUnblock => {
                let mut ping =
                    Message::new(MsgType::UnblockPing, addr, self.me, blocker).serial(serial);
                ping.ping_for_store = true;
                ctx.send(ping, 2);
            }
            MemStage::WaitWbData => {
                let mut ping = Message::new(MsgType::WbPing, addr, self.me, blocker).serial(serial);
                ping.wb_wants_data = true;
                ctx.send(ping, 2);
            }
            MemStage::WaitAckBd => return,
        }
        ctx.arm_timeout(
            self.me,
            addr,
            TimeoutKind::LostUnblock,
            new_gen,
            backoff_delay(ctx.config.ft.lost_unblock_timeout, retries),
        );
    }

    fn on_lost_ackbd(&mut self, addr: LineAddr, gen: u64, ctx: &mut Ctx<'_>) {
        let bits = ctx.config.ft.serial_bits;
        let Some(tbe) = self.tbes.get_mut(&addr) else {
            return;
        };
        if tbe.ackbd_gen != gen || tbe.stage != MemStage::WaitAckBd {
            return;
        }
        ctx.stats.record_timeout(TimeoutKind::LostAckBd);
        tbe.acko_serial = tbe.acko_serial.next(bits);
        tbe.ackbd_retries += 1;
        self.gen_counter += 1;
        tbe.ackbd_gen = self.gen_counter;
        let retries = tbe.ackbd_retries;
        let (blocker, serial, new_gen) = (tbe.blocker, tbe.acko_serial, tbe.ackbd_gen);
        ctx.send(
            Message::new(MsgType::AckO, addr, self.me, blocker).serial(serial),
            2,
        );
        ctx.arm_timeout(
            self.me,
            addr,
            TimeoutKind::LostAckBd,
            new_gen,
            backoff_delay(ctx.config.ft.lost_ackbd_timeout, retries),
        );
    }
}

#[cfg(test)]
#[path = "mem_tests.rs"]
mod tests;
