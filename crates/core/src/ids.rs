//! Node and address identifiers.

use std::fmt;

/// A coherence protocol node: an L1 cache, an L2 cache bank, or a memory
/// controller (paper §3.1 footnote: "a node can be either an L1 cache, an L2
/// cache bank or a memory bank").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// Private L1 cache of tile `0..n_tiles`.
    L1(u8),
    /// Shared L2 bank at tile `0..n_tiles` (home for an address slice).
    L2(u8),
    /// Memory controller `0..n_mems`.
    Mem(u8),
}

impl NodeId {
    /// Tile or controller index.
    pub fn index(self) -> u8 {
        match self {
            NodeId::L1(i) | NodeId::L2(i) | NodeId::Mem(i) => i,
        }
    }

    /// Whether this node is an L1 cache.
    pub fn is_l1(self) -> bool {
        matches!(self, NodeId::L1(_))
    }

    /// Whether this node is an L2 bank.
    pub fn is_l2(self) -> bool {
        matches!(self, NodeId::L2(_))
    }

    /// Whether this node is a memory controller.
    pub fn is_mem(self) -> bool {
        matches!(self, NodeId::Mem(_))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::L1(i) => write!(f, "L1-{i}"),
            NodeId::L2(i) => write!(f, "L2-{i}"),
            NodeId::Mem(i) => write!(f, "Mem-{i}"),
        }
    }
}

/// A byte address in the simulated physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address, for a line size of
    /// `line_bytes` (must be a power of two).
    pub fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 / line_bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line address (byte address divided by the line size).
///
/// All coherence state is tracked at line granularity; the protocols never
/// look inside a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Home L2 bank for this line (line-interleaved across banks).
    pub fn home_bank(self, n_banks: u8) -> u8 {
        (self.0 % u64::from(n_banks)) as u8
    }

    /// Home memory controller for this line (line-interleaved).
    pub fn home_mem(self, n_mems: u8) -> u8 {
        (self.0 % u64::from(n_mems)) as u8
    }

    /// First byte address of the line.
    pub fn base_addr(self, line_bytes: u64) -> Addr {
        Addr(self.0 * line_bytes)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

/// A compact set of L1 node indices (the directory's sharer vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharerSet(u64);

impl SharerSet {
    /// Creates an empty set.
    pub const fn new() -> Self {
        SharerSet(0)
    }

    /// Adds tile `i`.
    pub fn insert(&mut self, i: u8) {
        self.0 |= 1 << i;
    }

    /// Removes tile `i`.
    pub fn remove(&mut self, i: u8) {
        self.0 &= !(1 << i);
    }

    /// Whether tile `i` is present.
    pub fn contains(self, i: u8) -> bool {
        self.0 & (1 << i) != 0
    }

    /// Number of tiles present.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Removes all tiles.
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Iterates over the tile indices present.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0..64u8).filter(move |i| self.contains(*i))
    }
}

impl FromIterator<u8> for SharerSet {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        let mut s = SharerSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl fmt::Display for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_kind_predicates() {
        assert!(NodeId::L1(3).is_l1());
        assert!(NodeId::L2(3).is_l2());
        assert!(NodeId::Mem(0).is_mem());
        assert!(!NodeId::L1(3).is_l2());
        assert_eq!(NodeId::L2(7).index(), 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::L1(2).to_string(), "L1-2");
        assert_eq!(NodeId::Mem(1).to_string(), "Mem-1");
        assert_eq!(Addr(0x40).to_string(), "0x40");
    }

    #[test]
    fn addr_to_line_mapping() {
        assert_eq!(Addr(0).line(64), LineAddr(0));
        assert_eq!(Addr(63).line(64), LineAddr(0));
        assert_eq!(Addr(64).line(64), LineAddr(1));
        assert_eq!(LineAddr(1).base_addr(64), Addr(64));
    }

    #[test]
    fn home_mapping_is_interleaved() {
        assert_eq!(LineAddr(0).home_bank(16), 0);
        assert_eq!(LineAddr(17).home_bank(16), 1);
        assert_eq!(LineAddr(5).home_mem(4), 1);
    }

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::new();
        assert!(s.is_empty());
        s.insert(3);
        s.insert(10);
        s.insert(3);
        assert_eq!(s.len(), 2);
        assert!(s.contains(3));
        assert!(!s.contains(4));
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn sharer_set_iteration_and_collect() {
        let s: SharerSet = [1u8, 5, 9].into_iter().collect();
        let got: Vec<u8> = s.iter().collect();
        assert_eq!(got, vec![1, 5, 9]);
        assert_eq!(s.to_string(), "{1,5,9}");
    }
}
