//! The L1 cache controller.
//!
//! Implements the requester side of both protocols:
//!
//! * **DirCMP** (paper §2): MOESI stable states, misses through the home L2
//!   bank, invalidation acks collected at the requester, three-phase
//!   writebacks.
//! * **FtDirCMP** (paper §3): on top of DirCMP, the *backup* state when
//!   sending owned data (§3.1 step 1), the *blocked-ownership* states
//!   `Mb`/`Eb`/`Ob` while waiting for the backup-deletion acknowledgment
//!   (§3.1 steps 2–4), the lost-request and lost-backup-deletion-ack
//!   timeouts (§3.2, §3.4), request serial numbers with reissue (§3.5), and
//!   the recovery responses to `UnblockPing`/`WbPing`/`OwnershipPing`.
//!
//! Per-line transient state (miss/writeback MSHRs, backups, pending
//! handshakes, deferred forwards) lives in a single [`LineTable`] slab: one
//! lookup per message resolves every facet of a line, instead of one hash
//! probe per facet (see `linetab` for the iteration-order contract).

use ftdircmp_sim::{Cycle, DetRng};

use crate::cache::SetAssocCache;
use crate::checker::Perm;
use crate::config::SystemConfig;
use crate::data::LineData;
use crate::ids::{LineAddr, NodeId};
use crate::linetab::LineTable;
use crate::msg::{Message, MsgType};
use crate::proto::{backoff_delay, Ctx, Facets, TimeoutKind};
use crate::serial::{SerialAllocator, SerialNum};

/// Stable L1 permission states (MOESI; `I` is represented by absence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Perm {
    /// Shared, clean, read-only.
    S,
    /// Exclusive, clean (silent upgrade to `M` on store).
    E,
    /// Owned: shared but responsible for supplying data.
    O,
    /// Modified: exclusive and dirty.
    M,
}

impl L1Perm {
    fn is_exclusive(self) -> bool {
        matches!(self, L1Perm::E | L1Perm::M)
    }

    fn is_owner(self) -> bool {
        matches!(self, L1Perm::E | L1Perm::M | L1Perm::O)
    }

    fn checker_perm(self) -> Perm {
        match self {
            L1Perm::S | L1Perm::O => Perm::Read,
            L1Perm::E | L1Perm::M => Perm::Write,
        }
    }
}

/// One resident L1 line. `blocked` marks the blocked-ownership states
/// (`Mb`/`Eb`/`Ob`): the miss is satisfied but ownership must not move
/// until the backup-deletion acknowledgment arrives (paper §3.1 step 2).
#[derive(Debug, Clone)]
struct L1Entry {
    perm: L1Perm,
    data: LineData,
    blocked: bool,
}

/// A CPU memory operation presented to the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuOp {
    /// Line touched.
    pub addr: LineAddr,
    /// True for stores.
    pub is_store: bool,
}

/// Outcome of presenting a CPU operation to the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuOutcome {
    /// Completed locally; the core may continue after the hit latency.
    Hit,
    /// A miss was issued; the L1 will signal completion later.
    Miss,
    /// The line has a writeback in flight; the L1 parked the operation and
    /// will retry it (and signal completion) when the writeback resolves.
    Stalled,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MissKind {
    Load,
    Store,
}

#[derive(Debug, Clone)]
struct MissMshr {
    kind: MissKind,
    serial: SerialNum,
    data: Option<LineData>,
    granted_ex: bool,
    granted_dirty: bool,
    responded: bool,
    acks_needed: u8,
    acks_got: u8,
    supplier: Option<NodeId>,
    issued_at: Cycle,
    retries: u32,
    gen: u64,
}

#[derive(Debug, Clone)]
struct WbMshr {
    data: Option<LineData>,
    was_exclusive: bool,
    dirty: bool,
    serial: SerialNum,
    retries: u32,
    gen: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BackupKind {
    /// Backup created when answering a forwarded request with owned data.
    ForwardedData {
        /// Invalidation-ack count the reissued `DataEx` must carry.
        acks: u8,
    },
    /// Backup created when sending `WbData` (kept in the writeback buffer).
    Writeback,
}

#[derive(Debug, Clone)]
struct Backup {
    data: LineData,
    dirty: bool,
    dest: NodeId,
    serial: SerialNum,
    kind: BackupKind,
    retries: u32,
    gen: u64,
}

/// Record of the most recent unblock this L1 sent for a line, so an
/// `UnblockPing` for that (completed) transaction can be answered exactly.
/// Overwriting per line is safe: the directory serializes transactions, so a
/// newer completion implies the older unblock was received. (In hardware
/// this table would be bounded; see DESIGN.md §4.)
#[derive(Debug, Clone, Copy)]
struct CompletedTx {
    was_store: bool,
    exclusive: bool,
    acko: bool,
}

#[derive(Debug, Clone)]
struct AckBdPending {
    peer: NodeId,
    serial: SerialNum,
    retries: u32,
    gen: u64,
}

/// All transient per-line state of one L1, held together in one slab slot.
/// Every facet uses absence (`None`/empty) for "not in flight"; the slot
/// itself persists once allocated.
#[derive(Debug, Clone, Default)]
struct L1LineState {
    miss: Option<MissMshr>,
    wb: Option<WbMshr>,
    backup: Option<Backup>,
    ackbd: Option<AckBdPending>,
    deferred: Vec<Message>,
    unblocked: Option<CompletedTx>,
}

/// The L1 cache controller for one tile.
#[derive(Debug, Clone)]
pub struct L1Controller {
    tile: u8,
    me: NodeId,
    ft: bool,
    cache: SetAssocCache<L1Entry>,
    lines: LineTable<L1LineState>,
    /// Number of slots with a live miss MSHR (for occupancy stats).
    miss_count: usize,
    stalled_ops: Vec<CpuOp>,
    serials: SerialAllocator,
    gen_counter: u64,
    /// Reused buffer for draining deferred forwards without allocating.
    deferred_scratch: Vec<Message>,
    /// Reused buffer for replaying stalled CPU ops without allocating.
    stalled_scratch: Vec<CpuOp>,
}

impl L1Controller {
    /// Creates the controller for `tile`.
    pub fn new(tile: u8, config: &SystemConfig, rng: &mut DetRng) -> Self {
        L1Controller {
            tile,
            me: NodeId::L1(tile),
            ft: config.protocol.is_fault_tolerant(),
            cache: SetAssocCache::new(config.l1_sets(), config.l1_assoc),
            lines: LineTable::new(),
            miss_count: 0,
            stalled_ops: Vec::new(),
            serials: SerialAllocator::new(config.ft.serial_bits, rng),
            gen_counter: 0,
            deferred_scratch: Vec::new(),
            stalled_scratch: Vec::new(),
        }
    }

    /// This controller's node id.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Whether a miss or writeback is in flight for any line.
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.miss_count,
            self.lines.iter().filter(|(_, s)| s.miss.is_some()).count(),
            "miss_count out of sync with slab"
        );
        self.lines.iter().all(|(_, s)| {
            s.miss.is_none() && s.wb.is_none() && s.ackbd.is_none() && s.backup.is_none()
        })
    }

    /// Resident-line count (diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.cache.len()
    }

    /// Peak overflow-buffer occupancy (diagnostics).
    pub fn overflow_peak(&self) -> usize {
        self.cache.overflow_peak()
    }

    /// Human-readable summary of in-flight state (deadlock diagnostics).
    pub fn pending_summary(&self) -> String {
        let mut out = String::new();
        for (a, s) in self.lines.iter() {
            if let Some(m) = &s.miss {
                out.push_str(&format!(
                    "{} miss {a} kind={:?} serial={} responded={} acks={}/{} retries={}\n",
                    self.me, m.kind, m.serial, m.responded, m.acks_got, m.acks_needed, m.retries
                ));
            }
        }
        for (a, s) in self.lines.iter() {
            if let Some(w) = &s.wb {
                out.push_str(&format!(
                    "{} wb {a} serial={} data={}\n",
                    self.me,
                    w.serial,
                    w.data.is_some()
                ));
            }
        }
        for (a, s) in self.lines.iter() {
            if let Some(b) = &s.backup {
                out.push_str(&format!(
                    "{} backup {a} dest={} serial={} kind={:?}\n",
                    self.me, b.dest, b.serial, b.kind
                ));
            }
        }
        for (a, s) in self.lines.iter() {
            if let Some(p) = &s.ackbd {
                out.push_str(&format!(
                    "{} ackbd-pending {a} peer={} serial={}\n",
                    self.me, p.peer, p.serial
                ));
            }
        }
        for (a, s) in self.lines.iter() {
            if !s.deferred.is_empty() {
                out.push_str(&format!(
                    "{} deferred {a} n={}\n",
                    self.me,
                    s.deferred.len()
                ));
            }
        }
        for op in &self.stalled_ops {
            out.push_str(&format!("{} stalled-op {:?}\n", self.me, op));
        }
        out
    }

    fn next_gen(&mut self) -> u64 {
        self.gen_counter += 1;
        self.gen_counter
    }

    fn home(&self, addr: LineAddr, config: &SystemConfig) -> NodeId {
        NodeId::L2(addr.home_bank(config.tiles))
    }

    fn fresh_serial(&mut self) -> SerialNum {
        if self.ft {
            self.serials.fresh()
        } else {
            SerialNum::ZERO
        }
    }

    // ------------------------------------------------------------------
    // CPU interface
    // ------------------------------------------------------------------

    /// Presents a CPU memory operation.
    pub fn cpu_access(&mut self, op: CpuOp, ctx: &mut Ctx<'_>) -> CpuOutcome {
        debug_assert!(
            self.lines.get(op.addr).is_none_or(|s| s.miss.is_none()),
            "core issued a second op to a line with a miss in flight"
        );
        if let Some(entry) = self.cache.get_mut(op.addr) {
            if !op.is_store {
                let version = entry.data.version();
                ctx.stats.l1_load_hits.incr();
                ctx.checker
                    .load_observed(self.me, op.addr, version, ctx.now);
                return CpuOutcome::Hit;
            }
            match entry.perm {
                L1Perm::M => {
                    entry.data.write(self.me);
                    let v = entry.data.version();
                    ctx.stats.l1_store_hits.incr();
                    ctx.checker.store_committed(self.me, op.addr, v, ctx.now);
                    return CpuOutcome::Hit;
                }
                L1Perm::E => {
                    // Silent E→M upgrade.
                    entry.perm = L1Perm::M;
                    entry.data.write(self.me);
                    let v = entry.data.version();
                    ctx.stats.l1_store_hits.incr();
                    ctx.checker.store_committed(self.me, op.addr, v, ctx.now);
                    return CpuOutcome::Hit;
                }
                L1Perm::S | L1Perm::O => {
                    // Upgrade miss: fall through keeping the entry.
                }
            }
        }
        if self.lines.get(op.addr).is_some_and(|s| s.wb.is_some()) {
            // A writeback of this very line is in flight; park the op.
            self.stalled_ops.push(op);
            return CpuOutcome::Stalled;
        }
        self.issue_miss(op, ctx);
        CpuOutcome::Miss
    }

    fn issue_miss(&mut self, op: CpuOp, ctx: &mut Ctx<'_>) {
        let kind = if op.is_store {
            MissKind::Store
        } else {
            MissKind::Load
        };
        if op.is_store {
            ctx.stats.l1_store_misses.incr();
        } else {
            ctx.stats.l1_load_misses.incr();
        }
        let serial = self.fresh_serial();
        let gen = self.next_gen();
        ctx.stats
            .l1_mshr_occupancy
            .record(self.miss_count as u64 + 1);
        self.miss_count += 1;
        self.lines.entry(op.addr).miss = Some(MissMshr {
            kind,
            serial,
            data: None,
            granted_ex: false,
            granted_dirty: false,
            responded: false,
            acks_needed: 0,
            acks_got: 0,
            supplier: None,
            issued_at: ctx.now,
            retries: 0,
            gen,
        });
        let mtype = if op.is_store {
            MsgType::GetX
        } else {
            MsgType::GetS
        };
        let home = self.home(op.addr, ctx.config);
        ctx.send(
            Message::new(mtype, op.addr, self.me, home).serial(serial),
            1,
        );
        if self.ft {
            ctx.arm_timeout(
                self.me,
                op.addr,
                TimeoutKind::LostRequest,
                gen,
                ctx.config.ft.lost_request_timeout,
            );
        }
    }

    fn try_complete(&mut self, addr: LineAddr, ctx: &mut Ctx<'_>) {
        let Some(st) = self.lines.get_mut(addr) else {
            return;
        };
        let Some(m) = st.miss.as_ref() else {
            return;
        };
        if !m.responded {
            return;
        }
        if m.granted_ex && m.acks_got < m.acks_needed {
            return;
        }
        let m = st.miss.take().expect("just checked");
        self.miss_count -= 1;
        let supplier = m.supplier;
        let data_came = m.data.is_some();

        // Decide the final permission. An exclusive grant of dirty data must
        // install as M: a clean E could later evict silently (WbNoData) and
        // lose the only up-to-date copy.
        let perm = match (m.kind, m.granted_ex) {
            (MissKind::Load, false) => L1Perm::S,
            (MissKind::Load, true) if m.granted_dirty => L1Perm::M,
            (MissKind::Load, true) => L1Perm::E,
            (MissKind::Store, true) => L1Perm::M,
            (MissKind::Store, false) => {
                // A GetX is always answered exclusively; treat defensively.
                L1Perm::M
            }
        };
        let blocked = self.ft && data_came && m.granted_ex;

        // Install or update the line.
        if let Some(entry) = self.cache.get_mut(addr) {
            if let Some(d) = m.data {
                entry.data = d;
            }
            entry.perm = perm;
            entry.blocked = blocked;
        } else {
            let data = m
                .data
                .expect("miss completed without data and without a resident line");
            self.install_line(
                addr,
                L1Entry {
                    perm,
                    data,
                    blocked,
                },
                ctx,
            );
        }
        ctx.checker
            .set_perm(self.me, addr, perm.checker_perm(), ctx.now);

        // Commit the CPU operation.
        let entry = self.cache.get_mut(addr).expect("line just installed");
        match m.kind {
            MissKind::Store => {
                entry.data.write(self.me);
                let v = entry.data.version();
                ctx.checker.store_committed(self.me, addr, v, ctx.now);
            }
            MissKind::Load => {
                let v = entry.data.version();
                ctx.checker.load_observed(self.me, addr, v, ctx.now);
            }
        }

        // Unblock the directory; run the FT ownership handshake (§3.1).
        let home = self.home(addr, ctx.config);
        let unblock_type = if m.granted_ex {
            MsgType::UnblockEx
        } else {
            MsgType::Unblock
        };
        let mut unblock = Message::new(unblock_type, addr, self.me, home).serial(m.serial);
        if blocked {
            let supplier = supplier.expect("exclusive data has a supplier");
            if supplier == home {
                // AckO piggybacks on the UnblockEx (§3.1).
                unblock = unblock.with_acko();
            } else {
                ctx.send(
                    Message::new(MsgType::AckO, addr, self.me, supplier).serial(m.serial),
                    1,
                );
            }
            let gen = self.next_gen();
            self.lines.entry(addr).ackbd = Some(AckBdPending {
                peer: supplier,
                serial: m.serial,
                retries: 0,
                gen,
            });
            ctx.arm_timeout(
                self.me,
                addr,
                TimeoutKind::LostAckBd,
                gen,
                ctx.config.ft.lost_ackbd_timeout,
            );
        }
        self.lines.entry(addr).unblocked = Some(CompletedTx {
            was_store: m.kind == MissKind::Store,
            exclusive: m.granted_ex,
            acko: unblock.piggy_acko,
        });
        ctx.send(unblock, 1);

        ctx.stats.miss_latency.record(ctx.now - m.issued_at);
        ctx.complete(self.tile, addr, m.kind == MissKind::Store, 1);
    }

    fn install_line(&mut self, addr: LineAddr, entry: L1Entry, ctx: &mut Ctx<'_>) {
        let outcome = self.cache.insert(addr, entry, |_, e| !e.blocked);
        if let Some((vaddr, ventry)) = outcome.evicted {
            self.evict(vaddr, ventry, ctx);
        }
    }

    fn evict(&mut self, vaddr: LineAddr, ventry: L1Entry, ctx: &mut Ctx<'_>) {
        debug_assert!(!ventry.blocked);
        match ventry.perm {
            L1Perm::S => {
                // Silent eviction of a clean shared line.
                ctx.checker.set_perm(self.me, vaddr, Perm::None, ctx.now);
            }
            L1Perm::M | L1Perm::E | L1Perm::O => {
                self.start_writeback(vaddr, ventry, ctx);
            }
        }
    }

    fn start_writeback(&mut self, vaddr: LineAddr, ventry: L1Entry, ctx: &mut Ctx<'_>) {
        let serial = self.fresh_serial();
        let gen = self.next_gen();
        self.lines.entry(vaddr).wb = Some(WbMshr {
            data: Some(ventry.data),
            was_exclusive: ventry.perm.is_exclusive(),
            dirty: matches!(ventry.perm, L1Perm::M | L1Perm::O),
            serial,
            retries: 0,
            gen,
        });
        ctx.checker.set_perm(self.me, vaddr, Perm::None, ctx.now);
        ctx.stats.l1_writebacks.incr();
        let home = self.home(vaddr, ctx.config);
        ctx.send(
            Message::new(MsgType::Put, vaddr, self.me, home).serial(serial),
            1,
        );
        if self.ft {
            ctx.arm_timeout(
                self.me,
                vaddr,
                TimeoutKind::LostRequest,
                gen,
                ctx.config.ft.lost_request_timeout,
            );
        }
    }

    fn retry_stalled(&mut self, ctx: &mut Ctx<'_>) {
        // Same partition-once semantics as draining into fresh vectors, but
        // the ready buffer is reused across calls and the parked ops are
        // retained in place. Ops re-stalled by `cpu_access` below append
        // after the still-parked ones, preserving the original order.
        let mut ready = std::mem::take(&mut self.stalled_scratch);
        debug_assert!(ready.is_empty());
        let mut parked = std::mem::take(&mut self.stalled_ops);
        let lines = &self.lines;
        parked.retain(|op| {
            let still = lines.get(op.addr).is_some_and(|s| s.wb.is_some());
            if !still {
                ready.push(*op);
            }
            still
        });
        self.stalled_ops = parked;
        for op in ready.drain(..) {
            match self.cpu_access(op, ctx) {
                CpuOutcome::Hit => {
                    ctx.complete(self.tile, op.addr, op.is_store, ctx.config.l1_hit_cycles);
                }
                CpuOutcome::Miss => {} // completion will come from try_complete
                CpuOutcome::Stalled => {} // parked again (new wb appeared)
            }
        }
        self.stalled_scratch = ready;
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// The line's current facet configuration, in the state vocabulary of
    /// the reified transition table ([`crate::transitions::l1_table`]).
    /// The first entry is always the mandatory `Cache` facet.
    pub fn table_facets(&self, addr: LineAddr) -> Facets {
        let mut f = Facets::new();
        let cached = self.cache.get(addr);
        f.push(match cached {
            None => "I",
            Some(e) => match (e.perm, e.blocked) {
                (L1Perm::S, _) => "S",
                (L1Perm::O, _) => "O",
                (L1Perm::E, false) => "E",
                (L1Perm::E, true) => "Eb",
                (L1Perm::M, false) => "M",
                (L1Perm::M, true) => "Mb",
            },
        });
        let st = self.lines.get(addr);
        if let Some(m) = st.and_then(|s| s.miss.as_ref()) {
            f.push(match (m.kind, cached.map(|e| e.perm)) {
                (MissKind::Load, _) => "IS",
                (MissKind::Store, Some(L1Perm::S)) => "SM",
                (MissKind::Store, Some(L1Perm::O)) => "OM",
                (MissKind::Store, _) => "IM",
            });
        }
        if let Some(w) = st.and_then(|s| s.wb.as_ref()) {
            f.push(match (w.data.is_some(), w.was_exclusive, w.dirty) {
                (false, _, _) => "II",
                (true, true, true) => "MI",
                (true, true, false) => "EI",
                (true, false, _) => "OI",
            });
        }
        if let Some(b) = st.and_then(|s| s.backup.as_ref()) {
            f.push(match b.kind {
                BackupKind::ForwardedData { .. } => "B",
                BackupKind::Writeback => "Bw",
            });
        }
        f
    }

    /// Cross-checks an incoming message against the reified transition
    /// table (guards are not evaluated — this is an over-approximation).
    /// Only active while the invariant checker is enabled, keeping the
    /// campaign hot path untouched.
    fn table_check(&self, msg: &Message, ctx: &mut Ctx<'_>) {
        if !ctx.checker.is_enabled() {
            return;
        }
        let facets = self.table_facets(msg.addr);
        if !crate::transitions::l1_table().legal_message(&facets, msg.mtype) {
            ctx.checker.protocol_error(
                self.me,
                msg.addr,
                &format!("unexpected {} in state {}", msg.mtype, facets.join("+")),
                ctx.now,
            );
        }
    }

    /// Handles an incoming network message.
    pub fn handle_message(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        self.table_check(&msg, ctx);
        match msg.mtype {
            MsgType::Data => self.on_data(msg, false, ctx),
            MsgType::DataEx => self.on_data(msg, true, ctx),
            MsgType::Ack => self.on_ack(msg, ctx),
            MsgType::Inv => self.on_inv(msg, ctx),
            MsgType::FwdGetS => self.on_fwd_gets(msg, ctx),
            MsgType::FwdGetX => self.on_fwd_getx(msg, ctx),
            MsgType::WbAck => self.on_wback(msg, ctx),
            MsgType::AckO => self.on_acko(msg, ctx),
            MsgType::AckBD => self.on_ackbd(msg, ctx),
            MsgType::UnblockPing => self.on_unblock_ping(msg, ctx),
            MsgType::WbPing => self.on_wb_ping(msg, ctx),
            MsgType::OwnershipPing => self.on_ownership_ping(msg, ctx),
            MsgType::NackO => self.on_nacko(msg, ctx),
            MsgType::GetX
            | MsgType::GetS
            | MsgType::Put
            | MsgType::Unblock
            | MsgType::UnblockEx
            | MsgType::WbData
            | MsgType::WbNoData
            | MsgType::WbCancel => {
                // Misrouted: no L1 handler. `table_check` above recorded the
                // protocol violation; drop the message instead of panicking.
            }
        }
    }

    fn on_data(&mut self, msg: Message, exclusive: bool, ctx: &mut Ctx<'_>) {
        let Some(m) = self.lines.get_mut(msg.addr).and_then(|s| s.miss.as_mut()) else {
            // The transaction already finished: this is a duplicate from a
            // reissue whose original was merely slow, i.e. a false positive.
            ctx.stats.stale_discards.incr();
            ctx.stats.false_positives.incr();
            return;
        };
        if self.ft && m.serial != msg.serial {
            ctx.stats.stale_discards.incr();
            ctx.stats.false_positives.incr();
            return;
        }
        m.responded = true;
        m.granted_ex = exclusive;
        m.granted_dirty = msg.data_dirty;
        m.acks_needed = msg.ack_count;
        m.supplier = Some(msg.src);
        if msg.data.is_some() {
            m.data = msg.data;
        }
        self.try_complete(msg.addr, ctx);
    }

    fn on_ack(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let Some(m) = self.lines.get_mut(msg.addr).and_then(|s| s.miss.as_mut()) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if self.ft && m.serial != msg.serial {
            // The stale acknowledgment of the paper's Figure 2: must be
            // discarded or it could be mis-counted towards the reissued
            // request.
            ctx.stats.stale_discards.incr();
            return;
        }
        m.acks_got += 1;
        self.try_complete(msg.addr, ctx);
    }

    fn on_inv(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        // Always acknowledge: the directory's sharer list may be stale
        // (silent S evictions), and the requester is counting.
        ctx.send(
            Message::new(MsgType::Ack, msg.addr, self.me, msg.requester)
                .requester(msg.requester)
                .serial(msg.serial),
            1,
        );
        if let Some(entry) = self.cache.get(msg.addr) {
            if entry.perm.is_exclusive() || entry.blocked {
                // A stale Inv: from a reissued older transaction (FtDirCMP)
                // or delayed past a complete later transaction that made
                // this node the owner (possible under plain DirCMP with an
                // adversarial schedule).  The Ack above is stale and will
                // be discarded by its requester; keep the line.
                return;
            }
            self.cache.remove(msg.addr);
            ctx.checker.set_perm(self.me, msg.addr, Perm::None, ctx.now);
        }
        // An upgrade in progress (SM/OM) keeps its MSHR: the full data will
        // arrive with the eventual DataEx.
    }

    fn on_fwd_gets(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        if let Some(entry) = self.cache.get_mut(msg.addr) {
            if entry.blocked {
                self.lines.entry(msg.addr).deferred.push(msg);
                ctx.stats.deferred_forwards.incr();
                return;
            }
            if entry.perm.is_owner() {
                let data = entry.data;
                entry.perm = L1Perm::O;
                ctx.checker.set_perm(self.me, msg.addr, Perm::Read, ctx.now);
                ctx.send(
                    Message::new(MsgType::Data, msg.addr, self.me, msg.requester)
                        .requester(msg.requester)
                        .serial(msg.serial)
                        .data(data),
                    1,
                );
                return;
            }
        }
        if let Some(wbm) = self.lines.get(msg.addr).and_then(|s| s.wb.as_ref()) {
            if let Some(data) = wbm.data {
                // Owner with a writeback in flight still supplies data.
                ctx.send(
                    Message::new(MsgType::Data, msg.addr, self.me, msg.requester)
                        .requester(msg.requester)
                        .serial(msg.serial)
                        .data(data),
                    1,
                );
                return;
            }
        }
        ctx.stats.stale_discards.incr();
    }

    fn on_fwd_getx(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        if let Some(entry) = self.cache.get(msg.addr) {
            if entry.blocked {
                self.lines.entry(msg.addr).deferred.push(msg);
                ctx.stats.deferred_forwards.incr();
                return;
            }
            if entry.perm.is_owner() {
                let dirty = matches!(entry.perm, L1Perm::M | L1Perm::O);
                let entry = self.cache.remove(msg.addr).expect("just found");
                self.send_owned_data(msg.addr, entry.data, dirty, &msg, ctx);
                ctx.checker.set_perm(self.me, msg.addr, Perm::None, ctx.now);
                return;
            }
            // A non-owner holding S should never see FwdGetX; drop the copy
            // defensively and fall through to the stale path.
            self.cache.remove(msg.addr);
            ctx.checker.set_perm(self.me, msg.addr, Perm::None, ctx.now);
            ctx.stats.stale_discards.incr();
            return;
        }
        if let Some(wbm) = self.lines.get_mut(msg.addr).and_then(|s| s.wb.as_mut()) {
            let dirty = wbm.dirty;
            if let Some(data) = wbm.data.take() {
                // Put raced with the forward; ownership goes to the
                // requester, and the eventual WbAck will be stale.
                self.send_owned_data(msg.addr, data, dirty, &msg, ctx);
                return;
            }
        }
        if let Some(b) = self.lines.get_mut(msg.addr).and_then(|s| s.backup.as_mut()) {
            // Reissued forward: resend from the backup with the new serial
            // (§3.2: a node in backup state must detect reissued requests).
            b.serial = msg.serial;
            b.dest = msg.requester;
            b.kind = BackupKind::ForwardedData {
                acks: msg.ack_count,
            };
            let (data, dirty) = (b.data, b.dirty);
            ctx.send(
                Message::new(MsgType::DataEx, msg.addr, self.me, msg.requester)
                    .requester(msg.requester)
                    .serial(msg.serial)
                    .acks(msg.ack_count)
                    .data(data)
                    .dirty(dirty),
                1,
            );
            return;
        }
        ctx.stats.stale_discards.incr();
    }

    /// Sends owned data in response to a forwarded request; under FtDirCMP
    /// the data is retained as a backup until the ownership acknowledgment
    /// arrives (§3.1 step 1).
    fn send_owned_data(
        &mut self,
        addr: LineAddr,
        data: LineData,
        dirty: bool,
        msg: &Message,
        ctx: &mut Ctx<'_>,
    ) {
        ctx.send(
            Message::new(MsgType::DataEx, addr, self.me, msg.requester)
                .requester(msg.requester)
                .serial(msg.serial)
                .acks(msg.ack_count)
                .data(data)
                .dirty(dirty),
            1,
        );
        if self.ft {
            let gen = self.next_gen();
            self.lines.entry(addr).backup = Some(Backup {
                data,
                dirty,
                dest: msg.requester,
                serial: msg.serial,
                kind: BackupKind::ForwardedData {
                    acks: msg.ack_count,
                },
                retries: 0,
                gen,
            });
            ctx.checker.backup_created(self.me, addr, ctx.now);
            ctx.arm_timeout(
                self.me,
                addr,
                TimeoutKind::LostData,
                gen,
                ctx.config.ft.lost_data_timeout,
            );
        }
    }

    fn on_wback(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let Some(st) = self.lines.get_mut(msg.addr) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        let Some(wbm) = st.wb.as_ref() else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if self.ft && wbm.serial != msg.serial {
            ctx.stats.stale_discards.incr();
            return;
        }
        let wbm = st.wb.take().expect("just checked");
        if msg.wb_stale {
            // Ownership moved while the Put was queued. If the forward has
            // not reached us yet (possible on an unordered network), we
            // still hold the data: reinstate the line so we can answer it.
            if let Some(data) = wbm.data {
                let perm = if wbm.was_exclusive {
                    L1Perm::M
                } else {
                    L1Perm::O
                };
                ctx.checker
                    .set_perm(self.me, msg.addr, perm.checker_perm(), ctx.now);
                self.install_line(
                    msg.addr,
                    L1Entry {
                        perm,
                        data,
                        blocked: false,
                    },
                    ctx,
                );
            }
            self.retry_stalled(ctx);
            return;
        }
        match wbm.data {
            Some(data) if wbm.dirty || msg.wb_wants_data => {
                ctx.send(
                    Message::new(MsgType::WbData, msg.addr, self.me, msg.src)
                        .serial(msg.serial)
                        .data(data)
                        .dirty(wbm.dirty),
                    1,
                );
                if self.ft {
                    let gen = self.next_gen();
                    self.lines.entry(msg.addr).backup = Some(Backup {
                        data,
                        dirty: wbm.dirty,
                        dest: msg.src,
                        serial: msg.serial,
                        kind: BackupKind::Writeback,
                        retries: 0,
                        gen,
                    });
                    ctx.checker.backup_created(self.me, msg.addr, ctx.now);
                    ctx.arm_timeout(
                        self.me,
                        msg.addr,
                        TimeoutKind::LostData,
                        gen,
                        ctx.config.ft.lost_data_timeout,
                    );
                }
            }
            _ => {
                // Clean (E) line, or data already surrendered to a forward.
                ctx.send(
                    Message::new(MsgType::WbNoData, msg.addr, self.me, msg.src).serial(msg.serial),
                    1,
                );
            }
        }
        self.retry_stalled(ctx);
    }

    fn on_acko(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let had_backup = self
            .lines
            .get_mut(msg.addr)
            .is_some_and(|s| s.backup.take().is_some());
        if had_backup {
            ctx.checker.backup_deleted(self.me, msg.addr, ctx.now);
        }
        // Respond even without a backup: a reissued AckO after the original
        // round trip completed must still be answered (§3.4).
        ctx.send(
            Message::new(MsgType::AckBD, msg.addr, self.me, msg.src).serial(msg.serial),
            1,
        );
    }

    fn on_ackbd(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let Some(st) = self.lines.get_mut(msg.addr) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        let Some(p) = st.ackbd.as_ref() else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if p.serial != msg.serial {
            ctx.stats.stale_discards.incr();
            return;
        }
        st.ackbd = None;
        // Drain forwards deferred while in the blocked-ownership state,
        // in place: swap the queue into a reused scratch buffer instead of
        // removing/reinserting a heap-allocated Vec per wakeup.
        let mut drained = std::mem::take(&mut self.deferred_scratch);
        debug_assert!(drained.is_empty());
        std::mem::swap(&mut drained, &mut st.deferred);
        if let Some(entry) = self.cache.get_mut(msg.addr) {
            entry.blocked = false;
        }
        for m in drained.drain(..) {
            self.handle_message(m, ctx);
        }
        self.deferred_scratch = drained;
    }

    fn on_unblock_ping(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        // Which transaction does the ping refer to? The directory serializes
        // transactions per line, and (our earlier same-kind rule) a pending
        // request of the same kind as the open transaction always merges
        // into it — so the *kind* carried by the ping identifies the
        // transaction unambiguously, where small serial numbers could
        // collide across transactions.
        //
        // 1. The open transaction is our current, unresolved miss: ignore
        //    (§3.3) — our own lost-request reissue is the recovery path.
        let st = self.lines.get(msg.addr);
        if let Some(m) = st.and_then(|s| s.miss.as_ref()) {
            if (m.kind == MissKind::Store) == msg.ping_for_store {
                return;
            }
        }
        // 2. We completed a transaction of that kind and its unblock was
        //    lost: resend exactly what we sent then.
        if let Some(c) = st.and_then(|s| s.unblocked.as_ref()) {
            if c.was_store == msg.ping_for_store {
                let mtype = if c.exclusive {
                    MsgType::UnblockEx
                } else {
                    MsgType::Unblock
                };
                let mut reply = Message::new(mtype, msg.addr, self.me, msg.src).serial(msg.serial);
                if c.acko {
                    reply = reply.with_acko();
                }
                ctx.send(reply, 1);
                return;
            }
        }
        // 3. No record (possible only for stale pings or pre-record history):
        //    answer conservatively from the current cache state.
        let reply_type = if let Some(entry) = self.cache.get(msg.addr) {
            if entry.perm.is_exclusive() {
                MsgType::UnblockEx
            } else {
                MsgType::Unblock
            }
        } else if let Some(wbm) = st.and_then(|s| s.wb.as_ref()) {
            if wbm.was_exclusive {
                MsgType::UnblockEx
            } else {
                MsgType::Unblock
            }
        } else {
            MsgType::Unblock
        };
        let mut reply = Message::new(reply_type, msg.addr, self.me, msg.src).serial(msg.serial);
        if reply_type == MsgType::UnblockEx {
            if let Some(p) = st.and_then(|s| s.ackbd.as_ref()) {
                if p.peer == msg.src {
                    reply = reply.with_acko();
                }
            }
        }
        ctx.send(reply, 1);
    }

    fn on_wb_ping(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        if let Some(wbm) = self.lines.get(msg.addr).and_then(|s| s.wb.as_ref()) {
            // Our WbAck was lost: the ping substitutes for it (it carries
            // the same serial the L2's transaction expects).
            let serial = wbm.serial;
            let mut as_wback =
                Message::new(MsgType::WbAck, msg.addr, msg.src, self.me).serial(serial);
            as_wback.wb_wants_data = msg.wb_wants_data;
            self.on_wback(as_wback, ctx);
            return;
        }
        if let Some(b) = self.lines.get_mut(msg.addr).and_then(|s| s.backup.as_mut()) {
            if b.kind == BackupKind::Writeback && b.dest == msg.src {
                b.serial = msg.serial;
                let (data, dirty) = (b.data, b.dirty);
                ctx.send(
                    Message::new(MsgType::WbData, msg.addr, self.me, msg.src)
                        .serial(msg.serial)
                        .data(data)
                        .dirty(dirty),
                    1,
                );
                return;
            }
        }
        ctx.send(
            Message::new(MsgType::WbCancel, msg.addr, self.me, msg.src).serial(msg.serial),
            1,
        );
    }

    fn on_ownership_ping(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let st = self.lines.get(msg.addr);
        let have_ownership = self.cache.contains(msg.addr)
            || st.is_some_and(|s| s.wb.is_some() || s.backup.is_some());
        let pending_miss = st.is_some_and(|s| s.miss.is_some());
        let reply = if have_ownership && !pending_miss {
            MsgType::AckO
        } else {
            MsgType::NackO
        };
        ctx.send(
            Message::new(reply, msg.addr, self.me, msg.src).serial(msg.serial),
            1,
        );
    }

    fn on_nacko(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let Some(b) = self.lines.get(msg.addr).and_then(|s| s.backup.as_ref()) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if b.serial != msg.serial {
            ctx.stats.stale_discards.incr();
            return;
        }
        // The destination never received the owned data: resend it.
        let (data, dirty, dest, serial, kind) = (b.data, b.dirty, b.dest, b.serial, b.kind);
        match kind {
            BackupKind::ForwardedData { acks } => {
                ctx.send(
                    Message::new(MsgType::DataEx, msg.addr, self.me, dest)
                        .requester(dest)
                        .serial(serial)
                        .acks(acks)
                        .data(data)
                        .dirty(dirty),
                    1,
                );
            }
            BackupKind::Writeback => {
                ctx.send(
                    Message::new(MsgType::WbData, msg.addr, self.me, dest)
                        .serial(serial)
                        .data(data)
                        .dirty(dirty),
                    1,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Timeouts
    // ------------------------------------------------------------------

    /// Handles a fired timeout; stale generations are ignored.
    pub fn handle_timeout(
        &mut self,
        kind: TimeoutKind,
        addr: LineAddr,
        gen: u64,
        ctx: &mut Ctx<'_>,
    ) {
        match kind {
            TimeoutKind::LostRequest => self.on_lost_request(addr, gen, ctx),
            TimeoutKind::LostAckBd => self.on_lost_ackbd(addr, gen, ctx),
            TimeoutKind::LostData => self.on_lost_data(addr, gen, ctx),
            TimeoutKind::LostUnblock => {
                // The table declares this pair impossible: L1s never arm
                // lost-unblock timers. Record it instead of panicking.
                ctx.checker.protocol_error(
                    self.me,
                    addr,
                    "lost-unblock timeout fired at an L1 (never armed)",
                    ctx.now,
                );
            }
        }
    }

    fn on_lost_request(&mut self, addr: LineAddr, gen: u64, ctx: &mut Ctx<'_>) {
        // Reissue serials come from the same per-node sequential stream as
        // fresh requests: still "sequentially increasing" (§3.5), but two
        // *different* transactions by this node can never collide before the
        // stream wraps — a chain of `.next()` bumps could alias the serial
        // the allocator hands to the node's next request.
        let fresh = self.serials.fresh();
        let Some(st) = self.lines.get_mut(addr) else {
            return;
        };
        if let Some(m) = st.miss.as_mut() {
            if m.gen != gen {
                return;
            }
            ctx.stats.record_timeout(TimeoutKind::LostRequest);
            ctx.stats.reissues.incr();
            m.serial = fresh;
            m.retries += 1;
            m.responded = false;
            m.granted_ex = false;
            m.granted_dirty = false;
            m.data = None;
            m.acks_needed = 0;
            m.acks_got = 0;
            m.supplier = None;
            self.gen_counter += 1;
            m.gen = self.gen_counter;
            let new_gen = m.gen;
            let mtype = match m.kind {
                MissKind::Load => MsgType::GetS,
                MissKind::Store => MsgType::GetX,
            };
            let serial = m.serial;
            let retries = m.retries;
            let home = NodeId::L2(addr.home_bank(ctx.config.tiles));
            ctx.send(Message::new(mtype, addr, self.me, home).serial(serial), 1);
            ctx.arm_timeout(
                self.me,
                addr,
                TimeoutKind::LostRequest,
                new_gen,
                backoff_delay(ctx.config.ft.lost_request_timeout, retries),
            );
            return;
        }
        if let Some(w) = st.wb.as_mut() {
            if w.gen != gen {
                return;
            }
            ctx.stats.record_timeout(TimeoutKind::LostRequest);
            ctx.stats.reissues.incr();
            w.serial = fresh;
            w.retries += 1;
            self.gen_counter += 1;
            w.gen = self.gen_counter;
            let new_gen = w.gen;
            let serial = w.serial;
            let retries = w.retries;
            let home = NodeId::L2(addr.home_bank(ctx.config.tiles));
            ctx.send(
                Message::new(MsgType::Put, addr, self.me, home).serial(serial),
                1,
            );
            ctx.arm_timeout(
                self.me,
                addr,
                TimeoutKind::LostRequest,
                new_gen,
                backoff_delay(ctx.config.ft.lost_request_timeout, retries),
            );
        }
    }

    fn on_lost_ackbd(&mut self, addr: LineAddr, gen: u64, ctx: &mut Ctx<'_>) {
        let fresh = self.serials.fresh();
        let Some(p) = self.lines.get_mut(addr).and_then(|s| s.ackbd.as_mut()) else {
            return;
        };
        if p.gen != gen {
            return;
        }
        ctx.stats.record_timeout(TimeoutKind::LostAckBd);
        p.serial = fresh;
        p.retries += 1;
        self.gen_counter += 1;
        p.gen = self.gen_counter;
        let (peer, serial, new_gen, retries) = (p.peer, p.serial, p.gen, p.retries);
        ctx.send(
            Message::new(MsgType::AckO, addr, self.me, peer).serial(serial),
            1,
        );
        ctx.arm_timeout(
            self.me,
            addr,
            TimeoutKind::LostAckBd,
            new_gen,
            backoff_delay(ctx.config.ft.lost_ackbd_timeout, retries),
        );
    }

    fn on_lost_data(&mut self, addr: LineAddr, gen: u64, ctx: &mut Ctx<'_>) {
        let Some(b) = self.lines.get_mut(addr).and_then(|s| s.backup.as_mut()) else {
            return;
        };
        if b.gen != gen {
            return;
        }
        ctx.stats.record_timeout(TimeoutKind::LostData);
        b.retries += 1;
        self.gen_counter += 1;
        b.gen = self.gen_counter;
        let (dest, serial, new_gen, retries) = (b.dest, b.serial, b.gen, b.retries);
        ctx.send(
            Message::new(MsgType::OwnershipPing, addr, self.me, dest).serial(serial),
            1,
        );
        ctx.arm_timeout(
            self.me,
            addr,
            TimeoutKind::LostData,
            new_gen,
            backoff_delay(ctx.config.ft.lost_data_timeout, retries),
        );
    }
}

#[cfg(test)]
#[path = "l1_tests.rs"]
mod tests;
