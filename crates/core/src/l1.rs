//! The L1 cache controller.
//!
//! Implements the requester side of both protocols:
//!
//! * **DirCMP** (paper §2): MOESI stable states, misses through the home L2
//!   bank, invalidation acks collected at the requester, three-phase
//!   writebacks.
//! * **FtDirCMP** (paper §3): on top of DirCMP, the *backup* state when
//!   sending owned data (§3.1 step 1), the *blocked-ownership* states
//!   `Mb`/`Eb`/`Ob` while waiting for the backup-deletion acknowledgment
//!   (§3.1 steps 2–4), the lost-request and lost-backup-deletion-ack
//!   timeouts (§3.2, §3.4), request serial numbers with reissue (§3.5), and
//!   the recovery responses to `UnblockPing`/`WbPing`/`OwnershipPing`.

use ftdircmp_sim::FxHashMap;

use ftdircmp_sim::{Cycle, DetRng};

use crate::cache::SetAssocCache;
use crate::checker::Perm;
use crate::config::SystemConfig;
use crate::data::LineData;
use crate::ids::{LineAddr, NodeId};
use crate::msg::{Message, MsgType};
use crate::proto::{backoff_delay, Ctx, TimeoutKind};
use crate::serial::{SerialAllocator, SerialNum};

/// Stable L1 permission states (MOESI; `I` is represented by absence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Perm {
    /// Shared, clean, read-only.
    S,
    /// Exclusive, clean (silent upgrade to `M` on store).
    E,
    /// Owned: shared but responsible for supplying data.
    O,
    /// Modified: exclusive and dirty.
    M,
}

impl L1Perm {
    fn is_exclusive(self) -> bool {
        matches!(self, L1Perm::E | L1Perm::M)
    }

    fn is_owner(self) -> bool {
        matches!(self, L1Perm::E | L1Perm::M | L1Perm::O)
    }

    fn checker_perm(self) -> Perm {
        match self {
            L1Perm::S | L1Perm::O => Perm::Read,
            L1Perm::E | L1Perm::M => Perm::Write,
        }
    }
}

/// One resident L1 line. `blocked` marks the blocked-ownership states
/// (`Mb`/`Eb`/`Ob`): the miss is satisfied but ownership must not move
/// until the backup-deletion acknowledgment arrives (paper §3.1 step 2).
#[derive(Debug, Clone)]
struct L1Entry {
    perm: L1Perm,
    data: LineData,
    blocked: bool,
}

/// A CPU memory operation presented to the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuOp {
    /// Line touched.
    pub addr: LineAddr,
    /// True for stores.
    pub is_store: bool,
}

/// Outcome of presenting a CPU operation to the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuOutcome {
    /// Completed locally; the core may continue after the hit latency.
    Hit,
    /// A miss was issued; the L1 will signal completion later.
    Miss,
    /// The line has a writeback in flight; the L1 parked the operation and
    /// will retry it (and signal completion) when the writeback resolves.
    Stalled,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MissKind {
    Load,
    Store,
}

#[derive(Debug, Clone)]
struct MissMshr {
    kind: MissKind,
    serial: SerialNum,
    data: Option<LineData>,
    granted_ex: bool,
    granted_dirty: bool,
    responded: bool,
    acks_needed: u8,
    acks_got: u8,
    supplier: Option<NodeId>,
    issued_at: Cycle,
    retries: u32,
    gen: u64,
}

#[derive(Debug, Clone)]
struct WbMshr {
    data: Option<LineData>,
    was_exclusive: bool,
    dirty: bool,
    serial: SerialNum,
    retries: u32,
    gen: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BackupKind {
    /// Backup created when answering a forwarded request with owned data.
    ForwardedData {
        /// Invalidation-ack count the reissued `DataEx` must carry.
        acks: u8,
    },
    /// Backup created when sending `WbData` (kept in the writeback buffer).
    Writeback,
}

#[derive(Debug, Clone)]
struct Backup {
    data: LineData,
    dirty: bool,
    dest: NodeId,
    serial: SerialNum,
    kind: BackupKind,
    retries: u32,
    gen: u64,
}

/// Record of the most recent unblock this L1 sent for a line, so an
/// `UnblockPing` for that (completed) transaction can be answered exactly.
/// Overwriting per line is safe: the directory serializes transactions, so a
/// newer completion implies the older unblock was received. (In hardware
/// this table would be bounded; see DESIGN.md §4.)
#[derive(Debug, Clone, Copy)]
struct CompletedTx {
    was_store: bool,
    exclusive: bool,
    acko: bool,
}

#[derive(Debug, Clone)]
struct AckBdPending {
    peer: NodeId,
    serial: SerialNum,
    retries: u32,
    gen: u64,
}

/// The L1 cache controller for one tile.
#[derive(Debug)]
pub struct L1Controller {
    tile: u8,
    me: NodeId,
    ft: bool,
    cache: SetAssocCache<L1Entry>,
    miss: FxHashMap<LineAddr, MissMshr>,
    wb: FxHashMap<LineAddr, WbMshr>,
    backups: FxHashMap<LineAddr, Backup>,
    ackbd: FxHashMap<LineAddr, AckBdPending>,
    deferred: FxHashMap<LineAddr, Vec<Message>>,
    unblocked: FxHashMap<LineAddr, CompletedTx>,
    stalled_ops: Vec<CpuOp>,
    serials: SerialAllocator,
    gen_counter: u64,
}

impl L1Controller {
    /// Creates the controller for `tile`.
    pub fn new(tile: u8, config: &SystemConfig, rng: &mut DetRng) -> Self {
        L1Controller {
            tile,
            me: NodeId::L1(tile),
            ft: config.protocol.is_fault_tolerant(),
            cache: SetAssocCache::new(config.l1_sets(), config.l1_assoc),
            miss: FxHashMap::default(),
            wb: FxHashMap::default(),
            backups: FxHashMap::default(),
            ackbd: FxHashMap::default(),
            deferred: FxHashMap::default(),
            unblocked: FxHashMap::default(),
            stalled_ops: Vec::new(),
            serials: SerialAllocator::new(config.ft.serial_bits, rng),
            gen_counter: 0,
        }
    }

    /// This controller's node id.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Whether a miss or writeback is in flight for any line.
    pub fn is_idle(&self) -> bool {
        self.miss.is_empty()
            && self.wb.is_empty()
            && self.ackbd.is_empty()
            && self.backups.is_empty()
    }

    /// Resident-line count (diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.cache.len()
    }

    /// Peak overflow-buffer occupancy (diagnostics).
    pub fn overflow_peak(&self) -> usize {
        self.cache.overflow_peak()
    }

    /// Human-readable summary of in-flight state (deadlock diagnostics).
    pub fn pending_summary(&self) -> String {
        let mut out = String::new();
        for (a, m) in &self.miss {
            out.push_str(&format!(
                "{} miss {a} kind={:?} serial={} responded={} acks={}/{} retries={}\n",
                self.me, m.kind, m.serial, m.responded, m.acks_got, m.acks_needed, m.retries
            ));
        }
        for (a, w) in &self.wb {
            out.push_str(&format!(
                "{} wb {a} serial={} data={}\n",
                self.me,
                w.serial,
                w.data.is_some()
            ));
        }
        for (a, b) in &self.backups {
            out.push_str(&format!(
                "{} backup {a} dest={} serial={} kind={:?}\n",
                self.me, b.dest, b.serial, b.kind
            ));
        }
        for (a, p) in &self.ackbd {
            out.push_str(&format!(
                "{} ackbd-pending {a} peer={} serial={}\n",
                self.me, p.peer, p.serial
            ));
        }
        for (a, q) in &self.deferred {
            out.push_str(&format!("{} deferred {a} n={}\n", self.me, q.len()));
        }
        for op in &self.stalled_ops {
            out.push_str(&format!("{} stalled-op {:?}\n", self.me, op));
        }
        out
    }

    fn next_gen(&mut self) -> u64 {
        self.gen_counter += 1;
        self.gen_counter
    }

    fn home(&self, addr: LineAddr, config: &SystemConfig) -> NodeId {
        NodeId::L2(addr.home_bank(config.tiles))
    }

    fn fresh_serial(&mut self) -> SerialNum {
        if self.ft {
            self.serials.fresh()
        } else {
            SerialNum::ZERO
        }
    }

    // ------------------------------------------------------------------
    // CPU interface
    // ------------------------------------------------------------------

    /// Presents a CPU memory operation.
    pub fn cpu_access(&mut self, op: CpuOp, ctx: &mut Ctx<'_>) -> CpuOutcome {
        debug_assert!(
            !self.miss.contains_key(&op.addr),
            "core issued a second op to a line with a miss in flight"
        );
        if let Some(entry) = self.cache.get_mut(op.addr) {
            if !op.is_store {
                let version = entry.data.version();
                ctx.stats.l1_load_hits.incr();
                ctx.checker
                    .load_observed(self.me, op.addr, version, ctx.now);
                return CpuOutcome::Hit;
            }
            match entry.perm {
                L1Perm::M => {
                    entry.data.write(self.me);
                    let v = entry.data.version();
                    ctx.stats.l1_store_hits.incr();
                    ctx.checker.store_committed(self.me, op.addr, v, ctx.now);
                    return CpuOutcome::Hit;
                }
                L1Perm::E => {
                    // Silent E→M upgrade.
                    entry.perm = L1Perm::M;
                    entry.data.write(self.me);
                    let v = entry.data.version();
                    ctx.stats.l1_store_hits.incr();
                    ctx.checker.store_committed(self.me, op.addr, v, ctx.now);
                    return CpuOutcome::Hit;
                }
                L1Perm::S | L1Perm::O => {
                    // Upgrade miss: fall through keeping the entry.
                }
            }
        }
        if self.wb.contains_key(&op.addr) {
            // A writeback of this very line is in flight; park the op.
            self.stalled_ops.push(op);
            return CpuOutcome::Stalled;
        }
        self.issue_miss(op, ctx);
        CpuOutcome::Miss
    }

    fn issue_miss(&mut self, op: CpuOp, ctx: &mut Ctx<'_>) {
        let kind = if op.is_store {
            MissKind::Store
        } else {
            MissKind::Load
        };
        if op.is_store {
            ctx.stats.l1_store_misses.incr();
        } else {
            ctx.stats.l1_load_misses.incr();
        }
        let serial = self.fresh_serial();
        let gen = self.next_gen();
        ctx.stats
            .l1_mshr_occupancy
            .record(self.miss.len() as u64 + 1);
        self.miss.insert(
            op.addr,
            MissMshr {
                kind,
                serial,
                data: None,
                granted_ex: false,
                granted_dirty: false,
                responded: false,
                acks_needed: 0,
                acks_got: 0,
                supplier: None,
                issued_at: ctx.now,
                retries: 0,
                gen,
            },
        );
        let mtype = if op.is_store {
            MsgType::GetX
        } else {
            MsgType::GetS
        };
        let home = self.home(op.addr, ctx.config);
        ctx.send(
            Message::new(mtype, op.addr, self.me, home).serial(serial),
            1,
        );
        if self.ft {
            ctx.arm_timeout(
                self.me,
                op.addr,
                TimeoutKind::LostRequest,
                gen,
                ctx.config.ft.lost_request_timeout,
            );
        }
    }

    fn try_complete(&mut self, addr: LineAddr, ctx: &mut Ctx<'_>) {
        let Some(m) = self.miss.get(&addr) else {
            return;
        };
        if !m.responded {
            return;
        }
        if m.granted_ex && m.acks_got < m.acks_needed {
            return;
        }
        let m = self.miss.remove(&addr).expect("just checked");
        let supplier = m.supplier;
        let data_came = m.data.is_some();

        // Decide the final permission. An exclusive grant of dirty data must
        // install as M: a clean E could later evict silently (WbNoData) and
        // lose the only up-to-date copy.
        let perm = match (m.kind, m.granted_ex) {
            (MissKind::Load, false) => L1Perm::S,
            (MissKind::Load, true) if m.granted_dirty => L1Perm::M,
            (MissKind::Load, true) => L1Perm::E,
            (MissKind::Store, true) => L1Perm::M,
            (MissKind::Store, false) => {
                // A GetX is always answered exclusively; treat defensively.
                L1Perm::M
            }
        };
        let blocked = self.ft && data_came && m.granted_ex;

        // Install or update the line.
        if let Some(entry) = self.cache.get_mut(addr) {
            if let Some(d) = m.data {
                entry.data = d;
            }
            entry.perm = perm;
            entry.blocked = blocked;
        } else {
            let data = m
                .data
                .expect("miss completed without data and without a resident line");
            self.install_line(
                addr,
                L1Entry {
                    perm,
                    data,
                    blocked,
                },
                ctx,
            );
        }
        ctx.checker
            .set_perm(self.me, addr, perm.checker_perm(), ctx.now);

        // Commit the CPU operation.
        let entry = self.cache.get_mut(addr).expect("line just installed");
        match m.kind {
            MissKind::Store => {
                entry.data.write(self.me);
                let v = entry.data.version();
                ctx.checker.store_committed(self.me, addr, v, ctx.now);
            }
            MissKind::Load => {
                let v = entry.data.version();
                ctx.checker.load_observed(self.me, addr, v, ctx.now);
            }
        }

        // Unblock the directory; run the FT ownership handshake (§3.1).
        let home = self.home(addr, ctx.config);
        let unblock_type = if m.granted_ex {
            MsgType::UnblockEx
        } else {
            MsgType::Unblock
        };
        let mut unblock = Message::new(unblock_type, addr, self.me, home).serial(m.serial);
        if blocked {
            let supplier = supplier.expect("exclusive data has a supplier");
            if supplier == home {
                // AckO piggybacks on the UnblockEx (§3.1).
                unblock = unblock.with_acko();
            } else {
                ctx.send(
                    Message::new(MsgType::AckO, addr, self.me, supplier).serial(m.serial),
                    1,
                );
            }
            let gen = self.next_gen();
            self.ackbd.insert(
                addr,
                AckBdPending {
                    peer: supplier,
                    serial: m.serial,
                    retries: 0,
                    gen,
                },
            );
            ctx.arm_timeout(
                self.me,
                addr,
                TimeoutKind::LostAckBd,
                gen,
                ctx.config.ft.lost_ackbd_timeout,
            );
        }
        self.unblocked.insert(
            addr,
            CompletedTx {
                was_store: m.kind == MissKind::Store,
                exclusive: m.granted_ex,
                acko: unblock.piggy_acko,
            },
        );
        ctx.send(unblock, 1);

        ctx.stats.miss_latency.record(ctx.now - m.issued_at);
        ctx.complete(self.tile, addr, m.kind == MissKind::Store, 1);
    }

    fn install_line(&mut self, addr: LineAddr, entry: L1Entry, ctx: &mut Ctx<'_>) {
        let outcome = self.cache.insert(addr, entry, |_, e| !e.blocked);
        if let Some((vaddr, ventry)) = outcome.evicted {
            self.evict(vaddr, ventry, ctx);
        }
    }

    fn evict(&mut self, vaddr: LineAddr, ventry: L1Entry, ctx: &mut Ctx<'_>) {
        debug_assert!(!ventry.blocked);
        match ventry.perm {
            L1Perm::S => {
                // Silent eviction of a clean shared line.
                ctx.checker.set_perm(self.me, vaddr, Perm::None, ctx.now);
            }
            L1Perm::M | L1Perm::E | L1Perm::O => {
                self.start_writeback(vaddr, ventry, ctx);
            }
        }
    }

    fn start_writeback(&mut self, vaddr: LineAddr, ventry: L1Entry, ctx: &mut Ctx<'_>) {
        let serial = self.fresh_serial();
        let gen = self.next_gen();
        self.wb.insert(
            vaddr,
            WbMshr {
                data: Some(ventry.data),
                was_exclusive: ventry.perm.is_exclusive(),
                dirty: matches!(ventry.perm, L1Perm::M | L1Perm::O),
                serial,
                retries: 0,
                gen,
            },
        );
        ctx.checker.set_perm(self.me, vaddr, Perm::None, ctx.now);
        ctx.stats.l1_writebacks.incr();
        let home = self.home(vaddr, ctx.config);
        ctx.send(
            Message::new(MsgType::Put, vaddr, self.me, home).serial(serial),
            1,
        );
        if self.ft {
            ctx.arm_timeout(
                self.me,
                vaddr,
                TimeoutKind::LostRequest,
                gen,
                ctx.config.ft.lost_request_timeout,
            );
        }
    }

    fn retry_stalled(&mut self, ctx: &mut Ctx<'_>) {
        let ready: Vec<CpuOp> = {
            let wb = &self.wb;
            let (ready, parked): (Vec<CpuOp>, Vec<CpuOp>) = self
                .stalled_ops
                .drain(..)
                .partition(|op| !wb.contains_key(&op.addr));
            self.stalled_ops = parked;
            ready
        };
        for op in ready {
            match self.cpu_access(op, ctx) {
                CpuOutcome::Hit => {
                    ctx.complete(self.tile, op.addr, op.is_store, ctx.config.l1_hit_cycles);
                }
                CpuOutcome::Miss => {} // completion will come from try_complete
                CpuOutcome::Stalled => {} // parked again (new wb appeared)
            }
        }
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// The line's current facet configuration, in the state vocabulary of
    /// the reified transition table ([`crate::transitions::l1_table`]).
    /// The first entry is always the mandatory `Cache` facet.
    pub fn table_facets(&self, addr: LineAddr) -> Vec<&'static str> {
        let mut f = Vec::with_capacity(4);
        f.push(match self.cache.get(addr) {
            None => "I",
            Some(e) => match (e.perm, e.blocked) {
                (L1Perm::S, _) => "S",
                (L1Perm::O, _) => "O",
                (L1Perm::E, false) => "E",
                (L1Perm::E, true) => "Eb",
                (L1Perm::M, false) => "M",
                (L1Perm::M, true) => "Mb",
            },
        });
        if let Some(m) = self.miss.get(&addr) {
            f.push(match (m.kind, self.cache.get(addr).map(|e| e.perm)) {
                (MissKind::Load, _) => "IS",
                (MissKind::Store, Some(L1Perm::S)) => "SM",
                (MissKind::Store, Some(L1Perm::O)) => "OM",
                (MissKind::Store, _) => "IM",
            });
        }
        if let Some(w) = self.wb.get(&addr) {
            f.push(match (w.data.is_some(), w.was_exclusive, w.dirty) {
                (false, _, _) => "II",
                (true, true, true) => "MI",
                (true, true, false) => "EI",
                (true, false, _) => "OI",
            });
        }
        if let Some(b) = self.backups.get(&addr) {
            f.push(match b.kind {
                BackupKind::ForwardedData { .. } => "B",
                BackupKind::Writeback => "Bw",
            });
        }
        f
    }

    /// Cross-checks an incoming message against the reified transition
    /// table (guards are not evaluated — this is an over-approximation).
    /// Only active while the invariant checker is enabled, keeping the
    /// campaign hot path untouched.
    fn table_check(&self, msg: &Message, ctx: &mut Ctx<'_>) {
        if !ctx.checker.is_enabled() {
            return;
        }
        let facets = self.table_facets(msg.addr);
        if !crate::transitions::l1_table().legal_message(&facets, msg.mtype) {
            ctx.checker.protocol_error(
                self.me,
                msg.addr,
                &format!("unexpected {} in state {}", msg.mtype, facets.join("+")),
                ctx.now,
            );
        }
    }

    /// Handles an incoming network message.
    pub fn handle_message(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        self.table_check(&msg, ctx);
        match msg.mtype {
            MsgType::Data => self.on_data(msg, false, ctx),
            MsgType::DataEx => self.on_data(msg, true, ctx),
            MsgType::Ack => self.on_ack(msg, ctx),
            MsgType::Inv => self.on_inv(msg, ctx),
            MsgType::FwdGetS => self.on_fwd_gets(msg, ctx),
            MsgType::FwdGetX => self.on_fwd_getx(msg, ctx),
            MsgType::WbAck => self.on_wback(msg, ctx),
            MsgType::AckO => self.on_acko(msg, ctx),
            MsgType::AckBD => self.on_ackbd(msg, ctx),
            MsgType::UnblockPing => self.on_unblock_ping(msg, ctx),
            MsgType::WbPing => self.on_wb_ping(msg, ctx),
            MsgType::OwnershipPing => self.on_ownership_ping(msg, ctx),
            MsgType::NackO => self.on_nacko(msg, ctx),
            MsgType::GetX
            | MsgType::GetS
            | MsgType::Put
            | MsgType::Unblock
            | MsgType::UnblockEx
            | MsgType::WbData
            | MsgType::WbNoData
            | MsgType::WbCancel => {
                // Misrouted: no L1 handler. `table_check` above recorded the
                // protocol violation; drop the message instead of panicking.
            }
        }
    }

    fn serial_matches(&self, expected: SerialNum, got: SerialNum) -> bool {
        !self.ft || expected == got
    }

    fn on_data(&mut self, msg: Message, exclusive: bool, ctx: &mut Ctx<'_>) {
        let Some(m) = self.miss.get_mut(&msg.addr) else {
            // The transaction already finished: this is a duplicate from a
            // reissue whose original was merely slow, i.e. a false positive.
            ctx.stats.stale_discards.incr();
            ctx.stats.false_positives.incr();
            return;
        };
        if self.ft && m.serial != msg.serial {
            ctx.stats.stale_discards.incr();
            ctx.stats.false_positives.incr();
            return;
        }
        m.responded = true;
        m.granted_ex = exclusive;
        m.granted_dirty = msg.data_dirty;
        m.acks_needed = msg.ack_count;
        m.supplier = Some(msg.src);
        if msg.data.is_some() {
            m.data = msg.data;
        }
        self.try_complete(msg.addr, ctx);
    }

    fn on_ack(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let Some(m) = self.miss.get_mut(&msg.addr) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if self.ft && m.serial != msg.serial {
            // The stale acknowledgment of the paper's Figure 2: must be
            // discarded or it could be mis-counted towards the reissued
            // request.
            ctx.stats.stale_discards.incr();
            return;
        }
        m.acks_got += 1;
        self.try_complete(msg.addr, ctx);
    }

    fn on_inv(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        // Always acknowledge: the directory's sharer list may be stale
        // (silent S evictions), and the requester is counting.
        ctx.send(
            Message::new(MsgType::Ack, msg.addr, self.me, msg.requester)
                .requester(msg.requester)
                .serial(msg.serial),
            1,
        );
        if let Some(entry) = self.cache.get(msg.addr) {
            if entry.perm.is_exclusive() || entry.blocked {
                // A stale Inv: from a reissued older transaction (FtDirCMP)
                // or delayed past a complete later transaction that made
                // this node the owner (possible under plain DirCMP with an
                // adversarial schedule).  The Ack above is stale and will
                // be discarded by its requester; keep the line.
                return;
            }
            self.cache.remove(msg.addr);
            ctx.checker.set_perm(self.me, msg.addr, Perm::None, ctx.now);
        }
        // An upgrade in progress (SM/OM) keeps its MSHR: the full data will
        // arrive with the eventual DataEx.
    }

    fn on_fwd_gets(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        if let Some(entry) = self.cache.get_mut(msg.addr) {
            if entry.blocked {
                self.deferred.entry(msg.addr).or_default().push(msg);
                ctx.stats.deferred_forwards.incr();
                return;
            }
            if entry.perm.is_owner() {
                let data = entry.data;
                entry.perm = L1Perm::O;
                ctx.checker.set_perm(self.me, msg.addr, Perm::Read, ctx.now);
                ctx.send(
                    Message::new(MsgType::Data, msg.addr, self.me, msg.requester)
                        .requester(msg.requester)
                        .serial(msg.serial)
                        .data(data),
                    1,
                );
                return;
            }
        }
        if let Some(wbm) = self.wb.get(&msg.addr) {
            if let Some(data) = wbm.data {
                // Owner with a writeback in flight still supplies data.
                ctx.send(
                    Message::new(MsgType::Data, msg.addr, self.me, msg.requester)
                        .requester(msg.requester)
                        .serial(msg.serial)
                        .data(data),
                    1,
                );
                return;
            }
        }
        ctx.stats.stale_discards.incr();
    }

    fn on_fwd_getx(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        if let Some(entry) = self.cache.get(msg.addr) {
            if entry.blocked {
                self.deferred.entry(msg.addr).or_default().push(msg);
                ctx.stats.deferred_forwards.incr();
                return;
            }
            if entry.perm.is_owner() {
                let dirty = matches!(entry.perm, L1Perm::M | L1Perm::O);
                let entry = self.cache.remove(msg.addr).expect("just found");
                self.send_owned_data(msg.addr, entry.data, dirty, &msg, ctx);
                ctx.checker.set_perm(self.me, msg.addr, Perm::None, ctx.now);
                return;
            }
            // A non-owner holding S should never see FwdGetX; drop the copy
            // defensively and fall through to the stale path.
            self.cache.remove(msg.addr);
            ctx.checker.set_perm(self.me, msg.addr, Perm::None, ctx.now);
            ctx.stats.stale_discards.incr();
            return;
        }
        if let Some(wbm) = self.wb.get_mut(&msg.addr) {
            let dirty = wbm.dirty;
            if let Some(data) = wbm.data.take() {
                // Put raced with the forward; ownership goes to the
                // requester, and the eventual WbAck will be stale.
                self.send_owned_data(msg.addr, data, dirty, &msg, ctx);
                return;
            }
        }
        if let Some(b) = self.backups.get_mut(&msg.addr) {
            // Reissued forward: resend from the backup with the new serial
            // (§3.2: a node in backup state must detect reissued requests).
            b.serial = msg.serial;
            b.dest = msg.requester;
            b.kind = BackupKind::ForwardedData {
                acks: msg.ack_count,
            };
            let (data, dirty) = (b.data, b.dirty);
            ctx.send(
                Message::new(MsgType::DataEx, msg.addr, self.me, msg.requester)
                    .requester(msg.requester)
                    .serial(msg.serial)
                    .acks(msg.ack_count)
                    .data(data)
                    .dirty(dirty),
                1,
            );
            return;
        }
        ctx.stats.stale_discards.incr();
    }

    /// Sends owned data in response to a forwarded request; under FtDirCMP
    /// the data is retained as a backup until the ownership acknowledgment
    /// arrives (§3.1 step 1).
    fn send_owned_data(
        &mut self,
        addr: LineAddr,
        data: LineData,
        dirty: bool,
        msg: &Message,
        ctx: &mut Ctx<'_>,
    ) {
        ctx.send(
            Message::new(MsgType::DataEx, addr, self.me, msg.requester)
                .requester(msg.requester)
                .serial(msg.serial)
                .acks(msg.ack_count)
                .data(data)
                .dirty(dirty),
            1,
        );
        if self.ft {
            let gen = self.next_gen();
            self.backups.insert(
                addr,
                Backup {
                    data,
                    dirty,
                    dest: msg.requester,
                    serial: msg.serial,
                    kind: BackupKind::ForwardedData {
                        acks: msg.ack_count,
                    },
                    retries: 0,
                    gen,
                },
            );
            ctx.checker.backup_created(self.me, addr, ctx.now);
            ctx.arm_timeout(
                self.me,
                addr,
                TimeoutKind::LostData,
                gen,
                ctx.config.ft.lost_data_timeout,
            );
        }
    }

    fn on_wback(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let Some(wbm) = self.wb.get(&msg.addr) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if !self.serial_matches(wbm.serial, msg.serial) {
            ctx.stats.stale_discards.incr();
            return;
        }
        let wbm = self.wb.remove(&msg.addr).expect("just checked");
        if msg.wb_stale {
            // Ownership moved while the Put was queued. If the forward has
            // not reached us yet (possible on an unordered network), we
            // still hold the data: reinstate the line so we can answer it.
            if let Some(data) = wbm.data {
                let perm = if wbm.was_exclusive {
                    L1Perm::M
                } else {
                    L1Perm::O
                };
                ctx.checker
                    .set_perm(self.me, msg.addr, perm.checker_perm(), ctx.now);
                self.install_line(
                    msg.addr,
                    L1Entry {
                        perm,
                        data,
                        blocked: false,
                    },
                    ctx,
                );
            }
            self.retry_stalled(ctx);
            return;
        }
        match wbm.data {
            Some(data) if wbm.dirty || msg.wb_wants_data => {
                ctx.send(
                    Message::new(MsgType::WbData, msg.addr, self.me, msg.src)
                        .serial(msg.serial)
                        .data(data)
                        .dirty(wbm.dirty),
                    1,
                );
                if self.ft {
                    let gen = self.next_gen();
                    self.backups.insert(
                        msg.addr,
                        Backup {
                            data,
                            dirty: wbm.dirty,
                            dest: msg.src,
                            serial: msg.serial,
                            kind: BackupKind::Writeback,
                            retries: 0,
                            gen,
                        },
                    );
                    ctx.checker.backup_created(self.me, msg.addr, ctx.now);
                    ctx.arm_timeout(
                        self.me,
                        msg.addr,
                        TimeoutKind::LostData,
                        gen,
                        ctx.config.ft.lost_data_timeout,
                    );
                }
            }
            _ => {
                // Clean (E) line, or data already surrendered to a forward.
                ctx.send(
                    Message::new(MsgType::WbNoData, msg.addr, self.me, msg.src).serial(msg.serial),
                    1,
                );
            }
        }
        self.retry_stalled(ctx);
    }

    fn on_acko(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        if self.backups.remove(&msg.addr).is_some() {
            ctx.checker.backup_deleted(self.me, msg.addr, ctx.now);
        }
        // Respond even without a backup: a reissued AckO after the original
        // round trip completed must still be answered (§3.4).
        ctx.send(
            Message::new(MsgType::AckBD, msg.addr, self.me, msg.src).serial(msg.serial),
            1,
        );
    }

    fn on_ackbd(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let Some(p) = self.ackbd.get(&msg.addr) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if p.serial != msg.serial {
            ctx.stats.stale_discards.incr();
            return;
        }
        self.ackbd.remove(&msg.addr);
        if let Some(entry) = self.cache.get_mut(msg.addr) {
            entry.blocked = false;
        }
        // Drain forwards deferred while in the blocked-ownership state.
        if let Some(queue) = self.deferred.remove(&msg.addr) {
            for m in queue {
                self.handle_message(m, ctx);
            }
        }
    }

    fn on_unblock_ping(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        // Which transaction does the ping refer to? The directory serializes
        // transactions per line, and (our earlier same-kind rule) a pending
        // request of the same kind as the open transaction always merges
        // into it — so the *kind* carried by the ping identifies the
        // transaction unambiguously, where small serial numbers could
        // collide across transactions.
        //
        // 1. The open transaction is our current, unresolved miss: ignore
        //    (§3.3) — our own lost-request reissue is the recovery path.
        if let Some(m) = self.miss.get(&msg.addr) {
            if (m.kind == MissKind::Store) == msg.ping_for_store {
                return;
            }
        }
        // 2. We completed a transaction of that kind and its unblock was
        //    lost: resend exactly what we sent then.
        if let Some(c) = self.unblocked.get(&msg.addr) {
            if c.was_store == msg.ping_for_store {
                let mtype = if c.exclusive {
                    MsgType::UnblockEx
                } else {
                    MsgType::Unblock
                };
                let mut reply = Message::new(mtype, msg.addr, self.me, msg.src).serial(msg.serial);
                if c.acko {
                    reply = reply.with_acko();
                }
                ctx.send(reply, 1);
                return;
            }
        }
        // 3. No record (possible only for stale pings or pre-record history):
        //    answer conservatively from the current cache state.
        let reply_type = if let Some(entry) = self.cache.get(msg.addr) {
            if entry.perm.is_exclusive() {
                MsgType::UnblockEx
            } else {
                MsgType::Unblock
            }
        } else if let Some(wbm) = self.wb.get(&msg.addr) {
            if wbm.was_exclusive {
                MsgType::UnblockEx
            } else {
                MsgType::Unblock
            }
        } else {
            MsgType::Unblock
        };
        let mut reply = Message::new(reply_type, msg.addr, self.me, msg.src).serial(msg.serial);
        if reply_type == MsgType::UnblockEx {
            if let Some(p) = self.ackbd.get(&msg.addr) {
                if p.peer == msg.src {
                    reply = reply.with_acko();
                }
            }
        }
        ctx.send(reply, 1);
    }

    fn on_wb_ping(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        if let Some(wbm) = self.wb.get(&msg.addr) {
            // Our WbAck was lost: the ping substitutes for it (it carries
            // the same serial the L2's transaction expects).
            let serial = wbm.serial;
            let mut as_wback =
                Message::new(MsgType::WbAck, msg.addr, msg.src, self.me).serial(serial);
            as_wback.wb_wants_data = msg.wb_wants_data;
            self.on_wback(as_wback, ctx);
            return;
        }
        if let Some(b) = self.backups.get_mut(&msg.addr) {
            if b.kind == BackupKind::Writeback && b.dest == msg.src {
                b.serial = msg.serial;
                let (data, dirty) = (b.data, b.dirty);
                ctx.send(
                    Message::new(MsgType::WbData, msg.addr, self.me, msg.src)
                        .serial(msg.serial)
                        .data(data)
                        .dirty(dirty),
                    1,
                );
                return;
            }
        }
        ctx.send(
            Message::new(MsgType::WbCancel, msg.addr, self.me, msg.src).serial(msg.serial),
            1,
        );
    }

    fn on_ownership_ping(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let have_ownership = self.cache.contains(msg.addr)
            || self.wb.contains_key(&msg.addr)
            || self.backups.contains_key(&msg.addr);
        let pending_miss = self.miss.contains_key(&msg.addr);
        let reply = if have_ownership && !pending_miss {
            MsgType::AckO
        } else {
            MsgType::NackO
        };
        ctx.send(
            Message::new(reply, msg.addr, self.me, msg.src).serial(msg.serial),
            1,
        );
    }

    fn on_nacko(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let Some(b) = self.backups.get(&msg.addr) else {
            ctx.stats.stale_discards.incr();
            return;
        };
        if b.serial != msg.serial {
            ctx.stats.stale_discards.incr();
            return;
        }
        // The destination never received the owned data: resend it.
        let (data, dirty, dest, serial, kind) = (b.data, b.dirty, b.dest, b.serial, b.kind);
        match kind {
            BackupKind::ForwardedData { acks } => {
                ctx.send(
                    Message::new(MsgType::DataEx, msg.addr, self.me, dest)
                        .requester(dest)
                        .serial(serial)
                        .acks(acks)
                        .data(data)
                        .dirty(dirty),
                    1,
                );
            }
            BackupKind::Writeback => {
                ctx.send(
                    Message::new(MsgType::WbData, msg.addr, self.me, dest)
                        .serial(serial)
                        .data(data)
                        .dirty(dirty),
                    1,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Timeouts
    // ------------------------------------------------------------------

    /// Handles a fired timeout; stale generations are ignored.
    pub fn handle_timeout(
        &mut self,
        kind: TimeoutKind,
        addr: LineAddr,
        gen: u64,
        ctx: &mut Ctx<'_>,
    ) {
        match kind {
            TimeoutKind::LostRequest => self.on_lost_request(addr, gen, ctx),
            TimeoutKind::LostAckBd => self.on_lost_ackbd(addr, gen, ctx),
            TimeoutKind::LostData => self.on_lost_data(addr, gen, ctx),
            TimeoutKind::LostUnblock => {
                // The table declares this pair impossible: L1s never arm
                // lost-unblock timers. Record it instead of panicking.
                ctx.checker.protocol_error(
                    self.me,
                    addr,
                    "lost-unblock timeout fired at an L1 (never armed)",
                    ctx.now,
                );
            }
        }
    }

    fn on_lost_request(&mut self, addr: LineAddr, gen: u64, ctx: &mut Ctx<'_>) {
        // Reissue serials come from the same per-node sequential stream as
        // fresh requests: still "sequentially increasing" (§3.5), but two
        // *different* transactions by this node can never collide before the
        // stream wraps — a chain of `.next()` bumps could alias the serial
        // the allocator hands to the node's next request.
        let fresh = self.serials.fresh();
        if let Some(m) = self.miss.get_mut(&addr) {
            if m.gen != gen {
                return;
            }
            ctx.stats.record_timeout(TimeoutKind::LostRequest);
            ctx.stats.reissues.incr();
            m.serial = fresh;
            m.retries += 1;
            m.responded = false;
            m.granted_ex = false;
            m.granted_dirty = false;
            m.data = None;
            m.acks_needed = 0;
            m.acks_got = 0;
            m.supplier = None;
            self.gen_counter += 1;
            m.gen = self.gen_counter;
            let new_gen = m.gen;
            let mtype = match m.kind {
                MissKind::Load => MsgType::GetS,
                MissKind::Store => MsgType::GetX,
            };
            let serial = m.serial;
            let retries = m.retries;
            let home = NodeId::L2(addr.home_bank(ctx.config.tiles));
            ctx.send(Message::new(mtype, addr, self.me, home).serial(serial), 1);
            ctx.arm_timeout(
                self.me,
                addr,
                TimeoutKind::LostRequest,
                new_gen,
                backoff_delay(ctx.config.ft.lost_request_timeout, retries),
            );
            return;
        }
        if let Some(w) = self.wb.get_mut(&addr) {
            if w.gen != gen {
                return;
            }
            ctx.stats.record_timeout(TimeoutKind::LostRequest);
            ctx.stats.reissues.incr();
            w.serial = fresh;
            w.retries += 1;
            self.gen_counter += 1;
            w.gen = self.gen_counter;
            let new_gen = w.gen;
            let serial = w.serial;
            let retries = w.retries;
            let home = self.home(addr, ctx.config);
            ctx.send(
                Message::new(MsgType::Put, addr, self.me, home).serial(serial),
                1,
            );
            ctx.arm_timeout(
                self.me,
                addr,
                TimeoutKind::LostRequest,
                new_gen,
                backoff_delay(ctx.config.ft.lost_request_timeout, retries),
            );
        }
    }

    fn on_lost_ackbd(&mut self, addr: LineAddr, gen: u64, ctx: &mut Ctx<'_>) {
        let fresh = self.serials.fresh();
        let Some(p) = self.ackbd.get_mut(&addr) else {
            return;
        };
        if p.gen != gen {
            return;
        }
        ctx.stats.record_timeout(TimeoutKind::LostAckBd);
        p.serial = fresh;
        p.retries += 1;
        self.gen_counter += 1;
        p.gen = self.gen_counter;
        let (peer, serial, new_gen, retries) = (p.peer, p.serial, p.gen, p.retries);
        ctx.send(
            Message::new(MsgType::AckO, addr, self.me, peer).serial(serial),
            1,
        );
        ctx.arm_timeout(
            self.me,
            addr,
            TimeoutKind::LostAckBd,
            new_gen,
            backoff_delay(ctx.config.ft.lost_ackbd_timeout, retries),
        );
    }

    fn on_lost_data(&mut self, addr: LineAddr, gen: u64, ctx: &mut Ctx<'_>) {
        let Some(b) = self.backups.get_mut(&addr) else {
            return;
        };
        if b.gen != gen {
            return;
        }
        ctx.stats.record_timeout(TimeoutKind::LostData);
        b.retries += 1;
        self.gen_counter += 1;
        b.gen = self.gen_counter;
        let (dest, serial, new_gen, retries) = (b.dest, b.serial, b.gen, b.retries);
        ctx.send(
            Message::new(MsgType::OwnershipPing, addr, self.me, dest).serial(serial),
            1,
        );
        ctx.arm_timeout(
            self.me,
            addr,
            TimeoutKind::LostData,
            new_gen,
            backoff_delay(ctx.config.ft.lost_data_timeout, retries),
        );
    }
}

#[cfg(test)]
#[path = "l1_tests.rs"]
mod tests;
