//! Indexed per-line controller state storage.
//!
//! The controllers used to keep one `FxHashMap<LineAddr, _>` per kind of
//! in-flight structure (miss MSHRs, writeback MSHRs, backups, TBEs, waiting
//! queues, …), costing one hash lookup per structure per message. A
//! [`LineTable`] replaces them with a single *slab*: one hash lookup maps a
//! line address to a compact `u32` handle, and the handle indexes a dense
//! `Vec` of per-line state structs that hold every facet together. A message
//! handler therefore resolves all of a line's in-flight state with one
//! lookup, and facet updates are plain field stores.
//!
//! # Slot lifetime and iteration order
//!
//! Slots are allocated on first touch and never freed; a facet going away is
//! represented by `None`/empty rather than map removal (the same policy the
//! old `unblocked` map already used). Memory is bounded by the number of
//! distinct lines a controller ever touches.
//!
//! # Iteration-order independence (determinism contract)
//!
//! [`LineTable::iter`] yields slots in **first-touch order**, which is a
//! pure function of the execution history and therefore deterministic. More
//! importantly, *no protocol decision may depend on iteration order at all*:
//! the iterator is only used for end-of-run idleness accounting and
//! human-readable deadlock diagnostics. The old per-facet hash maps were
//! never iterated on the protocol path either — this type makes that
//! guarantee explicit and structural.

use ftdircmp_sim::FxHashMap;

use crate::ids::LineAddr;

/// Slab of per-line state, indexed by a compact handle.
#[derive(Debug, Clone)]
pub(crate) struct LineTable<T> {
    index: FxHashMap<LineAddr, u32>,
    slots: Vec<(LineAddr, T)>,
}

impl<T: Default> LineTable<T> {
    pub fn new() -> Self {
        LineTable {
            index: FxHashMap::default(),
            slots: Vec::new(),
        }
    }

    /// The line's state, if it was ever touched.
    #[inline]
    pub fn get(&self, addr: LineAddr) -> Option<&T> {
        self.index.get(&addr).map(|&i| &self.slots[i as usize].1)
    }

    /// Mutable access to the line's state, if it was ever touched.
    #[inline]
    pub fn get_mut(&mut self, addr: LineAddr) -> Option<&mut T> {
        let slots = &mut self.slots;
        self.index.get(&addr).map(|&i| &mut slots[i as usize].1)
    }

    /// Mutable access to the line's state, allocating a default slot on
    /// first touch.
    #[inline]
    pub fn entry(&mut self, addr: LineAddr) -> &mut T {
        let slots = &mut self.slots;
        let i = *self.index.entry(addr).or_insert_with(|| {
            let i = u32::try_from(slots.len()).expect("line table exceeds u32 handles");
            slots.push((addr, T::default()));
            i
        });
        &mut slots[i as usize].1
    }

    /// All touched lines in first-touch order (diagnostics only; see the
    /// module docs for the iteration-order contract).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> {
        self.slots.iter().map(|(a, t)| (*a, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_allocates_and_get_finds() {
        let mut t: LineTable<u64> = LineTable::new();
        assert_eq!(t.get(LineAddr(7)), None);
        *t.entry(LineAddr(7)) = 42;
        assert_eq!(t.get(LineAddr(7)), Some(&42));
        assert_eq!(t.get_mut(LineAddr(7)), Some(&mut 42));
    }

    #[test]
    fn slots_persist_after_reset_to_default() {
        let mut t: LineTable<Option<u32>> = LineTable::new();
        *t.entry(LineAddr(1)) = Some(9);
        t.get_mut(LineAddr(1)).unwrap().take();
        // The slot survives; the facet is simply absent.
        assert_eq!(t.get(LineAddr(1)), Some(&None));
    }

    #[test]
    fn iter_is_first_touch_order() {
        let mut t: LineTable<u8> = LineTable::new();
        for a in [5u64, 1, 9, 3] {
            t.entry(LineAddr(a));
        }
        t.entry(LineAddr(1)); // re-touch must not reorder
        let order: Vec<u64> = t.iter().map(|(a, _)| a.0).collect();
        assert_eq!(order, vec![5, 1, 9, 3]);
    }
}
