//! Coherence message vocabulary (paper Tables 1 and 2).

use ftdircmp_noc::VcClass;

use crate::data::LineData;
use crate::ids::{LineAddr, NodeId};
use crate::serial::SerialNum;

/// Every message type used by DirCMP (Table 1) and the additional types
/// introduced by FtDirCMP (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MsgType {
    // ---- DirCMP (Table 1) ----
    /// Request data and permission to write.
    GetX,
    /// Request data and permission to read.
    GetS,
    /// Sent by the L1 to initiate a write-back (also L2→memory).
    Put,
    /// Sent by the L2 to let the L1 actually perform the write-back.
    WbAck,
    /// Invalidation request sent to invalidate sharers before granting
    /// exclusive access.
    Inv,
    /// Invalidation acknowledgment (sent to the requester).
    Ack,
    /// Message carrying data and read permission.
    Data,
    /// Message carrying data and write permission (or exclusive-clean
    /// permission when answering a `GetS` with no sharers).
    DataEx,
    /// Informs the directory that the data has been received and the sender
    /// is now a sharer.
    Unblock,
    /// Informs the directory that the data has been received and the sender
    /// now has exclusive access to the line.
    UnblockEx,
    /// Write-back containing data.
    WbData,
    /// Write-back containing no data (clean line).
    WbNoData,
    /// `GetS` forwarded by the directory to the current owner.
    FwdGetS,
    /// `GetX` forwarded by the directory to the current owner (also used,
    /// with the home L2 as requester, to recall a line the L2 is evicting).
    FwdGetX,

    // ---- FtDirCMP (Table 2) ----
    /// Ownership acknowledgment.
    AckO,
    /// Backup deletion acknowledgment.
    AckBD,
    /// Requests confirmation whether a cache miss is still in progress.
    UnblockPing,
    /// Requests confirmation whether a writeback is still in progress.
    WbPing,
    /// Confirms that a previous writeback has already finished.
    WbCancel,
    /// Requests confirmation of ownership (sent by a node stuck in backup
    /// state; see DESIGN.md §4 on the interpretation of this message).
    OwnershipPing,
    /// Not-ownership acknowledgment: the pinged node never received the
    /// owned data, so the backup must resend it.
    NackO,
}

impl MsgType {
    /// All message types, DirCMP first.
    pub const ALL: [MsgType; 21] = [
        MsgType::GetX,
        MsgType::GetS,
        MsgType::Put,
        MsgType::WbAck,
        MsgType::Inv,
        MsgType::Ack,
        MsgType::Data,
        MsgType::DataEx,
        MsgType::Unblock,
        MsgType::UnblockEx,
        MsgType::WbData,
        MsgType::WbNoData,
        MsgType::FwdGetS,
        MsgType::FwdGetX,
        MsgType::AckO,
        MsgType::AckBD,
        MsgType::UnblockPing,
        MsgType::WbPing,
        MsgType::WbCancel,
        MsgType::OwnershipPing,
        MsgType::NackO,
    ];

    /// Whether this type only exists in FtDirCMP (Table 2).
    pub fn is_ft_only(self) -> bool {
        matches!(
            self,
            MsgType::AckO
                | MsgType::AckBD
                | MsgType::UnblockPing
                | MsgType::WbPing
                | MsgType::WbCancel
                | MsgType::OwnershipPing
                | MsgType::NackO
        )
    }

    /// Whether messages of this type may carry line data.
    pub fn may_carry_data(self) -> bool {
        matches!(self, MsgType::Data | MsgType::DataEx | MsgType::WbData)
    }

    /// Virtual-channel class this type travels on.
    pub fn vc_class(self) -> VcClass {
        match self {
            MsgType::GetX | MsgType::GetS | MsgType::Put => VcClass::Request,
            MsgType::Inv | MsgType::FwdGetS | MsgType::FwdGetX => VcClass::Forward,
            MsgType::Ack | MsgType::Data | MsgType::DataEx | MsgType::WbAck => VcClass::Response,
            MsgType::Unblock | MsgType::UnblockEx | MsgType::WbData | MsgType::WbNoData => {
                VcClass::Unblock
            }
            MsgType::AckO | MsgType::AckBD => VcClass::OwnershipAck,
            MsgType::UnblockPing
            | MsgType::WbPing
            | MsgType::WbCancel
            | MsgType::OwnershipPing
            | MsgType::NackO => VcClass::Ping,
        }
    }

    /// One-line description, as in the paper's tables.
    pub fn description(self) -> &'static str {
        match self {
            MsgType::GetX => "Request data and permission to write.",
            MsgType::GetS => "Request data and permission to read.",
            MsgType::Put => "Sent by the L1 to initiate a write-back.",
            MsgType::WbAck => "Sent by the L2 to let the L1 actually perform the write-back.",
            MsgType::Inv => {
                "Invalidation request sent to invalidate sharers before granting exclusive access."
            }
            MsgType::Ack => "Invalidation acknowledgment.",
            MsgType::Data => "Message carrying data and read permission.",
            MsgType::DataEx => "Message carrying data and write permission.",
            MsgType::Unblock => {
                "Informs the L2 that the data has been received and the sender is now a sharer."
            }
            MsgType::UnblockEx => {
                "Informs the L2 that the data has been received and the sender has now exclusive access to the line."
            }
            MsgType::WbData => "Write-back containing data.",
            MsgType::WbNoData => "Write-back containing no data.",
            MsgType::FwdGetS => "GetS forwarded by the directory to the current owner.",
            MsgType::FwdGetX => "GetX forwarded by the directory to the current owner.",
            MsgType::AckO => "Ownership acknowledgment.",
            MsgType::AckBD => "Backup deletion acknowledgment.",
            MsgType::UnblockPing => {
                "Requests confirmation whether a cache miss is still in progress."
            }
            MsgType::WbPing => "Requests confirmation whether a writeback is still in progress.",
            MsgType::WbCancel => "Confirms that a previous writeback has already finished.",
            MsgType::OwnershipPing => "Requests confirmation of ownership.",
            MsgType::NackO => "Not ownership acknowledgment.",
        }
    }

    /// Short name, as printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            MsgType::GetX => "GetX",
            MsgType::GetS => "GetS",
            MsgType::Put => "Put",
            MsgType::WbAck => "WbAck",
            MsgType::Inv => "Inv",
            MsgType::Ack => "Ack",
            MsgType::Data => "Data",
            MsgType::DataEx => "DataEx",
            MsgType::Unblock => "Unblock",
            MsgType::UnblockEx => "UnblockEx",
            MsgType::WbData => "WbData",
            MsgType::WbNoData => "WbNoData",
            MsgType::FwdGetS => "FwdGetS",
            MsgType::FwdGetX => "FwdGetX",
            MsgType::AckO => "AckO",
            MsgType::AckBD => "AckBD",
            MsgType::UnblockPing => "UnblockPing",
            MsgType::WbPing => "WbPing",
            MsgType::WbCancel => "WbCancel",
            MsgType::OwnershipPing => "OwnershipPing",
            MsgType::NackO => "NackO",
        }
    }

    /// Dense index into [`MsgType::ALL`].
    pub fn index(self) -> usize {
        MsgType::ALL
            .iter()
            .position(|t| *t == self)
            .expect("every MsgType is in ALL")
    }
}

impl std::fmt::Display for MsgType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A coherence protocol message.
///
/// Control messages are 8 bytes and data messages 72 bytes on the wire
/// (Table 4); FtDirCMP's serial number and CRC fit in the existing header
/// padding, so both protocols use the same sizes (see DESIGN.md §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Message type.
    pub mtype: MsgType,
    /// Cache line the message concerns.
    pub addr: LineAddr,
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The original requester of the transaction this message belongs to
    /// (meaningful on forwards, invalidations, and responses).
    pub requester: NodeId,
    /// Request serial number (always `SerialNum::ZERO` under DirCMP).
    pub serial: SerialNum,
    /// Number of invalidation acknowledgments the requester must collect
    /// before the miss is complete (carried by `DataEx` and `FwdGetX`).
    pub ack_count: u8,
    /// Line data, if this message carries any.
    pub data: Option<LineData>,
    /// FtDirCMP: an ownership acknowledgment is piggybacked on this message
    /// (only meaningful on `Unblock`/`UnblockEx`, §3.1).
    pub piggy_acko: bool,
    /// The write-back acknowledgment tells the evicting cache its Put is
    /// stale: ownership already moved (race with a forwarded request).
    pub wb_stale: bool,
    /// The write-back acknowledgment asks the evicting cache to include the
    /// line data in its `WbData` (as opposed to a clean `WbNoData`).
    pub wb_wants_data: bool,
    /// The carried data is dirty with respect to memory. An exclusive grant
    /// of dirty data must install as `M`, never `E` (a silent-clean `E`
    /// eviction would otherwise lose the only up-to-date copy).
    pub data_dirty: bool,
    /// `UnblockPing` only: the directory's open transaction is a GetX. The
    /// pinged cache disambiguates *which* transaction the ping refers to by
    /// kind — per-line serialization makes (line, requester, kind) unique,
    /// whereas small serial numbers may collide across transactions.
    pub ping_for_store: bool,
}

impl Message {
    /// Creates a message with the common fields; extras default to zero.
    pub fn new(mtype: MsgType, addr: LineAddr, src: NodeId, dst: NodeId) -> Self {
        Message {
            mtype,
            addr,
            src,
            dst,
            requester: src,
            serial: SerialNum::ZERO,
            ack_count: 0,
            data: None,
            piggy_acko: false,
            wb_stale: false,
            wb_wants_data: false,
            data_dirty: false,
            ping_for_store: false,
        }
    }

    /// Builder-style: sets the original requester.
    pub fn requester(mut self, requester: NodeId) -> Self {
        self.requester = requester;
        self
    }

    /// Builder-style: sets the serial number.
    pub fn serial(mut self, serial: SerialNum) -> Self {
        self.serial = serial;
        self
    }

    /// Builder-style: attaches line data.
    ///
    /// # Panics
    ///
    /// Panics if this message type cannot carry data.
    pub fn data(mut self, data: LineData) -> Self {
        assert!(
            self.mtype.may_carry_data(),
            "{} cannot carry data",
            self.mtype
        );
        self.data = Some(data);
        self
    }

    /// Builder-style: sets the invalidation-ack count.
    pub fn acks(mut self, n: u8) -> Self {
        self.ack_count = n;
        self
    }

    /// Builder-style: piggybacks an ownership acknowledgment.
    pub fn with_acko(mut self) -> Self {
        self.piggy_acko = true;
        self
    }

    /// Builder-style: marks the carried data dirty with respect to memory.
    pub fn dirty(mut self, dirty: bool) -> Self {
        self.data_dirty = dirty;
        self
    }

    /// Size on the wire in bytes given the configured control/data sizes.
    pub fn size_bytes(&self, control_bytes: u32, data_bytes: u32) -> u32 {
        if self.data.is_some() {
            data_bytes
        } else {
            control_bytes
        }
    }

    /// Virtual-channel class.
    pub fn vc_class(&self) -> VcClass {
        self.mtype.vc_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(t: MsgType) -> Message {
        Message::new(t, LineAddr(4), NodeId::L1(0), NodeId::L2(4))
    }

    #[test]
    fn all_types_present_and_unique() {
        for (i, t) in MsgType::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
        // Table 1 has 12 entries + our 2 explicit forward types, Table 2 has 7.
        let ft = MsgType::ALL.iter().filter(|t| t.is_ft_only()).count();
        assert_eq!(ft, 7);
        assert_eq!(MsgType::ALL.len(), 21);
    }

    #[test]
    fn only_data_messages_carry_data() {
        for t in MsgType::ALL {
            let carries = t.may_carry_data();
            assert_eq!(
                carries,
                matches!(t, MsgType::Data | MsgType::DataEx | MsgType::WbData),
                "{t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot carry data")]
    fn attaching_data_to_control_message_panics() {
        let _ = msg(MsgType::GetS).data(LineData::pristine());
    }

    #[test]
    fn ft_messages_use_the_two_extra_vcs() {
        // Paper §3.6: FtDirCMP requires two more virtual channels.
        for t in MsgType::ALL {
            if t.is_ft_only() {
                assert!(
                    matches!(t.vc_class(), VcClass::OwnershipAck | VcClass::Ping),
                    "{t} should use an FT-only VC"
                );
            } else {
                assert!(
                    !matches!(t.vc_class(), VcClass::OwnershipAck | VcClass::Ping),
                    "{t} should use a DirCMP VC"
                );
            }
        }
    }

    #[test]
    fn size_depends_on_data_presence() {
        let control = msg(MsgType::GetS);
        assert_eq!(control.size_bytes(8, 72), 8);
        let data = msg(MsgType::Data).data(LineData::pristine());
        assert_eq!(data.size_bytes(8, 72), 72);
    }

    #[test]
    fn builder_sets_fields() {
        let m = msg(MsgType::DataEx)
            .requester(NodeId::L1(5))
            .serial(SerialNum::new(9, 8))
            .data(LineData::pristine())
            .acks(3);
        assert_eq!(m.requester, NodeId::L1(5));
        assert_eq!(m.serial.value(), 9);
        assert_eq!(m.ack_count, 3);
        assert!(m.data.is_some());
        let u = msg(MsgType::UnblockEx).with_acko();
        assert!(u.piggy_acko);
    }

    #[test]
    fn names_and_descriptions_nonempty() {
        for t in MsgType::ALL {
            assert!(!t.name().is_empty());
            assert!(!t.description().is_empty());
            assert_eq!(t.to_string(), t.name());
        }
    }
}
