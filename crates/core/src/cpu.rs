//! Trace-driven core model.
//!
//! The paper assumes in-order processors (§2); with the default of one
//! outstanding miss the core blocks on every L1 miss, which is exactly the
//! coupling the coherence protocol sees in the paper's evaluation. The
//! model also supports non-blocking caches (several outstanding misses,
//! [`crate::config::SystemConfig::max_outstanding_misses`]): the core keeps
//! issuing subsequent trace operations past a miss, stalling only on a
//! same-line dependence or a full miss window — the paper notes protocol
//! correctness is unaffected (§2), and the MLP ablation measures the
//! overlap.

use crate::ids::LineAddr;
use crate::trace::{CoreTrace, TraceOp};

/// Why the core cannot issue right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueBlock {
    /// Ready to issue the next operation.
    Ready,
    /// The next operation touches a line with a miss already in flight.
    SameLine(LineAddr),
    /// The miss window is full.
    WindowFull,
    /// Trace exhausted (misses may still be draining).
    Drained,
}

/// A trace-driven core with a bounded miss window.
#[derive(Debug, Clone)]
pub struct Cpu {
    core: u8,
    trace: CoreTrace,
    pc: usize,
    window: usize,
    outstanding: Vec<LineAddr>,
    ops_done: u64,
    mem_ops_done: u64,
}

impl Cpu {
    /// Creates core `core` running `trace` with a miss window of `window`
    /// (≥ 1; 1 = blocking core).
    pub fn new(core: u8, trace: CoreTrace, window: u8) -> Self {
        Cpu {
            core,
            trace,
            pc: 0,
            window: usize::from(window.max(1)),
            outstanding: Vec::new(),
            ops_done: 0,
            mem_ops_done: 0,
        }
    }

    /// Core index.
    pub fn core(&self) -> u8 {
        self.core
    }

    /// Whether the trace is exhausted **and** all misses have drained.
    pub fn is_done(&self) -> bool {
        self.pc >= self.trace.len() && self.outstanding.is_empty()
    }

    /// Operations retired.
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }

    /// Memory operations retired.
    pub fn mem_ops_done(&self) -> u64 {
        self.mem_ops_done
    }

    /// Misses currently in flight.
    pub fn outstanding_misses(&self) -> usize {
        self.outstanding.len()
    }

    /// Line addresses of the misses currently in flight (issue order).
    /// Watchdog diagnostics use this to name the lines a stalled core is
    /// blocked on.
    pub fn outstanding_lines(&self) -> &[LineAddr] {
        &self.outstanding
    }

    /// The operation at the program counter, if any.
    pub fn current_op(&self) -> Option<TraceOp> {
        self.trace.ops().get(self.pc).copied()
    }

    /// Whether the next operation may issue now (and if not, why), given
    /// the line it would touch.
    pub fn issue_state(&self, line_of: impl Fn(TraceOp) -> Option<LineAddr>) -> IssueBlock {
        let Some(op) = self.current_op() else {
            return IssueBlock::Drained;
        };
        match line_of(op) {
            None => IssueBlock::Ready, // Think never blocks
            Some(line) => {
                if self.outstanding.contains(&line) {
                    IssueBlock::SameLine(line)
                } else if self.outstanding.len() >= self.window {
                    IssueBlock::WindowFull
                } else {
                    IssueBlock::Ready
                }
            }
        }
    }

    /// Retires the current operation immediately (hits and thinks).
    ///
    /// # Panics
    ///
    /// Panics if the trace is exhausted.
    pub fn retire_now(&mut self) {
        let op = self.trace.ops()[self.pc];
        self.pc += 1;
        self.ops_done += 1;
        if op.is_mem() {
            self.mem_ops_done += 1;
        }
    }

    /// Marks the current operation as an in-flight miss on `line` and
    /// advances the program counter; the op retires at [`Cpu::complete`].
    ///
    /// # Panics
    ///
    /// Panics if the line already has a miss in flight or the window is
    /// full.
    pub fn issue_miss(&mut self, line: LineAddr) {
        assert!(
            !self.outstanding.contains(&line),
            "core {}: second miss on {line}",
            self.core
        );
        assert!(
            self.outstanding.len() < self.window,
            "core {}: miss window overflow",
            self.core
        );
        self.outstanding.push(line);
        self.pc += 1;
    }

    /// Retires the in-flight miss on `line`.
    ///
    /// # Panics
    ///
    /// Panics if no miss on `line` is in flight.
    pub fn complete(&mut self, line: LineAddr) {
        let pos = self
            .outstanding
            .iter()
            .position(|l| *l == line)
            .unwrap_or_else(|| panic!("core {}: completion for idle line {line}", self.core));
        self.outstanding.swap_remove(pos);
        self.ops_done += 1;
        self.mem_ops_done += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Addr;

    fn line_of(op: TraceOp) -> Option<LineAddr> {
        op.addr().map(|a| a.line(64))
    }

    fn trace() -> CoreTrace {
        CoreTrace::new(vec![
            TraceOp::Load(Addr(0)),
            TraceOp::Think(10),
            TraceOp::Store(Addr(64)),
        ])
    }

    #[test]
    fn blocking_core_walks_the_trace() {
        let mut c = Cpu::new(0, trace(), 1);
        assert_eq!(c.issue_state(line_of), IssueBlock::Ready);
        c.issue_miss(LineAddr(0));
        // Thinks never block on the window...
        assert_eq!(c.issue_state(line_of), IssueBlock::Ready);
        c.retire_now(); // Think
                        // ...but the store does while the load is outstanding.
        assert_eq!(c.issue_state(line_of), IssueBlock::WindowFull);
        c.complete(LineAddr(0));
        assert_eq!(c.issue_state(line_of), IssueBlock::Ready);
        c.issue_miss(LineAddr(1));
        c.complete(LineAddr(1));
        assert!(c.is_done());
        assert_eq!(c.ops_done(), 3);
        assert_eq!(c.mem_ops_done(), 2);
    }

    #[test]
    fn window_allows_overlapping_misses() {
        let t = CoreTrace::new(vec![
            TraceOp::Load(Addr(0)),
            TraceOp::Load(Addr(64)),
            TraceOp::Load(Addr(128)),
        ]);
        let mut c = Cpu::new(0, t, 2);
        c.issue_miss(LineAddr(0));
        assert_eq!(c.issue_state(line_of), IssueBlock::Ready);
        c.issue_miss(LineAddr(1));
        assert_eq!(c.issue_state(line_of), IssueBlock::WindowFull);
        assert_eq!(c.outstanding_misses(), 2);
        c.complete(LineAddr(0));
        assert_eq!(c.issue_state(line_of), IssueBlock::Ready);
        c.issue_miss(LineAddr(2));
        c.complete(LineAddr(2));
        c.complete(LineAddr(1));
        assert!(c.is_done());
    }

    #[test]
    fn same_line_dependence_blocks_issue() {
        let t = CoreTrace::new(vec![TraceOp::Load(Addr(0)), TraceOp::Store(Addr(8))]);
        let mut c = Cpu::new(0, t, 4);
        c.issue_miss(LineAddr(0));
        // The store touches the same 64-byte line: must wait.
        assert_eq!(c.issue_state(line_of), IssueBlock::SameLine(LineAddr(0)));
        c.complete(LineAddr(0));
        assert_eq!(c.issue_state(line_of), IssueBlock::Ready);
    }

    #[test]
    fn empty_trace_is_immediately_done() {
        let c = Cpu::new(3, CoreTrace::default(), 1);
        assert!(c.is_done());
        assert_eq!(c.issue_state(line_of), IssueBlock::Drained);
        assert_eq!(c.core(), 3);
    }

    #[test]
    fn done_requires_drained_misses() {
        let t = CoreTrace::new(vec![TraceOp::Load(Addr(0))]);
        let mut c = Cpu::new(0, t, 1);
        c.issue_miss(LineAddr(0));
        assert!(!c.is_done(), "miss still in flight");
        c.complete(LineAddr(0));
        assert!(c.is_done());
    }

    #[test]
    #[should_panic(expected = "second miss")]
    fn double_issue_on_a_line_panics() {
        let t = CoreTrace::new(vec![TraceOp::Load(Addr(0)), TraceOp::Load(Addr(1))]);
        let mut c = Cpu::new(0, t, 4);
        c.issue_miss(LineAddr(0));
        c.issue_miss(LineAddr(0));
    }

    #[test]
    #[should_panic(expected = "completion for idle line")]
    fn spurious_completion_panics() {
        let mut c = Cpu::new(0, trace(), 1);
        c.complete(LineAddr(5));
    }
}
