//! Statistics primitives shared by the FtDirCMP simulator crates.
//!
//! The simulator reports the same quantities the paper's evaluation does —
//! execution cycles, network messages and bytes by category, miss latencies,
//! timeout/reissue counts. This crate holds the generic building blocks:
//!
//! * [`Counter`] — a simple event counter.
//! * [`Histogram`] — latency distribution with mean/max/percentiles.
//! * [`table::Table`] — plain-text table rendering for the bench harness.
//!
//! # Example
//!
//! ```
//! use ftdircmp_stats::Histogram;
//!
//! let mut h = Histogram::new();
//! for v in [10, 20, 30] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 3);
//! assert_eq!(h.mean(), 20.0);
//! assert_eq!(h.max(), Some(30));
//! ```

mod histogram;
pub mod table;

pub use histogram::Histogram;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use ftdircmp_stats::Counter;
///
/// let mut c = Counter::new();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Computes `a / b` as a percentage, returning 0 when `b` is zero.
///
/// # Example
///
/// ```
/// assert_eq!(ftdircmp_stats::percent(1, 4), 25.0);
/// assert_eq!(ftdircmp_stats::percent(1, 0), 0.0);
/// ```
pub fn percent(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        100.0 * a as f64 / b as f64
    }
}

/// Computes the ratio `a / b`, returning `fallback` when `b` is zero.
///
/// # Example
///
/// ```
/// assert_eq!(ftdircmp_stats::ratio_or(6, 3, 1.0), 2.0);
/// assert_eq!(ftdircmp_stats::ratio_or(6, 0, 1.0), 1.0);
/// ```
pub fn ratio_or(a: u64, b: u64, fallback: f64) -> f64 {
    if b == 0 {
        fallback
    } else {
        a as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 12);
        assert_eq!(c.to_string(), "12");
    }

    #[test]
    fn percent_handles_zero_denominator() {
        assert_eq!(percent(5, 0), 0.0);
        assert_eq!(percent(5, 10), 50.0);
    }

    #[test]
    fn ratio_or_fallback() {
        assert_eq!(ratio_or(0, 0, 42.0), 42.0);
        assert_eq!(ratio_or(9, 3, 0.0), 3.0);
    }
}
