//! Plain-text table rendering for the benchmark harness.
//!
//! The bench binaries print the same rows/series the paper's tables and
//! figures report; this module renders them as aligned monospace tables.

/// A simple text table with a header row and aligned columns.
///
/// # Example
///
/// ```
/// use ftdircmp_stats::table::Table;
///
/// let mut t = Table::new(vec!["benchmark".into(), "overhead".into()]);
/// t.row(vec!["fft".into(), "1.02x".into()]);
/// let s = t.render();
/// assert!(s.contains("benchmark"));
/// assert!(s.contains("fft"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(cols: &[&str]) -> Self {
        Table::new(cols.iter().map(|s| s.to_string()).collect())
    }

    /// Appends a row. Rows shorter than the header are padded with blanks.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned monospace string.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        render_row(&mut out, &self.header, &widths);
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row, &widths);
        }
        out
    }
}

fn render_row(out: &mut String, row: &[String], widths: &[usize]) {
    for (i, width) in widths.iter().enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        let cell = row.get(i).map_or("", String::as_str);
        out.push_str(cell);
        for _ in cell.len()..*width {
            out.push(' ');
        }
    }
    // Trim trailing spaces of the last column.
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
}

/// Formats a fraction as `"+12.3%"` / `"-4.5%"`.
pub fn signed_percent(fraction: f64) -> String {
    format!("{:+.1}%", fraction * 100.0)
}

/// Formats a ratio as `"1.23x"`.
pub fn times(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::with_columns(&["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a      | long-header"));
        assert!(lines[2].starts_with("xxxxxx | 1"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::with_columns(&["a", "b", "c"]);
        t.row(vec!["only".into()]);
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn empty_table_has_header_and_rule() {
        let t = Table::with_columns(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(signed_percent(0.123), "+12.3%");
        assert_eq!(signed_percent(-0.045), "-4.5%");
        assert_eq!(times(1.234), "1.23x");
    }
}
