//! Latency histogram.

/// A histogram of `u64` samples with power-of-two buckets.
///
/// Tracks count, sum, min and max exactly; percentiles are approximated by
/// the bucket upper bound (sufficient for reporting latency distributions).
///
/// # Example
///
/// ```
/// use ftdircmp_stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 100);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(100));
/// assert!(h.percentile(50.0).unwrap() >= 50);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: Option<u64>,
    max: Option<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = bucket_index(value);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += value;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Approximate `p`-th percentile (bucket upper bound), `0 < p <= 100`.
    /// Returns `None` when the histogram is empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(bucket_upper_bound(i).min(self.max.unwrap_or(u64::MAX)));
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

fn bucket_upper_bound(index: usize) -> u64 {
    if index >= 64 {
        u64::MAX
    } else if index == 0 {
        0
    } else {
        (1u64 << index) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_defaults() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(50.0), None);
    }

    #[test]
    fn basic_stats_are_exact() {
        let mut h = Histogram::new();
        for v in [5u64, 10, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 30);
        assert_eq!(h.mean(), 10.0);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(15));
    }

    #[test]
    fn zero_sample_goes_to_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.percentile(100.0), Some(0));
    }

    #[test]
    fn percentile_monotonic_in_p() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0).unwrap();
        let p90 = h.percentile(90.0).unwrap();
        let p100 = h.percentile(100.0).unwrap();
        assert!(p50 <= p90 && p90 <= p100);
        assert_eq!(p100, 1000);
    }

    #[test]
    fn percentile_never_exceeds_max() {
        let mut h = Histogram::new();
        h.record(3);
        assert_eq!(h.percentile(99.0), Some(3));
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        a.record(2);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 103);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(7);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn large_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 1);
        assert!(h.percentile(100.0).is_some());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn count_sum_min_max_are_exact(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
            prop_assert_eq!(h.min(), values.iter().min().copied());
            prop_assert_eq!(h.max(), values.iter().max().copied());
        }

        #[test]
        fn percentiles_are_monotone_and_bounded(
            values in proptest::collection::vec(0u64..1_000_000, 1..200),
            cuts in proptest::collection::vec(0.0f64..100.0, 2..8),
        ) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = cuts.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut last = 0u64;
            for p in sorted {
                let q = h.percentile(p).unwrap();
                prop_assert!(q >= last, "percentile not monotone");
                prop_assert!(q <= h.max().unwrap());
                last = q;
            }
        }

        #[test]
        fn merge_equals_recording_everything(
            a in proptest::collection::vec(0u64..100_000, 0..100),
            b in proptest::collection::vec(0u64..100_000, 0..100),
        ) {
            let mut ha = Histogram::new();
            let mut hb = Histogram::new();
            let mut hall = Histogram::new();
            for &v in &a {
                ha.record(v);
                hall.record(v);
            }
            for &v in &b {
                hb.record(v);
                hall.record(v);
            }
            ha.merge(&hb);
            prop_assert_eq!(ha, hall);
        }
    }
}
