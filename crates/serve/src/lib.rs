//! `ftdircmp-serve`: a crash-safe campaign service daemon.
//!
//! The daemon accepts campaign submissions (workload × config × seed
//! grids), fault-search jobs and repro replays over a line-delimited JSON
//! socket API, runs them through the parallel checkpoint-fork campaign
//! runner (`ftdircmp-bench`), and records every result durably under a
//! queue root so a killed daemon resumes exactly where it stopped:
//!
//! * [`json`] — minimal std-only JSON parser/serializer (the container has
//!   no serde; canonical output keeps stored results byte-comparable);
//! * [`job`] — submission types, validation, and the deterministic
//!   expansion of a campaign grid into simulation units;
//! * [`store`] — the durable result store: per-job unit-record journals
//!   (append + fsync) and atomic final summaries (tmp-file + rename);
//! * [`queue`] — the persistent work queue: an append-only submit/done
//!   journal replayed on boot to re-enqueue half-finished jobs;
//! * [`runner`] — executes one job (shared by the daemon worker and the
//!   synchronous `run-local` subcommand, so both produce identical bytes);
//! * [`notifier`] — fan-out of streamed progress events to subscribed
//!   connections;
//! * [`server`] — the TCP listener, wire protocol, and executor thread.
//!
//! See DESIGN.md §11 for the architecture and the crash-safe resume
//! contract.

pub mod job;
pub mod json;
pub mod notifier;
pub mod queue;
pub mod runner;
pub mod server;
pub mod store;
