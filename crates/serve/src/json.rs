//! Minimal JSON: enough for the daemon's line-delimited wire protocol and
//! its on-disk journal/result records.
//!
//! The build environment is offline (no serde), so this is a small
//! hand-rolled value type, like the RON reader in `ftdircmp-explore`.
//! Objects preserve insertion order and emission is canonical (no
//! whitespace, stable number formatting), so a value round-trips to the
//! same bytes — the property the byte-identical result-store contract
//! rests on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Values that are mathematically integers emit without a
    /// decimal point (all counters in this codebase fit in 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered pairs (no duplicate keys are emitted
    /// by this crate; the last occurrence wins on lookup).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer payload, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from an unsigned counter.
    pub fn num_u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct, with its
    /// byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

/// Canonical compact serialization (`value.to_string()` round-trips
/// through [`Json::parse`] byte-identically).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!(
            "unexpected byte {:?} at byte {pos}",
            char::from(*c),
            pos = *pos
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not needed by this protocol;
                        // unpaired surrogates map to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_canonical() {
        let v = Json::obj(vec![
            ("id", Json::str("j000001")),
            ("n", Json::num_u64(42)),
            ("pi", Json::Num(3.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::num_u64(1), Json::str("x\ny")])),
        ]);
        let text = v.to_string();
        assert_eq!(
            text,
            r#"{"id":"j000001","n":42,"pi":3.5,"ok":true,"none":null,"arr":[1,"x\ny"]}"#
        );
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn accessors_behave() {
        let v = Json::parse(r#"{"s":"x","n":7,"f":1.25,"b":false}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.25));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "{\"a\":1} extra",
            "1 2",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn negative_and_exponent_numbers_parse() {
        assert_eq!(Json::parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn control_chars_escape_and_roundtrip() {
        let v = Json::str("a\u{1}b\"c\\d");
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }
}
