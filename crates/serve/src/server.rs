//! TCP front end: line-delimited JSON over a local socket.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line with an `"ok"` field. A connection that issued
//! `watch` additionally receives streamed event lines (`"event"` field)
//! interleaved between responses; responses and events are serialized
//! through one per-connection writer thread so lines never interleave.
//!
//! Commands:
//!
//! | cmd        | fields            | reply                                 |
//! |------------|-------------------|---------------------------------------|
//! | `ping`     |                   | `{"ok":true,"pong":true}`             |
//! | `submit`   | `job`             | `{"ok":true,"id":"j000001"}`          |
//! | `status`   | `id`              | state/label/priority of one job       |
//! | `list`     |                   | every job the queue knows             |
//! | `watch`    | `id` (optional)   | subscribes; done jobs notify at once  |
//! | `result`   | `id`              | the stored summary, verbatim          |
//! | `shutdown` |                   | `{"ok":true}`, then the daemon exits  |

use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use crate::job::JobSpec;
use crate::json::Json;
use crate::notifier::{done_event, progress_event, Notifier};
use crate::queue::{JobState, Queue};
use crate::runner::execute_job;
use crate::store::Store;

/// Daemon options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port 0 picks a free port (published in the `port`
    /// file and on stdout).
    pub addr: String,
    /// Worker threads per campaign.
    pub jobs: usize,
    /// Backpressure: max pending jobs before submissions are rejected.
    pub max_pending: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            jobs: 1,
            max_pending: 64,
        }
    }
}

/// Runs the daemon until a `shutdown` command arrives: binds the socket,
/// replays the queue journal (resuming any half-finished jobs), and
/// serves clients.
///
/// # Errors
///
/// Propagates bind/store failures at startup.
///
/// # Panics
///
/// Panics if a service thread panicked (never: workers catch panics).
pub fn serve(root: &Path, options: &ServeOptions) -> std::io::Result<()> {
    let store = Store::open(root)?;
    let queue = Arc::new(Queue::open(store, options.max_pending)?);
    let notifier = Arc::new(Notifier::new());
    let listener = TcpListener::bind(&options.addr)?;
    let local = listener.local_addr()?;
    queue.store().write_port(local.port())?;
    println!("listening on {local}");

    let stop = Arc::new(AtomicBool::new(false));

    let executor = {
        let queue = Arc::clone(&queue);
        let notifier = Arc::clone(&notifier);
        let jobs = options.jobs;
        thread::spawn(move || run_executor(&queue, &notifier, jobs))
    };

    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(socket) = conn else { continue };
        let queue = Arc::clone(&queue);
        let notifier = Arc::clone(&notifier);
        let stop = Arc::clone(&stop);
        let addr = local;
        thread::spawn(move || {
            if handle_connection(&socket, &queue, &notifier) == ConnOutcome::Shutdown {
                stop.store(true, Ordering::SeqCst);
                queue.shutdown();
                // Unblock the accept loop so the daemon can exit.
                let _ = TcpStream::connect(addr);
            }
        });
    }

    executor.join().expect("executor thread never panics");
    Ok(())
}

/// Drains the queue: runs each job, persists its summary, records the
/// outcome, and streams progress/done events. A job whose worker panics
/// is quarantined (summary preserved, outcome `quarantined`) and the
/// queue keeps serving.
fn run_executor(queue: &Queue, notifier: &Notifier, jobs: usize) {
    while let Some(job) = queue.take_next() {
        let id = job.id.clone();
        let progress = |done: usize, total: usize| {
            notifier.publish(&id, &progress_event(&id, done, total));
        };
        match execute_job(queue.store(), &job.id, &job.spec, jobs, &progress) {
            Ok(outcome) => {
                queue.mark_done(&job.id, &outcome);
                notifier.publish(&job.id, &done_event(&job.id, &outcome));
            }
            Err(e) => {
                // The summary never committed: leave the job un-done so a
                // restart retries it, but tell watchers what happened.
                eprintln!("job {}: store failure: {e}", job.id);
                notifier.publish(&job.id, &done_event(&job.id, "store-error"));
            }
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum ConnOutcome {
    Closed,
    Shutdown,
}

fn handle_connection(socket: &TcpStream, queue: &Queue, notifier: &Notifier) -> ConnOutcome {
    let Ok(write_half) = socket.try_clone() else {
        return ConnOutcome::Closed;
    };
    let (tx, rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || {
        let mut out = write_half;
        while let Ok(line) = rx.recv() {
            if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                break;
            }
            let _ = out.flush();
        }
    });

    let mut outcome = ConnOutcome::Closed;
    let mut reader = BufReader::new(socket);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let (reply, is_shutdown) = handle_command(text, queue, notifier, &tx);
        if tx.send(reply.to_string()).is_err() {
            break;
        }
        if is_shutdown {
            outcome = ConnOutcome::Shutdown;
            break;
        }
    }
    drop(tx);
    let _ = writer.join();
    outcome
}

fn error_reply(msg: &str) -> Json {
    Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::str(msg))])
}

fn handle_command(
    text: &str,
    queue: &Queue,
    notifier: &Notifier,
    tx: &mpsc::Sender<String>,
) -> (Json, bool) {
    let Ok(req) = Json::parse(text) else {
        return (error_reply("request is not valid JSON"), false);
    };
    let Some(cmd) = req.get("cmd").and_then(Json::as_str) else {
        return (error_reply("request missing string field \"cmd\""), false);
    };
    let reply = match cmd {
        "ping" => Json::obj(vec![("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
        "submit" => match req.get("job") {
            Some(job_json) => match JobSpec::from_json(job_json) {
                Ok(spec) => match queue.submit(spec) {
                    Ok(id) => Json::obj(vec![("ok", Json::Bool(true)), ("id", Json::str(&id))]),
                    Err(e) => error_reply(&e),
                },
                Err(e) => error_reply(&e),
            },
            None => error_reply("submit missing object field \"job\""),
        },
        "status" => match req.get("id").and_then(Json::as_str) {
            Some(id) => match queue.status(id) {
                Some((state, label, priority)) => Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("id", Json::str(id)),
                    ("state", Json::str(state.name())),
                    (
                        "outcome",
                        match &state {
                            JobState::Done(o) => Json::str(o),
                            _ => Json::Null,
                        },
                    ),
                    ("label", Json::str(&label)),
                    ("priority", Json::Num(priority as f64)),
                ]),
                None => error_reply(&format!("unknown job {id:?}")),
            },
            None => error_reply("status missing string field \"id\""),
        },
        "list" => Json::obj(vec![
            ("ok", Json::Bool(true)),
            (
                "jobs",
                Json::Arr(
                    queue
                        .list()
                        .into_iter()
                        .map(|(id, state, label)| {
                            Json::obj(vec![
                                ("id", Json::str(&id)),
                                ("state", Json::str(state.name())),
                                ("label", Json::str(&label)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        "watch" => {
            let id = req.get("id").and_then(Json::as_str).map(str::to_string);
            if let Some(id) = &id {
                if queue.status(id).is_none() {
                    return (error_reply(&format!("unknown job {id:?}")), false);
                }
            }
            notifier.subscribe(id.clone(), tx.clone());
            // A watch on an already-finished job notifies immediately —
            // otherwise a client that raced job completion waits forever.
            if let Some(id) = &id {
                if let Some((JobState::Done(outcome), _, _)) = queue.status(id) {
                    let _ = tx.send(done_event(id, &outcome).to_string());
                }
            }
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("watching", Json::Bool(true)),
            ])
        }
        "result" => match req.get("id").and_then(Json::as_str) {
            Some(id) => match queue.store().read_summary(id) {
                Ok(Some(summary)) => Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("id", Json::str(id)),
                    ("summary", Json::str(&summary)),
                ]),
                Ok(None) => error_reply(&format!("job {id:?} has no stored result yet")),
                Err(e) => error_reply(&format!("reading result: {e}")),
            },
            None => error_reply("result missing string field \"id\""),
        },
        "shutdown" => {
            return (Json::obj(vec![("ok", Json::Bool(true))]), true);
        }
        other => error_reply(&format!("unknown command {other:?}")),
    };
    (reply, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn tmp_queue(tag: &str) -> Queue {
        let dir = std::env::temp_dir().join(format!(
            "ftdircmp-serve-server-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Queue::open(Store::open(&dir).unwrap(), 8).unwrap()
    }

    fn call(queue: &Queue, notifier: &Notifier, text: &str) -> (Json, bool) {
        let (tx, _rx) = mpsc::channel();
        handle_command(text, queue, notifier, &tx)
    }

    #[test]
    fn wire_protocol_basics() {
        let queue = tmp_queue("wire");
        let notifier = Notifier::new();
        let (pong, _) = call(&queue, &notifier, r#"{"cmd":"ping"}"#);
        assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));

        let (bad, _) = call(&queue, &notifier, "not json");
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));

        let (sub, _) = call(
            &queue,
            &notifier,
            r#"{"cmd":"submit","job":{"kind":"poison","label":"p"}}"#,
        );
        assert_eq!(sub.get("ok"), Some(&Json::Bool(true)), "{sub:?}");
        let id = sub.get("id").and_then(Json::as_str).unwrap().to_string();

        let (st, _) = call(
            &queue,
            &notifier,
            &format!(r#"{{"cmd":"status","id":"{id}"}}"#),
        );
        assert_eq!(st.get("state").and_then(Json::as_str), Some("pending"));

        let (ls, _) = call(&queue, &notifier, r#"{"cmd":"list"}"#);
        assert_eq!(ls.get("jobs").and_then(Json::as_arr).unwrap().len(), 1);

        let (missing, _) = call(&queue, &notifier, r#"{"cmd":"result","id":"j999999"}"#);
        assert_eq!(missing.get("ok"), Some(&Json::Bool(false)));

        let (_, shutdown) = call(&queue, &notifier, r#"{"cmd":"shutdown"}"#);
        assert!(shutdown);
        let _ = std::fs::remove_dir_all(queue.store().root());
    }

    #[test]
    fn watch_on_done_job_notifies_immediately() {
        let queue = tmp_queue("watch-done");
        let notifier = Notifier::new();
        let (sub, _) = call(
            &queue,
            &notifier,
            r#"{"cmd":"submit","job":{"kind":"poison","label":"p"}}"#,
        );
        let id = sub.get("id").and_then(Json::as_str).unwrap().to_string();
        let taken = queue.take_next().unwrap();
        queue.store().write_summary(&taken.id, "{}\n").unwrap();
        queue.mark_done(&taken.id, "quarantined");

        let (tx, rx) = mpsc::channel();
        let (reply, _) = handle_command(
            &format!(r#"{{"cmd":"watch","id":"{id}"}}"#),
            &queue,
            &notifier,
            &tx,
        );
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
        let event = rx.try_recv().unwrap();
        assert!(event.contains("\"event\":\"done\""), "{event}");
        assert!(event.contains("quarantined"), "{event}");
        let _ = std::fs::remove_dir_all(queue.store().root());
    }

    #[test]
    fn executor_drains_and_quarantines_poison() {
        let queue = std::sync::Arc::new(tmp_queue("executor"));
        let notifier = std::sync::Arc::new(Notifier::new());
        queue
            .submit(JobSpec::from_json(&Json::parse(r#"{"kind":"poison"}"#).unwrap()).unwrap())
            .unwrap();
        queue
            .submit(
                JobSpec::from_json(
                    &Json::parse(
                        r#"{"kind":"campaign","label":"after-poison",
                            "specs":["barnes:ops=30"],
                            "configs":[{"protocol":"dircmp"}],"seeds":1}"#,
                    )
                    .unwrap(),
                )
                .unwrap(),
            )
            .unwrap();
        let (tx, rx) = mpsc::channel();
        notifier.subscribe(None, tx);
        {
            let q = std::sync::Arc::clone(&queue);
            let n = std::sync::Arc::clone(&notifier);
            let h = std::thread::spawn(move || run_executor(&q, &n, 1));
            while queue.open_jobs() > 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            queue.shutdown();
            h.join().unwrap();
        }
        let events: Vec<String> = rx.try_iter().collect();
        let done: Vec<&String> = events.iter().filter(|e| e.contains("\"done\"")).collect();
        assert_eq!(done.len(), 2, "{events:?}");
        assert!(done[0].contains("quarantined"), "{events:?}");
        assert!(done[1].contains("\"outcome\":\"ok\""), "{events:?}");
        let _ = std::fs::remove_dir_all(queue.store().root());
    }
}
