//! Executes one job against the store.
//!
//! The daemon's executor thread and the synchronous `run-local`
//! subcommand both come through [`execute_job`], so a campaign submitted
//! over the socket produces byte-identical stored results to the same
//! spec run locally — that equivalence is asserted by the CI smoke test.
//!
//! Campaign resume: before running anything the executor loads the job's
//! unit-record journal and skips every unit whose record already reached
//! disk. Checkpoint-fork results depend only on the unit itself (proven
//! by `sparse_unit_list_matches_full_campaign` in `ftdircmp-bench`), so
//! re-running the sparse remainder reproduces exactly what an
//! uninterrupted run would have written.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ftdircmp_bench::campaign::{run_units_caught, Campaign, CellError, Unit};
use ftdircmp_core::{RunError, SimReport};
use ftdircmp_explore::{explore, repro::Repro, ExploreOptions};

use crate::job::{JobKind, JobSpec};
use crate::json::Json;
use crate::store::Store;

/// Best-effort text of a panic payload (`&str`/`String` payloads cover
/// every `panic!` in this workspace).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-job execution outcome, stored in the summary and the journal.
pub const OUTCOME_OK: &str = "ok";
/// The job ran but produced an error (bad config, unreadable repro, ...).
pub const OUTCOME_FAILED: &str = "failed";
/// The job panicked in the worker; it is quarantined — marked done so the
/// queue keeps serving, with the panic preserved in its summary.
pub const OUTCOME_QUARANTINED: &str = "quarantined";

/// Runs `spec` to completion (resuming from any units already on disk),
/// writes the durable summary, and returns the outcome string.
///
/// `progress` is called with `(done_units, total_units)` after each batch
/// of units is persisted.
///
/// # Errors
///
/// Propagates store I/O failures — the caller must NOT mark the job done
/// in that case (its results never committed).
pub fn execute_job(
    store: &Store,
    id: &str,
    spec: &JobSpec,
    jobs: usize,
    progress: &dyn Fn(usize, usize),
) -> std::io::Result<String> {
    let (outcome, body) = match &spec.kind {
        JobKind::Campaign(c) => run_campaign_job(store, id, c, jobs, progress)?,
        JobKind::FaultSearch(f) => run_fault_search_job(store, id, f, jobs),
        JobKind::Replay { repro } => run_replay_job(repro),
        JobKind::Poison => {
            let caught = catch_unwind(|| panic!("poison job executed"));
            let msg = caught.expect_err("poison always panics");
            (
                OUTCOME_QUARANTINED.to_string(),
                vec![("message".to_string(), Json::str(panic_text(&*msg)))],
            )
        }
    };
    let mut pairs = vec![
        ("id".to_string(), Json::str(id)),
        ("kind".to_string(), Json::str(kind_name(&spec.kind))),
        ("label".to_string(), Json::str(&spec.label)),
        ("outcome".to_string(), Json::str(&outcome)),
    ];
    pairs.extend(body);
    let mut summary = Json::Obj(pairs).to_string();
    summary.push('\n');
    store.write_summary(id, &summary)?;
    Ok(outcome)
}

fn kind_name(kind: &JobKind) -> &'static str {
    match kind {
        JobKind::Campaign(_) => "campaign",
        JobKind::FaultSearch(_) => "fault-search",
        JobKind::Replay { .. } => "replay",
        JobKind::Poison => "poison",
    }
}

type SummaryBody = Vec<(String, Json)>;

fn run_campaign_job(
    store: &Store,
    id: &str,
    c: &crate::job::CampaignSpec,
    jobs: usize,
    progress: &dyn Fn(usize, usize),
) -> std::io::Result<(String, SummaryBody)> {
    let units = match c.units() {
        Ok(u) => u,
        Err(e) => {
            return Ok((
                OUTCOME_FAILED.to_string(),
                vec![("message".to_string(), Json::str(&e))],
            ))
        }
    };
    let total = units.len();

    // Resume: records already on disk name units that never re-run.
    let loaded = store.load_unit_records(id)?;
    store.truncate_unit_records(id, loaded.valid_len)?;
    let mut done: BTreeMap<u64, Json> = BTreeMap::new();
    for rec in loaded.records {
        if let Some(i) = rec.get("unit").and_then(Json::as_u64) {
            if (i as usize) < total {
                done.insert(i, rec);
            }
        }
    }
    progress(done.len(), total);

    let opts = Campaign {
        jobs: jobs.max(1),
        progress: false,
        warmup_checkpoint: c.warmup_checkpoint,
    };
    let pending: Vec<usize> = (0..total)
        .filter(|i| !done.contains_key(&(*i as u64)))
        .collect();
    let batch_size = opts.jobs;
    for batch in pending.chunks(batch_size) {
        let batch_units: Vec<Unit> = batch.iter().map(|&i| units[i].clone()).collect();
        let results = run_units_caught(&batch_units, &opts);
        for (&i, result) in batch.iter().zip(&results) {
            let rec = unit_record(i as u64, &units[i], result);
            store.append_unit_record(id, &rec)?;
            done.insert(i as u64, rec);
        }
        progress(done.len(), total);
    }

    let mut quarantined = false;
    let mut failed = false;
    for rec in done.values() {
        match rec.get("status").and_then(Json::as_str) {
            Some("panicked") => quarantined = true,
            Some("error") => failed = true,
            // "deadlock" is data, not a job failure: the paper's DirCMP
            // baseline is *expected* to deadlock under message loss.
            _ => {}
        }
    }
    let outcome = if quarantined {
        OUTCOME_QUARANTINED
    } else if failed {
        OUTCOME_FAILED
    } else {
        OUTCOME_OK
    };
    let body = vec![
        ("total_units".to_string(), Json::num_u64(total as u64)),
        ("units".to_string(), Json::Arr(done.into_values().collect())),
    ];
    Ok((outcome.to_string(), body))
}

/// Builds the durable record for one finished unit.
fn unit_record(index: u64, unit: &Unit, result: &Result<SimReport, CellError>) -> Json {
    let mut pairs = vec![
        ("unit".to_string(), Json::num_u64(index)),
        ("label".to_string(), Json::str(&unit.label)),
        ("seed".to_string(), Json::num_u64(unit.seed)),
    ];
    match result {
        Ok(report) => {
            pairs.push(("status".to_string(), Json::str("ok")));
            pairs.push(("cycles".to_string(), Json::num_u64(report.cycles)));
            pairs.push(("events".to_string(), Json::num_u64(report.events)));
            pairs.push((
                "total_mem_ops".to_string(),
                Json::num_u64(report.total_mem_ops),
            ));
            pairs.push((
                "violations".to_string(),
                Json::num_u64(report.violations.len() as u64),
            ));
            pairs.push((
                "messages_lost".to_string(),
                Json::num_u64(report.messages_lost),
            ));
        }
        Err(CellError::Run(RunError::Deadlock {
            at,
            blocked_cores,
            last_progress,
            stalled,
            ..
        })) => {
            pairs.push(("status".to_string(), Json::str("deadlock")));
            pairs.push(("at".to_string(), Json::num_u64(*at)));
            pairs.push((
                "blocked_cores".to_string(),
                Json::num_u64(blocked_cores.len() as u64),
            ));
            pairs.push(("last_progress".to_string(), Json::num_u64(*last_progress)));
            // Name the first stuck line so quarantine triage starts from
            // the record itself, not a rerun.
            if let Some((core, line)) = stalled
                .iter()
                .find_map(|s| s.pending_lines.first().map(|l| (s.core, *l)))
            {
                pairs.push((
                    "stuck".to_string(),
                    Json::str(format!("core {core} on {line}")),
                ));
            }
        }
        Err(CellError::Run(RunError::InvalidConfig(msg))) => {
            pairs.push(("status".to_string(), Json::str("error")));
            pairs.push(("message".to_string(), Json::str(msg)));
        }
        Err(p @ CellError::Panicked { .. }) => {
            pairs.push(("status".to_string(), Json::str("panicked")));
            pairs.push(("message".to_string(), Json::str(p.to_string())));
        }
    }
    Json::Obj(pairs)
}

fn run_fault_search_job(
    store: &Store,
    id: &str,
    f: &crate::job::FaultSearchSpec,
    jobs: usize,
) -> (String, SummaryBody) {
    let (protocol, specs) = match f.resolve() {
        Ok(r) => r,
        Err(e) => {
            return (
                OUTCOME_FAILED.to_string(),
                vec![("message".to_string(), Json::str(&e))],
            )
        }
    };
    let mut opts = ExploreOptions::new(protocol);
    opts.specs = specs;
    opts.schedule_seeds.clone_from(&f.schedule_seeds);
    opts.drop_budget = f.drop_budget;
    opts.shrink_runs = f.shrink_runs;
    opts.max_repros_per_cell = f.max_repros_per_cell;
    opts.jobs = jobs.max(1);
    opts.out_dir = Some(store.repro_dir(id));
    let caught = catch_unwind(AssertUnwindSafe(|| explore(&opts)));
    match caught {
        Ok(report) => {
            let failures = report
                .failures
                .iter()
                .map(|fl| {
                    Json::obj(vec![
                        ("workload", Json::str(&fl.workload)),
                        ("schedule_seed", Json::num_u64(fl.schedule_seed)),
                        ("kind", Json::str(fl.failure.kind.label())),
                        ("detail", Json::str(&fl.failure.detail)),
                        ("drops_before", Json::num_u64(fl.shrink.drops_before as u64)),
                        ("drops_after", Json::num_u64(fl.shrink.drops_after as u64)),
                    ])
                })
                .collect();
            let repros = report
                .repro_paths
                .iter()
                .map(|p| Json::str(p.display().to_string()))
                .collect();
            (
                OUTCOME_OK.to_string(),
                vec![
                    (
                        "reference_runs".to_string(),
                        Json::num_u64(report.reference_runs as u64),
                    ),
                    (
                        "fault_runs".to_string(),
                        Json::num_u64(report.fault_runs as u64),
                    ),
                    (
                        "failing_cells".to_string(),
                        Json::num_u64(report.failing_cells as u64),
                    ),
                    ("failures".to_string(), Json::Arr(failures)),
                    ("repros".to_string(), Json::Arr(repros)),
                ],
            )
        }
        Err(panic) => (
            OUTCOME_QUARANTINED.to_string(),
            vec![("message".to_string(), Json::str(panic_text(&*panic)))],
        ),
    }
}

fn run_replay_job(repro_text: &str) -> (String, SummaryBody) {
    let repro = match Repro::from_ron(repro_text) {
        Ok(r) => r,
        Err(e) => {
            return (
                OUTCOME_FAILED.to_string(),
                vec![("message".to_string(), Json::str(&e))],
            )
        }
    };
    let caught = catch_unwind(AssertUnwindSafe(|| repro.replay()));
    match caught {
        Ok(Some(failure)) => (
            OUTCOME_OK.to_string(),
            vec![
                ("reproduced".to_string(), Json::Bool(true)),
                ("failure_kind".to_string(), Json::str(failure.kind.label())),
                ("detail".to_string(), Json::str(&failure.detail)),
            ],
        ),
        Ok(None) => (
            OUTCOME_OK.to_string(),
            vec![("reproduced".to_string(), Json::Bool(false))],
        ),
        Err(panic) => (
            OUTCOME_QUARANTINED.to_string(),
            vec![("message".to_string(), Json::str(panic_text(&*panic)))],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn tmp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!(
            "ftdircmp-serve-runner-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(&dir).unwrap()
    }

    fn tiny_campaign() -> JobSpec {
        let v = Json::parse(
            r#"{"kind":"campaign","label":"tiny",
                "specs":["barnes:ops=30"],
                "configs":[{"protocol":"dircmp"},{"protocol":"ftdircmp","fault_rate":500}],
                "seeds":2}"#,
        )
        .unwrap();
        JobSpec::from_json(&v).unwrap()
    }

    #[test]
    fn campaign_runs_streams_progress_and_summarizes() {
        let store = tmp_store("campaign");
        let job = tiny_campaign();
        let seen = std::sync::Mutex::new(Vec::new());
        let outcome = execute_job(&store, "j000001", &job, 2, &|d, t| {
            seen.lock().unwrap().push((d, t));
        })
        .unwrap();
        assert_eq!(outcome, OUTCOME_OK);
        let ticks = seen.into_inner().unwrap();
        assert_eq!(ticks.first(), Some(&(0, 4)));
        assert_eq!(ticks.last(), Some(&(4, 4)));
        let summary = store.read_summary("j000001").unwrap().unwrap();
        let v = Json::parse(summary.trim_end()).unwrap();
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("ok"));
        let units = v.get("units").and_then(Json::as_arr).unwrap();
        assert_eq!(units.len(), 4);
        assert_eq!(units[0].get("status").and_then(Json::as_str), Some("ok"),);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn resume_skips_stored_units_and_is_byte_identical() {
        let fresh = tmp_store("resume-fresh");
        let job = tiny_campaign();
        execute_job(&fresh, "j1", &job, 1, &|_, _| {}).unwrap();
        let reference = fresh.read_summary("j1").unwrap().unwrap();

        // Second store: pre-run, keep only the first two unit records
        // (simulating a crash), then resume.
        let partial = tmp_store("resume-partial");
        execute_job(&partial, "j1", &job, 1, &|_, _| {}).unwrap();
        let recs = partial.load_unit_records("j1").unwrap();
        let keep: Vec<&Json> = recs.records.iter().take(2).collect();
        let mut text = String::new();
        for r in &keep {
            text.push_str(&r.to_string());
            text.push('\n');
        }
        std::fs::write(partial.records_path("j1"), &text).unwrap();
        std::fs::remove_file(partial.summary_path("j1")).unwrap();

        let ran = std::sync::Mutex::new(Vec::new());
        execute_job(&partial, "j1", &job, 1, &|d, t| {
            ran.lock().unwrap().push((d, t));
        })
        .unwrap();
        // Resume started from 2/4, not 0/4.
        assert_eq!(ran.into_inner().unwrap().first(), Some(&(2, 4)));
        let resumed = partial.read_summary("j1").unwrap().unwrap();
        assert_eq!(resumed, reference, "resume must be byte-identical");
        let _ = std::fs::remove_dir_all(fresh.root());
        let _ = std::fs::remove_dir_all(partial.root());
    }

    #[test]
    fn poison_job_is_quarantined_with_its_panic_message() {
        let store = tmp_store("poison");
        let job = JobSpec {
            label: "boom".to_string(),
            priority: 0,
            kind: JobKind::Poison,
        };
        let outcome = execute_job(&store, "j9", &job, 1, &|_, _| {}).unwrap();
        assert_eq!(outcome, OUTCOME_QUARANTINED);
        let summary = store.read_summary("j9").unwrap().unwrap();
        assert!(summary.contains("poison job executed"), "{summary}");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn replay_of_garbage_fails_cleanly() {
        let store = tmp_store("replay");
        let job = JobSpec {
            label: "r".to_string(),
            priority: 0,
            kind: JobKind::Replay {
                repro: "not a repro".to_string(),
            },
        };
        let outcome = execute_job(&store, "j2", &job, 1, &|_, _| {}).unwrap();
        assert_eq!(outcome, OUTCOME_FAILED);
        let _ = std::fs::remove_dir_all(store.root());
    }
}
