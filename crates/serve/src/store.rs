//! Durable result store under the queue root.
//!
//! Layout (all paths relative to the root passed to [`Store::open`]):
//!
//! ```text
//! journal.jsonl        append-only submit/done journal (owned by queue.rs)
//! port                 the daemon's bound TCP port (tmp+rename)
//! results/<id>.jsonl   one JSON line per finished campaign unit, appended
//!                      and fsynced as units complete
//! results/<id>.json    final job summary, written via tmp-file + rename;
//!                      its presence is the job's "done" marker
//! repros/<id>/         minimized repro files from fault-search jobs
//! ```
//!
//! Crash-safety contract: unit records are appended with `sync_data`, so a
//! record that made it to disk names a unit that never needs re-running.
//! A crash can leave a torn final line (no trailing newline, or garbage);
//! [`Store::load_unit_records`] parses the longest valid prefix and
//! [`Store::truncate_unit_records`] cuts the file back to it before the
//! daemon appends again, so a torn tail can never corrupt later records.
//! The summary rename is atomic on POSIX, so a job is either visibly done
//! (summary present, byte-complete) or still pending — never half-done.

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use crate::json::Json;

/// Handle to the on-disk queue root.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

/// One persisted unit record plus where its line started, so callers can
/// truncate away a torn tail.
#[derive(Debug)]
pub struct UnitRecords {
    /// Parsed records in file order (unit indices are stored inside).
    pub records: Vec<Json>,
    /// Byte length of the valid newline-terminated prefix.
    pub valid_len: u64,
}

impl Store {
    /// Opens (creating if needed) the queue root.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: &Path) -> std::io::Result<Store> {
        fs::create_dir_all(root.join("results"))?;
        fs::create_dir_all(root.join("repros"))?;
        Ok(Store {
            root: root.to_path_buf(),
        })
    }

    /// The queue root itself.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the append-only submit/done journal.
    pub fn journal_path(&self) -> PathBuf {
        self.root.join("journal.jsonl")
    }

    /// Path of a job's unit-record journal.
    pub fn records_path(&self, id: &str) -> PathBuf {
        self.root.join("results").join(format!("{id}.jsonl"))
    }

    /// Path of a job's final summary.
    pub fn summary_path(&self, id: &str) -> PathBuf {
        self.root.join("results").join(format!("{id}.json"))
    }

    /// Directory fault-search repros for a job land in.
    pub fn repro_dir(&self, id: &str) -> PathBuf {
        self.root.join("repros").join(id)
    }

    /// Whether the job's summary exists (the durable "done" marker).
    pub fn is_done(&self, id: &str) -> bool {
        self.summary_path(id).is_file()
    }

    /// Appends one unit record line and syncs it to disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the caller treats them as fatal for the
    /// job (a record we cannot persist must not be reported as done).
    pub fn append_unit_record(&self, id: &str, record: &Json) -> std::io::Result<()> {
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.records_path(id))?;
        f.write_all(record.to_string().as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_data()
    }

    /// Loads the valid prefix of a job's unit records.
    ///
    /// Unparseable or unterminated trailing bytes (a torn write from a
    /// crash) are excluded; `valid_len` says where the good prefix ends.
    ///
    /// # Errors
    ///
    /// Propagates read failures other than the file not existing yet.
    pub fn load_unit_records(&self, id: &str) -> std::io::Result<UnitRecords> {
        load_prefix(&self.records_path(id))
    }

    /// Truncates a job's record file to its valid prefix so subsequent
    /// appends start on a clean line boundary.
    ///
    /// # Errors
    ///
    /// Propagates truncation failures.
    pub fn truncate_unit_records(&self, id: &str, valid_len: u64) -> std::io::Result<()> {
        truncate_to(&self.records_path(id), valid_len)
    }

    /// Writes a job's final summary atomically (tmp-file + rename) and
    /// syncs it. After this returns the job is durably done.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_summary(&self, id: &str, summary: &str) -> std::io::Result<()> {
        write_atomic(&self.summary_path(id), summary.as_bytes())
    }

    /// Reads a job's final summary, if present.
    ///
    /// # Errors
    ///
    /// Propagates read failures other than absence.
    pub fn read_summary(&self, id: &str) -> std::io::Result<Option<String>> {
        match fs::read_to_string(self.summary_path(id)) {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Publishes the daemon's bound port for local clients and tests.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_port(&self, port: u16) -> std::io::Result<()> {
        write_atomic(&self.root.join("port"), format!("{port}\n").as_bytes())
    }
}

/// Writes `bytes` to `path` via a sibling tmp file + atomic rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)
}

/// Truncates `path` to `valid_len` bytes if it has grown past it (no-op
/// when the file is absent or already short enough).
///
/// # Errors
///
/// Propagates truncation failures.
pub fn truncate_to(path: &Path, valid_len: u64) -> std::io::Result<()> {
    if !path.is_file() {
        return Ok(());
    }
    let actual = fs::metadata(path)?.len();
    if actual > valid_len {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(valid_len)?;
        f.sync_data()?;
    }
    Ok(())
}

/// Parses the longest valid newline-terminated JSONL prefix of `path`.
///
/// # Errors
///
/// Propagates read failures other than absence (absent → empty).
pub fn load_prefix(path: &Path) -> std::io::Result<UnitRecords> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let mut records = Vec::new();
    let mut valid_len = 0u64;
    let mut start = 0usize;
    while let Some(rel) = bytes[start..].iter().position(|&b| b == b'\n') {
        let end = start + rel;
        let line = &bytes[start..end];
        let Ok(text) = std::str::from_utf8(line) else {
            break;
        };
        let Ok(v) = Json::parse(text) else { break };
        records.push(v);
        valid_len = (end + 1) as u64;
        start = end + 1;
    }
    Ok(UnitRecords { records, valid_len })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ftdircmp-serve-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_roundtrip_and_torn_tail_is_dropped() {
        let root = tmp_root("torn");
        let store = Store::open(&root).unwrap();
        let r0 = Json::obj(vec![
            ("unit", Json::num_u64(0)),
            ("status", Json::str("ok")),
        ]);
        let r1 = Json::obj(vec![
            ("unit", Json::num_u64(1)),
            ("status", Json::str("ok")),
        ]);
        store.append_unit_record("j000001", &r0).unwrap();
        store.append_unit_record("j000001", &r1).unwrap();

        // Simulate a crash mid-append: torn, unterminated trailing bytes.
        let mut f = OpenOptions::new()
            .append(true)
            .open(store.records_path("j000001"))
            .unwrap();
        f.write_all(b"{\"unit\":2,\"sta").unwrap();
        drop(f);

        let loaded = store.load_unit_records("j000001").unwrap();
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(
            loaded.records[1].get("unit").and_then(Json::as_u64),
            Some(1)
        );

        store
            .truncate_unit_records("j000001", loaded.valid_len)
            .unwrap();
        let r2 = Json::obj(vec![
            ("unit", Json::num_u64(2)),
            ("status", Json::str("ok")),
        ]);
        store.append_unit_record("j000001", &r2).unwrap();
        let reloaded = store.load_unit_records("j000001").unwrap();
        assert_eq!(reloaded.records.len(), 3);
        assert_eq!(
            reloaded.records[2].get("unit").and_then(Json::as_u64),
            Some(2)
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn summary_is_atomic_done_marker() {
        let root = tmp_root("summary");
        let store = Store::open(&root).unwrap();
        assert!(!store.is_done("j000001"));
        assert_eq!(store.read_summary("j000001").unwrap(), None);
        store
            .write_summary("j000001", "{\"outcome\":\"ok\"}\n")
            .unwrap();
        assert!(store.is_done("j000001"));
        assert_eq!(
            store.read_summary("j000001").unwrap().unwrap(),
            "{\"outcome\":\"ok\"}\n"
        );
        assert!(!store.summary_path("j000001").with_extension("tmp").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_record_file_loads_empty() {
        let root = tmp_root("missing");
        let store = Store::open(&root).unwrap();
        let loaded = store.load_unit_records("j999999").unwrap();
        assert!(loaded.records.is_empty());
        assert_eq!(loaded.valid_len, 0);
        let _ = fs::remove_dir_all(&root);
    }
}
