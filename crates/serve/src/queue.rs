//! Persistent work queue backed by an append-only journal.
//!
//! Every accepted submission is appended (and fsynced) to
//! `journal.jsonl` as `{"op":"submit","id":...,"job":{...}}` before the
//! client sees an acknowledgement; every finished job appends
//! `{"op":"done","id":...,"outcome":...}` after its summary has been
//! renamed into place. On boot the journal's valid prefix is replayed:
//! jobs with a submit but no done record (and no summary on disk — the
//! summary rename is the real commit point, the done record a fast-path
//! hint) are re-enqueued, so a `kill -9` mid-campaign costs at most the
//! units whose records never reached disk.
//!
//! Scheduling is (priority descending, submission order ascending).
//! Backpressure: once `max_pending` jobs are queued, further submissions
//! are rejected with a typed error instead of growing without bound.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::{Condvar, Mutex};

use crate::job::JobSpec;
use crate::json::Json;
use crate::store::Store;

/// Lifecycle of a job as seen by `status`/`list`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for the executor.
    Pending,
    /// Currently executing.
    Running,
    /// Finished with the given outcome (`ok`, `failed`, `quarantined`).
    Done(String),
}

impl JobState {
    /// Wire name of the state.
    pub fn name(&self) -> &str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Done(_) => "done",
        }
    }
}

/// A job handed to the executor.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Stable job id (`j000001`, ...).
    pub id: String,
    /// The validated submission.
    pub spec: JobSpec,
}

#[derive(Debug)]
struct JobInfo {
    spec: JobSpec,
    seq: u64,
    state: JobState,
}

#[derive(Debug)]
struct QueueState {
    jobs: BTreeMap<String, JobInfo>,
    next_seq: u64,
    shutdown: bool,
}

/// The queue: journal + in-memory scheduling state.
#[derive(Debug)]
pub struct Queue {
    store: Store,
    state: Mutex<QueueState>,
    cond: Condvar,
    max_pending: usize,
}

impl Queue {
    /// Opens the queue, replaying the journal and re-enqueueing every job
    /// that was submitted but never durably finished.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O failures.
    ///
    /// # Panics
    ///
    /// Panics if the state mutex is poisoned (never: no panics under it).
    pub fn open(store: Store, max_pending: usize) -> std::io::Result<Queue> {
        let journal = store.journal_path();
        let loaded = crate::store::load_prefix(&journal)?;
        // Cut a torn tail so our own appends start on a line boundary.
        crate::store::truncate_to(&journal, loaded.valid_len)?;

        let mut jobs: BTreeMap<String, JobInfo> = BTreeMap::new();
        let mut next_seq = 1u64;
        for rec in &loaded.records {
            let (Some(op), Some(id)) = (
                rec.get("op").and_then(Json::as_str),
                rec.get("id").and_then(Json::as_str),
            ) else {
                continue;
            };
            match op {
                "submit" => {
                    let Some(job) = rec.get("job") else { continue };
                    let Ok(spec) = JobSpec::from_json(job) else {
                        // A journaled job that no longer validates (e.g. a
                        // workload renamed between versions) is dropped
                        // rather than wedging the queue.
                        continue;
                    };
                    if let Some(seq) = id.strip_prefix('j').and_then(|n| n.parse::<u64>().ok()) {
                        next_seq = next_seq.max(seq + 1);
                    }
                    let seq = jobs.len() as u64;
                    jobs.insert(
                        id.to_string(),
                        JobInfo {
                            spec,
                            seq,
                            state: JobState::Pending,
                        },
                    );
                }
                "done" => {
                    if let Some(info) = jobs.get_mut(id) {
                        let outcome = rec
                            .get("outcome")
                            .and_then(Json::as_str)
                            .unwrap_or("ok")
                            .to_string();
                        info.state = JobState::Done(outcome);
                    }
                }
                _ => {}
            }
        }
        // The summary rename is the true commit point: a job whose summary
        // landed but whose done record was lost to the crash is still done.
        for (id, info) in &mut jobs {
            if info.state != JobState::Pending {
                continue;
            }
            if store.is_done(id) {
                info.state = JobState::Done("ok".to_string());
            }
        }
        Ok(Queue {
            store,
            state: Mutex::new(QueueState {
                jobs,
                next_seq,
                shutdown: false,
            }),
            cond: Condvar::new(),
            max_pending,
        })
    }

    /// The store this queue journals into.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Accepts a submission: journals it durably, then schedules it.
    ///
    /// # Errors
    ///
    /// Rejects when the pending backlog is at `max_pending`
    /// (backpressure) or when the journal append fails.
    ///
    /// # Panics
    ///
    /// Panics if the state mutex is poisoned (never: no panics under it).
    pub fn submit(&self, spec: JobSpec) -> Result<String, String> {
        let mut st = self.state.lock().unwrap();
        let backlog = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Pending)
            .count();
        if backlog >= self.max_pending {
            return Err(format!(
                "queue full: {backlog} pending jobs (max {})",
                self.max_pending
            ));
        }
        let id = format!("j{:06}", st.next_seq);
        st.next_seq += 1;
        let rec = Json::obj(vec![
            ("op", Json::str("submit")),
            ("id", Json::str(&id)),
            ("job", spec.to_json()),
        ]);
        self.append_journal(&rec)
            .map_err(|e| format!("journal append failed: {e}"))?;
        let seq = st.jobs.len() as u64;
        st.jobs.insert(
            id.clone(),
            JobInfo {
                spec,
                seq,
                state: JobState::Pending,
            },
        );
        drop(st);
        self.cond.notify_all();
        Ok(id)
    }

    /// Blocks until a job is available (highest priority first, FIFO
    /// within a priority) or the queue is shut down (`None`).
    ///
    /// # Panics
    ///
    /// Panics if the state mutex is poisoned (never: no panics under it).
    pub fn take_next(&self) -> Option<QueuedJob> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.shutdown {
                return None;
            }
            let best = st
                .jobs
                .iter()
                .filter(|(_, info)| info.state == JobState::Pending)
                .max_by_key(|(_, info)| (info.spec.priority, std::cmp::Reverse(info.seq)))
                .map(|(id, _)| id.clone());
            if let Some(id) = best {
                let info = st.jobs.get_mut(&id).expect("job exists");
                info.state = JobState::Running;
                return Some(QueuedJob {
                    id,
                    spec: info.spec.clone(),
                });
            }
            st = self.cond.wait(st).unwrap();
        }
    }

    /// Records a job's outcome durably and updates its visible state.
    ///
    /// # Panics
    ///
    /// Panics if the state mutex is poisoned (never: no panics under it).
    pub fn mark_done(&self, id: &str, outcome: &str) {
        let rec = Json::obj(vec![
            ("op", Json::str("done")),
            ("id", Json::str(id)),
            ("outcome", Json::str(outcome)),
        ]);
        // The summary rename already committed the result; a failed hint
        // append only costs a redundant (idempotent) re-run check on boot.
        let _ = self.append_journal(&rec);
        let mut st = self.state.lock().unwrap();
        if let Some(info) = st.jobs.get_mut(id) {
            info.state = JobState::Done(outcome.to_string());
        }
        drop(st);
        self.cond.notify_all();
    }

    /// Snapshot of one job: `(state, label, priority)`.
    ///
    /// # Panics
    ///
    /// Panics if the state mutex is poisoned (never: no panics under it).
    pub fn status(&self, id: &str) -> Option<(JobState, String, i64)> {
        let st = self.state.lock().unwrap();
        st.jobs.get(id).map(|info| {
            (
                info.state.clone(),
                info.spec.label.clone(),
                info.spec.priority,
            )
        })
    }

    /// Snapshot of every job in id order: `(id, state, label)`.
    ///
    /// # Panics
    ///
    /// Panics if the state mutex is poisoned (never: no panics under it).
    pub fn list(&self) -> Vec<(String, JobState, String)> {
        let st = self.state.lock().unwrap();
        st.jobs
            .iter()
            .map(|(id, info)| (id.clone(), info.state.clone(), info.spec.label.clone()))
            .collect()
    }

    /// Count of jobs not yet done — the executor drains until this is 0.
    ///
    /// # Panics
    ///
    /// Panics if the state mutex is poisoned (never: no panics under it).
    pub fn open_jobs(&self) -> usize {
        let st = self.state.lock().unwrap();
        st.jobs
            .values()
            .filter(|j| !matches!(j.state, JobState::Done(_)))
            .count()
    }

    /// Wakes the executor and makes `take_next` return `None`.
    ///
    /// # Panics
    ///
    /// Panics if the state mutex is poisoned (never: no panics under it).
    pub fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.cond.notify_all();
    }

    fn append_journal(&self, rec: &Json) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.store.journal_path())?;
        f.write_all(rec.to_string().as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    fn tmp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("ftdircmp-serve-queue-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(&dir).unwrap()
    }

    fn job(label: &str, priority: i64) -> JobSpec {
        JobSpec {
            label: label.to_string(),
            priority,
            kind: JobKind::Poison,
        }
    }

    #[test]
    fn priority_then_fifo_order() {
        let store = tmp_store("order");
        let q = Queue::open(store, 16).unwrap();
        let a = q.submit(job("a", 0)).unwrap();
        let b = q.submit(job("b", 5)).unwrap();
        let c = q.submit(job("c", 5)).unwrap();
        assert_eq!(q.take_next().unwrap().id, b);
        assert_eq!(q.take_next().unwrap().id, c);
        assert_eq!(q.take_next().unwrap().id, a);
        let _ = std::fs::remove_dir_all(q.store().root());
    }

    #[test]
    fn replay_reenqueues_unfinished_jobs_only() {
        let store = tmp_store("replay");
        let root = store.root().to_path_buf();
        {
            let q = Queue::open(store, 16).unwrap();
            let a = q.submit(job("a", 0)).unwrap();
            let _b = q.submit(job("b", 0)).unwrap();
            let taken = q.take_next().unwrap();
            assert_eq!(taken.id, a);
            q.store().write_summary(&a, "{}\n").unwrap();
            q.mark_done(&a, "ok");
        }
        let q2 = Queue::open(Store::open(&root).unwrap(), 16).unwrap();
        assert_eq!(q2.open_jobs(), 1);
        let next = q2.take_next().unwrap();
        assert_eq!(next.id, "j000002");
        // Fresh ids continue after the replayed ones.
        let c = q2.submit(job("c", 0)).unwrap();
        assert_eq!(c, "j000003");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn summary_presence_counts_as_done_without_done_record() {
        let store = tmp_store("summary-done");
        let root = store.root().to_path_buf();
        {
            let q = Queue::open(store, 16).unwrap();
            let a = q.submit(job("a", 0)).unwrap();
            let _ = q.take_next().unwrap();
            // Crash after the summary rename but before the done hint.
            q.store().write_summary(&a, "{}\n").unwrap();
        }
        let q2 = Queue::open(Store::open(&root).unwrap(), 16).unwrap();
        assert_eq!(q2.open_jobs(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn backpressure_rejects_when_full() {
        let store = tmp_store("full");
        let q = Queue::open(store, 2).unwrap();
        q.submit(job("a", 0)).unwrap();
        q.submit(job("b", 0)).unwrap();
        let err = q.submit(job("c", 0)).unwrap_err();
        assert!(err.contains("queue full"), "{err}");
        // Draining frees capacity.
        let a = q.take_next().unwrap();
        q.mark_done(&a.id, "ok");
        q.submit(job("c", 0)).unwrap();
        let _ = std::fs::remove_dir_all(q.store().root());
    }

    #[test]
    fn torn_journal_tail_is_ignored_and_overwritten() {
        let store = tmp_store("torn");
        let root = store.root().to_path_buf();
        {
            let q = Queue::open(store, 16).unwrap();
            q.submit(job("a", 0)).unwrap();
        }
        // Crash mid-append of a second submit.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(root.join("journal.jsonl"))
                .unwrap();
            std::io::Write::write_all(&mut f, b"{\"op\":\"sub").unwrap();
        }
        let q2 = Queue::open(Store::open(&root).unwrap(), 16).unwrap();
        assert_eq!(q2.open_jobs(), 1);
        let b = q2.submit(job("b", 0)).unwrap();
        assert_eq!(b, "j000002");
        // The journal is valid line-by-line again after the new append.
        let reloaded = Queue::open(Store::open(&root).unwrap(), 16).unwrap();
        assert_eq!(reloaded.open_jobs(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn shutdown_unblocks_take_next() {
        let store = tmp_store("shutdown");
        let q = std::sync::Arc::new(Queue::open(store, 16).unwrap());
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.take_next());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        assert!(h.join().unwrap().is_none());
        let _ = std::fs::remove_dir_all(q.store().root());
    }
}
