//! Job types the daemon accepts, their wire format, and the deterministic
//! expansion of a campaign submission into simulation units.
//!
//! A submission is one JSON object with a `kind` discriminator:
//!
//! * `campaign` — a (workload × config × seed) grid run through the
//!   parallel checkpoint-fork campaign runner;
//! * `fault-search` — a guided fault-schedule exploration
//!   (`ftdircmp-explore`) whose minimized repros land in the result store;
//! * `replay` — replays an embedded self-contained repro file;
//! * `poison` — a test fixture that panics inside the worker, used by the
//!   quarantine integration tests (harmless: the daemon catches it).
//!
//! [`JobSpec::from_json`] validates everything up front (unknown
//! benchmarks, bad protocols, empty grids) so a malformed submission is a
//! typed client error, never a worker crash.

use ftdircmp_bench::campaign::Unit;
use ftdircmp_core::{ProtocolVariant, SystemConfig};
use ftdircmp_noc::{
    Direction, FaultDomainConfig, FaultEvent, LinkChannelConfig, RouterId, DEFAULT_DEGRADED_DROP,
};
use ftdircmp_workloads::WorkloadSpec;

use crate::json::Json;

/// Default cap on `seeds` per cell (guards against typo'd grids hogging
/// the queue).
pub const MAX_SEEDS: u64 = 64;

/// A validated job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-supplied display label.
    pub label: String,
    /// Scheduling priority: higher runs first; FIFO within a priority.
    pub priority: i64,
    /// What to run.
    pub kind: JobKind,
}

/// The job payload.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// A campaign grid.
    Campaign(CampaignSpec),
    /// A guided fault-schedule exploration.
    FaultSearch(FaultSearchSpec),
    /// Replay an embedded repro (RON text, see `ftdircmp-explore`).
    Replay {
        /// The repro file content.
        repro: String,
    },
    /// Test fixture: panics in the worker; the daemon must quarantine it.
    Poison,
}

/// A campaign grid: every workload request under every configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Workload requests (`"name"` or `"name:ops=N"`, see
    /// [`WorkloadSpec::parse`]).
    pub specs: Vec<String>,
    /// Configuration axis.
    pub configs: Vec<ConfigSpec>,
    /// Seeds per cell.
    pub seeds: u64,
    /// Checkpoint-fork warmup threshold (percent), if requested.
    pub warmup_checkpoint: Option<f64>,
}

/// One point on a campaign's configuration axis.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSpec {
    /// `"dircmp"` or `"ftdircmp"`.
    pub protocol: String,
    /// Messages lost per million (0 = fault-free).
    pub fault_rate: f64,
    /// Deadlock watchdog override, cycles.
    pub watchdog_cycles: Option<u64>,
    /// Event-queue schedule seed override.
    pub schedule_seed: Option<u64>,
    /// Scheduled correlated-fault events (link flaps, brown-outs, region
    /// bursts). Empty means no fault domains.
    pub fault_events: Vec<FaultEvent>,
    /// Ambient per-link Gilbert–Elliott channel.
    pub link_channel: Option<LinkChannelConfig>,
    /// Seed of the per-link decision hash (defaults inside
    /// `FaultDomainConfig` when unset).
    pub domain_seed: Option<u64>,
}

/// Parses one fault-event object: `{"kind":"link-flap","router":5,
/// "dir":"east","start":1000,"end":2000}`, `{"kind":"brownout","router":5,
/// ...}` or `{"kind":"region-burst","epicenter":5,"radius":1,...}`.
fn parse_fault_event(v: &Json) -> Result<FaultEvent, String> {
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("fault event missing string field \"kind\"")?;
    let num = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("fault event missing integer field {key:?}"))
    };
    let router = |key: &str| -> Result<RouterId, String> {
        let raw = num(key)?;
        u16::try_from(raw)
            .map(RouterId::new)
            .map_err(|_| format!("fault event field {key:?}: router index {raw} too large"))
    };
    let (start, end) = (num("start")?, num("end")?);
    match kind {
        "link-flap" => {
            let label = v
                .get("dir")
                .and_then(Json::as_str)
                .ok_or("link-flap event missing string field \"dir\"")?;
            let dir = Direction::from_label(label).ok_or_else(|| {
                format!("unknown direction {label:?} (expected east, west, south or north)")
            })?;
            Ok(FaultEvent::LinkFlap {
                from: router("router")?,
                dir,
                start,
                end,
            })
        }
        "brownout" => Ok(FaultEvent::RouterBrownout {
            router: router("router")?,
            start,
            end,
        }),
        "region-burst" => Ok(FaultEvent::RegionBurst {
            epicenter: router("epicenter")?,
            radius: u32::try_from(num("radius")?)
                .map_err(|_| "fault event field \"radius\": too large".to_string())?,
            start,
            end,
        }),
        other => Err(format!(
            "unknown fault event kind {other:?} (expected link-flap, brownout, region-burst)"
        )),
    }
}

fn fault_event_json(ev: &FaultEvent) -> Json {
    match *ev {
        FaultEvent::LinkFlap {
            from,
            dir,
            start,
            end,
        } => Json::obj(vec![
            ("kind", Json::str("link-flap")),
            ("router", Json::num_u64(from.index() as u64)),
            ("dir", Json::str(dir.label())),
            ("start", Json::num_u64(start)),
            ("end", Json::num_u64(end)),
        ]),
        FaultEvent::RouterBrownout { router, start, end } => Json::obj(vec![
            ("kind", Json::str("brownout")),
            ("router", Json::num_u64(router.index() as u64)),
            ("start", Json::num_u64(start)),
            ("end", Json::num_u64(end)),
        ]),
        FaultEvent::RegionBurst {
            epicenter,
            radius,
            start,
            end,
        } => Json::obj(vec![
            ("kind", Json::str("region-burst")),
            ("epicenter", Json::num_u64(epicenter.index() as u64)),
            ("radius", Json::num_u64(u64::from(radius))),
            ("start", Json::num_u64(start)),
            ("end", Json::num_u64(end)),
        ]),
    }
}

/// Parses a link-channel object; omitted fields default to the passthrough
/// channel (no ambient noise, [`DEFAULT_DEGRADED_DROP`] inside degraded
/// windows).
fn parse_link_channel(v: &Json) -> Result<LinkChannelConfig, String> {
    let p = |key: &str| -> Result<Option<f64>, String> {
        v.get(key)
            .map(|x| {
                x.as_f64()
                    .ok_or_else(|| format!("link_channel field {key:?}: expected number"))
            })
            .transpose()
    };
    Ok(LinkChannelConfig {
        p_enter_bad: p("p_enter_bad")?.unwrap_or(0.0),
        p_exit_bad: p("p_exit_bad")?.unwrap_or(1.0),
        drop_good: p("drop_good")?.unwrap_or(0.0),
        drop_bad: p("drop_bad")?.unwrap_or(DEFAULT_DEGRADED_DROP),
    })
}

fn link_channel_json(ch: &LinkChannelConfig) -> Json {
    Json::obj(vec![
        ("p_enter_bad", Json::Num(ch.p_enter_bad)),
        ("p_exit_bad", Json::Num(ch.p_exit_bad)),
        ("drop_good", Json::Num(ch.drop_good)),
        ("drop_bad", Json::Num(ch.drop_bad)),
    ])
}

/// A guided fault-schedule exploration request.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSearchSpec {
    /// `"dircmp"` or `"ftdircmp"`.
    pub protocol: String,
    /// Workload requests.
    pub specs: Vec<String>,
    /// Schedule seeds to sweep.
    pub schedule_seeds: Vec<u64>,
    /// Drop candidates per (workload, schedule seed) cell.
    pub drop_budget: usize,
    /// Probe budget for the shrinker.
    pub shrink_runs: usize,
    /// Repro cap per cell.
    pub max_repros_per_cell: usize,
}

fn parse_protocol(name: &str) -> Result<ProtocolVariant, String> {
    match name {
        "dircmp" => Ok(ProtocolVariant::DirCmp),
        "ftdircmp" => Ok(ProtocolVariant::FtDirCmp),
        other => Err(format!(
            "unknown protocol {other:?} (expected \"dircmp\" or \"ftdircmp\")"
        )),
    }
}

impl ConfigSpec {
    /// Builds the effective [`SystemConfig`].
    ///
    /// # Errors
    ///
    /// Rejects unknown protocol names.
    pub fn to_config(&self) -> Result<SystemConfig, String> {
        let mut cfg = match parse_protocol(&self.protocol)? {
            ProtocolVariant::DirCmp => SystemConfig::dircmp(),
            ProtocolVariant::FtDirCmp => SystemConfig::ftdircmp(),
        };
        if self.fault_rate > 0.0 {
            cfg = cfg.with_fault_rate(self.fault_rate);
        }
        if let Some(w) = self.watchdog_cycles {
            cfg.watchdog_cycles = w;
        }
        if let Some(ss) = self.schedule_seed {
            cfg = cfg.with_schedule_seed(ss);
        }
        if !self.fault_events.is_empty() || self.link_channel.is_some() {
            let mut domains = FaultDomainConfig::events(self.fault_events.clone());
            if let Some(ch) = &self.link_channel {
                domains = domains.with_channel(ch.clone());
            }
            if let Some(seed) = self.domain_seed {
                domains = domains.with_seed(seed);
            }
            cfg = cfg.with_fault_domains(domains);
            // Surface bad probabilities / empty windows / out-of-mesh
            // routers as client errors at submission time, not worker
            // crashes at run time.
            cfg.validate()?;
        }
        Ok(cfg)
    }

    /// Deterministic display label for cells under this configuration.
    pub fn label(&self) -> String {
        let mut l = self.protocol.clone();
        if self.fault_rate > 0.0 {
            l.push_str(&format!("-{:.0}", self.fault_rate));
        }
        if let Some(ss) = self.schedule_seed {
            l.push_str(&format!("-ss{ss}"));
        }
        if !self.fault_events.is_empty() {
            l.push_str(&format!("-fd{}", self.fault_events.len()));
        }
        if self.link_channel.is_some() {
            l.push_str("-ge");
        }
        l
    }
}

impl CampaignSpec {
    /// Expands the grid into campaign units in deterministic order:
    /// workload-major, then config, then seed — the order unit indices in
    /// the result store refer to, across every run and resume.
    ///
    /// # Errors
    ///
    /// Rejects unknown workloads/protocols and empty or oversized grids.
    pub fn units(&self) -> Result<Vec<Unit>, String> {
        if self.specs.is_empty() {
            return Err("campaign has no workloads".to_string());
        }
        if self.configs.is_empty() {
            return Err("campaign has no configurations".to_string());
        }
        if self.seeds == 0 {
            return Err("campaign has zero seeds".to_string());
        }
        if self.seeds > MAX_SEEDS {
            return Err(format!("seeds {} exceeds cap {MAX_SEEDS}", self.seeds));
        }
        let specs: Vec<WorkloadSpec> = self
            .specs
            .iter()
            .map(|r| WorkloadSpec::parse(r))
            .collect::<Result<_, _>>()?;
        let configs: Vec<SystemConfig> = self
            .configs
            .iter()
            .map(ConfigSpec::to_config)
            .collect::<Result<_, _>>()?;
        let mut units = Vec::with_capacity(specs.len() * configs.len() * self.seeds as usize);
        for spec in &specs {
            for (config, cspec) in configs.iter().zip(&self.configs) {
                for seed in 0..self.seeds {
                    units.push(Unit {
                        label: format!("{}/{}", spec.name, cspec.label()),
                        spec: spec.clone(),
                        config: config.clone(),
                        seed,
                    });
                }
            }
        }
        Ok(units)
    }
}

impl FaultSearchSpec {
    /// Validates the request and resolves its workload specs.
    ///
    /// # Errors
    ///
    /// Rejects unknown workloads/protocols and empty sweeps.
    pub fn resolve(&self) -> Result<(ProtocolVariant, Vec<WorkloadSpec>), String> {
        let protocol = parse_protocol(&self.protocol)?;
        if self.specs.is_empty() {
            return Err("fault-search has no workloads".to_string());
        }
        if self.schedule_seeds.is_empty() {
            return Err("fault-search has no schedule seeds".to_string());
        }
        let specs = self
            .specs
            .iter()
            .map(|r| WorkloadSpec::parse(r))
            .collect::<Result<_, _>>()?;
        Ok((protocol, specs))
    }
}

impl JobSpec {
    /// Parses and validates a submission.
    ///
    /// # Errors
    ///
    /// Returns a client-facing description of the first problem found.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let kind_name = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("job missing string field \"kind\"")?;
        let label = v
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or(kind_name)
            .to_string();
        let priority = v
            .get("priority")
            .map(|p| {
                p.as_f64()
                    .filter(|f| f.fract() == 0.0 && f.abs() <= 1e9)
                    .map(|f| f as i64)
                    .ok_or("field \"priority\": expected a small integer")
            })
            .transpose()?
            .unwrap_or(0);
        let strings = |key: &str| -> Result<Vec<String>, String> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("job missing array field {key:?}"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("field {key:?}: expected strings"))
                })
                .collect()
        };
        let kind = match kind_name {
            "campaign" => {
                let configs = v
                    .get("configs")
                    .and_then(Json::as_arr)
                    .ok_or("job missing array field \"configs\"")?
                    .iter()
                    .map(|c| {
                        Ok(ConfigSpec {
                            protocol: c
                                .get("protocol")
                                .and_then(Json::as_str)
                                .ok_or("config missing string field \"protocol\"")?
                                .to_string(),
                            fault_rate: c
                                .get("fault_rate")
                                .map(|f| f.as_f64().ok_or("field \"fault_rate\": expected number"))
                                .transpose()?
                                .unwrap_or(0.0),
                            watchdog_cycles: c
                                .get("watchdog_cycles")
                                .map(|w| {
                                    w.as_u64()
                                        .ok_or("field \"watchdog_cycles\": expected integer")
                                })
                                .transpose()?,
                            schedule_seed: c
                                .get("schedule_seed")
                                .map(|s| {
                                    s.as_u64()
                                        .ok_or("field \"schedule_seed\": expected integer")
                                })
                                .transpose()?,
                            fault_events: c
                                .get("fault_events")
                                .map(|evs| {
                                    evs.as_arr()
                                        .ok_or("field \"fault_events\": expected array")?
                                        .iter()
                                        .map(parse_fault_event)
                                        .collect::<Result<Vec<_>, String>>()
                                })
                                .transpose()?
                                .unwrap_or_default(),
                            link_channel: c
                                .get("link_channel")
                                .map(parse_link_channel)
                                .transpose()?,
                            domain_seed: c
                                .get("domain_seed")
                                .map(|s| {
                                    s.as_u64().ok_or("field \"domain_seed\": expected integer")
                                })
                                .transpose()?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let spec = CampaignSpec {
                    specs: strings("specs")?,
                    configs,
                    seeds: v
                        .get("seeds")
                        .map(|s| s.as_u64().ok_or("field \"seeds\": expected integer"))
                        .transpose()?
                        .unwrap_or(1),
                    warmup_checkpoint: v
                        .get("warmup_checkpoint")
                        .filter(|w| **w != Json::Null)
                        .map(|w| {
                            w.as_f64()
                                .filter(|p| (0.0..=100.0).contains(p))
                                .ok_or("field \"warmup_checkpoint\": expected 0..=100")
                        })
                        .transpose()?,
                };
                spec.units()?; // validate the whole grid up front
                JobKind::Campaign(spec)
            }
            "fault-search" => {
                let spec = FaultSearchSpec {
                    protocol: v
                        .get("protocol")
                        .and_then(Json::as_str)
                        .unwrap_or("ftdircmp")
                        .to_string(),
                    specs: strings("specs")?,
                    schedule_seeds: v
                        .get("schedule_seeds")
                        .and_then(Json::as_arr)
                        .map(|seeds| {
                            seeds
                                .iter()
                                .map(|s| {
                                    s.as_u64()
                                        .ok_or("field \"schedule_seeds\": expected integers")
                                })
                                .collect::<Result<Vec<_>, _>>()
                        })
                        .transpose()?
                        .unwrap_or_else(|| vec![0]),
                    drop_budget: v
                        .get("drop_budget")
                        .map(|d| d.as_u64().ok_or("field \"drop_budget\": expected integer"))
                        .transpose()?
                        .unwrap_or(8) as usize,
                    shrink_runs: v
                        .get("shrink_runs")
                        .map(|d| d.as_u64().ok_or("field \"shrink_runs\": expected integer"))
                        .transpose()?
                        .unwrap_or(100) as usize,
                    max_repros_per_cell: v
                        .get("max_repros_per_cell")
                        .map(|d| {
                            d.as_u64()
                                .ok_or("field \"max_repros_per_cell\": expected integer")
                        })
                        .transpose()?
                        .unwrap_or(1) as usize,
                };
                spec.resolve()?;
                JobKind::FaultSearch(spec)
            }
            "replay" => JobKind::Replay {
                repro: v
                    .get("repro")
                    .and_then(Json::as_str)
                    .ok_or("replay job missing string field \"repro\"")?
                    .to_string(),
            },
            "poison" => JobKind::Poison,
            other => {
                return Err(format!(
                    "unknown job kind {other:?} (expected campaign, fault-search, replay)"
                ))
            }
        };
        Ok(JobSpec {
            label,
            priority,
            kind,
        })
    }

    /// Canonical JSON for the journal (round-trips through
    /// [`JobSpec::from_json`]).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = Vec::new();
        match &self.kind {
            JobKind::Campaign(c) => {
                pairs.push(("kind", Json::str("campaign")));
                pairs.push(("label", Json::str(&self.label)));
                pairs.push(("priority", Json::Num(self.priority as f64)));
                pairs.push(("specs", Json::Arr(c.specs.iter().map(Json::str).collect())));
                pairs.push((
                    "configs",
                    Json::Arr(
                        c.configs
                            .iter()
                            .map(|cfg| {
                                let mut p = vec![
                                    ("protocol".to_string(), Json::str(&cfg.protocol)),
                                    ("fault_rate".to_string(), Json::Num(cfg.fault_rate)),
                                ];
                                if let Some(w) = cfg.watchdog_cycles {
                                    p.push(("watchdog_cycles".to_string(), Json::num_u64(w)));
                                }
                                if let Some(ss) = cfg.schedule_seed {
                                    p.push(("schedule_seed".to_string(), Json::num_u64(ss)));
                                }
                                if !cfg.fault_events.is_empty() {
                                    p.push((
                                        "fault_events".to_string(),
                                        Json::Arr(
                                            cfg.fault_events.iter().map(fault_event_json).collect(),
                                        ),
                                    ));
                                }
                                if let Some(ch) = &cfg.link_channel {
                                    p.push(("link_channel".to_string(), link_channel_json(ch)));
                                }
                                if let Some(ds) = cfg.domain_seed {
                                    p.push(("domain_seed".to_string(), Json::num_u64(ds)));
                                }
                                Json::Obj(p)
                            })
                            .collect(),
                    ),
                ));
                pairs.push(("seeds", Json::num_u64(c.seeds)));
                if let Some(w) = c.warmup_checkpoint {
                    pairs.push(("warmup_checkpoint", Json::Num(w)));
                }
            }
            JobKind::FaultSearch(f) => {
                pairs.push(("kind", Json::str("fault-search")));
                pairs.push(("label", Json::str(&self.label)));
                pairs.push(("priority", Json::Num(self.priority as f64)));
                pairs.push(("protocol", Json::str(&f.protocol)));
                pairs.push(("specs", Json::Arr(f.specs.iter().map(Json::str).collect())));
                pairs.push((
                    "schedule_seeds",
                    Json::Arr(f.schedule_seeds.iter().map(|&s| Json::num_u64(s)).collect()),
                ));
                pairs.push(("drop_budget", Json::num_u64(f.drop_budget as u64)));
                pairs.push(("shrink_runs", Json::num_u64(f.shrink_runs as u64)));
                pairs.push((
                    "max_repros_per_cell",
                    Json::num_u64(f.max_repros_per_cell as u64),
                ));
            }
            JobKind::Replay { repro } => {
                pairs.push(("kind", Json::str("replay")));
                pairs.push(("label", Json::str(&self.label)));
                pairs.push(("priority", Json::Num(self.priority as f64)));
                pairs.push(("repro", Json::str(repro)));
            }
            JobKind::Poison => {
                pairs.push(("kind", Json::str("poison")));
                pairs.push(("label", Json::str(&self.label)));
                pairs.push(("priority", Json::Num(self.priority as f64)));
            }
        }
        Json::obj(pairs)
    }

    /// Number of simulation units this job expands to (1 for non-campaign
    /// kinds: they progress as a single unit).
    pub fn total_units(&self) -> usize {
        match &self.kind {
            JobKind::Campaign(c) => c.units().map_or(0, |u| u.len()),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign_json() -> Json {
        Json::parse(
            r#"{"kind":"campaign","label":"tiny","priority":3,
                "specs":["barnes:ops=40"],
                "configs":[{"protocol":"dircmp"},
                           {"protocol":"ftdircmp","fault_rate":125,"watchdog_cycles":3000000}],
                "seeds":2}"#,
        )
        .unwrap()
    }

    #[test]
    fn campaign_roundtrips_and_expands_deterministically() {
        let job = JobSpec::from_json(&tiny_campaign_json()).unwrap();
        assert_eq!(job.priority, 3);
        assert_eq!(job.total_units(), 4);
        let JobKind::Campaign(c) = &job.kind else {
            panic!("expected campaign")
        };
        let units = c.units().unwrap();
        assert_eq!(units[0].label, "barnes/dircmp");
        assert_eq!(units[0].seed, 0);
        assert_eq!(units[1].seed, 1);
        assert_eq!(units[2].label, "barnes/ftdircmp-125");
        assert_eq!(units[2].config.watchdog_cycles, 3_000_000);
        assert_eq!(units[0].spec.ops_per_core, 40);

        let back = JobSpec::from_json(&job.to_json()).unwrap();
        assert_eq!(back, job);
    }

    #[test]
    fn submissions_are_validated_up_front() {
        for (patch, needle) in [
            (
                r#"{"kind":"campaign","specs":[],"configs":[{"protocol":"dircmp"}]}"#,
                "no workloads",
            ),
            (
                r#"{"kind":"campaign","specs":["nope"],"configs":[{"protocol":"dircmp"}]}"#,
                "unknown benchmark",
            ),
            (
                r#"{"kind":"campaign","specs":["fft"],"configs":[{"protocol":"zesty"}]}"#,
                "unknown protocol",
            ),
            (
                r#"{"kind":"campaign","specs":["fft"],"configs":[{"protocol":"dircmp"}],"seeds":0}"#,
                "zero seeds",
            ),
            (r#"{"kind":"sideways"}"#, "unknown job kind"),
            (r#"{"specs":[]}"#, "missing string field"),
            (r#"{"kind":"replay"}"#, "missing string field \"repro\""),
            (
                r#"{"kind":"fault-search","specs":["fft"],"schedule_seeds":["x"]}"#,
                "expected integers",
            ),
        ] {
            let e = JobSpec::from_json(&Json::parse(patch).unwrap()).unwrap_err();
            assert!(e.contains(needle), "{patch}: {e}");
        }
    }

    #[test]
    fn fault_search_roundtrips() {
        let v = Json::parse(
            r#"{"kind":"fault-search","label":"fs","specs":["water-nsq:ops=50"],
                "schedule_seeds":[0,1],"drop_budget":4,"shrink_runs":50}"#,
        )
        .unwrap();
        let job = JobSpec::from_json(&v).unwrap();
        let back = JobSpec::from_json(&job.to_json()).unwrap();
        assert_eq!(back, job);
        assert_eq!(job.total_units(), 1);
    }

    #[test]
    fn fault_domain_configs_roundtrip_and_validate() {
        let v = Json::parse(
            r#"{"kind":"campaign","label":"fd","specs":["fft:ops=30"],
                "configs":[{"protocol":"ftdircmp",
                            "fault_events":[
                              {"kind":"link-flap","router":5,"dir":"east","start":1000,"end":2000},
                              {"kind":"brownout","router":0,"start":10,"end":20},
                              {"kind":"region-burst","epicenter":5,"radius":1,"start":30,"end":40}],
                            "link_channel":{"drop_bad":0.5},
                            "domain_seed":7}],
                "seeds":1}"#,
        )
        .unwrap();
        let job = JobSpec::from_json(&v).unwrap();
        let JobKind::Campaign(c) = &job.kind else {
            panic!("expected campaign")
        };
        assert_eq!(c.configs[0].fault_events.len(), 3);
        assert_eq!(c.configs[0].label(), "ftdircmp-fd3-ge");
        let cfg = c.configs[0].to_config().unwrap();
        let domains = cfg.mesh.faults.domains.as_ref().expect("domains installed");
        assert_eq!(domains.domain_seed, 7);
        assert_eq!(domains.events.len(), 3);
        assert_eq!(
            domains.channel.as_ref().map(|ch| ch.drop_bad),
            Some(0.5),
            "partial link_channel objects default the missing fields"
        );

        let back = JobSpec::from_json(&job.to_json()).unwrap();
        assert_eq!(back, job, "canonical JSON must round-trip");
    }

    #[test]
    fn bad_fault_events_are_client_errors() {
        for (events, needle) in [
            (
                r#"[{"kind":"link-flap","router":5,"dir":"up","start":0,"end":1}]"#,
                "unknown direction",
            ),
            (
                r#"[{"kind":"meteor","router":5,"start":0,"end":1}]"#,
                "unknown fault event kind",
            ),
            (
                r#"[{"kind":"brownout","router":99,"start":0,"end":1}]"#,
                "outside",
            ),
            (
                r#"[{"kind":"brownout","router":1,"start":5,"end":5}]"#,
                "empty window",
            ),
            (
                r#"[{"kind":"link-flap","router":5,"start":0,"end":1}]"#,
                "\"dir\"",
            ),
        ] {
            let json = format!(
                r#"{{"kind":"campaign","specs":["fft"],
                     "configs":[{{"protocol":"ftdircmp","fault_events":{events}}}]}}"#
            );
            let e = JobSpec::from_json(&Json::parse(&json).unwrap()).unwrap_err();
            assert!(e.contains(needle), "{events}: {e}");
        }
    }

    #[test]
    fn seeds_cap_is_enforced() {
        let v = Json::parse(
            r#"{"kind":"campaign","specs":["fft"],"configs":[{"protocol":"dircmp"}],"seeds":65}"#,
        )
        .unwrap();
        assert!(JobSpec::from_json(&v).unwrap_err().contains("cap"));
    }
}
